/**
 * @file
 * The one CRC-32 framing implementation every durability format in the
 * tree shares. Three consumers:
 *
 *  - the result journal (sim/journal.cc): an append-only *stream* of
 *    record frames, walked back after a crash to its clean prefix;
 *  - the checkpoint store (via common/file_io.hh's framed files): one
 *    versioned frame per file;
 *  - the content-addressed result store (store/result_store.cc): one
 *    record frame per published object.
 *
 * Two frame shapes, one byte-level implementation:
 *
 * # Record frames (streams and single-record objects)
 *
 *     u32 magic       caller-chosen stream tag
 *     u32 payloadLen
 *     u32 payloadCrc  CRC-32 of the payload bytes
 *     u8  payload[]
 *
 * appendRecordFrame encodes; FrameWalker decodes a buffer of
 * consecutive frames, stopping at the first damaged one and
 * classifying the damage (torn header, bad magic, implausible length,
 * truncated payload, CRC mismatch). A torn tail after a crash is an
 * *expected* outcome, so the walker reports it instead of failing:
 * validBytes() is the byte length of the clean frame prefix, and
 * everything after it must not be trusted.
 *
 * # File frames (whole-file containers)
 *
 *     u32 magic / u32 version / u64 payloadLen / u32 payloadCrc /
 *     u8 payload[]
 *
 * encodeFileFrame / decodeFileFrame are the byte-level halves of
 * writeFramedFile / readFramedFile (common/file_io.hh keeps the I/O
 * and the fault-injection seam). decodeFileFrame classifies each way
 * the bytes can be wrong and only writes `payload` on full success.
 */

#ifndef UNISON_COMMON_CRC_FRAME_HH
#define UNISON_COMMON_CRC_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"

namespace unison {

/** Record-frame header size (magic + length + CRC). */
inline constexpr std::size_t kRecordFrameHeaderBytes = 4 + 4 + 4;

/** Sanity bound on one record frame's payload; a corrupt length field
 *  must classify as damage, not turn into a multi-gigabyte
 *  allocation. */
inline constexpr std::uint64_t kMaxRecordFrameBytes = 64ull << 20;

/** Append one record frame (header + payload) to `out`. */
void appendRecordFrame(std::vector<std::uint8_t> &out,
                       std::uint32_t magic, const void *payload,
                       std::size_t len);

/** Convenience: one frame around a string payload. */
std::vector<std::uint8_t> encodeRecordFrame(std::uint32_t magic,
                                            const std::string &payload);

/**
 * Sequential decoder over a buffer of record frames. next() yields
 * payloads until the buffer ends cleanly or a damaged frame stops the
 * walk; the summary accessors then say how far the clean prefix
 * reached and why the walk stopped. The walker never throws and never
 * yields a payload whose CRC did not verify.
 */
class FrameWalker
{
  public:
    FrameWalker(const std::uint8_t *data, std::size_t size,
                std::uint32_t magic,
                std::uint64_t max_payload = kMaxRecordFrameBytes);

    /** Advance to the next intact frame; false at end-of-buffer or at
     *  the first damaged frame. */
    bool next(const std::uint8_t *&payload, std::size_t &len);

    /** True when the walk stopped at damage rather than a clean end. */
    bool torn() const { return torn_; }
    /** Classification of the damage ("" when not torn). */
    const std::string &tornReason() const { return tornReason_; }
    /** Byte length of the clean frame prefix consumed so far. */
    std::uint64_t validBytes() const { return at_; }

  private:
    void tear(std::string why);

    const std::uint8_t *data_;
    std::size_t size_;
    std::uint32_t magic_;
    std::uint64_t maxPayload_;
    std::uint64_t at_ = 0;
    bool torn_ = false;
    std::string tornReason_;
};

/** @name File frames (byte-level halves of file_io's framed files) */
/**@{*/
std::vector<std::uint8_t>
encodeFileFrame(std::uint32_t magic, std::uint32_t version,
                const std::vector<std::uint8_t> &payload);

/** Decode a whole-file frame; `what` names the file in failure
 *  messages. Failure class is Corrupt for every damage kind. */
SimStatus decodeFileFrame(const std::vector<std::uint8_t> &file,
                          std::uint32_t magic, std::uint32_t version,
                          std::vector<std::uint8_t> &payload,
                          const std::string &what);
/**@}*/

} // namespace unison

#endif // UNISON_COMMON_CRC_FRAME_HH
