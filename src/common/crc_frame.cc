#include "common/crc_frame.hh"

#include <cstring>

#include "common/crc32.hh"

namespace unison {

namespace {

template <typename T>
void
putLe(std::vector<std::uint8_t> &out, T value)
{
    const std::size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
T
getLe(const std::uint8_t *data, std::size_t at)
{
    T value;
    std::memcpy(&value, data + at, sizeof(T));
    return value;
}

} // namespace

// ------------------------------------------------------ record frames

void
appendRecordFrame(std::vector<std::uint8_t> &out, std::uint32_t magic,
                  const void *payload, std::size_t len)
{
    out.reserve(out.size() + kRecordFrameHeaderBytes + len);
    putLe(out, magic);
    putLe(out, static_cast<std::uint32_t>(len));
    putLe(out, crc32(payload, len));
    const auto *bytes = static_cast<const std::uint8_t *>(payload);
    out.insert(out.end(), bytes, bytes + len);
}

std::vector<std::uint8_t>
encodeRecordFrame(std::uint32_t magic, const std::string &payload)
{
    std::vector<std::uint8_t> out;
    appendRecordFrame(out, magic, payload.data(), payload.size());
    return out;
}

FrameWalker::FrameWalker(const std::uint8_t *data, std::size_t size,
                         std::uint32_t magic, std::uint64_t max_payload)
    : data_(data), size_(size), magic_(magic), maxPayload_(max_payload)
{
}

void
FrameWalker::tear(std::string why)
{
    torn_ = true;
    tornReason_ = std::move(why);
}

bool
FrameWalker::next(const std::uint8_t *&payload, std::size_t &len)
{
    if (torn_ || at_ >= size_)
        return false;

    const std::size_t remaining = size_ - at_;
    if (remaining < kRecordFrameHeaderBytes) {
        tear("partial record header (" + std::to_string(remaining) +
             " bytes) at offset " + std::to_string(at_));
        return false;
    }
    if (getLe<std::uint32_t>(data_, at_) != magic_) {
        tear("bad record magic at offset " + std::to_string(at_));
        return false;
    }
    const std::uint64_t payload_len =
        getLe<std::uint32_t>(data_, at_ + 4);
    const std::uint32_t stored_crc =
        getLe<std::uint32_t>(data_, at_ + 8);
    if (payload_len > maxPayload_) {
        tear("implausible record length " +
             std::to_string(payload_len) + " at offset " +
             std::to_string(at_));
        return false;
    }
    if (remaining - kRecordFrameHeaderBytes < payload_len) {
        tear("truncated record payload (" +
             std::to_string(remaining - kRecordFrameHeaderBytes) +
             " of " + std::to_string(payload_len) +
             " bytes) at offset " + std::to_string(at_));
        return false;
    }
    const std::uint8_t *bytes = data_ + at_ + kRecordFrameHeaderBytes;
    if (crc32(bytes, payload_len) != stored_crc) {
        tear("record CRC mismatch at offset " + std::to_string(at_));
        return false;
    }

    payload = bytes;
    len = static_cast<std::size_t>(payload_len);
    at_ += kRecordFrameHeaderBytes + payload_len;
    return true;
}

// -------------------------------------------------------- file frames

namespace {

constexpr std::size_t kFileFrameHeaderBytes = 4 + 4 + 8 + 4;

} // namespace

std::vector<std::uint8_t>
encodeFileFrame(std::uint32_t magic, std::uint32_t version,
                const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> file;
    file.reserve(kFileFrameHeaderBytes + payload.size());
    putLe(file, magic);
    putLe(file, version);
    putLe(file, static_cast<std::uint64_t>(payload.size()));
    putLe(file, crc32(payload.data(), payload.size()));
    file.insert(file.end(), payload.begin(), payload.end());
    return file;
}

SimStatus
decodeFileFrame(const std::vector<std::uint8_t> &file,
                std::uint32_t magic, std::uint32_t version,
                std::vector<std::uint8_t> &payload,
                const std::string &what)
{
    payload.clear();
    const auto corrupt = [&](const std::string &why) {
        return SimStatus::failure(SimErrc::Corrupt, what + ": " + why);
    };
    if (file.size() < kFileFrameHeaderBytes)
        return corrupt("short header (" + std::to_string(file.size()) +
                       " of " + std::to_string(kFileFrameHeaderBytes) +
                       " bytes)");
    if (getLe<std::uint32_t>(file.data(), 0) != magic)
        return corrupt("bad magic (not a file of this type, or its "
                       "header is corrupt)");
    const std::uint32_t got_version =
        getLe<std::uint32_t>(file.data(), 4);
    if (got_version != version)
        return corrupt("version skew: file is v" +
                       std::to_string(got_version) +
                       ", this build reads v" +
                       std::to_string(version));
    const std::uint64_t len = getLe<std::uint64_t>(file.data(), 8);
    const std::uint32_t crc = getLe<std::uint32_t>(file.data(), 16);
    if (file.size() < kFileFrameHeaderBytes + len)
        return corrupt(
            "truncated payload (" +
            std::to_string(file.size() - kFileFrameHeaderBytes) +
            " of " + std::to_string(len) + " bytes)");
    if (file.size() > kFileFrameHeaderBytes + len)
        return corrupt("trailing bytes after the payload");
    const std::uint32_t got_crc =
        crc32(file.data() + kFileFrameHeaderBytes, len);
    if (got_crc != crc)
        return corrupt("payload CRC mismatch (stored " +
                       std::to_string(crc) + ", computed " +
                       std::to_string(got_crc) + ")");
    payload.assign(file.begin() + kFileFrameHeaderBytes, file.end());
    return SimStatus::success();
}

} // namespace unison
