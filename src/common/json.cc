#include "common/json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <exception>

#include "common/logging.hh"

namespace unison {
namespace json {

// ------------------------------------------------------------- Value

const char *
Value::kindName() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "bool";
      case Kind::Int:
      case Kind::UInt:
      case Kind::Double:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    return "?";
}

void
Value::wrongKind(const char *wanted) const
{
    throw Error(std::string("expected ") + wanted + ", got " +
                kindName());
}

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        wrongKind("bool");
    return bool_;
}

std::int64_t
Value::asInt() const
{
    switch (kind_) {
      case Kind::Int:
        return int_;
      case Kind::UInt:
        if (uint_ > static_cast<std::uint64_t>(INT64_MAX))
            throw Error("number does not fit a signed 64-bit integer");
        return static_cast<std::int64_t>(uint_);
      default:
        wrongKind("integer");
    }
}

std::uint64_t
Value::asUint() const
{
    switch (kind_) {
      case Kind::UInt:
        return uint_;
      case Kind::Int:
        if (int_ < 0)
            throw Error("expected a non-negative integer, got " +
                        std::to_string(int_));
        return static_cast<std::uint64_t>(int_);
      default:
        wrongKind("non-negative integer");
    }
}

double
Value::asDouble() const
{
    switch (kind_) {
      case Kind::Double:
        return double_;
      case Kind::Int:
        return static_cast<double>(int_);
      case Kind::UInt:
        return static_cast<double>(uint_);
      default:
        wrongKind("number");
    }
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        wrongKind("string");
    return string_;
}

const Array &
Value::asArray() const
{
    if (kind_ != Kind::Array)
        wrongKind("array");
    return array_;
}

const Object &
Value::asObject() const
{
    if (kind_ != Kind::Object)
        wrongKind("object");
    return object_;
}

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : asObject())
        if (k == key)
            return &v;
    return nullptr;
}

void
Value::set(const std::string &key, Value v)
{
    if (kind_ == Kind::Null && object_.empty())
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        wrongKind("object");
    if (find(key) != nullptr)
        throw Error("duplicate key '" + key + "'");
    object_.emplace_back(key, std::move(v));
}

// ------------------------------------------------------------ parser

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw Error("JSON parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(col) + ": " + msg);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p, ++pos_)
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal (expected '") + word +
                     "')");
    }

    Value
    value()
    {
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return Value(string());
          case 't':
            literal("true");
            return Value(true);
          case 'f':
            literal("false");
            return Value(false);
          case 'n':
            literal("null");
            return Value();
          default:
            return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Value out{Object{}};
        if (consume('}'))
            return out;
        while (true) {
            if (peek() != '"')
                fail("expected a string key");
            std::string key = string();
            expect(':');
            Value v = value();
            try {
                out.set(key, std::move(v));
            } catch (const Error &e) {
                fail(e.what());
            }
            if (consume('}'))
                return out;
            expect(',');
        }
    }

    Value
    array()
    {
        expect('[');
        Array out;
        if (consume(']'))
            return Value(std::move(out));
        while (true) {
            out.push_back(value());
            if (consume(']'))
                return Value(std::move(out));
            expect(',');
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_++]);
            if (c == '"')
                return out;
            if (c < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size())
                        fail("truncated \\u escape");
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // out of scope for this schema: names are ASCII).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Value
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        if (integral) {
            if (*first == '-') {
                std::int64_t v = 0;
                const auto r = std::from_chars(first, last, v);
                if (r.ec == std::errc() && r.ptr == last)
                    return Value(v);
            } else {
                std::uint64_t v = 0;
                const auto r = std::from_chars(first, last, v);
                if (r.ec == std::errc() && r.ptr == last)
                    return Value(v);
            }
            // fall through on overflow: keep it as a double
        }
        double v = 0.0;
        const auto r = std::from_chars(first, last, v);
        if (r.ec != std::errc() || r.ptr != last)
            fail("malformed number");
        return Value(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).document();
}

// ------------------------------------------------------------ writer

namespace {

void
writeString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
writeDouble(std::string &out, double v)
{
    if (!std::isfinite(v))
        throw Error("cannot serialize a non-finite number");
    char buf[40];
    // Shortest round-trip form: the value parses back bit-exactly,
    // which is what makes spec/result round trips lossless.
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, r.ptr);
}

void
writeValueCompact(std::string &out, const Value &v)
{
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        return;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case Value::Kind::Int:
        out += std::to_string(v.asInt());
        return;
      case Value::Kind::UInt:
        out += std::to_string(v.asUint());
        return;
      case Value::Kind::Double:
        writeDouble(out, v.asDouble());
        return;
      case Value::Kind::String:
        writeString(out, v.asString());
        return;
      case Value::Kind::Array: {
        const Array &a = v.asArray();
        out.push_back('[');
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            writeValueCompact(out, a[i]);
        }
        out.push_back(']');
        return;
      }
      case Value::Kind::Object: {
        const Object &o = v.asObject();
        out.push_back('{');
        for (std::size_t i = 0; i < o.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            writeString(out, o[i].first);
            out.push_back(':');
            writeValueCompact(out, o[i].second);
        }
        out.push_back('}');
        return;
      }
    }
}

void
writeValue(std::string &out, const Value &v, int indent)
{
    const std::string pad(2 * static_cast<std::size_t>(indent), ' ');
    const std::string inner(2 * static_cast<std::size_t>(indent + 1),
                            ' ');
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        return;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case Value::Kind::Int:
        out += std::to_string(v.asInt());
        return;
      case Value::Kind::UInt:
        out += std::to_string(v.asUint());
        return;
      case Value::Kind::Double:
        writeDouble(out, v.asDouble());
        return;
      case Value::Kind::String:
        writeString(out, v.asString());
        return;
      case Value::Kind::Array: {
        const Array &a = v.asArray();
        if (a.empty()) {
            out += "[]";
            return;
        }
        out += "[\n";
        for (std::size_t i = 0; i < a.size(); ++i) {
            out += inner;
            writeValue(out, a[i], indent + 1);
            if (i + 1 < a.size())
                out.push_back(',');
            out.push_back('\n');
        }
        out += pad;
        out.push_back(']');
        return;
      }
      case Value::Kind::Object: {
        const Object &o = v.asObject();
        if (o.empty()) {
            out += "{}";
            return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < o.size(); ++i) {
            out += inner;
            writeString(out, o[i].first);
            out += ": ";
            writeValue(out, o[i].second, indent + 1);
            if (i + 1 < o.size())
                out.push_back(',');
            out.push_back('\n');
        }
        out += pad;
        out.push_back('}');
        return;
      }
    }
}

} // namespace

std::string
write(const Value &value)
{
    std::string out;
    writeValue(out, value, 0);
    out.push_back('\n');
    return out;
}

std::string
writeCompact(const Value &value)
{
    std::string out;
    writeValueCompact(out, value);
    return out;
}

// ------------------------------------------------------ ObjectReader

ObjectReader::ObjectReader(const Value &value, std::string what)
    : object_(value.asObject()), what_(std::move(what))
{
}

ObjectReader::~ObjectReader() noexcept(false)
{
    // Enforce the unknown-key check even when the caller forgets
    // finish() -- but never throw over an in-flight exception.
    if (std::uncaught_exceptions() == 0)
        finish();
}

const Value &
ObjectReader::req(const std::string &key)
{
    const Value *v = opt(key);
    if (v == nullptr)
        throw Error(what_ + ": missing required key '" + key + "'");
    return *v;
}

const Value *
ObjectReader::opt(const std::string &key)
{
    consumed_.push_back(key);
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

void
ObjectReader::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (const auto &[k, v] : object_) {
        if (std::find(consumed_.begin(), consumed_.end(), k) !=
            consumed_.end())
            continue;
        throw Error(what_ + ": unknown key '" + k +
                    "' (accepted keys: " + commaJoin(consumed_) + ")");
    }
}

} // namespace json
} // namespace unison
