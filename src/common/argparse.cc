#include "common/argparse.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace unison {

ArgParser::ArgParser(std::string description)
    : description_(std::move(description))
{
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    UNISON_ASSERT(find(name) == nullptr, "duplicate option --", name);
    options_.push_back(ArgOption{name, help, def, false, false});
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    UNISON_ASSERT(find(name) == nullptr, "duplicate flag --", name);
    options_.push_back(ArgOption{name, help, "0", true, false});
}

const ArgOption *
ArgParser::find(const std::string &name) const
{
    for (const auto &opt : options_) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

ArgOption *
ArgParser::find(const std::string &name)
{
    return const_cast<ArgOption *>(
        static_cast<const ArgParser *>(this)->find(name));
}

void
ArgParser::printHelpAndExit(const char *prog) const
{
    std::printf("%s\n\nusage: %s [options]\n\noptions:\n",
                description_.c_str(), prog);
    for (const auto &opt : options_) {
        if (opt.isFlag) {
            std::printf("  --%-24s %s\n", opt.name.c_str(),
                        opt.help.c_str());
        } else {
            std::string left = opt.name + "=<v>";
            std::printf("  --%-24s %s (default: %s)\n", left.c_str(),
                        opt.help.c_str(), opt.value.c_str());
        }
    }
    std::printf("  --%-24s %s\n", "help", "show this message");
    std::exit(0);
}

void
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            printHelpAndExit(argv[0]);
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        }

        ArgOption *opt = find(name);
        if (opt == nullptr)
            fatal("unknown option --", name, " (try --help)");

        if (opt->isFlag) {
            if (have_value)
                fatal("flag --", name, " does not take a value");
            // count+char assign: `opt->value = "1"` trips a GCC 12
            // -Wrestrict false positive when inlined here.
            opt->value.assign(1, '1');
        } else {
            if (!have_value) {
                if (i + 1 >= argc)
                    fatal("option --", name, " requires a value");
                value = argv[++i];
            }
            opt->value = value;
        }
        opt->seen = true;
    }
}

std::string
ArgParser::getString(const std::string &name) const
{
    const ArgOption *opt = find(name);
    UNISON_ASSERT(opt != nullptr, "unregistered option --", name);
    return opt->value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const std::string v = getString(name);
    char *end = nullptr;
    errno = 0;
    const std::int64_t result = std::strtoll(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        fatal("option --", name, ": '", v, "' is not an integer");
    if (errno == ERANGE)
        fatal("option --", name, ": '", v,
              "' overflows a 64-bit integer");
    return result;
}

std::uint64_t
ArgParser::getUint(const std::string &name) const
{
    const std::int64_t v = getInt(name);
    if (v < 0)
        fatal("option --", name, " must be non-negative");
    return static_cast<std::uint64_t>(v);
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string v = getString(name);
    char *end = nullptr;
    errno = 0;
    const double result = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("option --", name, ": '", v, "' is not a number");
    if (errno == ERANGE)
        fatal("option --", name, ": '", v,
              "' is outside the double range");
    return result;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return getString(name) == "1";
}

bool
ArgParser::wasProvided(const std::string &name) const
{
    const ArgOption *opt = find(name);
    UNISON_ASSERT(opt != nullptr, "unregistered option --", name);
    return opt->seen;
}

std::uint64_t
parseSize(const std::string &text)
{
    if (text.empty())
        fatal("empty size string");
    char *end = nullptr;
    const double base = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || std::isnan(base) || base < 0)
        fatal("malformed size '", text, "'");
    std::uint64_t mult = 1;
    switch (*end) {
      case '\0':
        break;
      case 'k': case 'K':
        mult = 1ull << 10;
        ++end;
        break;
      case 'm': case 'M':
        mult = 1ull << 20;
        ++end;
        break;
      case 'g': case 'G':
        mult = 1ull << 30;
        ++end;
        break;
      case 't': case 'T':
        mult = 1ull << 40;
        ++end;
        break;
      default:
        fatal("malformed size suffix in '", text, "'");
    }
    if (*end == 'B' || *end == 'b')
        ++end;
    if (*end != '\0')
        fatal("trailing characters in size '", text, "'");
    const double bytes = base * static_cast<double>(mult);
    if (bytes >= 18446744073709551616.0) // 2^64: silently wraps below
        fatal("size '", text, "' overflows a 64-bit byte count");
    return static_cast<std::uint64_t>(bytes);
}

std::string
formatSize(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1ull << 30) && bytes % (1ull << 30) == 0)
        std::snprintf(buf, sizeof(buf), "%lluGB",
                      static_cast<unsigned long long>(bytes >> 30));
    else if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0)
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

} // namespace unison
