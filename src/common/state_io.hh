/**
 * @file
 * Flat byte-stream (de)serialization for warm-state checkpoints.
 *
 * A checkpoint is a snapshot of every piece of *simulation* state that
 * the measurement phase's behaviour depends on -- cache tag words, LRU
 * stamps, predictor tables, RNG streams, DRAM bank timing, scheduler
 * clocks -- so a run forked from it is byte-identical to one that
 * re-simulated the warmup. Statistics are never serialized: the warm
 * boundary resets them anyway.
 *
 * The format is deliberately dumb: raw little-endian PODs in component
 * order, vectors prefixed by their element count. On its own it has no
 * header or checksum -- when a snapshot goes to disk it travels inside
 * the framed container of common/file_io.hh (magic/version/length/CRC),
 * which catches truncation and bit-flips before any byte reaches a
 * reader here. StateReader restores vectors *in place* (components are
 * sized by configuration before loading, and keeping the buffers'
 * addresses stable matters because the timing loop holds raw pointers
 * into some of them -- System's scheduler keys).
 *
 * Failure contract: a reader never fatals and never leaves stale bytes
 * behind. Any underrun, shape mismatch or trailing-bytes condition
 * makes the reader *sticky-failed*: the offending and all subsequent
 * reads zero-fill their destinations, and status()/throwIfFailed()
 * report the first failure. Callers check the status after the last
 * read and discard the half-loaded component tree (the resume paths
 * rebuild the System and fall back to a cold warm-up run).
 */

#ifndef UNISON_COMMON_STATE_IO_HH
#define UNISON_COMMON_STATE_IO_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hh"

namespace unison {

/** Append-only writer producing a checkpoint byte buffer. */
class StateWriter
{
  public:
    template <typename T>
    void
    pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        const std::size_t at = bytes_.size();
        bytes_.resize(at + sizeof(T));
        std::memcpy(bytes_.data() + at, &value, sizeof(T));
    }

    template <typename T>
    void
    podVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        pod(static_cast<std::uint64_t>(v.size()));
        const std::size_t at = bytes_.size();
        bytes_.resize(at + v.size() * sizeof(T));
        if (!v.empty())
            std::memcpy(bytes_.data() + at, v.data(),
                        v.size() * sizeof(T));
    }

    std::vector<std::uint8_t> take() && { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Sequential reader over a checkpoint buffer. Sticky-failing: the
 * first underrun/mismatch records a status, and from then on every
 * read zero-fills its destination instead of consuming bytes, so a
 * load over a damaged buffer terminates quickly and predictably.
 * Check ok()/status() (or throwIfFailed()) after the final read.
 */
class StateReader
{
  public:
    explicit StateReader(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    template <typename T>
    void
    pod(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        if (failed_ || at_ + sizeof(T) > bytes_.size()) {
            recordFailure("checkpoint underrun: need " +
                          std::to_string(sizeof(T)) + " bytes at " +
                          std::to_string(at_) + " of " +
                          std::to_string(bytes_.size()));
            // Zero-fill without memset: checkpointed structs may have
            // default member initializers (-Wclass-memaccess), and
            // plain assignment would reject array fields.
            if constexpr (std::is_array_v<T>)
                std::fill(std::begin(value), std::end(value),
                          std::remove_extent_t<T>{});
            else
                value = T{};
            return;
        }
        std::memcpy(&value, bytes_.data() + at_, sizeof(T));
        at_ += sizeof(T);
    }

    /**
     * Restore a vector whose size is already correct (the component
     * was configured identically before loading). In-place fill, no
     * reallocation: pointers into the vector stay valid -- also on
     * failure, where the vector is zero-filled at its current size.
     */
    template <typename T>
    void
    podVectorExact(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        std::uint64_t n = 0;
        pod(n);
        if (!failed_ && n != v.size())
            recordFailure("checkpoint shape mismatch: saved vector "
                          "has " +
                          std::to_string(n) +
                          " elements, component expects " +
                          std::to_string(v.size()));
        if (!failed_ && at_ + n * sizeof(T) > bytes_.size())
            recordFailure("checkpoint underrun: need " +
                          std::to_string(n * sizeof(T)) + " bytes at " +
                          std::to_string(at_) + " of " +
                          std::to_string(bytes_.size()));
        if (failed_) {
            // Value-init (not memset): some checkpointed structs have
            // default member initializers, making raw byte-clearing a
            // -Wclass-memaccess complaint.
            std::fill(v.begin(), v.end(), T{});
            return;
        }
        if (n != 0)
            std::memcpy(v.data(), bytes_.data() + at_, n * sizeof(T));
        at_ += n * sizeof(T);
    }

    /** Restore a vector whose saved size is authoritative (hash-map
     *  style state with data-dependent size). May reallocate. The
     *  bounds check runs *before* the resize, so a corrupt element
     *  count cannot trigger a huge allocation. */
    template <typename T>
    void
    podVectorResize(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        std::uint64_t n = 0;
        pod(n);
        if (!failed_ && at_ + n * sizeof(T) > bytes_.size())
            recordFailure("checkpoint underrun: need " +
                          std::to_string(n * sizeof(T)) + " bytes at " +
                          std::to_string(at_) + " of " +
                          std::to_string(bytes_.size()));
        if (failed_) {
            v.clear();
            return;
        }
        v.resize(n);
        if (n != 0)
            std::memcpy(v.data(), bytes_.data() + at_, n * sizeof(T));
        at_ += n * sizeof(T);
    }

    /** Require the whole buffer consumed (catches component lists
     *  that drifted between save and load, and payload tails a
     *  corruption glued on). */
    void
    expectEnd()
    {
        if (!failed_ && at_ != bytes_.size())
            recordFailure("checkpoint has " +
                          std::to_string(bytes_.size() - at_) +
                          " trailing bytes: save/load component lists "
                          "differ");
    }

    bool ok() const { return !failed_; }

    /** The first recorded failure (Ok status while ok()). */
    SimStatus
    status() const
    {
        if (!failed_)
            return SimStatus::success();
        return SimStatus::failure(SimErrc::Corrupt, error_);
    }

    /** Throw SimError(Corrupt) carrying the first failure, if any. */
    void
    throwIfFailed() const
    {
        status().throwIfFailed();
    }

  private:
    void
    recordFailure(const std::string &why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why;
        }
    }

    const std::vector<std::uint8_t> &bytes_;
    std::size_t at_ = 0;
    bool failed_ = false;
    std::string error_;
};

} // namespace unison

#endif // UNISON_COMMON_STATE_IO_HH
