/**
 * @file
 * Flat byte-stream (de)serialization for warm-state checkpoints.
 *
 * A checkpoint is a snapshot of every piece of *simulation* state that
 * the measurement phase's behaviour depends on -- cache tag words, LRU
 * stamps, predictor tables, RNG streams, DRAM bank timing, scheduler
 * clocks -- so a run forked from it is byte-identical to one that
 * re-simulated the warmup. Statistics are never serialized: the warm
 * boundary resets them anyway.
 *
 * The format is deliberately dumb: raw little-endian PODs in component
 * order, vectors prefixed by their element count. It is an in-memory,
 * same-build, same-process format (the runner shares checkpoints
 * between sweep points of one invocation); it is not a stable on-disk
 * interchange format and has no versioning. StateReader restores
 * vectors *in place* and fatals on any size mismatch -- components are
 * sized by configuration before loading, and keeping the buffers'
 * addresses stable matters because the timing loop holds raw pointers
 * into some of them (System's scheduler keys).
 */

#ifndef UNISON_COMMON_STATE_IO_HH
#define UNISON_COMMON_STATE_IO_HH

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace unison {

/** Append-only writer producing a checkpoint byte buffer. */
class StateWriter
{
  public:
    template <typename T>
    void
    pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        const std::size_t at = bytes_.size();
        bytes_.resize(at + sizeof(T));
        std::memcpy(bytes_.data() + at, &value, sizeof(T));
    }

    template <typename T>
    void
    podVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        pod(static_cast<std::uint64_t>(v.size()));
        const std::size_t at = bytes_.size();
        bytes_.resize(at + v.size() * sizeof(T));
        if (!v.empty())
            std::memcpy(bytes_.data() + at, v.data(),
                        v.size() * sizeof(T));
    }

    std::vector<std::uint8_t> take() && { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Sequential reader over a checkpoint buffer; fatals on underrun,
 *  size mismatch, or trailing bytes left after expectEnd(). */
class StateReader
{
  public:
    explicit StateReader(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    template <typename T>
    void
    pod(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        if (at_ + sizeof(T) > bytes_.size())
            fatal("checkpoint underrun: need ", sizeof(T), " bytes at ",
                  at_, " of ", bytes_.size());
        std::memcpy(&value, bytes_.data() + at_, sizeof(T));
        at_ += sizeof(T);
    }

    /**
     * Restore a vector whose size is already correct (the component
     * was configured identically before loading). In-place fill, no
     * reallocation: pointers into the vector stay valid.
     */
    template <typename T>
    void
    podVectorExact(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        std::uint64_t n = 0;
        pod(n);
        if (n != v.size())
            fatal("checkpoint shape mismatch: saved vector has ", n,
                  " elements, component expects ", v.size());
        if (at_ + n * sizeof(T) > bytes_.size())
            fatal("checkpoint underrun: need ", n * sizeof(T),
                  " bytes at ", at_, " of ", bytes_.size());
        if (n != 0)
            std::memcpy(v.data(), bytes_.data() + at_, n * sizeof(T));
        at_ += n * sizeof(T);
    }

    /** Restore a vector whose saved size is authoritative (hash-map
     *  style state with data-dependent size). May reallocate. */
    template <typename T>
    void
    podVectorResize(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "checkpoint fields must be trivially copyable");
        std::uint64_t n = 0;
        pod(n);
        if (at_ + n * sizeof(T) > bytes_.size())
            fatal("checkpoint underrun: need ", n * sizeof(T),
                  " bytes at ", at_, " of ", bytes_.size());
        v.resize(n);
        if (n != 0)
            std::memcpy(v.data(), bytes_.data() + at_, n * sizeof(T));
        at_ += n * sizeof(T);
    }

    /** Assert the whole buffer was consumed (catches component lists
     *  that drifted between save and load). */
    void
    expectEnd() const
    {
        if (at_ != bytes_.size())
            fatal("checkpoint has ", bytes_.size() - at_,
                  " trailing bytes: save/load component lists differ");
    }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::size_t at_ = 0;
};

} // namespace unison

#endif // UNISON_COMMON_STATE_IO_HH
