/**
 * @file
 * The SimError taxonomy: classified, catchable failures for everything
 * that used to be a bare fatal()/abort()/unchecked-I/O exit.
 *
 * Three classes, each with its own process exit code so scripts and CI
 * can tell failure kinds apart without parsing messages:
 *
 *  - Usage (exit 2): the caller asked for something malformed --
 *    contradictory flags, a bad shard expression, --resume without
 *    --journal. Retrying without fixing the invocation cannot help.
 *  - Io (exit 3): the environment failed us -- unreadable spec file,
 *    full disk, a journal append that could not be made durable. The
 *    input may be fine; retrying after fixing the environment can.
 *  - Corrupt (exit 4): data failed its own integrity contract -- bad
 *    JSON, schema mismatch, CRC failure, truncated checkpoint,
 *    mismatched shard fingerprints. Retrying reproduces it; the file
 *    itself is the problem.
 *
 * Recoverable callers catch SimError and classify via code(); process
 * edges (main) catch it and exit with exitCodeFor(code()). fatal()
 * remains for unclassified configuration errors (exit 1) and panic()
 * for internal invariants (abort).
 *
 * structuredWarn() is the one-line machine-greppable warning format
 * the crash-safety paths emit when they degrade gracefully instead of
 * failing ("warn: [checkpoint-rejected] path=... reason=..."); CI
 * greps for the bracketed event tokens.
 */

#ifndef UNISON_COMMON_ERROR_HH
#define UNISON_COMMON_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace unison {

/** Failure class; the numeric value IS the process exit code. */
enum class SimErrc
{
    Ok = 0,
    Usage = 2,   //!< malformed invocation
    Io = 3,      //!< environment/filesystem failure
    Corrupt = 4, //!< data failed an integrity check
};

/** Exit code for a failure class (identity, kept as a function so the
 *  mapping is greppable and the enum values stay an implementation
 *  detail). */
int exitCodeFor(SimErrc code);

/** Short lowercase token for a failure class ("usage", "io",
 *  "corrupt-input"); used in messages and structured warnings. */
const char *simErrcName(SimErrc code);

/** A classified, catchable failure. */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrc code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {
    }

    SimErrc code() const { return code_; }

  private:
    SimErrc code_;
};

/** @name Throw helpers (stream-composed messages, like fatal()) */
/**@{*/
template <typename... Args>
[[noreturn]] void
throwUsage(Args &&...args)
{
    throw SimError(SimErrc::Usage,
                   detail::composeMessage(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
throwIo(Args &&...args)
{
    throw SimError(SimErrc::Io,
                   detail::composeMessage(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
throwCorrupt(Args &&...args)
{
    throw SimError(SimErrc::Corrupt,
                   detail::composeMessage(std::forward<Args>(args)...));
}
/**@}*/

/** Print "error: <msg>" and exit with the class's code. For contexts
 *  that cannot let an exception propagate (worker threads, C mains
 *  without a catch frame). */
[[noreturn]] void exitWith(SimErrc code, const std::string &msg);

/**
 * Lightweight status for APIs where failure is expected and handled
 * inline (file loads that fall back) rather than propagated as an
 * exception. ok() must be checked before trusting any output the call
 * produced.
 */
struct SimStatus
{
    SimErrc code = SimErrc::Ok;
    std::string message;

    bool ok() const { return code == SimErrc::Ok; }

    static SimStatus success() { return {}; }

    static SimStatus
    failure(SimErrc code, std::string message)
    {
        SimStatus s;
        s.code = code;
        s.message = std::move(message);
        return s;
    }

    /** Convert to an exception (no-op when ok). */
    void
    throwIfFailed() const
    {
        if (!ok())
            throw SimError(code, message);
    }
};

/**
 * One-line structured warning: "warn: [event] key=value key=value".
 * Values with spaces are single-quoted so the line stays splittable.
 * The crash-safety paths use it wherever they degrade gracefully, so
 * tests and CI can assert the *reason* for a fallback, not just that
 * one happened.
 */
void structuredWarn(
    const std::string &event,
    const std::vector<std::pair<std::string, std::string>> &fields);

} // namespace unison

#endif // UNISON_COMMON_ERROR_HH
