/**
 * @file
 * Dependency-free JSON: a small value type, a strict RFC 8259 parser
 * and a deterministic pretty-printer.
 *
 * Written for the experiment spec/result schema (sim/spec_json.hh), so
 * the priorities differ from a general-purpose library:
 *
 *  - *determinism*: objects preserve insertion order and the writer
 *    has exactly one rendering per value, so serialized specs and
 *    results can be byte-compared (sharded sweeps must merge to the
 *    same file an unsharded run writes);
 *  - *exactness*: integers keep 64-bit precision (signed and unsigned
 *    tracked separately) and doubles print in shortest round-trip form
 *    via std::to_chars, so spec -> JSON -> spec is lossless;
 *  - *strictness*: duplicate object keys and malformed input raise
 *    json::Error with a line/column; schema code layers unknown-key
 *    rejection on top (ObjectReader).
 *
 * Errors are exceptions (not fatal()) because callers differ: the CLI
 * prints them as user errors, tests assert on them.
 */

#ifndef UNISON_COMMON_JSON_HH
#define UNISON_COMMON_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace unison {
namespace json {

/** Any malformed-document or wrong-shape condition. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

class Value;

/** Insertion-ordered key/value list (deterministic serialization). */
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/** One JSON value. Numbers keep their parsed flavour (Int/UInt/Double)
 *  so 64-bit counters survive a round trip untouched. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,    //!< fits std::int64_t, was negative or int-typed
        UInt,   //!< fits std::uint64_t
        Double,
        String,
        Array,
        Object,
    };

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(std::uint64_t v) : kind_(Kind::UInt), uint_(v) {}
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::UInt), uint_(v) {}
    Value(double v) : kind_(Kind::Double), double_(v) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
    Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::UInt ||
               kind_ == Kind::Double;
    }

    /** Typed accessors; throw Error on a kind mismatch. Numeric
     *  accessors convert between the three number flavours when the
     *  value is exactly representable. */
    bool asBool() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member lookup; nullptr when absent (object kind only). */
    const Value *find(const std::string &key) const;

    /** Append a member (object kind); throws Error on duplicate key. */
    void set(const std::string &key, Value v);

  private:
    [[noreturn]] void wrongKind(const char *wanted) const;
    const char *kindName() const;

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/** Parse a complete document (trailing garbage is an error). */
Value parse(const std::string &text);

/** Deterministic pretty-printed rendering, trailing newline included. */
std::string write(const Value &value);

/** Deterministic single-line rendering (no spaces, no trailing
 *  newline): the framing-friendly form the serve protocol puts one
 *  message per line with. Parses back to the same value as write(). */
std::string writeCompact(const Value &value);

/**
 * Strict schema helper: reads members of one object and, at the end of
 * scope (or finish()), rejects any member the schema never asked for
 * with an Error naming the unknown and the accepted keys. This is the
 * unknown-key rejection every spec/result parser uses: a typo'd knob
 * fails loudly instead of silently running defaults.
 */
class ObjectReader
{
  public:
    /** @param what  schema location for error messages ("spec",
     *               "design 'unison'", ...). */
    ObjectReader(const Value &value, std::string what);
    ~ObjectReader() noexcept(false);

    /** Required member; Error when missing. */
    const Value &req(const std::string &key);

    /** Optional member; nullptr when absent. */
    const Value *opt(const std::string &key);

    /** True when the member is present (and marks it consumed). */
    bool has(const std::string &key) { return opt(key) != nullptr; }

    /** Run the unknown-key check now (idempotent). */
    void finish();

  private:
    const Object &object_;
    std::string what_;
    std::vector<std::string> consumed_;
    bool finished_ = false;
};

} // namespace json
} // namespace unison

#endif // UNISON_COMMON_JSON_HH
