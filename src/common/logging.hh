/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn()
 * and inform() for non-fatal notices.
 */

#ifndef UNISON_COMMON_LOGGING_HH
#define UNISON_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace unison {

namespace detail {

/** Stream-compose a message from variadic parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void exitWithMessage(const char *kind, const std::string &msg,
                                  bool abort_process);

void printMessage(const char *kind, const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * must never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::exitWithMessage(
        "panic", detail::composeMessage(std::forward<Args>(args)...), true);
}

/**
 * Report an unrecoverable user/configuration error and exit(1). Use for
 * conditions that are the caller's fault (bad parameters, impossible
 * geometry), not simulator bugs.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::exitWithMessage(
        "fatal", detail::composeMessage(std::forward<Args>(args)...), false);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::printMessage(
        "warn", detail::composeMessage(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::printMessage(
        "info", detail::composeMessage(std::forward<Args>(args)...));
}

/** ", "-join for the known-values listings of error messages. */
inline std::string
commaJoin(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ", ";
        out += item;
    }
    return out;
}

/**
 * Panic-if-false assertion that stays enabled in release builds; used to
 * guard protocol invariants in the cache models.
 */
#define UNISON_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::unison::panic("assertion '", #cond, "' failed at ", __FILE__,  \
                            ":", __LINE__, ": ", ##__VA_ARGS__);             \
        }                                                                    \
    } while (0)

} // namespace unison

#endif // UNISON_COMMON_LOGGING_HH
