/**
 * @file
 * Exact division/modulo by a runtime-invariant 64-bit divisor.
 *
 * The address mappings on the simulator's hot path divide by values
 * fixed at construction (channels per pool, banks per channel, sets
 * per cache, blocks per page) that the compiler cannot see as
 * constants, so every access paid one to six hardware 64-bit divides
 * (~20-30 cycles of dependent latency each). FastDiv64 precomputes a
 * 64-bit floor reciprocal once and answers each division with one
 * multiply-high, one shift and a bounded fix-up -- or a plain shift
 * for power-of-two divisors.
 *
 * Exactness: with s = floor(log2 d) and r = floor(2^(64+s) / d), the
 * estimate q = floor(n * r / 2^(64+s)) satisfies
 * floor(n/d) - 1 <= q <= floor(n/d) for every n (the dropped
 * fractional part of the reciprocal costs at most n/2^64 < 1
 * quotient unit), so at most one correction step is ever taken.
 */

#ifndef UNISON_COMMON_FASTDIV_HH
#define UNISON_COMMON_FASTDIV_HH

#include <bit>
#include <cstdint>

namespace unison {

class FastDiv64
{
  public:
    /** Uninitialized (divide by 1); real divisors via init()/ctor. */
    FastDiv64() { init(1); }
    explicit FastDiv64(std::uint64_t d) { init(d); }

    void
    init(std::uint64_t d)
    {
        d_ = d;
        if (std::has_single_bit(d)) {
            shift_ = std::countr_zero(d);
            recip_ = 0; // marks the shift path
            return;
        }
        const unsigned s = 63 - std::countl_zero(d); // floor(log2 d)
        shift_ = static_cast<unsigned>(s);
        recip_ = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(1) << (64 + s)) / d);
    }

    std::uint64_t divisor() const { return d_; }

    std::uint64_t
    div(std::uint64_t n) const
    {
        if (recip_ == 0)
            return n >> shift_;
        const std::uint64_t hi = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(n) * recip_) >> 64);
        std::uint64_t q = hi >> shift_;
        // Underestimate by at most one: a single compare fixes it.
        if (n - q * d_ >= d_)
            ++q;
        return q;
    }

    std::uint64_t mod(std::uint64_t n) const { return n - div(n) * d_; }

    /** Quotient and remainder from one reciprocal multiply. */
    void
    divMod(std::uint64_t n, std::uint64_t &q, std::uint64_t &r) const
    {
        q = div(n);
        r = n - q * d_;
    }

  private:
    std::uint64_t d_ = 1;
    std::uint64_t recip_ = 0; //!< 0: power-of-two divisor, use shift_
    unsigned shift_ = 0;
};

} // namespace unison

#endif // UNISON_COMMON_FASTDIV_HH
