#include "common/file_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc_frame.hh"
#include "common/fault_injection.hh"

namespace unison {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

/** One injector-mediated write of `len` bytes to an open fd, starting
 *  at absolute file offset `begin`. Returns a status; executes kill
 *  decisions (the SIGKILL-faithful _exit). */
SimStatus
injectedWrite(int fd, const std::string &path, std::uint64_t begin,
              const void *data, std::size_t len)
{
    auto &injector = FaultInjector::instance();
    injector.armFromEnv();
    const auto decision = injector.onWrite(path, begin, len);

    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::vector<std::uint8_t> mutated;
    if (decision.corruptAt != SIZE_MAX) {
        mutated.assign(bytes, bytes + len);
        mutated[decision.corruptAt] ^= 0xFF;
        bytes = mutated.data();
    }

    std::size_t put = 0;
    while (put < decision.persist) {
        const ssize_t n =
            ::write(fd, bytes + put, decision.persist - put);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return SimStatus::failure(
                SimErrc::Io,
                "write to " + path + " failed: " + errnoText());
        }
        put += static_cast<std::size_t>(n);
    }

    if (decision.kill) {
        // Simulated SIGKILL at an exact byte: flush what the kernel
        // already has (the partial bytes are the point) and die
        // without running any cleanup.
        ::fsync(fd);
        ::_exit(137);
    }
    if (decision.fail)
        return SimStatus::failure(SimErrc::Io,
                                  "write to " + path +
                                      " failed: injected I/O fault");
    return SimStatus::success();
}

SimStatus
writeAll(const std::string &path, const void *data, std::size_t len,
         bool append)
{
    const int flags =
        O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0)
        return SimStatus::failure(SimErrc::Io, "cannot open " + path +
                                                   " for writing: " +
                                                   errnoText());
    // The write's absolute start offset: the existing size for an
    // append, 0 after O_TRUNC (the injector's offsets are file
    // positions, not per-stream counters).
    const off_t at = ::lseek(fd, 0, SEEK_END);
    const std::uint64_t begin =
        at > 0 ? static_cast<std::uint64_t>(at) : 0;
    SimStatus status = injectedWrite(fd, path, begin, data, len);
    if (status.ok() && ::fsync(fd) != 0)
        status = SimStatus::failure(SimErrc::Io, "fsync of " + path +
                                                     " failed: " +
                                                     errnoText());
    ::close(fd);
    return status;
}

} // namespace

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t
fileSizeOrZero(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

SimStatus
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return SimStatus::failure(SimErrc::Io, "cannot read " + path +
                                                   ": " + errnoText());
    auto &injector = FaultInjector::instance();
    injector.armFromEnv();

    std::uint8_t buf[1 << 16];
    std::uint64_t at = 0;
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string msg = errnoText();
            ::close(fd);
            out.clear();
            return SimStatus::failure(
                SimErrc::Io, "read of " + path + " failed: " + msg);
        }
        if (n == 0)
            break;
        const auto decision =
            injector.onRead(path, at, static_cast<std::size_t>(n));
        at += static_cast<std::uint64_t>(n);
        if (decision.corruptAt != SIZE_MAX)
            buf[decision.corruptAt] ^= 0xFF;
        if (decision.fail) {
            ::close(fd);
            out.clear();
            return SimStatus::failure(SimErrc::Io,
                                      "read of " + path +
                                          " failed: injected I/O "
                                          "fault");
        }
        out.insert(out.end(), buf, buf + n);
    }
    ::close(fd);
    return SimStatus::success();
}

SimStatus
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    return writeAll(path, bytes.data(), bytes.size(), /*append=*/false);
}

SimStatus
appendFileBytes(const std::string &path, const void *data,
                std::size_t len)
{
    return writeAll(path, data, len, /*append=*/true);
}

// ------------------------------------------------------ framed files

SimStatus
writeFramedFile(const std::string &path, std::uint32_t magic,
                std::uint32_t version,
                const std::vector<std::uint8_t> &payload)
{
    return writeFileBytes(path, encodeFileFrame(magic, version, payload));
}

SimStatus
readFramedFile(const std::string &path, std::uint32_t magic,
               std::uint32_t version,
               std::vector<std::uint8_t> &payload)
{
    payload.clear();
    std::vector<std::uint8_t> file;
    const SimStatus read = readFileBytes(path, file);
    if (!read.ok())
        return read;
    return decodeFileFrame(file, magic, version, payload, path);
}

} // namespace unison
