/**
 * @file
 * Status-returning, fault-injectable file I/O for the durability
 * layer (result journal, checkpoint files, result output). Every byte
 * moved here passes through the FaultInjector seam, and every
 * function reports failure as a SimStatus instead of fatal()ing --
 * the callers decide between graceful degradation (a checkpoint that
 * will not load falls back to a cold run) and classified exit (a
 * journal that cannot be appended ends the run with the Io code).
 *
 * Also home of the framed-file container every binary durability file
 * uses: a `magic / version / payload-length / payload-CRC32` header
 * ahead of an opaque payload, so truncation, bit-flips and version
 * skew are *detected and classified* before any payload byte is
 * trusted (readFramedFile never returns a partially-validated
 * payload).
 */

#ifndef UNISON_COMMON_FILE_IO_HH
#define UNISON_COMMON_FILE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"

namespace unison {

/** True when `path` exists (any type). */
bool fileExists(const std::string &path);

/** Size in bytes, or 0 when the file is missing. */
std::uint64_t fileSizeOrZero(const std::string &path);

/** Read the whole file. A missing file is an Io failure; the caller
 *  that treats "missing" as "empty" checks fileExists() first. */
SimStatus readFileBytes(const std::string &path,
                        std::vector<std::uint8_t> &out);

/** Create-or-truncate write of the whole buffer, flushed and fsynced.
 */
SimStatus writeFileBytes(const std::string &path,
                         const std::vector<std::uint8_t> &bytes);

/** Append to the end of the file (creating it), flushed and fsynced
 *  before returning success -- the journal's per-record durability
 *  barrier. */
SimStatus appendFileBytes(const std::string &path, const void *data,
                          std::size_t len);

/** @name Framed container
 * Layout (little-endian, matching the raw-POD state format):
 *
 *     u32 magic      file-type tag (caller-chosen constant)
 *     u32 version    format version of the payload
 *     u64 payloadLen
 *     u32 payloadCrc CRC-32 of the payload bytes
 *     u8  payload[payloadLen]
 *
 * readFramedFile classifies each way the file can be wrong (short
 * header, bad magic, version skew, truncated payload, CRC mismatch,
 * trailing bytes) in its failure message, and only writes `payload`
 * on full success.
 */
/**@{*/
SimStatus writeFramedFile(const std::string &path, std::uint32_t magic,
                          std::uint32_t version,
                          const std::vector<std::uint8_t> &payload);
SimStatus readFramedFile(const std::string &path, std::uint32_t magic,
                         std::uint32_t version,
                         std::vector<std::uint8_t> &payload);
/**@}*/

} // namespace unison

#endif // UNISON_COMMON_FILE_IO_HH
