/**
 * @file
 * Residue-arithmetic division by Mersenne-form constants (2^n - 1).
 *
 * Embedding page tags in the stacked DRAM makes Unison Cache pages a
 * non-power-of-two number of blocks (15 or 31, Sec. III-A.7). The paper
 * notes that the required modulo/divide "can be computed with several
 * adders using residue arithmetic" in ~2 cycles. This class implements
 * exactly that adder-tree algorithm (digit-sum in base 2^n) so that the
 * simulated hardware path is faithful, and so tests can check it against
 * plain integer division.
 */

#ifndef UNISON_COMMON_RESIDUE_HH
#define UNISON_COMMON_RESIDUE_HH

#include <cstdint>

#include "common/logging.hh"

namespace unison {

/**
 * Divider/modulo unit for a constant divisor of the form 2^n - 1.
 *
 * The hardware algorithm: write the dividend in base 2^n digits; the sum
 * of the digits is congruent to the dividend mod (2^n - 1). Iterating
 * the digit-sum until it fits in n bits yields the residue with a small
 * adder tree; the quotient follows from one multiply-free reconstruction
 * pass. The paper charges 2 CPU cycles for this unit and overlaps it
 * with the last-level SRAM cache access.
 */
class MersenneDivider
{
  public:
    /** Construct a divider for 2^bits - 1 (bits in [2, 31]). */
    explicit MersenneDivider(std::uint32_t bits)
        : bits_(bits), divisor_((1ull << bits) - 1)
    {
        UNISON_ASSERT(bits >= 2 && bits <= 31,
                      "Mersenne divider bits out of range: ", bits);
    }

    /** The divisor 2^n - 1. */
    std::uint64_t divisor() const { return divisor_; }

    /** Latency in CPU cycles the paper charges for this unit. */
    static constexpr std::uint32_t kLatencyCycles = 2;

    /**
     * Residue of v mod (2^n - 1) computed with the digit-sum adder tree
     * (no division instruction).
     */
    std::uint64_t
    modulo(std::uint64_t v) const
    {
        // Repeated base-2^n digit sum. Each pass is an adder tree in
        // hardware; at most 4 passes are needed for 64-bit inputs.
        std::uint64_t x = v;
        while (x > divisor_) {
            std::uint64_t sum = 0;
            while (x != 0) {
                sum += x & divisor_;
                x >>= bits_;
            }
            x = sum;
        }
        // The digit sum maps multiples of the divisor to the divisor
        // itself rather than zero; fold that case.
        return (x == divisor_) ? 0 : x;
    }

    /**
     * Quotient v / (2^n - 1), reconstructed from shifts and adds using
     * the identity q = (v - r) / (2^n - 1) with (2^n - 1)^-1 realized
     * as the geometric series v/2^n + v/2^2n + ...
     */
    std::uint64_t
    divide(std::uint64_t v) const
    {
        std::uint64_t r = modulo(v);
        std::uint64_t numerator = v - r;
        // numerator is an exact multiple of 2^n - 1. Using
        // m / (2^n - 1) = sum_{k>=1} m / 2^(n*k) computed on the exact
        // multiple with carry correction: iteratively accumulate shifts.
        std::uint64_t q = 0;
        std::uint64_t x = numerator;
        while (x != 0) {
            x >>= bits_;
            q += x;
        }
        // The plain shift-sum undercounts when digit sums carry across
        // the base-2^n boundary; correct with at most two fix-up steps.
        while ((q + 1) * divisor_ <= v)
            ++q;
        while (q * divisor_ > v)
            --q;
        return q;
    }

    /** Both quotient and remainder. */
    void
    divMod(std::uint64_t v, std::uint64_t &quotient,
           std::uint64_t &remainder) const
    {
        remainder = modulo(v);
        quotient = divide(v);
    }

  private:
    std::uint32_t bits_;
    std::uint64_t divisor_;
};

} // namespace unison

#endif // UNISON_COMMON_RESIDUE_HH
