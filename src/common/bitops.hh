/**
 * @file
 * Bit-manipulation helpers used by the address-mapping, predictor-hash
 * and geometry code.
 */

#ifndef UNISON_COMMON_BITOPS_HH
#define UNISON_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace unison {

/** True iff v is a power of two (v > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/** log2 of an exact power of two. */
inline std::uint32_t
exactLog2(std::uint64_t v)
{
    UNISON_ASSERT(isPowerOfTwo(v), "exactLog2 of non-power-of-two ", v);
    return floorLog2(v);
}

/** Round v up to the next multiple of `align` (align a power of two). */
constexpr std::uint64_t
roundUpPow2(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, lo+count) of v. */
constexpr std::uint64_t
extractBits(std::uint64_t v, std::uint32_t lo, std::uint32_t count)
{
    return (v >> lo) & ((count >= 64) ? ~0ull : ((1ull << count) - 1));
}

/** Number of set bits. */
constexpr std::uint32_t
popCount(std::uint64_t v)
{
    return static_cast<std::uint32_t>(std::popcount(v));
}

/** All-ones mask for a page of `page_blocks` blocks (block bitmaps are
 *  32 bits wide; 32-block pages saturate the mask). */
constexpr std::uint32_t
fullBlockMask(std::uint32_t page_blocks)
{
    return (page_blocks >= 32) ? 0xffffffffu
                               : ((1u << page_blocks) - 1);
}

/**
 * XOR-fold a 64-bit value down to `bits` bits. This is the hash the
 * Unison way predictor uses on page addresses (Sec. III-A.6: "a 2-bit
 * array directly indexed by the 12-bit XOR hash of the page address").
 */
inline std::uint64_t
xorFold(std::uint64_t v, std::uint32_t bits)
{
    UNISON_ASSERT(bits > 0 && bits < 64, "xorFold to ", bits, " bits");
    std::uint64_t folded = 0;
    while (v != 0) {
        folded ^= v & ((1ull << bits) - 1);
        v >>= bits;
    }
    return folded;
}

/** splitmix64 finalizer: a strong 64-bit mixer. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/**
 * Mix two values (e.g. PC and block offset) into one well-distributed
 * hash. Used for footprint-history and miss-predictor indexing. Both
 * inputs are mixed *before* combination: a linear pre-mix (the classic
 * boost hash_combine) would make structurally related pairs such as
 * (pc, offset) and (pc + 64k, offset - k) collide exactly, which
 * silently cripples the footprint history table.
 */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(mix64(a + 0x9e3779b97f4a7c15ull) ^
                 (b * 0xc2b2ae3d27d4eb4full));
}

} // namespace unison

#endif // UNISON_COMMON_BITOPS_HH
