/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * buffers. Shared by the result journal's record frames and the
 * checkpoint file header: both need a cheap, dependency-free,
 * platform-stable integrity check that catches truncation and
 * bit-flips -- not cryptographic tamper resistance.
 */

#ifndef UNISON_COMMON_CRC32_HH
#define UNISON_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace unison {

namespace detail {

inline const std::array<std::uint32_t, 256> &
crc32Table()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** CRC-32 of `len` bytes at `data` (init/final XOR 0xFFFFFFFF, as in
 *  zlib's crc32(0, ...)). */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    const auto &table = detail::crc32Table();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace unison

#endif // UNISON_COMMON_CRC32_HH
