/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload models. Everything in the simulator that needs randomness
 * draws from an explicitly seeded Rng so that experiments are exactly
 * reproducible run-to-run.
 */

#ifndef UNISON_COMMON_RNG_HH
#define UNISON_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace unison {

/**
 * xoshiro256** generator. Small, fast, and good enough statistical
 * quality for workload synthesis; fully deterministic from the seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull)
    {
        // splitmix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        UNISON_ASSERT(bound != 0, "Rng::below(0)");
        // Multiply-shift mapping (the slight bias is irrelevant at
        // workload-synthesis scale, and it avoids rejection loops).
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        UNISON_ASSERT(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Geometric positive count on {1, 2, ...} with the given mean. */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        const double u = uniform();
        const std::uint64_t v = static_cast<std::uint64_t>(
            std::ceil(std::log1p(-u) / std::log1p(-p)));
        return v == 0 ? 1 : v;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipf(alpha) sampler over ranks [0, n). Server-workload page and
 * function popularity is heavily skewed; Zipf captures that with one
 * knob. Sampling uses the rejection-inversion method of Hörmann &
 * Derflinger (1996), which needs no per-rank tables and so scales to
 * the multi-hundred-GB datasets the TPC-H preset models.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha)
    {
        UNISON_ASSERT(n >= 1, "ZipfSampler over empty domain");
        if (alpha_ < 1e-6 || n_ == 1) {
            uniform_ = true;
            return;
        }
        hIntegralX1_ = hIntegral(1.5) - 1.0;
        hIntegralN_ = hIntegral(static_cast<double>(n_) + 0.5);
        s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
    }

    /** Draw a rank in [0, n). Rank 0 is the most popular item. */
    std::uint64_t
    sample(Rng &rng)
    {
        if (uniform_)
            return rng.below(n_);
        while (true) {
            const double u =
                hIntegralN_ + rng.uniform() * (hIntegralX1_ - hIntegralN_);
            const double x = hIntegralInverse(u);
            double kd = std::floor(x + 0.5);
            if (kd < 1.0)
                kd = 1.0;
            else if (kd > static_cast<double>(n_))
                kd = static_cast<double>(n_);
            if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd))
                return static_cast<std::uint64_t>(kd) - 1;
        }
    }

  private:
    /** Probability shape h(x) = x^-alpha. */
    double
    h(double x) const
    {
        return std::exp(-alpha_ * std::log(x));
    }

    /** Antiderivative of h (log x when alpha == 1). */
    double
    hIntegral(double x) const
    {
        const double log_x = std::log(x);
        return helper((1.0 - alpha_) * log_x) * log_x;
    }

    /** Inverse of hIntegral. */
    double
    hIntegralInverse(double x) const
    {
        double t = x * (1.0 - alpha_);
        if (t < -1.0)
            t = -1.0; // guard rounding at the domain edge
        return std::exp(helperInverse(t) * x);
    }

    /** (exp(x) - 1) / x, stable near zero. */
    static double
    helper(double x)
    {
        return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0;
    }

    /** log1p(x) / x, stable near zero. */
    static double
    helperInverse(double x)
    {
        return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0;
    }

    std::uint64_t n_;
    double alpha_;
    bool uniform_ = false;
    double hIntegralX1_ = 0.0;
    double hIntegralN_ = 0.0;
    double s_ = 0.0;
};

} // namespace unison

#endif // UNISON_COMMON_RNG_HH
