/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload models. Everything in the simulator that needs randomness
 * draws from an explicitly seeded Rng so that experiments are exactly
 * reproducible run-to-run.
 */

#ifndef UNISON_COMMON_RNG_HH
#define UNISON_COMMON_RNG_HH

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace unison {

/**
 * xoshiro256** generator. Small, fast, and good enough statistical
 * quality for workload synthesis; fully deterministic from the seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull)
    {
        // splitmix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        UNISON_ASSERT(bound != 0, "Rng::below(0)");
        // Multiply-shift mapping (the slight bias is irrelevant at
        // workload-synthesis scale, and it avoids rejection loops).
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        UNISON_ASSERT(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Geometric positive count on {1, 2, ...} with the given mean. */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        return geometricWith(geometricDenom(mean));
    }

    /**
     * The denominator log1p(-1/mean) of the inverse-CDF geometric
     * draw. It only depends on the mean, so hot callers with a fixed
     * mean precompute it once instead of paying a second log1p on
     * every draw. Only meaningful for mean > 1 (geometric() returns 1
     * without consuming randomness otherwise -- callers hoisting the
     * denominator must keep that early-out).
     */
    static double
    geometricDenom(double mean)
    {
        return std::log1p(-1.0 / mean);
    }

    /** geometric(mean) with the denominator precomputed; identical
     *  draw-for-draw to geometric() for the same mean > 1. */
    std::uint64_t
    geometricWith(double log_denom)
    {
        const double u = uniform();
        const std::uint64_t v = static_cast<std::uint64_t>(
            std::ceil(std::log1p(-u) / log_denom));
        return v == 0 ? 1 : v;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipf(alpha) sampler over ranks [min_rank, n). Server-workload page
 * and function popularity is heavily skewed; Zipf captures that with
 * one knob. Sampling uses the rejection-inversion method of Hörmann &
 * Derflinger (1996), which needs no per-rank tables and so scales to
 * the multi-hundred-GB datasets the TPC-H preset models. The optional
 * left truncation serves as the tail sampler of ZipfAliasSampler.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double alpha, std::uint64_t min_rank = 0)
        : n_(n), alpha_(alpha), minRank_(min_rank)
    {
        UNISON_ASSERT(n >= 1, "ZipfSampler over empty domain");
        UNISON_ASSERT(min_rank < n, "ZipfSampler truncated to nothing");
        if (alpha_ < 1e-6 || n_ - minRank_ == 1) {
            uniform_ = true;
            return;
        }
        // 1-indexed lowest item of the (possibly truncated) domain.
        const double lo = static_cast<double>(minRank_) + 1.0;
        hIntegralX1_ = hIntegral(lo + 0.5) - h(lo);
        hIntegralN_ = hIntegral(static_cast<double>(n_) + 0.5);
        s_ = (lo + 1.0) -
             hIntegralInverse(hIntegral(lo + 1.5) - h(lo + 1.0));
    }

    /** Draw a rank in [min_rank, n). Rank 0 is the most popular item. */
    std::uint64_t
    sample(Rng &rng) const
    {
        if (uniform_)
            return minRank_ + rng.below(n_ - minRank_);
        const double lo = static_cast<double>(minRank_) + 1.0;
        while (true) {
            const double u =
                hIntegralN_ + rng.uniform() * (hIntegralX1_ - hIntegralN_);
            const double x = hIntegralInverse(u);
            double kd = std::floor(x + 0.5);
            if (kd < lo)
                kd = lo;
            else if (kd > static_cast<double>(n_))
                kd = static_cast<double>(n_);
            if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd))
                return static_cast<std::uint64_t>(kd) - 1;
        }
    }

  private:
    /** Probability shape h(x) = x^-alpha. */
    double
    h(double x) const
    {
        return std::exp(-alpha_ * std::log(x));
    }

    /** Antiderivative of h (log x when alpha == 1). */
    double
    hIntegral(double x) const
    {
        const double log_x = std::log(x);
        return helper((1.0 - alpha_) * log_x) * log_x;
    }

    /** Inverse of hIntegral. */
    double
    hIntegralInverse(double x) const
    {
        double t = x * (1.0 - alpha_);
        if (t < -1.0)
            t = -1.0; // guard rounding at the domain edge
        return std::exp(helperInverse(t) * x);
    }

    /** (exp(x) - 1) / x, stable near zero. */
    static double
    helper(double x)
    {
        return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0;
    }

    /** log1p(x) / x, stable near zero. */
    static double
    helperInverse(double x)
    {
        return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0;
    }

    std::uint64_t n_;
    double alpha_;
    std::uint64_t minRank_;
    bool uniform_ = false;
    double hIntegralX1_ = 0.0;
    double hIntegralN_ = 0.0;
    double s_ = 0.0;
};

/**
 * O(1) Zipf(alpha) sampler: a Walker/Vose alias table over the head
 * ranks plus a rejection-inversion tail for domains too large to
 * tabulate. Steady-state sampling of the head -- which carries all of
 * the probability mass for every preset except TPC-H -- is two table
 * reads and no pow/log/exp, which is what keeps trace generation off
 * the simulator's critical path.
 *
 * The table is immutable after construction, so one sampler can be
 * shared by any number of concurrently running experiments.
 */
class ZipfAliasSampler
{
  public:
    /**
     * Ranks tabulated exactly before switching to the hybrid tail.
     * The default keeps the tables at 128 KB: alias slots are probed
     * uniformly at random, so a larger table stops being
     * cache-resident and its miss latency costs more than the
     * rejection-inversion transcendentals it replaces -- measured on
     * a 4M-rank domain, a 32 MB table samples *slower* than the
     * direct method while also evicting the simulator's tag arrays.
     */
    static constexpr std::uint64_t kDefaultMaxExactRanks = 1ull << 14;

    ZipfAliasSampler(std::uint64_t n, double alpha,
                     std::uint64_t max_exact_ranks = kDefaultMaxExactRanks)
        : n_(n), alpha_(alpha)
    {
        UNISON_ASSERT(n >= 1, "ZipfAliasSampler over empty domain");
        UNISON_ASSERT(max_exact_ranks >= 1 &&
                          max_exact_ranks <= (1ull << 32),
                      "alias table bound out of range");
        if (alpha_ < 1e-6 || n_ == 1) {
            uniform_ = true;
            return;
        }
        headRanks_ = std::min(n_, max_exact_ranks);

        // Exact head weights k^-alpha (one-time pow cost).
        std::vector<double> weights(headRanks_);
        double head_sum = 0.0;
        for (std::uint64_t k = 0; k < headRanks_; ++k) {
            weights[k] = std::pow(static_cast<double>(k + 1), -alpha_);
            head_sum += weights[k];
        }

        if (headRanks_ < n_) {
            // Tail mass via midpoint-rule integral of x^-alpha over
            // [m+1/2, n+1/2] plus the first Euler-Maclaurin correction;
            // the relative error is far below anything sampling-visible.
            const double a = static_cast<double>(headRanks_) + 0.5;
            const double b = static_cast<double>(n_) + 0.5;
            const double integral = primitive(b) - primitive(a);
            const double correction =
                (alpha_ / 24.0) *
                (std::pow(a, -alpha_ - 1.0) - std::pow(b, -alpha_ - 1.0));
            const double tail_sum = integral + correction;
            headMass_ = head_sum / (head_sum + tail_sum);
            tail_ = std::make_unique<ZipfSampler>(n_, alpha_, headRanks_);
        }

        buildAliasTable(weights, head_sum);
    }

    /** Draw a rank in [0, n). Rank 0 is the most popular item. */
    std::uint64_t
    sample(Rng &rng) const
    {
        if (uniform_)
            return rng.below(n_);
        if (tail_ != nullptr && rng.uniform() >= headMass_)
            return tail_->sample(rng);
        // One uniform supplies both the slot and the accept draw.
        const double u =
            rng.uniform() * static_cast<double>(headRanks_);
        std::uint64_t slot = static_cast<std::uint64_t>(u);
        if (slot >= headRanks_)
            slot = headRanks_ - 1;
        const double frac = u - static_cast<double>(slot);
        return frac < prob_[slot] ? slot : alias_[slot];
    }

    std::uint64_t domain() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    /** Antiderivative of x^-alpha (log x when alpha == 1). */
    double
    primitive(double x) const
    {
        const double one_minus = 1.0 - alpha_;
        if (std::abs(one_minus) < 1e-12)
            return std::log(x);
        return std::pow(x, one_minus) / one_minus;
    }

    /** Vose's stable alias-table construction over the head weights. */
    void
    buildAliasTable(const std::vector<double> &weights, double head_sum)
    {
        const std::uint64_t m = headRanks_;
        prob_.resize(m);
        alias_.resize(m);
        std::vector<double> scaled(m);
        std::vector<std::uint32_t> small, large;
        small.reserve(m);
        large.reserve(m);
        for (std::uint64_t i = 0; i < m; ++i) {
            scaled[i] = weights[i] * static_cast<double>(m) / head_sum;
            (scaled[i] < 1.0 ? small : large)
                .push_back(static_cast<std::uint32_t>(i));
        }
        while (!small.empty() && !large.empty()) {
            const std::uint32_t s = small.back();
            const std::uint32_t l = large.back();
            small.pop_back();
            prob_[s] = static_cast<float>(scaled[s]);
            alias_[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if (scaled[l] < 1.0) {
                large.pop_back();
                small.push_back(l);
            }
        }
        // Leftovers are exactly-1 columns up to rounding.
        for (const std::uint32_t i : large)
            prob_[i] = 1.0f;
        for (const std::uint32_t i : small)
            prob_[i] = 1.0f;
        for (std::uint64_t i = 0; i < m; ++i) {
            if (prob_[i] >= 1.0f)
                alias_[i] = static_cast<std::uint32_t>(i);
        }
    }

    std::uint64_t n_;
    double alpha_;
    std::uint64_t headRanks_ = 0;
    double headMass_ = 1.0; //!< probability a draw lands in the head
    bool uniform_ = false;
    std::vector<float> prob_;
    std::vector<std::uint32_t> alias_;
    std::unique_ptr<ZipfSampler> tail_;
};

/**
 * Hierarchical two-level Zipf(alpha) sampler for very large keyspaces
 * (the datacenter generators draw from millions of distinct keys).
 *
 * Layout: an exact Walker/Vose alias table over the first ~sqrt(n)
 * head ranks, then geometric *rank groups* [m*2^g, m*2^(g+1)) covering
 * the tail, with a second (tiny) alias table choosing between the head
 * and the groups by total probability mass. A draw is: one alias probe
 * to pick the bucket, then either one alias probe (head) or a bounded
 * rejection loop inside one group -- within a group the weight ratio
 * is at most 2^alpha, so the expected number of trials is < 2^alpha
 * and a precomputed acceptance floor short-circuits most of them
 * without touching pow/log.
 *
 * Versus ZipfAliasSampler this trades the rejection-inversion tail
 * (3-4 transcendentals per tail draw) for table probes plus a cheap
 * rejection, and shrinks hot memory from a fixed 128 KB head to
 * O(sqrt(n)) -- ~32 KB at n = 1M -- which matters when a bounded
 * shared cache holds samplers for many (n, alpha) pairs at once.
 *
 * Immutable after construction; safe to share across threads.
 */
class TwoLevelZipfSampler
{
  public:
    TwoLevelZipfSampler(std::uint64_t n, double alpha)
        : n_(n), alpha_(alpha)
    {
        UNISON_ASSERT(n >= 1, "TwoLevelZipfSampler over empty domain");
        if (alpha_ < 1e-6 || n_ == 1) {
            uniform_ = true;
            return;
        }

        // Head covers ~sqrt(n) ranks (power of two, clamped so tiny
        // domains stay fully tabulated and huge ones stay cache-hot).
        const auto root = static_cast<std::uint64_t>(
            std::ceil(std::sqrt(static_cast<double>(n_))));
        headRanks_ = std::min(
            n_, std::clamp(std::bit_ceil(root), std::uint64_t{256},
                           std::uint64_t{4096}));

        std::vector<double> weights(headRanks_);
        double head_sum = 0.0;
        for (std::uint64_t k = 0; k < headRanks_; ++k) {
            weights[k] = std::pow(static_cast<double>(k + 1), -alpha_);
            head_sum += weights[k];
        }

        // Geometric groups over the tail; ~log2(n / head) of them.
        std::vector<double> masses;
        masses.push_back(head_sum);
        for (std::uint64_t lo = headRanks_; lo < n_;) {
            const std::uint64_t hi = std::min(n_, lo * 2);
            Group g;
            g.lo = lo;
            g.width = hi - lo;
            g.invLoWeight = std::pow(static_cast<double>(lo + 1), alpha_);
            g.minAccept =
                std::pow(static_cast<double>(lo + 1) /
                             static_cast<double>(hi),
                         alpha_);
            groups_.push_back(g);
            masses.push_back(groupMass(lo, hi));
            lo = hi;
        }

        buildAlias(weights, head_sum, headProb_, headAlias_);
        double total = 0.0;
        for (const double m : masses)
            total += m;
        buildAlias(masses, total, bucketProb_, bucketAlias_);
    }

    /** Draw a rank in [0, n). Rank 0 is the most popular item. */
    std::uint64_t
    sample(Rng &rng) const
    {
        if (uniform_)
            return rng.below(n_);
        const std::uint64_t bucket =
            aliasPick(rng, bucketProb_, bucketAlias_);
        if (bucket == 0)
            return aliasPick(rng, headProb_, headAlias_);
        const Group &g = groups_[bucket - 1];
        // Uniform proposal over the group, thinned to k^-alpha. The
        // weight ratio inside a group is <= 2^alpha, so acceptance
        // is >= minAccept >= 2^-alpha and the loop is O(1) expected.
        while (true) {
            const std::uint64_t k = g.lo + rng.below(g.width);
            const double u = rng.uniform();
            if (u < g.minAccept)
                return k; // acceptance floor: no pow needed
            const double accept =
                g.invLoWeight *
                std::exp(-alpha_ *
                         std::log(static_cast<double>(k + 1)));
            if (u < accept)
                return k;
        }
    }

    std::uint64_t domain() const { return n_; }
    double alpha() const { return alpha_; }

    /** Resident table footprint, for cache-bound accounting/tests. */
    std::size_t
    tableBytes() const
    {
        return headProb_.size() * (sizeof(float) + sizeof(std::uint32_t)) +
               bucketProb_.size() *
                   (sizeof(float) + sizeof(std::uint32_t)) +
               groups_.size() * sizeof(Group);
    }

  private:
    struct Group
    {
        std::uint64_t lo = 0;       //!< first rank of the group
        std::uint64_t width = 0;    //!< number of ranks
        double invLoWeight = 0.0;   //!< (lo+1)^alpha, rescales accepts
        double minAccept = 0.0;     //!< acceptance floor ((lo+1)/hi)^alpha
    };

    /** Mass of ranks [lo, hi): midpoint integral of x^-alpha plus the
     *  first Euler-Maclaurin correction (same approximation the
     *  ZipfAliasSampler tail uses; error is sampling-invisible). */
    double
    groupMass(std::uint64_t lo, std::uint64_t hi) const
    {
        const double a = static_cast<double>(lo) + 0.5;
        const double b = static_cast<double>(hi) + 0.5;
        const double integral = primitive(b) - primitive(a);
        const double correction =
            (alpha_ / 24.0) *
            (std::pow(a, -alpha_ - 1.0) - std::pow(b, -alpha_ - 1.0));
        return integral + correction;
    }

    double
    primitive(double x) const
    {
        const double one_minus = 1.0 - alpha_;
        if (std::abs(one_minus) < 1e-12)
            return std::log(x);
        return std::pow(x, one_minus) / one_minus;
    }

    /** Vose's stable construction, shared by both levels. */
    static void
    buildAlias(const std::vector<double> &weights, double sum,
               std::vector<float> &prob, std::vector<std::uint32_t> &alias)
    {
        const std::size_t m = weights.size();
        prob.resize(m);
        alias.resize(m);
        std::vector<double> scaled(m);
        std::vector<std::uint32_t> small, large;
        small.reserve(m);
        large.reserve(m);
        for (std::size_t i = 0; i < m; ++i) {
            scaled[i] = weights[i] * static_cast<double>(m) / sum;
            (scaled[i] < 1.0 ? small : large)
                .push_back(static_cast<std::uint32_t>(i));
        }
        while (!small.empty() && !large.empty()) {
            const std::uint32_t s = small.back();
            const std::uint32_t l = large.back();
            small.pop_back();
            prob[s] = static_cast<float>(scaled[s]);
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if (scaled[l] < 1.0) {
                large.pop_back();
                small.push_back(l);
            }
        }
        for (const std::uint32_t i : large)
            prob[i] = 1.0f;
        for (const std::uint32_t i : small)
            prob[i] = 1.0f;
        for (std::size_t i = 0; i < m; ++i) {
            if (prob[i] >= 1.0f)
                alias[i] = static_cast<std::uint32_t>(i);
        }
    }

    static std::uint64_t
    aliasPick(Rng &rng, const std::vector<float> &prob,
              const std::vector<std::uint32_t> &alias)
    {
        // One uniform supplies both the slot and the accept draw.
        const double u =
            rng.uniform() * static_cast<double>(prob.size());
        std::uint64_t slot = static_cast<std::uint64_t>(u);
        if (slot >= prob.size())
            slot = prob.size() - 1;
        const double frac = u - static_cast<double>(slot);
        return frac < prob[slot] ? slot : alias[slot];
    }

    std::uint64_t n_;
    double alpha_;
    std::uint64_t headRanks_ = 0;
    bool uniform_ = false;
    std::vector<float> headProb_;
    std::vector<std::uint32_t> headAlias_;
    std::vector<float> bucketProb_;
    std::vector<std::uint32_t> bucketAlias_;
    std::vector<Group> groups_;
};

} // namespace unison

#endif // UNISON_COMMON_RNG_HH
