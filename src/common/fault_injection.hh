/**
 * @file
 * Deterministic fault injection on the durability file paths (result
 * journal, checkpoint files). Every byte that common/file_io.hh moves
 * passes through the process-wide FaultInjector, which can -- at an
 * exact byte offset of the cumulative stream to one file --
 *
 *  - `fail`      persist the bytes before the offset, then report an
 *                I/O error (disk full / EIO), and keep failing;
 *  - `kill`      persist the bytes before the offset, then _exit(137)
 *                -- a SIGKILL-faithful crash at a chosen byte, which
 *                is what makes "kill at every record boundary" a
 *                deterministic matrix instead of a sleep-and-hope
 *                race;
 *  - `truncate`  persist the bytes before the offset, drop the rest,
 *                and *claim success* (a lying disk: the reader must
 *                catch it later from the CRC frame);
 *  - `corrupt`   XOR one byte at the offset (write side flips it on
 *                the way to disk, read side on the way back).
 *
 * A plan is armed programmatically (tests) or via the UNISON_FAULT
 * environment variable (process tests, CI):
 *
 *     UNISON_FAULT='write-kill@results.journal:4096'
 *     UNISON_FAULT='read-corrupt@.ckpt:100'
 *
 * i.e. `<point>-<mode>@<path-substring>:<byte-offset>`. Exactly one
 * plan per process; the offset is an absolute byte position in any
 * file whose path contains the substring (appends to an existing
 * journal count from the file's real size, not from zero). With no
 * plan armed the hooks are two predictable branches -- the seam costs
 * nothing in production runs (and sits nowhere near the simulation
 * hot path anyway).
 */

#ifndef UNISON_COMMON_FAULT_INJECTION_HH
#define UNISON_COMMON_FAULT_INJECTION_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace unison {

/** One armed fault. */
struct FaultPlan
{
    enum class Point
    {
        None,
        Write,
        Read,
    };
    enum class Mode
    {
        None,
        Fail,
        Kill,
        Truncate,
        Corrupt,
    };

    Point point = Point::None;
    Mode mode = Mode::None;
    std::string pathSubstr;    //!< arm only for paths containing this
    std::uint64_t offset = 0;  //!< absolute byte offset in the file

    bool armed() const { return point != Point::None; }
};

/** Parse "<point>-<mode>@<path-substring>:<offset>"; throws
 *  SimError(Usage) on malformed input. */
FaultPlan parseFaultPlan(const std::string &spec);

/** Process-wide injector consulted by common/file_io.hh. */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Arm a plan (resets the sticky-failure latch). */
    void arm(const FaultPlan &plan);

    /** Disarm and reset the latch. */
    void disarm();

    /** Arm from $UNISON_FAULT if set (called once by file_io on first
     *  use; harmless to call again). */
    void armFromEnv();

    /** What a write of `len` bytes to `path`, starting at absolute
     *  file offset `begin`, should do. Applied by file_io *before*
     *  the bytes reach the OS. */
    struct WriteDecision
    {
        std::size_t persist; //!< bytes to actually write
        bool fail = false;   //!< report an I/O error after persisting
        bool kill = false;   //!< _exit(137) after persisting
        /** Corrupt one byte: index into this write's buffer, <len, or
         *  SIZE_MAX for none. */
        std::size_t corruptAt = SIZE_MAX;
    };
    WriteDecision onWrite(const std::string &path, std::uint64_t begin,
                          std::size_t len);

    /** What a read of `len` bytes from `path`, starting at absolute
     *  file offset `begin`, should do. */
    struct ReadDecision
    {
        bool fail = false;
        std::size_t corruptAt = SIZE_MAX; //!< index into the buffer
    };
    ReadDecision onRead(const std::string &path, std::uint64_t begin,
                        std::size_t len);

  private:
    FaultInjector() = default;

    std::mutex mutex_;
    FaultPlan plan_;
    bool envChecked_ = false;
    bool tripped_ = false; //!< fail mode is sticky once triggered
};

} // namespace unison

#endif // UNISON_COMMON_FAULT_INJECTION_HH
