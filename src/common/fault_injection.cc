#include "common/fault_injection.hh"

#include <charconv>
#include <cstdlib>
#include <unistd.h>

#include "common/error.hh"

namespace unison {

namespace {

FaultPlan::Point
pointFromToken(const std::string &token)
{
    if (token == "write")
        return FaultPlan::Point::Write;
    if (token == "read")
        return FaultPlan::Point::Read;
    throwUsage("fault plan: unknown point '", token,
               "' (write or read)");
}

FaultPlan::Mode
modeFromToken(const std::string &token, FaultPlan::Point point)
{
    if (token == "fail")
        return FaultPlan::Mode::Fail;
    if (token == "corrupt")
        return FaultPlan::Mode::Corrupt;
    if (point == FaultPlan::Point::Write) {
        if (token == "kill")
            return FaultPlan::Mode::Kill;
        if (token == "truncate")
            return FaultPlan::Mode::Truncate;
    }
    throwUsage("fault plan: unknown mode '", token, "' for ",
               point == FaultPlan::Point::Write ? "write" : "read",
               " (fail, corrupt",
               point == FaultPlan::Point::Write ? ", kill, truncate"
                                                : "",
               ")");
}

} // namespace

FaultPlan
parseFaultPlan(const std::string &spec)
{
    // <point>-<mode>@<path-substring>:<offset>
    const std::size_t dash = spec.find('-');
    const std::size_t at = spec.find('@');
    const std::size_t colon = spec.rfind(':');
    if (dash == std::string::npos || at == std::string::npos ||
        colon == std::string::npos || dash > at || at > colon ||
        colon + 1 >= spec.size())
        throwUsage("fault plan must look like "
                   "<point>-<mode>@<path-substring>:<offset>, got '",
                   spec, "'");

    FaultPlan plan;
    plan.point = pointFromToken(spec.substr(0, dash));
    plan.mode =
        modeFromToken(spec.substr(dash + 1, at - dash - 1), plan.point);
    plan.pathSubstr = spec.substr(at + 1, colon - at - 1);
    if (plan.pathSubstr.empty())
        throwUsage("fault plan: empty path substring in '", spec, "'");

    const char *begin = spec.data() + colon + 1;
    const char *end = spec.data() + spec.size();
    const auto r = std::from_chars(begin, end, plan.offset);
    if (r.ec != std::errc() || r.ptr != end)
        throwUsage("fault plan: bad byte offset in '", spec, "'");
    return plan;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
    tripped_ = false;
    envChecked_ = true; // an explicit plan overrides the environment
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = FaultPlan{};
    tripped_ = false;
    envChecked_ = true;
}

void
FaultInjector::armFromEnv()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (envChecked_)
            return;
        envChecked_ = true;
    }
    const char *spec = std::getenv("UNISON_FAULT");
    if (spec == nullptr || *spec == '\0')
        return;
    const FaultPlan plan = parseFaultPlan(spec);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        plan_ = plan;
        tripped_ = false;
    }
    structuredWarn("fault-injection-armed", {{"plan", spec}});
}

FaultInjector::WriteDecision
FaultInjector::onWrite(const std::string &path, std::uint64_t begin,
                       std::size_t len)
{
    WriteDecision d{len};
    std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.point != FaultPlan::Point::Write ||
        path.find(plan_.pathSubstr) == std::string::npos)
        return d;

    if (plan_.mode == FaultPlan::Mode::Corrupt) {
        if (begin <= plan_.offset && plan_.offset < begin + len)
            d.corruptAt = static_cast<std::size_t>(plan_.offset - begin);
        return d;
    }

    // fail / kill / truncate: the stream dies at plan_.offset.
    if (tripped_ || begin + len > plan_.offset) {
        d.persist = tripped_ ? 0
                             : static_cast<std::size_t>(
                                   plan_.offset > begin
                                       ? plan_.offset - begin
                                       : 0);
        tripped_ = true;
        switch (plan_.mode) {
          case FaultPlan::Mode::Fail:
            d.fail = true;
            break;
          case FaultPlan::Mode::Kill:
            d.kill = true;
            break;
          case FaultPlan::Mode::Truncate:
            break; // drop the tail, claim success
          default:
            break;
        }
    }
    return d;
}

FaultInjector::ReadDecision
FaultInjector::onRead(const std::string &path, std::uint64_t begin,
                      std::size_t len)
{
    ReadDecision d;
    std::lock_guard<std::mutex> lock(mutex_);
    if (plan_.point != FaultPlan::Point::Read ||
        path.find(plan_.pathSubstr) == std::string::npos)
        return d;

    if (plan_.mode == FaultPlan::Mode::Corrupt) {
        if (begin <= plan_.offset && plan_.offset < begin + len)
            d.corruptAt = static_cast<std::size_t>(plan_.offset - begin);
    } else if (plan_.mode == FaultPlan::Mode::Fail) {
        if (tripped_ || begin + len > plan_.offset) {
            tripped_ = true;
            d.fail = true;
        }
    }
    return d;
}

} // namespace unison
