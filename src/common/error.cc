#include "common/error.hh"

#include <cstdio>
#include <cstdlib>

namespace unison {

int
exitCodeFor(SimErrc code)
{
    return static_cast<int>(code);
}

const char *
simErrcName(SimErrc code)
{
    switch (code) {
      case SimErrc::Ok:
        return "ok";
      case SimErrc::Usage:
        return "usage";
      case SimErrc::Io:
        return "io";
      case SimErrc::Corrupt:
        return "corrupt-input";
    }
    return "unknown";
}

void
exitWith(SimErrc code, const std::string &msg)
{
    std::fprintf(stderr, "error (%s): %s\n", simErrcName(code),
                 msg.c_str());
    std::fflush(stderr);
    std::exit(exitCodeFor(code));
}

void
structuredWarn(
    const std::string &event,
    const std::vector<std::pair<std::string, std::string>> &fields)
{
    std::string line = "[" + event + "]";
    for (const auto &[key, value] : fields) {
        line += " " + key + "=";
        if (value.find(' ') != std::string::npos ||
            value.find('=') != std::string::npos || value.empty())
            line += "'" + value + "'";
        else
            line += value;
    }
    warn(line);
}

} // namespace unison
