/**
 * @file
 * Fundamental scalar types and memory-geometry constants shared by every
 * module in the Unison Cache reproduction.
 */

#ifndef UNISON_COMMON_TYPES_HH
#define UNISON_COMMON_TYPES_HH

#include <cstdint>

namespace unison {

/** Physical byte address. */
using Addr = std::uint64_t;

/** CPU clock cycle count (the CPU runs at 3 GHz, per Table III). */
using Cycle = std::uint64_t;

/** Program counter of the instruction that issued a memory access. */
using Pc = std::uint64_t;

/** Cache block (line) size used throughout the paper: 64 bytes. */
constexpr std::uint32_t kBlockBytes = 64;

/** log2 of the block size. */
constexpr std::uint32_t kBlockShift = 6;

/** DRAM row-buffer size for both stacked and off-chip DRAM (Table III). */
constexpr std::uint32_t kRowBytes = 8192;

/** Blocks that fit in a DRAM row when no metadata is embedded. */
constexpr std::uint32_t kBlocksPerRow = kRowBytes / kBlockBytes;

/** Convert a byte address to its 64 B block number. */
constexpr std::uint64_t
blockNumber(Addr addr)
{
    return addr >> kBlockShift;
}

/** Convert a block number back to the base byte address of the block. */
constexpr Addr
blockAddress(std::uint64_t block_num)
{
    return block_num << kBlockShift;
}

/** Size literals for readable configuration code. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

} // namespace unison

#endif // UNISON_COMMON_TYPES_HH
