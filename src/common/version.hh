/**
 * @file
 * The simulator's code-version tag: the compatibility key for every
 * durable artifact whose numbers must not be mixed across behaviour
 * changes -- result-journal records, results documents entering a
 * merge, and persistent warm-checkpoint files.
 *
 * Bump the tag whenever a change can alter simulated numbers or
 * serialized state (new design behaviour, engine changes, schema
 * bumps). Tooling then *refuses* to merge or resume across the bump
 * instead of silently blending incompatible results. Deliberately a
 * hand-maintained constant, not a build timestamp or git hash: two
 * builds of the same source must agree on it, or byte-identical
 * shard/merge/golden comparisons would break.
 */

#ifndef UNISON_COMMON_VERSION_HH
#define UNISON_COMMON_VERSION_HH

namespace unison {

inline constexpr const char *kSimCodeVersion = "unison-sim/8";

} // namespace unison

#endif // UNISON_COMMON_VERSION_HH
