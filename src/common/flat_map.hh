/**
 * @file
 * A flat open-addressing hash map from 64-bit keys to small
 * trivially-copyable values, for per-access metadata on the simulator
 * hot path (page-group tracking, and any future sparse table keyed by
 * page/block number).
 *
 * Why not std::unordered_map: the node-based layout costs one heap
 * allocation plus at least one dependent cache miss per lookup, and
 * its resident size is dominated by node headers rather than payload.
 * At datacenter scale (hundreds of cores, millions of distinct pages
 * in flight) that overhead is the difference between engine-speed and
 * allocator-bound runs.
 *
 * Design:
 *  - linear probing over a power-of-two slot array (multiplicative
 *    hashing via a 64-bit Fibonacci constant, top bits select the
 *    home slot);
 *  - tombstone-free deletion by backward shifting: erasing an entry
 *    pulls displaced successors back toward their home slots, so probe
 *    sequences never traverse graves and lookup cost stays bounded by
 *    the live load factor;
 *  - grows at 3/4 load, so memory is O(active set), not O(keyspace).
 *
 * The key ~0 is reserved as the empty-slot marker; callers index by
 * page/block numbers, which can never reach it (an address would have
 * to exceed 2^64). Iteration order (forEach) is slot order -- it is
 * deterministic for a given insertion/erase history but unspecified
 * otherwise, so callers must not let it influence simulated behaviour
 * (the same contract the previous unordered_map-based tracker had).
 */

#ifndef UNISON_COMMON_FLAT_MAP_HH
#define UNISON_COMMON_FLAT_MAP_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace unison {

template <typename Value>
class FlatU64Map
{
    static_assert(std::is_trivially_copyable_v<Value>,
                  "FlatU64Map slots are relocated with plain copies");

  public:
    /** Reserved empty-slot marker; never a valid key. */
    static constexpr std::uint64_t kEmptyKey = ~0ull;

    FlatU64Map() { reset(kMinCapacity); }

    /** Pointer to the mapped value, nullptr when absent. Valid until
     *  the next insert (growth relocates slots). */
    Value *
    find(std::uint64_t key)
    {
        std::size_t i = home(key);
        while (slots_[i].key != key) {
            if (slots_[i].key == kEmptyKey)
                return nullptr;
            i = (i + 1) & mask_;
        }
        return &slots_[i].value;
    }

    const Value *
    find(std::uint64_t key) const
    {
        return const_cast<FlatU64Map *>(this)->find(key);
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Insert `key -> value`, overwriting any existing mapping.
     *  Returns a reference valid until the next insert. */
    Value &
    insertOrAssign(std::uint64_t key, const Value &value)
    {
        UNISON_ASSERT(key != kEmptyKey,
                      "FlatU64Map: key ~0 is the empty-slot marker");
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        std::size_t i = home(key);
        while (slots_[i].key != kEmptyKey) {
            if (slots_[i].key == key) {
                slots_[i].value = value;
                return slots_[i].value;
            }
            i = (i + 1) & mask_;
        }
        slots_[i].key = key;
        slots_[i].value = value;
        ++size_;
        return slots_[i].value;
    }

    /** Remove `key` if present (backward-shift, no tombstones). */
    bool
    erase(std::uint64_t key)
    {
        std::size_t hole = home(key);
        while (slots_[hole].key != key) {
            if (slots_[hole].key == kEmptyKey)
                return false;
            hole = (hole + 1) & mask_;
        }
        // Pull displaced successors back: an entry at j with home h may
        // fill the hole iff the hole lies on j's probe path, i.e. the
        // cyclic distance home->j covers the cyclic distance hole->j.
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask_;
            if (slots_[j].key == kEmptyKey)
                break;
            std::size_t h = home(slots_[j].key);
            if (((j - h) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole].key = kEmptyKey;
        --size_;
        return true;
    }

    std::size_t size() const { return size_; }

    /** Slot-array capacity; with size(), gives the resident footprint
     *  (capacity() * sizeof a slot), O(active set) by construction. */
    std::size_t capacity() const { return slots_.size(); }

    void clear() { reset(kMinCapacity); }

    /** Pre-size for `n` entries (e.g. before a checkpoint rebuild). */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = slots_.size();
        while (n * 4 > cap * 3)
            cap *= 2;
        if (cap != slots_.size())
            rehash(cap);
    }

    /** Visit every entry as fn(key, const Value &), in slot order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.key != kEmptyKey)
                fn(s.key, s.value);
    }

  private:
    struct Slot
    {
        std::uint64_t key;
        Value value;
    };

    static constexpr std::size_t kMinCapacity = 64;

    std::size_t
    home(std::uint64_t key) const
    {
        return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >>
                                        shift_);
    }

    void
    reset(std::size_t cap)
    {
        slots_.assign(cap, Slot{kEmptyKey, Value{}});
        mask_ = cap - 1;
        shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
        size_ = 0;
    }

    void grow() { rehash(slots_.size() * 2); }

    void
    rehash(std::size_t cap)
    {
        std::vector<Slot> old = std::move(slots_);
        std::size_t n = size_;
        reset(cap);
        size_ = n;
        for (const Slot &s : old) {
            if (s.key == kEmptyKey)
                continue;
            std::size_t i = home(s.key);
            while (slots_[i].key != kEmptyKey)
                i = (i + 1) & mask_;
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
    unsigned shift_ = 0;
};

} // namespace unison

#endif // UNISON_COMMON_FLAT_MAP_HH
