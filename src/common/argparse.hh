/**
 * @file
 * A tiny command-line option parser used by the bench harnesses and
 * example programs (--key=value / --key value / --flag style).
 */

#ifndef UNISON_COMMON_ARGPARSE_HH
#define UNISON_COMMON_ARGPARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace unison {

/** One registered option and its parsed state. */
struct ArgOption
{
    std::string name;     //!< long name without leading dashes
    std::string help;     //!< description for --help
    std::string value;    //!< current (default or parsed) value
    bool isFlag = false;  //!< true for boolean presence flags
    bool seen = false;    //!< set when the user supplied it
};

/**
 * Declarative argument parser. Register options with defaults, call
 * parse(), then read typed values. Unknown options are fatal; --help
 * prints usage and exits.
 */
class ArgParser
{
  public:
    explicit ArgParser(std::string description);

    /** Register a string option with a default value. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (false unless present). */
    void addFlag(const std::string &name, const std::string &help);

    /** Parse argv; exits on --help or malformed input. */
    void parse(int argc, const char *const *argv);

    /** Typed accessors (fatal if the option was never registered). */
    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** True if the user explicitly supplied the option. */
    bool wasProvided(const std::string &name) const;

  private:
    const ArgOption *find(const std::string &name) const;
    ArgOption *find(const std::string &name);
    void printHelpAndExit(const char *prog) const;

    std::string description_;
    std::vector<ArgOption> options_;
};

/**
 * Parse a human-friendly size string ("128M", "1G", "8192", "4K") into
 * bytes. Fatal on malformed input.
 */
std::uint64_t parseSize(const std::string &text);

/** Format a byte count as a compact human-readable string. */
std::string formatSize(std::uint64_t bytes);

} // namespace unison

#endif // UNISON_COMMON_ARGPARSE_HH
