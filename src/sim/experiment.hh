/**
 * @file
 * One-call experiment runner shared by all bench harnesses and the
 * examples: pick a workload preset, a design, a capacity and optional
 * ablation knobs, and get back a SimResult.
 */

#ifndef UNISON_SIM_EXPERIMENT_HH
#define UNISON_SIM_EXPERIMENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/unison_cache.hh"
#include "sim/system.hh"
#include "trace/mix.hh"
#include "trace/presets.hh"

namespace unison {

/** The designs the paper evaluates. */
enum class DesignKind
{
    Unison,
    Alloy,
    Footprint,
    LohHill,  //!< Loh & Hill MICRO'11 (Sec. II-A discussion baseline)
    NaiveBlockFp,     //!< Sec. III-B.1 rejected design (Fig. 4a)
    NaiveTaggedPage,  //!< Sec. III-B.2 rejected design (Fig. 4b)
    Ideal,
    NoDramCache,
};

std::string designName(DesignKind kind);

/** Full experiment specification. */
struct ExperimentSpec
{
    Workload workload = Workload::WebServing;

    /**
     * When set, overrides the preset: the experiment synthesizes its
     * stream from these parameters instead (numCores still follows
     * system.numCores). Lets parameter-sensitivity sweeps run through
     * the parallel runner like any other experiment.
     */
    std::optional<WorkloadParams> customWorkload;

    /**
     * Multiprogrammed mix: when non-empty, overrides both the preset
     * and customWorkload with a per-core source assignment (core
     * counts must sum to system.numCores). Results carry per-core
     * partitions in SimResult::perCore, labelled by source.
     */
    std::vector<MixPart> mix;

    DesignKind design = DesignKind::Unison;
    std::uint64_t capacityBytes = 1_GiB;

    /** Unison knobs (ignored by other designs). */
    std::uint32_t unisonPageBlocks = 15;
    std::uint32_t unisonAssoc = 4;
    UnisonWayPolicy unisonWayPolicy = UnisonWayPolicy::Predict;
    UnisonMissPolicy unisonMissPolicy = UnisonMissPolicy::AlwaysHit;
    bool footprintPrediction = true;  //!< Unison & Footprint designs
    bool singletonPrediction = true;  //!< Unison & Footprint designs

    /** Unison predictor sizing overrides (0 = design default). */
    std::uint32_t unisonFhtEntries = 0;
    std::uint32_t unisonFhtAssoc = 0;
    std::uint32_t unisonWayPredictorIndexBits = 0;

    /** Alloy knob. */
    bool alloyMissPredictor = true;

    /** Simulation length: 0 = auto-scale with capacity. */
    std::uint64_t accesses = 0;

    /** Divide the auto-scaled length by 8 (CI/quick mode). */
    bool quick = false;

    std::uint64_t seed = 42;
    SystemConfig system{};
};

/**
 * References needed to warm a cache of this capacity to steady state
 * under the synthetic workloads (empirical fill-rate model).
 */
std::uint64_t defaultAccessCount(std::uint64_t capacity_bytes, bool quick);

/** Build the cache factory for a spec (used by System). */
CacheFactory makeCacheFactory(const ExperimentSpec &spec);

/** Workload display label of a spec ("Web Serving", or the compact
 *  mix name for multiprogrammed specs). */
std::string specWorkloadName(const ExperimentSpec &spec);

/** Run the experiment end to end. */
SimResult runExperiment(const ExperimentSpec &spec);

} // namespace unison

#endif // UNISON_SIM_EXPERIMENT_HH
