/**
 * @file
 * One-call experiment runner shared by all bench harnesses, the
 * examples and the `unison_sim` driver: pick a workload source, a
 * design config, a capacity and optional knobs, and get back a
 * SimResult.
 *
 * The design under test is a *typed* per-design config
 * (UnisonConfig/AlloyConfig/...) held in a variant (see
 * design_registry.hh); the flat knob fields that used to be smeared
 * across this struct live in those configs now, and everything
 * design-specific -- names, factories, knob parsing, validation --
 * comes from the design registry.
 */

#ifndef UNISON_SIM_EXPERIMENT_HH
#define UNISON_SIM_EXPERIMENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/design_registry.hh"
#include "sim/system.hh"
#include "trace/mix.hh"
#include "trace/presets.hh"

namespace unison {

/** Full experiment specification. Serializable: see sim/spec_json.hh
 *  for the JSON schema (`unison-spec/1`). */
struct ExperimentSpec
{
    Workload workload = Workload::WebServing;

    /**
     * When set, overrides the preset: the experiment synthesizes its
     * stream from these parameters instead (numCores still follows
     * system.numCores). Lets parameter-sensitivity sweeps run through
     * the parallel runner like any other experiment.
     */
    std::optional<WorkloadParams> customWorkload;

    /**
     * Multiprogrammed mix: when non-empty, overrides both the preset
     * and customWorkload with a per-core source assignment (core
     * counts must sum to system.numCores). Results carry per-core
     * partitions in SimResult::perCore, labelled by source.
     */
    std::vector<MixPart> mix;

    /**
     * The design under test: a typed config selected and defaulted
     * through the registry. `spec.design = DesignKind::Alloy` picks
     * registry defaults; `spec.design.as<UnisonConfig>().assoc = 8`
     * tweaks a knob. The config's own capacityBytes/numCores fields
     * are ignored -- the spec-level fields below win, so sweep axes
     * never reach inside the variant.
     */
    DesignConfig design;

    std::uint64_t capacityBytes = 1_GiB;

    /** Simulation length: 0 = auto-scale with capacity. */
    std::uint64_t accesses = 0;

    /** Divide the auto-scaled length by 8 (CI/quick mode). */
    bool quick = false;

    std::uint64_t seed = 42;
    SystemConfig system{};

    DesignKind designKind() const { return design.kind(); }

    /**
     * The one place spec consistency is checked: core counts, capacity
     * alignment, mix shape, warm-up windows, and the design's own knob
     * ranges (via its registry validate hook). Returns "" when the
     * spec is runnable, else one actionable message.
     */
    std::string validationError() const;

    /** fatal() with validationError() when the spec is malformed.
     *  Called by runExperiment and the unison_sim driver. */
    void validate() const;
};

/**
 * References needed to warm a cache of this capacity to steady state
 * under the synthetic workloads (empirical fill-rate model).
 */
std::uint64_t defaultAccessCount(std::uint64_t capacity_bytes, bool quick);

/** Build the cache factory for a spec through the design registry
 *  (used by System). */
CacheFactory makeCacheFactory(const ExperimentSpec &spec);

/** Workload display label of a spec ("Web Serving", or the compact
 *  mix name for multiprogrammed specs). */
std::string specWorkloadName(const ExperimentSpec &spec);

/** Run the experiment end to end (validates first). */
SimResult runExperiment(const ExperimentSpec &spec);

/**
 * Whether the spec pins an explicit warm boundary a warm-state
 * checkpoint can capture and resume (the spec-shape half of
 * eligibility; whether the design and source can serialize their
 * state is checked at run time and falls back to a plain run).
 */
bool checkpointEligible(const ExperimentSpec &spec);

/**
 * Canonical identity of the spec's warm-up prefix: two specs with
 * equal keys simulate byte-identical system states over
 * [0, warmupAccesses). The key is the spec's JSON serialization with
 * the measured-window-only fields -- total accesses, quick, and
 * engineThreads -- normalized away, since none of them can influence
 * the stream or the state before an explicit warm boundary.
 */
std::string warmPrefixKey(const ExperimentSpec &spec);

/**
 * runExperiment with warm-checkpoint hooks (see System::run). Either
 * hook is silently dropped -- plain run -- when the spec has no
 * explicit warm boundary, the design or source cannot checkpoint, or
 * `resume_from` holds an invalid snapshot (its capture never fired),
 * so callers may pass hooks optimistically.
 */
SimResult runExperimentCk(const ExperimentSpec &spec,
                          const WarmCheckpoint *resume_from,
                          WarmCheckpoint *capture_to);

} // namespace unison

#endif // UNISON_SIM_EXPERIMENT_HH
