#include "sim/experiment.hh"

#include <algorithm>

#include "baselines/alloy_cache.hh"
#include "baselines/footprint_cache.hh"
#include "baselines/ideal_cache.hh"
#include "baselines/lohhill_cache.hh"
#include "baselines/naive_block_fp.hh"
#include "baselines/naive_tagged_page.hh"
#include "baselines/no_cache.hh"
#include "common/logging.hh"
#include "trace/workload.hh"

namespace unison {

std::string
designName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Unison:
        return "Unison Cache";
      case DesignKind::Alloy:
        return "Alloy Cache";
      case DesignKind::Footprint:
        return "Footprint Cache";
      case DesignKind::LohHill:
        return "Loh-Hill Cache";
      case DesignKind::NaiveBlockFp:
        return "Naive block+FP";
      case DesignKind::NaiveTaggedPage:
        return "Naive tagged-page";
      case DesignKind::Ideal:
        return "Ideal";
      case DesignKind::NoDramCache:
        return "No DRAM cache";
    }
    panic("unknown design kind");
}

std::uint64_t
defaultAccessCount(std::uint64_t capacity_bytes, bool quick)
{
    // Empirical fill model: a trigger miss installs ~10 blocks and
    // roughly one CPU reference in twenty causes one, so steady state
    // needs a few references per cached block. Bounded so the largest
    // configurations stay tractable on a laptop.
    const std::uint64_t blocks = capacity_bytes / kBlockBytes;
    std::uint64_t n = blocks * 8;
    n = std::clamp<std::uint64_t>(n, 8'000'000, 150'000'000);
    if (quick)
        n /= 8;
    return n;
}

CacheFactory
makeCacheFactory(const ExperimentSpec &spec)
{
    switch (spec.design) {
      case DesignKind::Unison:
        return [spec](DramModule *offchip) -> std::unique_ptr<DramCache> {
            UnisonConfig cfg;
            cfg.capacityBytes = spec.capacityBytes;
            cfg.pageBlocks = spec.unisonPageBlocks;
            cfg.assoc = spec.unisonAssoc;
            cfg.wayPolicy = spec.unisonWayPolicy;
            cfg.missPolicy = spec.unisonMissPolicy;
            cfg.footprintPredictionEnabled = spec.footprintPrediction;
            cfg.singletonEnabled = spec.singletonPrediction;
            cfg.numCores = spec.system.numCores;
            if (spec.unisonFhtEntries != 0)
                cfg.fhtConfig.numEntries = spec.unisonFhtEntries;
            if (spec.unisonFhtAssoc != 0)
                cfg.fhtConfig.assoc = spec.unisonFhtAssoc;
            if (spec.unisonWayPredictorIndexBits != 0)
                cfg.wayPredictorIndexBits =
                    spec.unisonWayPredictorIndexBits;
            return std::make_unique<UnisonCache>(cfg, offchip);
        };
      case DesignKind::Alloy:
        return [spec](DramModule *offchip) -> std::unique_ptr<DramCache> {
            AlloyConfig cfg;
            cfg.capacityBytes = spec.capacityBytes;
            cfg.missPredictorEnabled = spec.alloyMissPredictor;
            cfg.numCores = spec.system.numCores;
            return std::make_unique<AlloyCache>(cfg, offchip);
        };
      case DesignKind::Footprint:
        return [spec](DramModule *offchip) -> std::unique_ptr<DramCache> {
            FootprintCacheConfig cfg;
            cfg.capacityBytes = spec.capacityBytes;
            cfg.footprintPredictionEnabled = spec.footprintPrediction;
            cfg.singletonEnabled = spec.singletonPrediction;
            return std::make_unique<FootprintCache>(cfg, offchip);
        };
      case DesignKind::LohHill:
        return [spec](DramModule *offchip) -> std::unique_ptr<DramCache> {
            LohHillConfig cfg;
            cfg.capacityBytes = spec.capacityBytes;
            return std::make_unique<LohHillCache>(cfg, offchip);
        };
      case DesignKind::NaiveBlockFp:
        return [spec](DramModule *offchip) -> std::unique_ptr<DramCache> {
            NaiveBlockFpConfig cfg;
            cfg.capacityBytes = spec.capacityBytes;
            cfg.footprintPredictionEnabled = spec.footprintPrediction;
            return std::make_unique<NaiveBlockFpCache>(cfg, offchip);
        };
      case DesignKind::NaiveTaggedPage:
        return [spec](DramModule *offchip) -> std::unique_ptr<DramCache> {
            NaiveTaggedPageConfig cfg;
            cfg.capacityBytes = spec.capacityBytes;
            cfg.footprintPredictionEnabled = spec.footprintPrediction;
            return std::make_unique<NaiveTaggedPageCache>(cfg, offchip);
        };
      case DesignKind::Ideal:
        return [spec](DramModule *offchip) -> std::unique_ptr<DramCache> {
            IdealConfig cfg;
            cfg.capacityBytes = spec.capacityBytes;
            return std::make_unique<IdealCache>(cfg, offchip);
        };
      case DesignKind::NoDramCache:
        return [](DramModule *offchip) -> std::unique_ptr<DramCache> {
            return std::make_unique<NoCache>(offchip);
        };
    }
    panic("unknown design kind");
}

std::string
specWorkloadName(const ExperimentSpec &spec)
{
    if (!spec.mix.empty())
        return mixName(spec.mix);
    if (spec.customWorkload)
        return spec.customWorkload->name;
    return workloadName(spec.workload);
}

SimResult
runExperiment(const ExperimentSpec &spec)
{
    if (spec.system.numCores < 1)
        fatal("experiment needs >= 1 core, got ",
              spec.system.numCores);
    if (spec.capacityBytes == 0 &&
        spec.design != DesignKind::NoDramCache)
        fatal("experiment needs a non-zero cache capacity");

    System system(spec.system, makeCacheFactory(spec));

    const std::uint64_t n =
        spec.accesses != 0
            ? spec.accesses
            : defaultAccessCount(spec.capacityBytes, spec.quick);

    if (!spec.mix.empty()) {
        MixedWorkload workload(spec.mix, spec.system.numCores,
                               spec.seed);
        SimResult result = system.run(workload, n);
        for (std::size_t c = 0; c < result.perCore.size(); ++c)
            result.perCore[c].sourceName =
                workload.coreLabel(static_cast<int>(c));
        return result;
    }

    WorkloadParams params = spec.customWorkload
                                ? *spec.customWorkload
                                : workloadParams(spec.workload);
    params.numCores = spec.system.numCores;
    SyntheticWorkload workload(params, spec.seed);
    SimResult result = system.run(workload, n);
    for (CoreSimResult &core : result.perCore)
        core.sourceName = params.name;
    return result;
}

} // namespace unison
