#include "sim/experiment.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "sim/spec_json.hh"
#include "trace/workload.hh"

namespace unison {

std::uint64_t
defaultAccessCount(std::uint64_t capacity_bytes, bool quick)
{
    // Empirical fill model: a trigger miss installs ~10 blocks and
    // roughly one CPU reference in twenty causes one, so steady state
    // needs a few references per cached block. Bounded so the largest
    // configurations stay tractable on a laptop.
    const std::uint64_t blocks = capacity_bytes / kBlockBytes;
    std::uint64_t n = blocks * 8;
    n = std::clamp<std::uint64_t>(n, 8'000'000, 150'000'000);
    if (quick)
        n /= 8;
    return n;
}

CacheFactory
makeCacheFactory(const ExperimentSpec &spec)
{
    const DesignInfo &info =
        DesignRegistry::instance().byKind(spec.designKind());
    DesignBuildContext ctx;
    ctx.capacityBytes = spec.capacityBytes;
    ctx.numCores = spec.system.numCores;
    ctx.backend = spec.system.memoryBackend;
    return [config = spec.design.variant(), ctx,
            build = info.build](MemoryBackend *offchip) {
        return build(config, ctx, offchip);
    };
}

std::string
specWorkloadName(const ExperimentSpec &spec)
{
    if (!spec.mix.empty())
        return mixName(spec.mix);
    if (spec.customWorkload)
        return spec.customWorkload->name;
    return workloadName(spec.workload);
}

std::string
ExperimentSpec::validationError() const
{
    const DesignInfo &info =
        DesignRegistry::instance().byKind(designKind());

    if (system.numCores < 1)
        return "experiment needs >= 1 core, got " +
               std::to_string(system.numCores);
    if (system.numCores > kMaxCores)
        return "experiment supports at most " +
               std::to_string(kMaxCores) +
               " cores (kMaxCores in trace/access.hh; the scheduler "
               "packs core ids into its clock keys), got " +
               std::to_string(system.numCores);

    if (designKind() != DesignKind::NoDramCache) {
        if (capacityBytes == 0)
            return "experiment needs a non-zero cache capacity "
                   "(design '" + info.id + "')";
        if (capacityBytes % kRowBytes != 0)
            return "cache capacity must be a multiple of the " +
                   std::to_string(kRowBytes) +
                   "-byte DRAM row, got " +
                   std::to_string(capacityBytes);
    }

    DesignBuildContext ctx;
    ctx.capacityBytes = capacityBytes;
    ctx.numCores = system.numCores;
    ctx.backend = system.memoryBackend;
    if (info.validate) {
        const std::string err = info.validate(design.variant(), ctx);
        if (!err.empty())
            return "design '" + info.id + "': " + err;
    }

    if (!mix.empty()) {
        int total = 0;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            const MixPart &part = mix[i];
            if (part.cores < 1)
                return "mix part #" + std::to_string(i) +
                       " needs >= 1 core, got " +
                       std::to_string(part.cores);
            const int sources = (part.preset ? 1 : 0) +
                                (part.custom ? 1 : 0) +
                                (part.scenario ? 1 : 0) +
                                (part.tracePath.empty() ? 0 : 1);
            if (sources != 1)
                return "mix part #" + std::to_string(i) +
                       " must set exactly one of preset/custom/"
                       "scenario/trace, has " +
                       std::to_string(sources);
            total += part.cores;
        }
        if (total != system.numCores)
            return "mix assigns " + std::to_string(total) +
                   " cores but the system has " +
                   std::to_string(system.numCores) +
                   " (counts must match)";
    }

    if (system.warmFraction < 0.0 || system.warmFraction >= 1.0)
        return "warmFraction must be in [0, 1), got " +
               std::to_string(system.warmFraction);
    const std::uint64_t total =
        accesses != 0 ? accesses
                      : defaultAccessCount(capacityBytes, quick);
    if (system.warmupAccesses >= total)
        return "warmupAccesses (" +
               std::to_string(system.warmupAccesses) +
               ") must leave a measured window inside the " +
               std::to_string(total) + " total accesses" +
               (accesses == 0 ? " (auto-scaled from capacity)" : "");
    if (system.cpiBase <= 0.0)
        return "cpiBase must be positive";
    if (system.maxOutstandingMisses < 1)
        return "maxOutstandingMisses must be >= 1, got " +
               std::to_string(system.maxOutstandingMisses);
    return "";
}

void
ExperimentSpec::validate() const
{
    const std::string err = validationError();
    if (!err.empty())
        fatal("invalid experiment spec: ", err);
}

SimResult
runExperiment(const ExperimentSpec &spec)
{
    return runExperimentCk(spec, nullptr, nullptr);
}

bool
checkpointEligible(const ExperimentSpec &spec)
{
    // An explicit boundary is what makes the warm prefix independent
    // of the total access count (validation guarantees it leaves a
    // measured window). Fractional warm-up boundaries move with the
    // spec's length, so such specs never share a prefix usefully.
    return spec.system.warmupAccesses != 0;
}

std::string
warmPrefixKey(const ExperimentSpec &spec)
{
    ExperimentSpec prefix = spec;
    prefix.accesses = 0;
    prefix.quick = false;
    prefix.system.engineThreads = 1;
    return json::write(specToJson(prefix));
}

namespace {

/** One full attempt: build the System and the source from the spec
 *  and run, with whatever checkpoint hooks survive eligibility. Kept
 *  callable twice so a rejected snapshot can be retried cold against
 *  entirely fresh state -- nothing a failed load half-populated is
 *  ever reused. */
SimResult
attemptExperiment(const ExperimentSpec &spec,
                  const WarmCheckpoint *resume_from,
                  WarmCheckpoint *capture_to)
{
    System system(spec.system, makeCacheFactory(spec));

    const std::uint64_t n =
        spec.accesses != 0
            ? spec.accesses
            : defaultAccessCount(spec.capacityBytes, spec.quick);

    const auto run_through = [&](AccessSource &source) {
        const WarmCheckpoint *resume = resume_from;
        WarmCheckpoint *capture = capture_to;
        if (!checkpointEligible(spec) ||
            !system.checkpointSupported(source)) {
            resume = nullptr;
            capture = nullptr;
        }
        if (resume != nullptr && !resume->valid())
            resume = nullptr; // the capture never fired
        return system.run(source, n, resume, capture);
    };

    if (!spec.mix.empty()) {
        MixedWorkload workload(spec.mix, spec.system.numCores,
                               spec.seed);
        SimResult result = run_through(workload);
        for (std::size_t c = 0; c < result.perCore.size(); ++c)
            result.perCore[c].sourceName =
                workload.coreLabel(static_cast<int>(c));
        return result;
    }

    WorkloadParams params = spec.customWorkload
                                ? *spec.customWorkload
                                : workloadParams(spec.workload);
    params.numCores = spec.system.numCores;
    SyntheticWorkload workload(params, spec.seed);
    SimResult result = run_through(workload);
    for (CoreSimResult &core : result.perCore)
        core.sourceName = params.name;
    return result;
}

} // namespace

SimResult
runExperimentCk(const ExperimentSpec &spec,
                const WarmCheckpoint *resume_from,
                WarmCheckpoint *capture_to)
{
    spec.validate();

    if (resume_from != nullptr && resume_from->valid()) {
        // Resuming from a snapshot that fails its shape/length checks
        // mid-load (possible for snapshots that came off disk) must
        // degrade, not crash: the half-loaded System is discarded and
        // the warm-up runs cold, which the checkpoint-identity
        // contract guarantees is byte-identical.
        try {
            return attemptExperiment(spec, resume_from, capture_to);
        } catch (const SimError &e) {
            if (e.code() != SimErrc::Corrupt)
                throw;
            structuredWarn("checkpoint-rejected",
                           {{"reason", e.what()},
                            {"fallback", "cold-warmup"}});
            return attemptExperiment(spec, nullptr, capture_to);
        }
    }
    return attemptExperiment(spec, resume_from, capture_to);
}

} // namespace unison
