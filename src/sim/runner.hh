/**
 * @file
 * Parallel experiment runner: executes a batch of independent
 * ExperimentSpecs on a pool of worker threads.
 *
 * Every figure and table in the paper is a sweep of dozens of
 * (workload x design x capacity x knob) points, and each point is a
 * self-contained simulation with its own RNG seed, System and caches.
 * That makes the sweep embarrassingly parallel: results are
 * bit-identical whether a spec runs on one thread or sixteen, which a
 * ctest enforces (runner_test.cpp).
 */

#ifndef UNISON_SIM_RUNNER_HH
#define UNISON_SIM_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/experiment.hh"

namespace unison {

/** Called after each experiment completes, under an internal lock (so
 *  plain fprintf progress reporting is safe). `index` is the spec's
 *  position in the input vector. */
using ExperimentCallback =
    std::function<void(std::size_t index, const SimResult &result)>;

/**
 * Run every spec and return the results in input order.
 *
 * @param specs    independent experiment specifications
 * @param threads  worker threads; <= 1 runs serially on the calling
 *                 thread, 0 means std::thread::hardware_concurrency()
 * @param on_done  optional per-experiment completion hook
 *
 * Results are bit-identical for any thread count: each experiment owns
 * its workload RNG (seeded from the spec), its System and its caches;
 * the only shared state is the immutable Zipf sampler cache.
 */
std::vector<SimResult>
runExperiments(const std::vector<ExperimentSpec> &specs, int threads = 1,
               const ExperimentCallback &on_done = nullptr);

} // namespace unison

#endif // UNISON_SIM_RUNNER_HH
