/**
 * @file
 * Parallel experiment runner: executes a batch of independent
 * ExperimentSpecs on a pool of worker threads.
 *
 * Every figure and table in the paper is a sweep of dozens of
 * (workload x design x capacity x knob) points, and each point is a
 * self-contained simulation with its own RNG seed, System and caches.
 * That makes the sweep embarrassingly parallel: results are
 * bit-identical whether a spec runs on one thread or sixteen, which a
 * ctest enforces (runner_test.cpp).
 */

#ifndef UNISON_SIM_RUNNER_HH
#define UNISON_SIM_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/experiment.hh"

namespace unison {

/** Called after each experiment completes, under an internal lock (so
 *  plain fprintf progress reporting is safe). `index` is the spec's
 *  position in the input vector. */
using ExperimentCallback =
    std::function<void(std::size_t index, const SimResult &result)>;

/**
 * Durability seam for crash-safe sweeps: a journal that remembers
 * completed points across process deaths. Before simulating, the
 * runner offers every spec to tryLoad and *skips* the ones the
 * journal already holds; after each fresh completion it calls record
 * (serialized by the runner -- implementations may append to one
 * file without their own locking, but record() must make the result
 * durable before returning or die loudly: a silently dropped record
 * would resurrect as missing work, a silently *misrecorded* one as
 * wrong merged numbers).
 */
class ResultJournalHook
{
  public:
    virtual ~ResultJournalHook() = default;

    /** Replay a completed result for spec `index`; false = simulate. */
    virtual bool tryLoad(std::size_t index, SimResult &out) = 0;

    /** Persist a freshly computed result for spec `index`. */
    virtual void record(std::size_t index, const SimResult &result) = 0;
};

/**
 * Persistent warm-checkpoint store, keyed by warmPrefixKey. tryLoad
 * must be all-or-nothing (a miss on any integrity doubt -- the runner
 * then warms up cold, which is always correct); save is best-effort
 * and must never fail the run.
 */
class CheckpointStore
{
  public:
    virtual ~CheckpointStore() = default;

    virtual bool tryLoad(const std::string &warm_key,
                         WarmCheckpoint &out) = 0;
    virtual void save(const std::string &warm_key,
                      const WarmCheckpoint &ck) = 0;
};

/** Optional durability hooks; value-semantics bag of non-owning
 *  pointers (nullptr = feature off). */
struct RunHooks
{
    ResultJournalHook *journal = nullptr;
    CheckpointStore *checkpoints = nullptr;

    /**
     * Result-cache seam (same contract as the journal hook, different
     * provenance): a content-addressed store of completed results
     * shared *across* runs and grids. Consulted after the journal in
     * the replay pre-pass -- a hit fires on_done without simulating,
     * with byte-identical results -- and offered every fresh
     * completion via record(). Unlike the journal, record() here is an
     * optimization, not a durability contract: implementations degrade
     * (warn and drop) instead of ending the run.
     */
    ResultJournalHook *cache = nullptr;
};

/**
 * Run every spec and return the results in input order.
 *
 * @param specs    independent experiment specifications
 * @param threads  worker threads; <= 1 runs serially on the calling
 *                 thread, 0 means std::thread::hardware_concurrency()
 * @param on_done  optional per-experiment completion hook
 * @param hooks    optional crash-safety hooks: journal-replayed specs
 *                 are never simulated (on_done still fires for them,
 *                 first and in index order), and warm checkpoints are
 *                 loaded from / saved to the store when profitable
 *
 * Results are bit-identical for any thread count -- and, with a
 * journal, for any interruption/resume history: each experiment owns
 * its workload RNG (seeded from the spec), its System and its caches;
 * the only shared state is the immutable Zipf sampler cache.
 */
std::vector<SimResult>
runExperiments(const std::vector<ExperimentSpec> &specs, int threads = 1,
               const ExperimentCallback &on_done = nullptr,
               const RunHooks &hooks = {});

} // namespace unison

#endif // UNISON_SIM_RUNNER_HH
