/**
 * @file
 * The sweep durability layer: an append-only per-point result journal
 * and a persistent warm-checkpoint store. Together they make a killed
 * shard restartable with nothing lost but the point that was in
 * flight -- and provably so, because replayed-and-merged output is
 * byte-identical to an uninterrupted run (ctest- and CI-enforced).
 *
 * # Result journal
 *
 * A journal file is a sequence of self-delimiting records, one per
 * *completed* experiment point, appended and fsynced the moment the
 * point finishes:
 *
 *     u32 magic 'UJRL'   (0x4c524a55)
 *     u32 payloadLen
 *     u32 payloadCrc     CRC-32 of the payload bytes
 *     u8  payload[]      JSON: {journalRecord, gridHash, codeVersion,
 *                               index, label, spec, result}
 *
 * Records are keyed by (grid fingerprint, point label, code version):
 * the fingerprint pins the exact grid the spec expanded to, the label
 * is the point's stable identity inside it, and the code version
 * refuses replay across behaviour-changing builds. Loading walks the
 * frames and stops at the first damaged one -- a torn tail after a
 * crash is *expected* and reported, never trusted; well-formed records
 * from another run/build are counted and skipped. Resume then
 * truncates the file back to the valid prefix and re-runs only the
 * missing points.
 *
 * # Warm-checkpoint store
 *
 * One framed file (common/file_io.hh header: magic/version/length/CRC)
 * per warm-prefix key, holding the WarmCheckpoint bytes plus the full
 * key string for identity verification. A file that fails any check
 * is rejected with a structured warning and the run falls back to a
 * cold warm-up -- corrupt state is never loaded silently.
 */

#ifndef UNISON_SIM_JOURNAL_HH
#define UNISON_SIM_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/runner.hh"
#include "sim/spec_json.hh"

namespace unison {

/** What a journal load saw, for the caller's structured reporting. */
struct JournalLoadSummary
{
    std::size_t accepted = 0;   //!< records matching (hash, version)
    std::size_t mismatched = 0; //!< well-formed, but another run/build
    bool torn = false;          //!< stopped early at a damaged frame
    std::string tornReason;     //!< classification of the damage
    /** Byte length of the clean record prefix; everything after it is
     *  untrusted and must be truncated away before appending. */
    std::uint64_t validBytes = 0;
};

class ResultJournal
{
  public:
    /** Append one completed point, fsynced before returning success.
     *  A failure here means durability is gone (full disk, dead
     *  device): callers end the run with the Io class rather than
     *  continue un-journaled. */
    static SimStatus append(const std::string &path,
                            const std::string &grid_hash,
                            const std::string &code_version,
                            const ResultPoint &point);

    /**
     * Read every record of the clean prefix that matches
     * (grid_hash, code_version). A missing file is success with zero
     * records; framing damage ends the walk at the valid prefix
     * (summary->torn). Only unreadable files (I/O) fail.
     */
    static SimStatus load(const std::string &path,
                          const std::string &grid_hash,
                          const std::string &code_version,
                          std::vector<ResultPoint> &out,
                          JournalLoadSummary *summary = nullptr);

    /** Cut the file back to its clean record prefix (after a torn
     *  load), so subsequent appends extend valid frames only. */
    static SimStatus truncateTo(const std::string &path,
                                std::uint64_t valid_bytes);
};

/**
 * CheckpointStore over a directory of framed `<fnv16-of-key>.ckpt`
 * files. tryLoad never throws and never half-loads: any integrity or
 * identity failure emits one structured "checkpoint-rejected" warning
 * and reports a miss, which the runner turns into a cold warm-up.
 * save failures likewise warn ("checkpoint-save-failed") and drop the
 * snapshot -- persistence is an optimization, never a correctness
 * dependency.
 */
class FileCheckpointStore : public CheckpointStore
{
  public:
    explicit FileCheckpointStore(std::string dir);

    bool tryLoad(const std::string &warm_key,
                 WarmCheckpoint &out) override;
    void save(const std::string &warm_key,
              const WarmCheckpoint &ck) override;

    /** The file a key lives in (exposed for tests and tooling). */
    std::string pathFor(const std::string &warm_key) const;

  private:
    std::string dir_;
};

/** FNV-1a 64-bit fingerprint as 16 hex chars (same construction as
 *  gridFingerprint; shared by checkpoint file naming). */
std::string fnvFingerprint(const std::string &text);

} // namespace unison

#endif // UNISON_SIM_JOURNAL_HH
