#include "sim/system.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <thread>

#include "common/logging.hh"
#include "common/state_io.hh"
#include "baselines/alloy_cache.hh"
#include "baselines/footprint_cache.hh"
#include "baselines/ideal_cache.hh"
#include "baselines/lohhill_cache.hh"
#include "baselines/naive_block_fp.hh"
#include "baselines/naive_tagged_page.hh"
#include "baselines/no_cache.hh"
#include "core/alloy_fp.hh"
#include "core/unison_cache.hh"
#include "core/unison_wp.hh"
#include "trace/mix.hh"
#include "trace/scenarios.hh"
#include "trace/tracefile.hh"
#include "trace/workload.hh"

namespace unison {

namespace {

/**
 * The serial engine's front end: generate the next reference and probe
 * the SRAM hierarchy inline, exactly the pre-existing timing loop.
 * (A front end provides next/access/resetWindow/l1Totals; runLoopBody
 * monomorphizes on it, so this wrapper costs nothing.)
 */
template <typename Source>
struct SerialEngineFrontEnd
{
    Source &source;
    CacheHierarchy *hier;
    int numCores;

    bool
    next(int core, MemoryAccess &acc)
    {
        return source.next(core, acc);
    }

    HierarchyOutcome
    access(int core, const MemoryAccess &acc)
    {
        return hier->access(core, acc.addr, acc.isWrite);
    }

    void resetWindow() {}

    void
    l1Totals(std::uint64_t &accesses, std::uint64_t &misses) const
    {
        accesses = 0;
        misses = 0;
        for (int c = 0; c < numCores; ++c) {
            accesses += hier->l1(c).stats().accesses.value();
            misses += hier->l1(c).stats().misses.value();
        }
    }
};

/** One producer-to-commit handoff record of the epoch-sharded engine:
 *  a reference plus its (stats-free) private-L1 outcome. */
struct EngineRecord
{
    MemoryAccess acc;
    SramAccessResult l1res;
    bool end = false; //!< the core's stream drained (acc/l1res unset)
};

/**
 * Single-producer single-consumer ring of EngineRecords for one core.
 * head/tail are free-running counters over a power-of-two slot array;
 * the producer publishes in epoch-sized chunks (one release store per
 * epoch, not per record), the commit thread consumes one at a time.
 */
struct EngineRing
{
    static constexpr std::uint64_t kCapacity = 4096;
    static constexpr std::uint64_t kMask = kCapacity - 1;

    std::vector<EngineRecord> slots =
        std::vector<EngineRecord>(kCapacity);

    /** Producer side (own cache line: no false sharing with commit). */
    alignas(64) std::atomic<std::uint64_t> head{0}; //!< published
    std::uint64_t produced = 0; //!< includes not-yet-published slots
    std::uint64_t tailCache = 0;

    /** Commit side. */
    alignas(64) std::atomic<std::uint64_t> tail{0}; //!< consumed
    std::uint64_t consumed = 0;
    std::uint64_t headCache = 0;
};

/**
 * The epoch-sharded engine front end. Producer threads own disjoint
 * core shards and run everything that is a pure function of one
 * core's stream -- reference generation and the private L1 -- ahead of
 * the commit thread, which pops records in exactly the order the
 * serial scheduler would have processed them and replays the shared
 * levels (L2, DRAM cache, off-chip) through finishAccess. Every
 * decision the shared state sees is therefore made in serial order,
 * which is the whole bit-identity argument; the producers' relative
 * progress only changes *when* records were precomputed, never their
 * content (per-core-deterministic sources) nor their commit order.
 */
template <typename Source>
class ThreadedEngine
{
  public:
    /** References per publication chunk (the epoch). */
    static constexpr std::uint64_t kEpoch = 1024;

    ThreadedEngine(Source &source, CacheHierarchy *hier, int src_cores,
                   int num_threads)
        : source_(source),
          hier_(hier),
          srcCores_(src_cores),
          rings_(std::make_unique<EngineRing[]>(
              static_cast<std::size_t>(src_cores)))
    {
        const int workers = std::min(num_threads, src_cores);
        threads_.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t)
            threads_.emplace_back(
                [this, t, workers] { producerLoop(t, workers); });
    }

    ~ThreadedEngine()
    {
        stop_.store(true, std::memory_order_release);
        for (std::thread &t : threads_)
            t.join();
    }

    bool
    next(int core, MemoryAccess &acc)
    {
        EngineRing &ring = rings_[core];
        const std::uint64_t at = ring.consumed;
        while (at == ring.headCache) {
            ring.headCache = ring.head.load(std::memory_order_acquire);
            if (at == ring.headCache)
                std::this_thread::yield();
        }
        const EngineRecord &rec = ring.slots[at & EngineRing::kMask];
        if (rec.end)
            return false; // the EOF slot is never consumed: sticky
        acc = rec.acc;
        pending_ = rec.l1res;
        ring.consumed = at + 1;
        ring.tail.store(at + 1, std::memory_order_release);
        return true;
    }

    HierarchyOutcome
    access(int, const MemoryAccess &acc)
    {
        // Producers probe the L1s stats-free (accessQuiet); the L1
        // totals the serial engine reads from the L1 stats structs are
        // counted here instead, one access per reference.
        ++l1Accesses_;
        if (!pending_.hit)
            ++l1Misses_;
        return hier_->finishAccess(pending_, acc.addr, acc.isWrite);
    }

    void
    resetWindow()
    {
        l1Accesses_ = 0;
        l1Misses_ = 0;
    }

    void
    l1Totals(std::uint64_t &accesses, std::uint64_t &misses) const
    {
        accesses = l1Accesses_;
        misses = l1Misses_;
    }

  private:
    void
    producerLoop(int t, int workers)
    {
        // Round-robin shard: worker t owns cores t, t+workers, ...
        std::vector<int> mine;
        for (int c = t; c < srcCores_; c += workers)
            mine.push_back(c);
        std::vector<bool> done(mine.size(), false);
        std::size_t remaining = mine.size();

        while (remaining > 0 &&
               !stop_.load(std::memory_order_acquire)) {
            bool progressed = false;
            for (std::size_t k = 0; k < mine.size(); ++k) {
                if (done[k])
                    continue;
                const int core = mine[k];
                EngineRing &ring = rings_[core];
                SetAssocCache &l1 = hier_->l1Front(core);

                ring.tailCache =
                    ring.tail.load(std::memory_order_acquire);
                const std::uint64_t room = ring.tailCache +
                                           EngineRing::kCapacity -
                                           ring.produced;
                const std::uint64_t n = std::min(room, kEpoch);
                if (n == 0)
                    continue; // ring full; serve the other cores
                std::uint64_t filled = 0;
                for (; filled < n; ++filled) {
                    EngineRecord &rec =
                        ring.slots[(ring.produced + filled) &
                                   EngineRing::kMask];
                    if (!source_.next(core, rec.acc)) {
                        rec.end = true;
                        ++filled;
                        done[k] = true;
                        --remaining;
                        break;
                    }
                    rec.end = false;
                    rec.l1res =
                        l1.accessQuiet(rec.acc.addr, rec.acc.isWrite);
                }
                if (filled != 0) {
                    ring.produced += filled;
                    ring.head.store(ring.produced,
                                    std::memory_order_release);
                    progressed = true;
                }
            }
            if (!progressed)
                std::this_thread::yield();
        }
    }

    Source &source_;
    CacheHierarchy *hier_;
    int srcCores_;
    std::unique_ptr<EngineRing[]> rings_;
    std::vector<std::thread> threads_;
    std::atomic<bool> stop_{false};

    /** L1 outcome of the record the commit thread just popped. */
    SramAccessResult pending_{};
    std::uint64_t l1Accesses_ = 0;
    std::uint64_t l1Misses_ = 0;
};

} // namespace

namespace {

/** The off-chip pool obeys the system-wide backend selection. */
DramOrganization
offchipOrgWithBackend(const SystemConfig &config)
{
    DramOrganization org = config.offchipOrg;
    org.backend = config.memoryBackend;
    return org;
}

} // namespace

System::System(const SystemConfig &config, const CacheFactory &factory)
    : config_(config),
      offchip_(makeMemoryBackend(offchipOrgWithBackend(config),
                                 config.offchipTiming)),
      hierarchy_(std::make_unique<CacheHierarchy>(config.numCores,
                                                  config.hierarchy))
{
    UNISON_ASSERT(config_.numCores >= 1, "system needs cores");
    UNISON_ASSERT(config_.maxOutstandingMisses >= 1,
                  "need at least one outstanding miss");
    UNISON_ASSERT(config_.warmFraction >= 0.0 &&
                      config_.warmFraction <= 1.0,
                  "warmFraction outside [0, 1]");
    UNISON_ASSERT(config_.engineThreads >= 1,
                  "engineThreads must be at least 1");
    cache_ = factory(offchip_.get());
    UNISON_ASSERT(cache_ != nullptr, "cache factory returned null");
}

void
System::resetAllStats()
{
    hierarchy_->resetStats();
    cache_->resetStats();
    offchip_->resetStats();
}

SimResult
System::run(AccessSource &source, std::uint64_t total_accesses)
{
    // First dispatch stage: specialize the hot loop on the concrete
    // source type, turning the per-access virtual next() into a
    // direct, inlinable call -- the dispatch happens once per run
    // instead of once per access. The kind() tag replaces the earlier
    // dynamic_cast chain: a new source type cannot compile without
    // declaring a kind, and a new kind value makes this switch warn
    // (-Wswitch) until it is routed explicitly.
    switch (source.kind()) {
      case AccessSourceKind::Synthetic:
        return dispatchCache(static_cast<SyntheticWorkload &>(source),
                             total_accesses);
      case AccessSourceKind::Mixed:
        return dispatchCache(static_cast<MixedWorkload &>(source),
                             total_accesses);
      case AccessSourceKind::TraceFile:
        return dispatchCache(static_cast<TraceReader &>(source),
                             total_accesses);
      case AccessSourceKind::Scenario:
      case AccessSourceKind::Other:
        // Explicitly virtual: single-core scenarios are driven through
        // MixedWorkload in practice, and Other is the opt-in slow path.
        return dispatchCache(source, total_accesses);
    }
    panic("unhandled AccessSourceKind");
}

SimResult
System::run(AccessSource &source, std::uint64_t total_accesses,
            const WarmCheckpoint *resume_from, WarmCheckpoint *capture_to)
{
    if ((resume_from != nullptr || capture_to != nullptr) &&
        !checkpointSupported(source))
        fatal("design '", cache_->name(),
              "' or the access source does not support warm-state "
              "checkpoints");
    resumeFrom_ = resume_from;
    captureTo_ = capture_to;
    SimResult result = run(source, total_accesses);
    resumeFrom_ = nullptr;
    captureTo_ = nullptr;
    return result;
}

template <typename Source>
SimResult
System::dispatchCache(Source &source, std::uint64_t total_accesses)
{
    // Second dispatch stage: monomorphize on the concrete cache type.
    // Every design makeCacheFactory can build is covered here, and all
    // the concrete classes are final, so cache.access(req) in the loop
    // body compiles to a direct (inlinable) call -- zero virtual calls
    // per simulated access for built-in designs.
    DramCache &cache = *cache_;
    switch (cache.kind()) {
      case DramCacheKind::Unison:
        return runLoop(source, static_cast<UnisonCache &>(cache),
                       total_accesses);
      case DramCacheKind::Alloy:
        return runLoop(source, static_cast<AlloyCache &>(cache),
                       total_accesses);
      case DramCacheKind::Footprint:
        return runLoop(source, static_cast<FootprintCache &>(cache),
                       total_accesses);
      case DramCacheKind::LohHill:
        return runLoop(source, static_cast<LohHillCache &>(cache),
                       total_accesses);
      case DramCacheKind::NaiveBlockFp:
        return runLoop(source, static_cast<NaiveBlockFpCache &>(cache),
                       total_accesses);
      case DramCacheKind::NaiveTaggedPage:
        return runLoop(source,
                       static_cast<NaiveTaggedPageCache &>(cache),
                       total_accesses);
      case DramCacheKind::Ideal:
        return runLoop(source, static_cast<IdealCache &>(cache),
                       total_accesses);
      case DramCacheKind::NoCache:
        return runLoop(source, static_cast<NoCache &>(cache),
                       total_accesses);
      case DramCacheKind::AlloyFp:
        return runLoop(source, static_cast<AlloyFpCache &>(cache),
                       total_accesses);
      case DramCacheKind::UnisonWp:
        return runLoop(source, static_cast<UnisonWpCache &>(cache),
                       total_accesses);
      case DramCacheKind::Other:
        return runLoop(source, cache, total_accesses);
    }
    panic("unhandled DramCacheKind");
}

template <typename Source, typename Cache>
SimResult
System::runLoop(Source &source, Cache &cache,
                std::uint64_t total_accesses)
{
    // Engine selection. The epoch-sharded engine needs (a) more than
    // one engine thread requested, (b) more than one core to shard,
    // (c) no checkpoint hooks (the serialized L1/source state must be
    // taken at an exact access boundary, which the run-ahead producers
    // have already crossed), and (d) a source whose per-core streams
    // are deterministic in isolation -- the content of core c's next
    // reference must not depend on how far the other cores have
    // advanced. Anything else silently uses the serial engine; both
    // produce bit-identical SimResults.
    if (config_.engineThreads > 1 && source.numCores() > 1 &&
        resumeFrom_ == nullptr && captureTo_ == nullptr &&
        source.perCoreDeterministic()) {
        ThreadedEngine<Source> fe(source, hierarchy_.get(),
                                  source.numCores(),
                                  config_.engineThreads);
        return runLoopBody(fe, source, cache, total_accesses);
    }
    SerialEngineFrontEnd<Source> fe{source, hierarchy_.get(),
                                    config_.numCores};
    return runLoopBody(fe, source, cache, total_accesses);
}

template <typename FrontEnd, typename Source, typename Cache>
SimResult
System::runLoopBody(FrontEnd &fe, Source &source, Cache &cache,
                    std::uint64_t total_accesses)
{
    UNISON_ASSERT(total_accesses > 0, "empty simulation");
    UNISON_ASSERT(source.numCores() <= config_.numCores,
                  "trace has more cores than the system");
    UNISON_ASSERT(source.numCores() <= kMaxCores,
                  "scheduler supports at most ", kMaxCores, " cores");

    std::vector<double> core_time(config_.numCores, 0.0);
    // The scheduler's view of the clocks: mirrors core_time, except a
    // core that exhausted its access budget parks at +inf so the
    // min-reduction below never selects it again.
    std::vector<double> sched_time(config_.numCores, 0.0);

    // Per-core ring of in-flight DRAM-level load completions: issuing
    // beyond maxOutstandingMisses stalls until the oldest resolves.
    // One flat allocation (core-major) instead of a vector-of-vectors.
    const int window = config_.maxOutstandingMisses;
    std::vector<double> inflight(
        static_cast<std::size_t>(config_.numCores) * window, 0.0);
    std::vector<int> inflight_head(config_.numCores, 0);

    // Warm-up window: [0, warm_count) only warms state; every
    // statistic resets at the boundary so measurement covers exactly
    // [warm_count, end). An explicit warmupAccesses overrides the
    // fractional default.
    const std::uint64_t warm_count =
        config_.warmupAccesses != 0
            ? config_.warmupAccesses
            : static_cast<std::uint64_t>(
                  static_cast<double>(total_accesses) *
                  config_.warmFraction);
    bool measuring = warm_count == 0;

    PerCoreStats per_core(config_.numCores);
    std::vector<double> warm_base(config_.numCores, 0.0);

    // Demand DRAM-cache latency bookkeeping (reads reaching it).
    double dc_latency_sum = 0.0;
    std::uint64_t dc_latency_samples = 0;
    double miss_latency_sum = 0.0;
    std::uint64_t miss_latency_samples = 0;

    const int src_cores = source.numCores();

    // Per-core reference budgets (0 = unlimited): the run drains when
    // every core has issued its share, which pins each program of a
    // mix to the same amount of work regardless of relative speed.
    const bool budgeted = config_.perCoreAccessBudget != 0;
    std::vector<std::uint64_t> budget_left(
        config_.numCores,
        budgeted ? config_.perCoreAccessBudget
                 : std::numeric_limits<std::uint64_t>::max());
    int active_cores = src_cores;

    // Unbudgeted runs (the common case) schedule straight off
    // core_time and skip the budget bookkeeping entirely, keeping the
    // hot loop identical to the budget-free engine.
    const double *const clocks =
        budgeted ? sched_time.data() : core_time.data();

    const auto reset_measurement = [&]() {
        resetAllStats();
        fe.resetWindow();
        warm_base = core_time;
        per_core.reset();
        dc_latency_sum = 0.0;
        dc_latency_samples = 0;
        miss_latency_sum = 0.0;
        miss_latency_samples = 0;
    };

    // Min-time scheduling: always advance the core whose clock is
    // furthest behind, so DRAM requests arrive in near-global time
    // order and queueing behaves realistically. Non-negative IEEE
    // doubles order identically to their bit patterns, so each clock
    // becomes an integer key with the core id packed into the low
    // (mantissa) bits: the min key yields both the laggard and, on
    // (quantized) ties, the lowest id. The id field is 8 bits up to
    // 256 cores -- which keeps every historical (<= 256-core) run's
    // tie quantization, and therefore its output, byte-identical --
    // and widens to the next power of two beyond that (kMaxCores =
    // 1024 uses 10 of the 52 mantissa bits; the coarser tie
    // quantization is still ~2^-42 relative). Keys live in a
    // persistent array -- only the advanced core's clock changes per
    // iteration, so one key is recomputed per access and the
    // selection is a branchless min-reduction (four independent cmov
    // chains) over ready-made keys. (Two cleverer schedulers were
    // tried and measured slower here: a log-depth tournament tree
    // serializes on store-to-load forwarding, and a cached-runner-up
    // scheme pessimizes the whole loop with its rescan branch.)
    const std::uint64_t id_mask =
        src_cores <= 256
            ? 255ull
            : std::bit_ceil(static_cast<std::uint64_t>(src_cores)) - 1;
    const auto key_of = [clocks, id_mask](int c) {
        return (std::bit_cast<std::uint64_t>(clocks[c]) & ~id_mask) |
               static_cast<std::uint64_t>(c);
    };
    // Pad to at least four entries with the maximum key, which can
    // never win the min against a real clock key (real keys carry a
    // finite or +inf clock pattern, never all-ones).
    std::vector<std::uint64_t> keys(
        static_cast<std::size_t>(std::max(src_cores, 4)), ~0ull);
    for (int c = 0; c < src_cores; ++c)
        keys[c] = key_of(c);

    // Warm-checkpoint resume: deserialize the exact state a cold run
    // has when i reaches warm_count (the snapshot below is taken at
    // that point, before the boundary reset), then enter the loop at
    // i = warm_count with measuring still false -- the boundary branch
    // fires the same reset_measurement() a cold run would, so the two
    // paths are byte-identical from the boundary on.
    std::uint64_t first_access = 0;
    if (resumeFrom_ != nullptr) {
        const WarmCheckpoint &ck = *resumeFrom_;
        if (!ck.valid() || ck.warmAccesses != warm_count ||
            warm_count == 0 || total_accesses <= warm_count)
            throwCorrupt("checkpoint boundary ", ck.warmAccesses,
                         " does not match the run's warm-up window ",
                         warm_count, " of ", total_accesses,
                         " accesses");
        StateReader in(ck.bytes);
        source.loadState(in);
        hierarchy_->loadState(in);
        cache_->loadState(in);
        offchip_->loadState(in);
        in.podVectorExact(core_time);
        in.podVectorExact(sched_time);
        in.podVectorExact(inflight);
        in.podVectorExact(inflight_head);
        in.podVectorExact(budget_left);
        in.pod(active_cores);
        in.expectEnd();
        // A snapshot that does not deserialize cleanly must never be
        // half-trusted: surface it as a classified error and let the
        // experiment layer rebuild the System and run the warm-up
        // cold (runExperimentCk catches this).
        in.throwIfFailed();
        // podVectorExact filled the vectors in place, so the `clocks`
        // alias above is still valid; only the keys need refreshing.
        for (int c = 0; c < src_cores; ++c)
            keys[c] = key_of(c);
        first_access = warm_count;
    }

    MemoryAccess acc;
    for (std::uint64_t i = first_access;
         i < total_accesses && active_cores > 0; ++i) {
        if (i == warm_count && !measuring) {
            // End of warm-up, before access warm_count is processed:
            // nothing from [0, warm_count) leaks into measurement.
            if (captureTo_ != nullptr) {
                // Snapshot the pre-reset state: what a resumed run
                // restores is exactly what the reset below acts on.
                StateWriter out;
                source.saveState(out);
                hierarchy_->saveState(out);
                cache_->saveState(out);
                offchip_->saveState(out);
                out.podVector(core_time);
                out.podVector(sched_time);
                out.podVector(inflight);
                out.podVector(inflight_head);
                out.podVector(budget_left);
                out.pod(active_cores);
                captureTo_->warmAccesses = warm_count;
                captureTo_->bytes = std::move(out).take();
            }
            reset_measurement();
            measuring = true;
        }

        std::uint64_t b0 = keys[0];
        std::uint64_t b1 = keys[1];
        std::uint64_t b2 = keys[2];
        std::uint64_t b3 = keys[3];
        for (int c = 4; c + 3 < src_cores; c += 4) {
            const std::uint64_t k0 = keys[c];
            const std::uint64_t k1 = keys[c + 1];
            const std::uint64_t k2 = keys[c + 2];
            const std::uint64_t k3 = keys[c + 3];
            b0 = k0 < b0 ? k0 : b0;
            b1 = k1 < b1 ? k1 : b1;
            b2 = k2 < b2 ? k2 : b2;
            b3 = k3 < b3 ? k3 : b3;
        }
        for (int c = std::max(src_cores & ~3, 4); c < src_cores; ++c) {
            const std::uint64_t k = keys[c];
            b0 = k < b0 ? k : b0;
        }
        b0 = b1 < b0 ? b1 : b0;
        b2 = b3 < b2 ? b3 : b2;
        const int core =
            static_cast<int>((b2 < b0 ? b2 : b0) & id_mask);

        double &now = core_time[core];
        if (!fe.next(core, acc)) {
            // Finite sources (trace files) may drain one core's stream
            // slightly before the requested total: stop measuring.
            if (i == 0)
                fatal("access source produced no references");
            break;
        }
        now += acc.instrsBefore * config_.cpiBase;

        const HierarchyOutcome outcome = fe.access(core, acc);

        double load_latency = outcome.sramLatency;

        if (outcome.level == HierarchyOutcome::Level::Beyond) {
            DramCacheRequest req;
            req.addr = acc.addr;
            req.pc = acc.pc;
            req.core = core;
            req.isWrite = acc.isWrite;
            req.cycle = static_cast<Cycle>(now) + outcome.sramLatency;

            const DramCacheResult res = cache.access(req);
            const double dram_latency =
                static_cast<double>(res.doneAt - req.cycle);
            if (!acc.isWrite) {
                load_latency += dram_latency;
                dc_latency_sum += dram_latency;
                ++dc_latency_samples;
                if (!res.hit) {
                    miss_latency_sum += dram_latency;
                    ++miss_latency_samples;
                }
                // Overlap the miss with up to `window` others: stall
                // only when the MSHR window is exhausted.
                double *const ring =
                    &inflight[static_cast<std::size_t>(core) * window];
                int &head = inflight_head[core];
                const double completion =
                    static_cast<double>(res.doneAt);
                now = std::max(now + outcome.sramLatency, ring[head]);
                ring[head] = completion;
                head = head + 1 == window ? 0 : head + 1;
            }
        } else if (!acc.isWrite) {
            now += outcome.sramLatency;
        }

        // Dirty SRAM victims flow down to the DRAM-cache level too.
        for (int w = 0; w < outcome.numWritebacks; ++w) {
            DramCacheRequest wb;
            wb.addr = outcome.writebackAddr[w];
            wb.pc = acc.pc;
            wb.core = core;
            wb.isWrite = true;
            wb.cycle = static_cast<Cycle>(now) + outcome.sramLatency;
            cache.access(wb);
        }

        if (acc.isWrite) {
            // Stores retire through the store buffer: charge only the
            // L1 issue slot.
            now += 1.0;
        }

        CoreWindowStats &cw = per_core[core];
        cw.instructions += acc.instrsBefore + 1;
        ++cw.references;
        if (!acc.isWrite) {
            ++cw.loads;
            cw.loadLatencySum += load_latency;
        }

        if (budgeted) {
            if (--budget_left[core] == 0) {
                sched_time[core] =
                    std::numeric_limits<double>::infinity();
                --active_cores;
            } else {
                sched_time[core] = now;
            }
        }

        // Only this core's clock moved: refresh its key alone.
        keys[core] = key_of(core);
    }

    if (!measuring) {
        // The stream (or the budgets) drained inside the warm-up
        // window: the measured window is empty, not the whole run.
        reset_measurement();
    }

    SimResult result;
    result.designName = cache_->name();

    double max_elapsed = 0.0;
    for (int c = 0; c < config_.numCores; ++c)
        max_elapsed = std::max(max_elapsed, core_time[c] - warm_base[c]);
    result.cycles = static_cast<Cycle>(max_elapsed);
    result.instructions = per_core.totalInstructions();
    result.references = per_core.totalReferences();
    result.uipc = max_elapsed > 0.0
                      ? static_cast<double>(result.instructions) /
                            (max_elapsed * config_.numCores)
                      : 0.0;

    result.perCore.resize(static_cast<std::size_t>(src_cores));
    for (int c = 0; c < src_cores; ++c) {
        const CoreWindowStats &cw = per_core[c];
        CoreSimResult &out = result.perCore[static_cast<std::size_t>(c)];
        const double elapsed = core_time[c] - warm_base[c];
        out.instructions = cw.instructions;
        out.references = cw.references;
        out.cycles = static_cast<Cycle>(elapsed);
        out.uipc = elapsed > 0.0
                       ? static_cast<double>(cw.instructions) / elapsed
                       : 0.0;
        out.amatCycles = cw.amatCycles();
    }

    // SRAM hierarchy miss rates (the front end aggregates L1 over
    // cores -- from the per-L1 stats structs in the serial engine,
    // from commit-side counters in the threaded one).
    std::uint64_t l1_acc = 0, l1_miss = 0;
    fe.l1Totals(l1_acc, l1_miss);
    result.l1MissPercent = percent(l1_miss, l1_acc);
    result.l2MissPercent =
        percent(hierarchy_->l2().stats().misses.value(),
                hierarchy_->l2().stats().accesses.value());

    result.cache = cache_->stats();
    result.offchip = offchip_->stats();
    result.offchipQueue = offchip_->queueStats();
    if (cache_->stackedDram() != nullptr) {
        result.stacked = cache_->stackedDram()->stats();
        result.stackedQueue = cache_->stackedDram()->queueStats();
    }

    result.avgDramCacheLatency =
        dc_latency_samples ? dc_latency_sum / dc_latency_samples : 0.0;
    result.avgMemLatency =
        miss_latency_samples ? miss_latency_sum / miss_latency_samples
                             : 0.0;

    fillPredictorStats(result);
    return result;
}

void
System::fillPredictorStats(SimResult &result) const
{
    // Design-specific accuracy fields, recovered through the kind tag
    // (dynamic_cast only for out-of-tree subclasses).
    const UnisonCache *uc = nullptr;
    const UnisonWpCache *wc = nullptr;
    const AlloyCache *ac = nullptr;
    switch (cache_->kind()) {
      case DramCacheKind::Unison:
        uc = static_cast<const UnisonCache *>(cache_.get());
        break;
      case DramCacheKind::UnisonWp:
        wc = static_cast<const UnisonWpCache *>(cache_.get());
        break;
      case DramCacheKind::Alloy:
        ac = static_cast<const AlloyCache *>(cache_.get());
        break;
      case DramCacheKind::Other:
        uc = dynamic_cast<const UnisonCache *>(cache_.get());
        ac = dynamic_cast<const AlloyCache *>(cache_.get());
        break;
      default:
        break;
    }
    if (uc != nullptr) {
        result.wpAccuracyPercent =
            uc->wayPredictorStats().accuracyPercent();
        if (uc->missPredictor() != nullptr) {
            result.mpAccuracyPercent =
                uc->missPredictor()->stats().accuracyPercent();
            result.mpOverfetchPercent =
                uc->missPredictor()->stats().overfetchPercent();
        }
    } else if (wc != nullptr) {
        result.wpAccuracyPercent =
            wc->wayPredictorStats().accuracyPercent();
        if (wc->missPredictor() != nullptr) {
            result.mpAccuracyPercent =
                wc->missPredictor()->stats().accuracyPercent();
            result.mpOverfetchPercent =
                wc->missPredictor()->stats().overfetchPercent();
        }
    } else if (ac != nullptr) {
        if (ac->missPredictor() != nullptr) {
            result.mpAccuracyPercent =
                ac->missPredictor()->stats().accuracyPercent();
            result.mpOverfetchPercent =
                ac->missPredictor()->stats().overfetchPercent();
        }
    }
}

} // namespace unison
