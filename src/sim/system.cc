#include "sim/system.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/logging.hh"
#include "baselines/alloy_cache.hh"
#include "core/unison_cache.hh"
#include "trace/mix.hh"
#include "trace/workload.hh"

namespace unison {

System::System(const SystemConfig &config, const CacheFactory &factory)
    : config_(config),
      offchip_(std::make_unique<DramModule>(config.offchipOrg,
                                            config.offchipTiming)),
      hierarchy_(std::make_unique<CacheHierarchy>(config.numCores,
                                                  config.hierarchy))
{
    UNISON_ASSERT(config_.numCores >= 1, "system needs cores");
    UNISON_ASSERT(config_.maxOutstandingMisses >= 1,
                  "need at least one outstanding miss");
    UNISON_ASSERT(config_.warmFraction >= 0.0 &&
                      config_.warmFraction <= 1.0,
                  "warmFraction outside [0, 1]");
    cache_ = factory(offchip_.get());
    UNISON_ASSERT(cache_ != nullptr, "cache factory returned null");
}

void
System::resetAllStats()
{
    hierarchy_->resetStats();
    cache_->resetStats();
    offchip_->resetStats();
}

SimResult
System::run(AccessSource &source, std::uint64_t total_accesses)
{
    // Specialize the hot loop on the concrete source type: for the
    // synthetic workloads (the common case by far) this turns the
    // per-access virtual next() into a direct, inlinable call -- the
    // dispatch happens once per run instead of once per access.
    if (auto *synth = dynamic_cast<SyntheticWorkload *>(&source))
        return runLoop(*synth, total_accesses);
    if (auto *mix = dynamic_cast<MixedWorkload *>(&source))
        return runLoop(*mix, total_accesses);
    return runLoop(source, total_accesses);
}

template <typename Source>
SimResult
System::runLoop(Source &source, std::uint64_t total_accesses)
{
    UNISON_ASSERT(total_accesses > 0, "empty simulation");
    UNISON_ASSERT(source.numCores() <= config_.numCores,
                  "trace has more cores than the system");
    UNISON_ASSERT(source.numCores() <= 255,
                  "scheduler packs core ids into 8 bits");

    std::vector<double> core_time(config_.numCores, 0.0);
    // The scheduler's view of the clocks: mirrors core_time, except a
    // core that exhausted its access budget parks at +inf so the
    // min-reduction below never selects it again.
    std::vector<double> sched_time(config_.numCores, 0.0);

    // Per-core ring of in-flight DRAM-level load completions: issuing
    // beyond maxOutstandingMisses stalls until the oldest resolves.
    const int window = config_.maxOutstandingMisses;
    std::vector<std::vector<double>> inflight(
        config_.numCores, std::vector<double>(window, 0.0));
    std::vector<int> inflight_head(config_.numCores, 0);

    // Warm-up window: [0, warm_count) only warms state; every
    // statistic resets at the boundary so measurement covers exactly
    // [warm_count, end). An explicit warmupAccesses overrides the
    // fractional default.
    const std::uint64_t warm_count =
        config_.warmupAccesses != 0
            ? config_.warmupAccesses
            : static_cast<std::uint64_t>(
                  static_cast<double>(total_accesses) *
                  config_.warmFraction);
    bool measuring = warm_count == 0;

    PerCoreStats per_core(config_.numCores);
    std::vector<double> warm_base(config_.numCores, 0.0);

    // Demand DRAM-cache latency bookkeeping (reads reaching it).
    double dc_latency_sum = 0.0;
    std::uint64_t dc_latency_samples = 0;
    double miss_latency_sum = 0.0;
    std::uint64_t miss_latency_samples = 0;

    const int src_cores = source.numCores();

    // Per-core reference budgets (0 = unlimited): the run drains when
    // every core has issued its share, which pins each program of a
    // mix to the same amount of work regardless of relative speed.
    const bool budgeted = config_.perCoreAccessBudget != 0;
    std::vector<std::uint64_t> budget_left(
        config_.numCores,
        budgeted ? config_.perCoreAccessBudget
                 : std::numeric_limits<std::uint64_t>::max());
    int active_cores = src_cores;

    CacheHierarchy *const hier = hierarchy_.get();
    DramCache *const cache = cache_.get();

    // Unbudgeted runs (the common case) schedule straight off
    // core_time and skip the budget bookkeeping entirely, keeping the
    // hot loop identical to the budget-free engine.
    const double *const clocks =
        budgeted ? sched_time.data() : core_time.data();

    const auto reset_measurement = [&]() {
        resetAllStats();
        warm_base = core_time;
        per_core.reset();
        dc_latency_sum = 0.0;
        dc_latency_samples = 0;
        miss_latency_sum = 0.0;
        miss_latency_samples = 0;
    };

    MemoryAccess acc;
    for (std::uint64_t i = 0;
         i < total_accesses && active_cores > 0; ++i) {
        if (i == warm_count && !measuring) {
            // End of warm-up, before access warm_count is processed:
            // nothing from [0, warm_count) leaks into measurement.
            reset_measurement();
            measuring = true;
        }

        // Min-time scheduling: always advance the core whose clock is
        // furthest behind, so DRAM requests arrive in near-global time
        // order and queueing behaves realistically. Non-negative IEEE
        // doubles order identically to their bit patterns, so each
        // clock becomes an integer key with the core id packed into
        // the low 8 (mantissa) bits: one branchless min-reduction --
        // four independent cmov chains, replacing the serial
        // compare-and-branch scan that gated every access -- yields
        // both the laggard and, on (quantized) ties, the lowest id.
        const auto key_of = [clocks](int c) {
            return (std::bit_cast<std::uint64_t>(clocks[c]) & ~255ull) |
                   static_cast<std::uint64_t>(c);
        };
        std::uint64_t b0 = key_of(0);
        std::uint64_t b1 = src_cores > 1 ? key_of(1) : b0;
        std::uint64_t b2 = src_cores > 2 ? key_of(2) : b0;
        std::uint64_t b3 = src_cores > 3 ? key_of(3) : b0;
        for (int c = 4; c + 3 < src_cores; c += 4) {
            const std::uint64_t k0 = key_of(c);
            const std::uint64_t k1 = key_of(c + 1);
            const std::uint64_t k2 = key_of(c + 2);
            const std::uint64_t k3 = key_of(c + 3);
            b0 = k0 < b0 ? k0 : b0;
            b1 = k1 < b1 ? k1 : b1;
            b2 = k2 < b2 ? k2 : b2;
            b3 = k3 < b3 ? k3 : b3;
        }
        for (int c = src_cores & ~3; c < src_cores; ++c) {
            const std::uint64_t k = key_of(c);
            b0 = k < b0 ? k : b0;
        }
        b0 = b1 < b0 ? b1 : b0;
        b2 = b3 < b2 ? b3 : b2;
        const int core = static_cast<int>((b2 < b0 ? b2 : b0) & 255);

        double &now = core_time[core];
        if (!source.next(core, acc)) {
            // Finite sources (trace files) may drain one core's stream
            // slightly before the requested total: stop measuring.
            if (i == 0)
                fatal("access source produced no references");
            break;
        }
        now += acc.instrsBefore * config_.cpiBase;

        const HierarchyOutcome outcome =
            hier->access(core, acc.addr, acc.isWrite);

        double load_latency = outcome.sramLatency;

        if (outcome.level == HierarchyOutcome::Level::Beyond) {
            DramCacheRequest req;
            req.addr = acc.addr;
            req.pc = acc.pc;
            req.core = core;
            req.isWrite = acc.isWrite;
            req.cycle = static_cast<Cycle>(now) + outcome.sramLatency;

            const DramCacheResult res = cache->access(req);
            const double dram_latency =
                static_cast<double>(res.doneAt - req.cycle);
            if (!acc.isWrite) {
                load_latency += dram_latency;
                dc_latency_sum += dram_latency;
                ++dc_latency_samples;
                if (!res.hit) {
                    miss_latency_sum += dram_latency;
                    ++miss_latency_samples;
                }
                // Overlap the miss with up to `window` others: stall
                // only when the MSHR window is exhausted.
                auto &ring = inflight[core];
                int &head = inflight_head[core];
                const double completion =
                    static_cast<double>(res.doneAt);
                now = std::max(now + outcome.sramLatency, ring[head]);
                ring[head] = completion;
                head = head + 1 == window ? 0 : head + 1;
            }
        } else if (!acc.isWrite) {
            now += outcome.sramLatency;
        }

        // Dirty SRAM victims flow down to the DRAM-cache level too.
        for (int w = 0; w < outcome.numWritebacks; ++w) {
            DramCacheRequest wb;
            wb.addr = outcome.writebackAddr[w];
            wb.pc = acc.pc;
            wb.core = core;
            wb.isWrite = true;
            wb.cycle = static_cast<Cycle>(now) + outcome.sramLatency;
            cache->access(wb);
        }

        if (acc.isWrite) {
            // Stores retire through the store buffer: charge only the
            // L1 issue slot.
            now += 1.0;
        }

        CoreWindowStats &cw = per_core[core];
        cw.instructions += acc.instrsBefore + 1;
        ++cw.references;
        if (!acc.isWrite) {
            ++cw.loads;
            cw.loadLatencySum += load_latency;
        }

        if (budgeted) {
            if (--budget_left[core] == 0) {
                sched_time[core] =
                    std::numeric_limits<double>::infinity();
                --active_cores;
            } else {
                sched_time[core] = now;
            }
        }
    }

    if (!measuring) {
        // The stream (or the budgets) drained inside the warm-up
        // window: the measured window is empty, not the whole run.
        reset_measurement();
    }

    SimResult result;
    result.designName = cache_->name();

    double max_elapsed = 0.0;
    for (int c = 0; c < config_.numCores; ++c)
        max_elapsed = std::max(max_elapsed, core_time[c] - warm_base[c]);
    result.cycles = static_cast<Cycle>(max_elapsed);
    result.instructions = per_core.totalInstructions();
    result.references = per_core.totalReferences();
    result.uipc = max_elapsed > 0.0
                      ? static_cast<double>(result.instructions) /
                            (max_elapsed * config_.numCores)
                      : 0.0;

    result.perCore.resize(static_cast<std::size_t>(src_cores));
    for (int c = 0; c < src_cores; ++c) {
        const CoreWindowStats &cw = per_core[c];
        CoreSimResult &out = result.perCore[static_cast<std::size_t>(c)];
        const double elapsed = core_time[c] - warm_base[c];
        out.instructions = cw.instructions;
        out.references = cw.references;
        out.cycles = static_cast<Cycle>(elapsed);
        out.uipc = elapsed > 0.0
                       ? static_cast<double>(cw.instructions) / elapsed
                       : 0.0;
        out.amatCycles = cw.amatCycles();
    }

    // SRAM hierarchy miss rates (aggregated over cores for L1).
    std::uint64_t l1_acc = 0, l1_miss = 0;
    for (int c = 0; c < config_.numCores; ++c) {
        l1_acc += hierarchy_->l1(c).stats().accesses.value();
        l1_miss += hierarchy_->l1(c).stats().misses.value();
    }
    result.l1MissPercent = percent(l1_miss, l1_acc);
    result.l2MissPercent =
        percent(hierarchy_->l2().stats().misses.value(),
                hierarchy_->l2().stats().accesses.value());

    result.cache = cache_->stats();
    result.offchip = offchip_->stats();
    if (cache_->stackedDram() != nullptr)
        result.stacked = cache_->stackedDram()->stats();

    result.avgDramCacheLatency =
        dc_latency_samples ? dc_latency_sum / dc_latency_samples : 0.0;
    result.avgMemLatency =
        miss_latency_samples ? miss_latency_sum / miss_latency_samples
                             : 0.0;

    if (auto *uc = dynamic_cast<UnisonCache *>(cache_.get())) {
        result.wpAccuracyPercent =
            uc->wayPredictorStats().accuracyPercent();
        if (uc->missPredictor() != nullptr) {
            result.mpAccuracyPercent =
                uc->missPredictor()->stats().accuracyPercent();
            result.mpOverfetchPercent =
                uc->missPredictor()->stats().overfetchPercent();
        }
    } else if (auto *ac = dynamic_cast<AlloyCache *>(cache_.get())) {
        if (ac->missPredictor() != nullptr) {
            result.mpAccuracyPercent =
                ac->missPredictor()->stats().accuracyPercent();
            result.mpOverfetchPercent =
                ac->missPredictor()->stats().overfetchPercent();
        }
    }
    return result;
}

} // namespace unison
