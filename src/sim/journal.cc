#include "sim/journal.hh"

#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#include "common/crc_frame.hh"
#include "common/file_io.hh"
#include "common/json.hh"
#include "common/state_io.hh"

namespace unison {

namespace {

constexpr std::uint32_t kRecordMagic = 0x4c524a55u; // 'UJRL'

constexpr std::uint32_t kCheckpointMagic = 0x504b4355u; // 'UCKP'
constexpr std::uint32_t kCheckpointVersion = 1;

std::string
recordPayload(const std::string &grid_hash,
              const std::string &code_version,
              const ResultPoint &point)
{
    json::Value out{json::Object{}};
    out.set("journalRecord", std::int64_t{1});
    out.set("gridHash", grid_hash);
    out.set("codeVersion", code_version);
    out.set("index", static_cast<std::uint64_t>(point.index));
    out.set("label", point.label);
    out.set("spec", specToJson(point.spec));
    out.set("result", resultToJson(point.result));
    return json::write(out);
}

} // namespace

SimStatus
ResultJournal::append(const std::string &path,
                      const std::string &grid_hash,
                      const std::string &code_version,
                      const ResultPoint &point)
{
    const std::vector<std::uint8_t> frame = encodeRecordFrame(
        kRecordMagic, recordPayload(grid_hash, code_version, point));

    // One frame, one append, one fsync: a crash leaves at worst a
    // torn *tail*, never a hole between valid records.
    return appendFileBytes(path, frame.data(), frame.size());
}

SimStatus
ResultJournal::load(const std::string &path,
                    const std::string &grid_hash,
                    const std::string &code_version,
                    std::vector<ResultPoint> &out,
                    JournalLoadSummary *summary)
{
    out.clear();
    JournalLoadSummary local;
    JournalLoadSummary &sum = summary != nullptr ? *summary : local;
    sum = JournalLoadSummary{};

    if (!fileExists(path))
        return SimStatus::success();

    std::vector<std::uint8_t> bytes;
    const SimStatus read = readFileBytes(path, bytes);
    if (!read.ok())
        return read;

    FrameWalker walker(bytes.data(), bytes.size(), kRecordMagic);
    const std::uint8_t *payload = nullptr;
    std::size_t len = 0;
    while (walker.next(payload, len)) {
        ResultPoint point;
        std::string rec_hash, rec_version;
        try {
            const json::Value doc = json::parse(std::string(
                reinterpret_cast<const char *>(payload), len));
            json::ObjectReader r(doc, "journal record");
            if (r.req("journalRecord").asInt() != 1)
                throw json::Error("unknown journal record version");
            rec_hash = r.req("gridHash").asString();
            rec_version = r.req("codeVersion").asString();
            point.index = r.req("index").asUint();
            point.label = r.req("label").asString();
            point.spec = specFromJson(r.req("spec"));
            point.result = resultFromJson(r.req("result"));
        } catch (const json::Error &e) {
            // The CRC passed, so this is not disk damage but a frame
            // written by an incompatible build: classify and stop --
            // everything after it has the same provenance.
            sum.torn = true;
            sum.tornReason =
                std::string("record does not parse: ") + e.what();
            return SimStatus::success();
        }

        sum.validBytes = walker.validBytes();
        if (rec_hash != grid_hash || rec_version != code_version) {
            ++sum.mismatched;
            continue;
        }
        ++sum.accepted;
        out.push_back(std::move(point));
    }
    if (walker.torn()) {
        sum.torn = true;
        sum.tornReason = walker.tornReason();
    }

    return SimStatus::success();
}

SimStatus
ResultJournal::truncateTo(const std::string &path,
                          std::uint64_t valid_bytes)
{
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0)
        return SimStatus::failure(SimErrc::Io,
                                  "cannot truncate " + path +
                                      " to its valid prefix");
    return SimStatus::success();
}

// --------------------------------------------------- checkpoint store

std::string
fnvFingerprint(const std::string &text)
{
    // Same FNV-1a construction as gridFingerprint (spec_json.cc).
    return gridFingerprint(text);
}

FileCheckpointStore::FileCheckpointStore(std::string dir)
    : dir_(std::move(dir))
{
    if (!dir_.empty() && dir_.back() == '/')
        dir_.pop_back();
    // Best-effort create (one level); a failure surfaces later as a
    // save warning, never as a run failure.
    ::mkdir(dir_.c_str(), 0777);
}

std::string
FileCheckpointStore::pathFor(const std::string &warm_key) const
{
    return dir_ + "/" + fnvFingerprint(warm_key) + ".ckpt";
}

bool
FileCheckpointStore::tryLoad(const std::string &warm_key,
                             WarmCheckpoint &out)
{
    const std::string path = pathFor(warm_key);
    if (!fileExists(path))
        return false;

    std::vector<std::uint8_t> payload;
    const SimStatus status = readFramedFile(
        path, kCheckpointMagic, kCheckpointVersion, payload);
    if (!status.ok()) {
        structuredWarn("checkpoint-rejected",
                       {{"path", path},
                        {"reason", status.message},
                        {"fallback", "cold-warmup"}});
        return false;
    }

    // Payload: [u64 warmAccesses][key bytes][state bytes] (vectors
    // carry their own length prefixes). The embedded key guards both
    // hash collisions and stale files whose name matches but whose
    // spec prefix changed meaning.
    StateReader in(payload);
    std::uint64_t warm_accesses = 0;
    in.pod(warm_accesses);
    std::vector<std::uint8_t> key_bytes;
    in.podVectorResize(key_bytes);
    std::vector<std::uint8_t> state;
    in.podVectorResize(state);
    in.expectEnd();
    const std::string key(key_bytes.begin(), key_bytes.end());
    if (!in.ok() || key != warm_key) {
        structuredWarn("checkpoint-rejected",
                       {{"path", path},
                        {"reason", !in.ok() ? in.status().message
                                            : "warm-prefix key "
                                              "mismatch"},
                        {"fallback", "cold-warmup"}});
        return false;
    }

    out.warmAccesses = warm_accesses;
    out.bytes = std::move(state);
    return out.valid();
}

void
FileCheckpointStore::save(const std::string &warm_key,
                          const WarmCheckpoint &ck)
{
    if (!ck.valid())
        return;
    StateWriter w;
    w.pod(ck.warmAccesses);
    const std::vector<std::uint8_t> key_bytes(warm_key.begin(),
                                              warm_key.end());
    w.podVector(key_bytes);
    w.podVector(ck.bytes);

    const std::string path = pathFor(warm_key);
    const SimStatus status = writeFramedFile(
        path, kCheckpointMagic, kCheckpointVersion, std::move(w).take());
    if (!status.ok())
        structuredWarn("checkpoint-save-failed",
                       {{"path", path}, {"reason", status.message}});
}

} // namespace unison
