/**
 * @file
 * Declarative sweep grids: every figure and table in the paper is a
 * cross product of (workload x design x capacity x knob) points, and
 * every bench used to hand-roll it as nested loops pushing into a
 * spec vector. A SweepGrid declares the axes once --
 *
 *     SweepGrid grid(baseSpec(opts));
 *     grid.overWorkloads(cloudSuiteWorkloads())
 *         .overCapacities({128_MiB, 256_MiB, 512_MiB, 1_GiB})
 *         .overDesigns({DesignKind::Alloy, DesignKind::Unison});
 *     std::vector<GridPoint> points = grid.points();
 *
 * -- and expands to points in nested-loop order (first axis outermost,
 * last axis fastest), each carrying a *stable label* built from its
 * axis value labels ("webserving/1GB/unison"). Labels name points in
 * progress output, JSON result files and shard merges; coords let a
 * bench regroup results into its table layout without re-deriving the
 * expansion order.
 *
 * Grids serialize: unison_sim can export any named figure grid to a
 * JSON spec file and re-run it point-by-point, sharded across
 * processes, merging to bit-identical results (spec_json.hh).
 */

#ifndef UNISON_SIM_SWEEP_HH
#define UNISON_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace unison {

/** One expanded grid point: a runnable spec plus its identity. */
struct GridPoint
{
    std::string label;               //!< "axis0/axis1/..." value labels
    std::size_t index = 0;           //!< flat position in the full grid
    std::vector<std::size_t> coords; //!< index along each axis
    ExperimentSpec spec;

    /** Coordinate along the axis named when it was declared. */
    std::size_t coord(std::size_t axis) const { return coords.at(axis); }
};

/** Fluent grid builder. Axes expand in declaration order. */
class SweepGrid
{
  public:
    using Mutator = std::function<void(ExperimentSpec &)>;

    /** One value of an axis: a label and a spec edit. */
    struct AxisValue
    {
        std::string label;
        Mutator apply;
    };

    SweepGrid() = default;
    explicit SweepGrid(ExperimentSpec base) : base_(std::move(base)) {}

    ExperimentSpec &base() { return base_; }
    const ExperimentSpec &base() const { return base_; }

    /** Generic axis from prelabelled values. */
    SweepGrid &over(const std::string &axis,
                    std::vector<AxisValue> values);

    /** Design axis with registry defaults; labels are registry ids. */
    SweepGrid &overDesigns(const std::vector<DesignKind> &designs);

    /** Design axis from explicit configs (labelled by registry id). */
    SweepGrid &overDesignConfigs(const std::vector<DesignConfig> &configs);

    /** Workload-preset axis; labels are canonical preset tokens. */
    SweepGrid &overWorkloads(const std::vector<Workload> &workloads);

    /** Capacity axis; labels via formatSize ("512MB"). */
    SweepGrid &overCapacities(const std::vector<std::uint64_t> &sizes);

    /**
     * Knob axis: arbitrary values applied through a setter, labelled
     * "name=<label>" with the label from std::to_string (or the
     * explicit label list).
     *
     *     grid.overKnob<std::uint32_t>("assoc", {1, 4, 32},
     *         [](ExperimentSpec &s, std::uint32_t a) {
     *             s.design.as<UnisonConfig>().assoc = a;
     *         });
     */
    template <typename T>
    SweepGrid &
    overKnob(const std::string &name, const std::vector<T> &values,
             std::function<void(ExperimentSpec &, const T &)> apply)
    {
        std::vector<AxisValue> axis;
        axis.reserve(values.size());
        for (const T &value : values)
            axis.push_back({name + "=" + std::to_string(value),
                            [apply, value](ExperimentSpec &spec) {
                                apply(spec, value);
                            }});
        return over(name, std::move(axis));
    }

    template <typename T>
    SweepGrid &
    overKnob(const std::string &name, const std::vector<T> &values,
             const std::vector<std::string> &labels,
             std::function<void(ExperimentSpec &, const T &)> apply);

    std::size_t axes() const { return axes_.size(); }

    /** Points of the full cross product, last axis fastest. */
    std::vector<GridPoint> points() const;

    /** Product of the axis sizes (0 axes = the base spec alone). */
    std::size_t size() const;

  private:
    ExperimentSpec base_;
    std::vector<std::pair<std::string, std::vector<AxisValue>>> axes_;
};

/**
 * The `--shard i/n` split: points whose flat index is congruent to
 * `shard` mod `shards` (round-robin, so every shard gets a similar mix
 * of cheap and expensive points). The union over all shards is exactly
 * the full grid, disjointly -- tested, and relied on by the CI job
 * that byte-compares a merged sharded run against an unsharded one.
 */
std::vector<GridPoint> shardPoints(const std::vector<GridPoint> &points,
                                   std::size_t shard,
                                   std::size_t shards);

/** Concatenate grids that run as one batch (e.g. per-workload
 *  baselines followed by the main grid). Labels must stay unique
 *  across segments (fatal otherwise) -- they identify points in
 *  result files and shard merges. */
std::vector<GridPoint>
concatGrids(const std::vector<std::vector<GridPoint>> &segments);

} // namespace unison

#endif // UNISON_SIM_SWEEP_HH
