#include "sim/design_registry.hh"

#include <mutex>
#include <type_traits>

#include "trace/presets.hh"

namespace unison {

// The DesignKind <-> DesignVariant correspondence DesignConfig::kind()
// relies on.
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::Unison),
                                 DesignVariant>,
                             UnisonConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::Alloy),
                                 DesignVariant>,
                             AlloyConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::Footprint),
                                 DesignVariant>,
                             FootprintCacheConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::LohHill),
                                 DesignVariant>,
                             LohHillConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::NaiveBlockFp),
                                 DesignVariant>,
                             NaiveBlockFpConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::NaiveTaggedPage),
                                 DesignVariant>,
                             NaiveTaggedPageConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::Ideal),
                                 DesignVariant>,
                             IdealConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::NoDramCache),
                                 DesignVariant>,
                             NoCacheConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::AlloyFp),
                                 DesignVariant>,
                             AlloyFpConfig>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     DesignKind::UnisonWp),
                                 DesignVariant>,
                             UnisonWpConfig>);

DesignRegistry &
DesignRegistry::instance()
{
    // Built-ins register exactly once, in the paper's presentation
    // order; each DesignInfo lives in the design's own source file.
    static DesignRegistry registry = [] {
        DesignRegistry r;
        r.add(unisonDesignInfo());
        r.add(alloyDesignInfo());
        r.add(footprintDesignInfo());
        r.add(lohHillDesignInfo());
        r.add(naiveBlockFpDesignInfo());
        r.add(naiveTaggedPageDesignInfo());
        r.add(alloyFpDesignInfo());
        r.add(unisonWpDesignInfo());
        r.add(idealDesignInfo());
        r.add(noCacheDesignInfo());
        return r;
    }();
    return registry;
}

void
DesignRegistry::add(DesignInfo info)
{
    if (info.id.empty() || !info.build)
        throw std::invalid_argument(
            "design registration needs an id and a build function");
    if (info.id != normalizedNameKey(info.id))
        throw std::invalid_argument(
            "design id '" + info.id +
            "' must be lowercase alphanumeric");
    // find() resolves by id, name and shortName, so all three must be
    // collision-free or a lookup would silently hit the wrong design.
    const auto clashes = [](const DesignInfo &a, const DesignInfo &b) {
        const std::string keys_a[] = {a.id, normalizedNameKey(a.name),
                                      normalizedNameKey(a.shortName)};
        const std::string keys_b[] = {b.id, normalizedNameKey(b.name),
                                      normalizedNameKey(b.shortName)};
        for (const std::string &ka : keys_a)
            for (const std::string &kb : keys_b)
                if (!ka.empty() && ka == kb)
                    return true;
        return false;
    };
    for (const DesignInfo &existing : infos_) {
        if (clashes(existing, info))
            throw std::invalid_argument(
                "design '" + info.id +
                "' collides with registered design '" + existing.id +
                "' (ids, names and short names must all be unique)");
        if (existing.kind == info.kind)
            throw std::invalid_argument(
                "design kind of '" + info.id +
                "' is already registered as '" + existing.id + "'");
    }
    infos_.push_back(std::move(info));
}

const DesignInfo *
DesignRegistry::find(const std::string &id_or_name) const
{
    const std::string key = normalizedNameKey(id_or_name);
    for (const DesignInfo &info : infos_) {
        if (info.id == key || normalizedNameKey(info.name) == key ||
            normalizedNameKey(info.shortName) == key)
            return &info;
    }
    return nullptr;
}

const DesignInfo &
DesignRegistry::byId(const std::string &id_or_name) const
{
    const DesignInfo *info = find(id_or_name);
    if (info != nullptr)
        return *info;
    std::vector<std::string> known;
    for (const DesignInfo &candidate : infos_)
        known.push_back(candidate.id);
    fatal("unknown design '", id_or_name, "' (registered designs: ",
          commaJoin(known), ")");
}

const DesignInfo &
DesignRegistry::byKind(DesignKind kind) const
{
    for (const DesignInfo &info : infos_)
        if (info.kind == kind)
            return info;
    panic("design kind ", static_cast<int>(kind),
          " has no registry entry");
}

DesignConfig::DesignConfig(DesignKind kind)
    : v_(DesignRegistry::instance().byKind(kind).defaults)
{
}

std::string
designName(DesignKind kind)
{
    return DesignRegistry::instance().byKind(kind).name;
}

std::string
designId(DesignKind kind)
{
    return DesignRegistry::instance().byKind(kind).id;
}

} // namespace unison
