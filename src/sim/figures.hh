/**
 * @file
 * The paper's figure and table sweeps as named, reusable grids. Each
 * bench binary used to own its grid as nested loops; now the grid
 * lives here once, and three frontends share it:
 *
 *  - the bench harnesses (fig5_associativity & co) expand the named
 *    grid and keep only their presentation logic;
 *  - `unison_sim --figure fig7` runs the same grid from the command
 *    line, optionally sharded across processes;
 *  - `unison_sim --figure fig7 --export-spec fig7.json` serializes it,
 *    and the checked-in files under specs/ are exactly these exports.
 *
 * Point order within a grid is part of the figure's definition (the
 * benches index results positionally), so changes here are output-
 * affecting: the byte-identity tests over the bench outputs pin it.
 */

#ifndef UNISON_SIM_FIGURES_HH
#define UNISON_SIM_FIGURES_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace unison {

/** The shared sweep-scale options every figure honours. */
struct FigureOptions
{
    bool quick = false;       //!< 8x shorter simulations (CI mode)
    std::uint64_t seed = 42;  //!< workload seed
};

/** One multiprogrammed mix with a display title ("web+tpch"). */
struct NamedMix
{
    std::string title;
    std::vector<MixPart> parts;
};

/** Names accepted by figureGrid(), in presentation order. */
const std::vector<std::string> &figureNames();

/** One-line description for `unison_sim --list`. */
std::string figureSummary(const std::string &name);

/** Expand a named figure's grid; fatal on an unknown name (listing
 *  the known ones). */
std::vector<GridPoint> figureGrid(const std::string &name,
                                  const FigureOptions &opts);

/** The five standard consolidation mixes of bench/mixes, sized for
 *  `cores` (any count >= 2; odd counts give the first program the
 *  extra core). */
std::vector<NamedMix> standardMixes(int cores);

/**
 * The mixes sweep: every mix crossed with {nocache, alloy, footprint,
 * unison}, with the explicit warm-up window and per-core budgets the
 * multiprogrammed methodology requires. Shared by bench/mixes (CLI
 * parameters) and figureGrid("mixes") (defaults).
 */
std::vector<GridPoint> mixesGrid(const std::vector<NamedMix> &mixes,
                                 std::uint64_t capacity_bytes,
                                 std::uint64_t accesses, int cores,
                                 const FigureOptions &opts);

} // namespace unison

#endif // UNISON_SIM_FIGURES_HH
