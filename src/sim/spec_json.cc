#include "sim/spec_json.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/version.hh"
#include "trace/workload.hh"

namespace unison {

namespace {

using json::Object;
using json::ObjectReader;
using json::Value;

// ------------------------------------------------------ small helpers

std::string
workloadToken(Workload w)
{
    return normalizedNameKey(workloadName(w));
}

/** workloadFromName fatal()s on a miss; schema errors must be
 *  json::Error so the CLI and tests can catch them. */
Workload
workloadFromToken(const std::string &token)
{
    const std::string key = normalizedNameKey(token);
    for (Workload w : allWorkloads())
        if (workloadToken(w) == key)
            return w;
    std::vector<std::string> known;
    for (Workload w : allWorkloads())
        known.push_back(workloadToken(w));
    throw json::Error("unknown workload '" + token +
                      "' (presets: " + commaJoin(known) + ")");
}

std::string
scenarioToken(ScenarioKind kind)
{
    return normalizedNameKey(scenarioName(kind));
}

ScenarioKind
scenarioFromToken(const std::string &token)
{
    ScenarioKind kind;
    if (!scenarioFromName(token, kind))
        throw json::Error("unknown scenario '" + token + "'");
    return kind;
}

int
asCount(const Value &v, const char *what, std::int64_t lo,
        std::int64_t hi)
{
    const std::int64_t n = v.asInt();
    if (n < lo || n > hi)
        throw json::Error(std::string(what) + " must be in [" +
                          std::to_string(lo) + ", " +
                          std::to_string(hi) + "], got " +
                          std::to_string(n));
    return static_cast<int>(n);
}

/** Core-count ceiling of a spec schema version. v3 and earlier were
 *  written (and validated) against a 256-core world; keeping their
 *  cap preserves those documents' exact validation behaviour. */
std::int64_t
coreCap(int version)
{
    return version >= 4 ? kMaxCores : 256;
}

// -------------------------------------------------- workload params

Value
workloadParamsToJson(const WorkloadParams &p)
{
    Value out{Object{}};
    out.set("name", p.name);
    out.set("datasetBytes", p.datasetBytes);
    out.set("numCores", static_cast<std::int64_t>(p.numCores));
    out.set("numFunctions", static_cast<std::int64_t>(p.numFunctions));
    out.set("functionZipfAlpha", p.functionZipfAlpha);
    out.set("regionZipfAlpha", p.regionZipfAlpha);
    out.set("ownerAffinity", p.ownerAffinity);
    out.set("meanFootprintBlocks", p.meanFootprintBlocks);
    out.set("footprintStddev", p.footprintStddev);
    out.set("contiguousFraction", p.contiguousFraction);
    out.set("scanStretchMean", p.scanStretchMean);
    out.set("singletonFunctionFraction", p.singletonFunctionFraction);
    out.set("pointerChaseFraction", p.pointerChaseFraction);
    out.set("footprintNoiseDrop", p.footprintNoiseDrop);
    out.set("footprintNoiseAdd", p.footprintNoiseAdd);
    out.set("writeFraction", p.writeFraction);
    out.set("blockRepeatMean", p.blockRepeatMean);
    out.set("episodesPerCore",
            static_cast<std::int64_t>(p.episodesPerCore));
    out.set("burstLength", static_cast<std::int64_t>(p.burstLength));
    out.set("instrsPerMemRef", p.instrsPerMemRef);
    return out;
}

WorkloadParams
workloadParamsFromJson(const Value &value, int version)
{
    ObjectReader r(value, "workload params");
    WorkloadParams p;
    p.name = r.req("name").asString();
    p.datasetBytes = r.req("datasetBytes").asUint();
    p.numCores =
        asCount(r.req("numCores"), "numCores", 1, coreCap(version));
    p.numFunctions =
        asCount(r.req("numFunctions"), "numFunctions", 1, 1 << 20);
    p.functionZipfAlpha = r.req("functionZipfAlpha").asDouble();
    p.regionZipfAlpha = r.req("regionZipfAlpha").asDouble();
    p.ownerAffinity = r.req("ownerAffinity").asDouble();
    p.meanFootprintBlocks = r.req("meanFootprintBlocks").asDouble();
    p.footprintStddev = r.req("footprintStddev").asDouble();
    p.contiguousFraction = r.req("contiguousFraction").asDouble();
    p.scanStretchMean = r.req("scanStretchMean").asDouble();
    p.singletonFunctionFraction =
        r.req("singletonFunctionFraction").asDouble();
    p.pointerChaseFraction = r.req("pointerChaseFraction").asDouble();
    p.footprintNoiseDrop = r.req("footprintNoiseDrop").asDouble();
    p.footprintNoiseAdd = r.req("footprintNoiseAdd").asDouble();
    p.writeFraction = r.req("writeFraction").asDouble();
    p.blockRepeatMean = r.req("blockRepeatMean").asDouble();
    p.episodesPerCore =
        asCount(r.req("episodesPerCore"), "episodesPerCore", 1, 4096);
    p.burstLength =
        asCount(r.req("burstLength"), "burstLength", 1, 1 << 20);
    p.instrsPerMemRef = r.req("instrsPerMemRef").asDouble();
    return p;
}

// ------------------------------------------------- scenario params

/** `version`: schema version of the enclosing spec. The datacenter
 *  generator knobs joined in v4; they are emitted and required only
 *  there, so every pre-v4 document round-trips byte-identically. */
Value
scenarioParamsToJson(const ScenarioParams &p, int version)
{
    Value out{Object{}};
    out.set("kind", scenarioToken(p.kind));
    out.set("footprintBytes", p.footprintBytes);
    out.set("hotSetBytes", p.hotSetBytes);
    out.set("hotFraction", p.hotFraction);
    out.set("writeFraction", p.writeFraction);
    out.set("instrsPerMemRef", p.instrsPerMemRef);
    out.set("strideBlocks", p.strideBlocks);
    if (version >= 4) {
        out.set("numKeys", p.numKeys);
        out.set("keyZipfAlpha", p.keyZipfAlpha);
        out.set("recordBlocks", p.recordBlocks);
        out.set("requestBlocksMean", p.requestBlocksMean);
        out.set("numTables", p.numTables);
        out.set("lookupsPerTable", p.lookupsPerTable);
    }
    return out;
}

ScenarioParams
scenarioParamsFromJson(const Value &value, int version)
{
    ObjectReader r(value, "scenario params");
    ScenarioParams p;
    p.kind = scenarioFromToken(r.req("kind").asString());
    p.footprintBytes = r.req("footprintBytes").asUint();
    p.hotSetBytes = r.req("hotSetBytes").asUint();
    p.hotFraction = r.req("hotFraction").asDouble();
    p.writeFraction = r.req("writeFraction").asDouble();
    p.instrsPerMemRef = r.req("instrsPerMemRef").asDouble();
    p.strideBlocks = static_cast<std::uint32_t>(
        asCount(r.req("strideBlocks"), "strideBlocks", 1, 1 << 20));
    if (version >= 4) {
        p.numKeys = r.req("numKeys").asUint();
        if (p.numKeys < 2 || p.numKeys > (1ull << 32))
            throw json::Error("numKeys must be in [2, 2^32], got " +
                              std::to_string(p.numKeys));
        p.keyZipfAlpha = r.req("keyZipfAlpha").asDouble();
        p.recordBlocks = static_cast<std::uint32_t>(asCount(
            r.req("recordBlocks"), "recordBlocks", 1, 1 << 20));
        p.requestBlocksMean = r.req("requestBlocksMean").asDouble();
        p.numTables = static_cast<std::uint32_t>(
            asCount(r.req("numTables"), "numTables", 1, 4096));
        p.lookupsPerTable = static_cast<std::uint32_t>(asCount(
            r.req("lookupsPerTable"), "lookupsPerTable", 1, 4096));
    } else if (scenarioIsDatacenter(p.kind)) {
        throw json::Error("scenario '" + scenarioToken(p.kind) +
                          "' requires spec schema " + kSpecSchema);
    }
    return p;
}

// ------------------------------------------------------ mix parts

Value
mixToJson(const std::vector<MixPart> &mix, int version)
{
    json::Array parts;
    for (const MixPart &part : mix) {
        Value p{Object{}};
        p.set("cores", static_cast<std::int64_t>(part.cores));
        if (part.preset)
            p.set("preset", workloadToken(*part.preset));
        if (part.custom)
            p.set("custom", workloadParamsToJson(*part.custom));
        if (part.scenario)
            p.set("scenario",
                  scenarioParamsToJson(*part.scenario, version));
        if (!part.tracePath.empty())
            p.set("trace", part.tracePath);
        parts.push_back(std::move(p));
    }
    return Value(std::move(parts));
}

std::vector<MixPart>
mixFromJson(const Value &value, int version)
{
    std::vector<MixPart> mix;
    for (const Value &entry : value.asArray()) {
        ObjectReader r(entry, "mix part");
        MixPart part;
        part.cores = asCount(r.req("cores"), "mix part cores", 1,
                             coreCap(version));
        if (const Value *preset = r.opt("preset"))
            part.preset = workloadFromToken(preset->asString());
        if (const Value *custom = r.opt("custom"))
            part.custom = workloadParamsFromJson(*custom, version);
        if (const Value *scenario = r.opt("scenario"))
            part.scenario = scenarioParamsFromJson(*scenario, version);
        if (const Value *trace = r.opt("trace"))
            part.tracePath = trace->asString();
        mix.push_back(std::move(part));
    }
    return mix;
}

// --------------------------------------------------- design config

Value
designToJson(const DesignConfig &design)
{
    const DesignInfo &info =
        DesignRegistry::instance().byKind(design.kind());
    Value out{Object{}};
    out.set("name", info.id);
    for (const DesignKnob &knob : info.knobs)
        out.set(knob.key, knob.get(design.variant()));
    return out;
}

DesignConfig
designFromJson(const Value &value)
{
    const Value &name = [&]() -> const Value & {
        const Value *n = value.find("name");
        if (n == nullptr)
            throw json::Error("design: missing required key 'name'");
        return *n;
    }();
    const DesignInfo *info =
        DesignRegistry::instance().find(name.asString());
    if (info == nullptr) {
        std::vector<std::string> known;
        for (const DesignInfo &candidate :
             DesignRegistry::instance().all())
            known.push_back(candidate.id);
        throw json::Error("unknown design '" + name.asString() +
                          "' (registered designs: " + commaJoin(known) +
                          ")");
    }

    ObjectReader r(value, "design '" + info->id + "'");
    r.req("name");
    DesignVariant config = info->defaults;
    for (const DesignKnob &knob : info->knobs)
        if (const Value *v = r.opt(knob.key))
            knob.set(config, *v);
    r.finish();
    return DesignConfig(std::move(config));
}

// -------------------------------------------------- system config

/** memoryBackendFromId returns false on a miss; schema errors must be
 *  json::Error so the CLI and tests can catch them. */
MemoryBackendKind
backendFromToken(const std::string &token)
{
    MemoryBackendKind kind;
    if (!memoryBackendFromId(token, kind))
        throw json::Error("unknown memory backend '" + token +
                          "' (registered backends: " +
                          commaJoin(memoryBackendIds()) + ")");
    return kind;
}

Value
systemToJson(const SystemConfig &sys)
{
    Value out{Object{}};
    out.set("numCores", static_cast<std::int64_t>(sys.numCores));
    out.set("cpiBase", sys.cpiBase);
    out.set("maxOutstandingMisses",
            static_cast<std::int64_t>(sys.maxOutstandingMisses));
    out.set("warmFraction", sys.warmFraction);
    out.set("warmupAccesses", sys.warmupAccesses);
    out.set("perCoreAccessBudget", sys.perCoreAccessBudget);
    out.set("engineThreads",
            static_cast<std::int64_t>(sys.engineThreads));
    out.set("memoryBackend", memoryBackendId(sys.memoryBackend));
    return out;
}

/** `version`: schema version of the enclosing spec. engineThreads
 *  joined in v2 and memoryBackend in v3; an older document neither
 *  carries the newer keys (unknown-key rejection still fires if it
 *  does) nor needs them -- absent means the serial engine and the
 *  fast backend, which is what every older spec ran. v4 raised the
 *  core cap from 256 to kMaxCores (coreCap above). */
SystemConfig
systemFromJson(const Value &value, int version)
{
    ObjectReader r(value, "system");
    SystemConfig sys;
    sys.numCores =
        asCount(r.req("numCores"), "numCores", 1, coreCap(version));
    sys.cpiBase = r.req("cpiBase").asDouble();
    sys.maxOutstandingMisses = asCount(r.req("maxOutstandingMisses"),
                                       "maxOutstandingMisses", 1,
                                       1 << 20);
    sys.warmFraction = r.req("warmFraction").asDouble();
    sys.warmupAccesses = r.req("warmupAccesses").asUint();
    sys.perCoreAccessBudget = r.req("perCoreAccessBudget").asUint();
    sys.engineThreads =
        version >= 2
            ? asCount(r.req("engineThreads"), "engineThreads", 1, 4096)
            : 1;
    sys.memoryBackend =
        version >= 3 ? backendFromToken(r.req("memoryBackend").asString())
                     : MemoryBackendKind::Fast;
    return sys;
}

// ------------------------------------------------ result sub-objects

/**
 * Counter-struct (de)serialization, generated from the same X-macro
 * field lists reset() iterates: keys are the field names, in
 * declaration order, so the schema can never drift from the structs.
 */
Value
cacheStatsToJson(const DramCacheStats &s)
{
    Value out{Object{}};
    s.forEachCounter([&](const char *name, const Counter &c) {
        out.set(name, c.value());
    });
    return out;
}

DramCacheStats
cacheStatsFromJson(const Value &value)
{
    ObjectReader r(value, "cache stats");
    DramCacheStats s;
    s.forEachCounter([&](const char *name, Counter &c) {
        c.reset();
        c += r.req(name).asUint();
    });
    return s;
}

Value
poolStatsToJson(const DramPoolStats &s)
{
    Value out{Object{}};
    s.forEachCounter([&](const char *name, const std::uint64_t &v) {
        out.set(name, v);
    });
    return out;
}

DramPoolStats
poolStatsFromJson(const Value &value)
{
    ObjectReader r(value, "DRAM pool stats");
    DramPoolStats s;
    s.forEachCounter([&](const char *name, std::uint64_t &v) {
        v = r.req(name).asUint();
    });
    return s;
}

Value
queueStatsToJson(const MemoryQueueStats &s)
{
    Value out{Object{}};
    out.set("writeDrains", s.writeDrains);
    out.set("drainedWrites", s.drainedWrites);
    out.set("frfcfsReorders", s.frfcfsReorders);
    out.set("starvationDrains", s.starvationDrains);
    json::Array occupancy;
    for (std::uint64_t bucket : s.occupancy)
        occupancy.push_back(Value(bucket));
    out.set("occupancy", Value(std::move(occupancy)));
    return out;
}

MemoryQueueStats
queueStatsFromJson(const Value &value)
{
    ObjectReader r(value, "memory queue stats");
    MemoryQueueStats s;
    s.writeDrains = r.req("writeDrains").asUint();
    s.drainedWrites = r.req("drainedWrites").asUint();
    s.frfcfsReorders = r.req("frfcfsReorders").asUint();
    s.starvationDrains = r.req("starvationDrains").asUint();
    const json::Array &occupancy = r.req("occupancy").asArray();
    if (occupancy.size() !=
        static_cast<std::size_t>(MemoryQueueStats::kOccupancyBuckets))
        throw json::Error("memory queue stats: occupancy must have " +
                          std::to_string(
                              MemoryQueueStats::kOccupancyBuckets) +
                          " buckets, got " +
                          std::to_string(occupancy.size()));
    for (std::size_t i = 0; i < occupancy.size(); ++i)
        s.occupancy[i] = occupancy[i].asUint();
    return s;
}

} // namespace

// ------------------------------------------------------------ spec

namespace {

/** Lowest schema version that expresses `spec`. Writing the lowest
 *  version keeps every document a pre-v4 study could have produced
 *  byte-identical to what it produced then. */
int
specSchemaVersion(const ExperimentSpec &spec)
{
    bool needs_v4 = spec.system.numCores > 256;
    if (spec.customWorkload && spec.customWorkload->numCores > 256)
        needs_v4 = true;
    for (const MixPart &part : spec.mix) {
        if (part.cores > 256)
            needs_v4 = true;
        if (part.custom && part.custom->numCores > 256)
            needs_v4 = true;
        if (part.scenario && scenarioIsDatacenter(part.scenario->kind))
            needs_v4 = true;
    }
    return needs_v4 ? 4 : 3;
}

} // namespace

json::Value
specToJson(const ExperimentSpec &spec)
{
    const int version = specSchemaVersion(spec);
    Value out{Object{}};
    out.set("schema", version >= 4 ? kSpecSchema : kSpecSchemaV3);
    out.set("workload", workloadToken(spec.workload));
    if (spec.customWorkload)
        out.set("customWorkload",
                workloadParamsToJson(*spec.customWorkload));
    if (!spec.mix.empty())
        out.set("mix", mixToJson(spec.mix, version));
    out.set("design", designToJson(spec.design));
    out.set("capacityBytes", spec.capacityBytes);
    out.set("accesses", spec.accesses);
    out.set("quick", spec.quick);
    out.set("seed", spec.seed);
    out.set("system", systemToJson(spec.system));
    return out;
}

ExperimentSpec
specFromJson(const json::Value &value)
{
    ObjectReader r(value, "spec");
    const std::string schema = r.req("schema").asString();
    int version = 0;
    if (schema == kSpecSchema)
        version = 4;
    else if (schema == kSpecSchemaV3)
        version = 3;
    else if (schema == kSpecSchemaV2)
        version = 2;
    else if (schema == kSpecSchemaV1)
        version = 1;
    else
        throw json::Error("unsupported spec schema '" + schema +
                          "' (this build reads " + kSpecSchema + ", " +
                          kSpecSchemaV3 + ", " + kSpecSchemaV2 +
                          " and " + kSpecSchemaV1 + ")");

    ExperimentSpec spec;
    spec.workload = workloadFromToken(r.req("workload").asString());
    if (const Value *custom = r.opt("customWorkload"))
        spec.customWorkload = workloadParamsFromJson(*custom, version);
    if (const Value *mix = r.opt("mix"))
        spec.mix = mixFromJson(*mix, version);
    spec.design = designFromJson(r.req("design"));
    spec.capacityBytes = r.req("capacityBytes").asUint();
    spec.accesses = r.req("accesses").asUint();
    spec.quick = r.req("quick").asBool();
    spec.seed = r.req("seed").asUint();
    spec.system = systemFromJson(r.req("system"), version);
    return spec;
}

// ---------------------------------------------------------- result

json::Value
resultToJson(const SimResult &result)
{
    Value out{Object{}};
    out.set("designName", result.designName);
    out.set("instructions", result.instructions);
    out.set("cycles", static_cast<std::uint64_t>(result.cycles));
    out.set("uipc", result.uipc);
    out.set("references", result.references);
    out.set("l1MissPercent", result.l1MissPercent);
    out.set("l2MissPercent", result.l2MissPercent);
    out.set("cache", cacheStatsToJson(result.cache));
    out.set("offchip", poolStatsToJson(result.offchip));
    out.set("stacked", poolStatsToJson(result.stacked));
    // Only the detailed backend produces queue activity; the keys are
    // omitted when all-zero so fast-backend results stay byte-stable.
    if (result.offchipQueue.any())
        out.set("offchipQueue", queueStatsToJson(result.offchipQueue));
    if (result.stackedQueue.any())
        out.set("stackedQueue", queueStatsToJson(result.stackedQueue));
    out.set("avgDramCacheLatency", result.avgDramCacheLatency);
    out.set("avgMemLatency", result.avgMemLatency);
    out.set("wpAccuracyPercent", result.wpAccuracyPercent);
    out.set("mpAccuracyPercent", result.mpAccuracyPercent);
    out.set("mpOverfetchPercent", result.mpOverfetchPercent);

    json::Array per_core;
    for (const CoreSimResult &core : result.perCore) {
        Value c{Object{}};
        c.set("sourceName", core.sourceName);
        c.set("instructions", core.instructions);
        c.set("references", core.references);
        c.set("cycles", static_cast<std::uint64_t>(core.cycles));
        c.set("uipc", core.uipc);
        c.set("amatCycles", core.amatCycles);
        per_core.push_back(std::move(c));
    }
    out.set("perCore", Value(std::move(per_core)));
    return out;
}

SimResult
resultFromJson(const json::Value &value)
{
    ObjectReader r(value, "result");
    SimResult result;
    result.designName = r.req("designName").asString();
    result.instructions = r.req("instructions").asUint();
    result.cycles = r.req("cycles").asUint();
    result.uipc = r.req("uipc").asDouble();
    result.references = r.req("references").asUint();
    result.l1MissPercent = r.req("l1MissPercent").asDouble();
    result.l2MissPercent = r.req("l2MissPercent").asDouble();
    result.cache = cacheStatsFromJson(r.req("cache"));
    result.offchip = poolStatsFromJson(r.req("offchip"));
    result.stacked = poolStatsFromJson(r.req("stacked"));
    if (const Value *queue = r.opt("offchipQueue"))
        result.offchipQueue = queueStatsFromJson(*queue);
    if (const Value *queue = r.opt("stackedQueue"))
        result.stackedQueue = queueStatsFromJson(*queue);
    result.avgDramCacheLatency =
        r.req("avgDramCacheLatency").asDouble();
    result.avgMemLatency = r.req("avgMemLatency").asDouble();
    result.wpAccuracyPercent = r.req("wpAccuracyPercent").asDouble();
    result.mpAccuracyPercent = r.req("mpAccuracyPercent").asDouble();
    result.mpOverfetchPercent =
        r.req("mpOverfetchPercent").asDouble();
    for (const Value &entry : r.req("perCore").asArray()) {
        ObjectReader c(entry, "perCore entry");
        CoreSimResult core;
        core.sourceName = c.req("sourceName").asString();
        core.instructions = c.req("instructions").asUint();
        core.references = c.req("references").asUint();
        core.cycles = c.req("cycles").asUint();
        core.uipc = c.req("uipc").asDouble();
        core.amatCycles = c.req("amatCycles").asDouble();
        result.perCore.push_back(std::move(core));
    }
    return result;
}

// ------------------------------------------------------------ grids

json::Value
gridToJson(const std::string &name,
           const std::vector<GridPoint> &points)
{
    Value out{Object{}};
    out.set("schema", kGridSchema);
    out.set("name", name);
    json::Array array;
    for (const GridPoint &point : points) {
        Value p{Object{}};
        p.set("label", point.label);
        p.set("spec", specToJson(point.spec));
        array.push_back(std::move(p));
    }
    out.set("points", Value(std::move(array)));
    return out;
}

GridFile
gridFromJson(const json::Value &value)
{
    const Value *schema = value.find("schema");
    if (schema == nullptr)
        throw json::Error("document has no 'schema' field");

    GridFile grid;
    if (schema->asString() == kSpecSchema ||
        schema->asString() == kSpecSchemaV3 ||
        schema->asString() == kSpecSchemaV2 ||
        schema->asString() == kSpecSchemaV1) {
        // A bare spec is a one-point grid labelled by its design.
        GridPoint point;
        point.spec = specFromJson(value);
        point.label = designId(point.spec.designKind());
        point.index = 0;
        grid.name = "spec";
        grid.points.push_back(std::move(point));
        return grid;
    }

    ObjectReader r(value, "grid");
    const std::string kind = r.req("schema").asString();
    if (kind != kGridSchema)
        throw json::Error("unsupported grid schema '" + kind +
                          "' (this build reads " + kGridSchema + ")");
    grid.name = r.req("name").asString();
    for (const Value &entry : r.req("points").asArray()) {
        ObjectReader p(entry, "grid point");
        GridPoint point;
        point.label = p.req("label").asString();
        point.spec = specFromJson(p.req("spec"));
        point.index = grid.points.size();
        grid.points.push_back(std::move(point));
    }
    return grid;
}

// ---------------------------------------------------------- results

json::Value
resultsToJson(const std::string &grid_name, const std::string &shard,
              const std::string &grid_hash,
              std::vector<ResultPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const ResultPoint &a, const ResultPoint &b) {
                  return a.index < b.index;
              });
    Value out{Object{}};
    out.set("schema", kResultsSchema);
    out.set("name", grid_name);
    out.set("codeVersion", kSimCodeVersion);
    if (!grid_hash.empty())
        out.set("gridHash", grid_hash);
    if (!shard.empty())
        out.set("shard", shard);
    json::Array array;
    for (const ResultPoint &point : points) {
        Value p{Object{}};
        p.set("index", static_cast<std::uint64_t>(point.index));
        p.set("label", point.label);
        p.set("spec", specToJson(point.spec));
        p.set("result", resultToJson(point.result));
        array.push_back(std::move(p));
    }
    out.set("points", Value(std::move(array)));
    return out;
}

std::vector<ResultPoint>
resultsFromJson(const json::Value &value, std::string *grid_name,
                std::string *shard, std::string *grid_hash,
                std::string *code_version)
{
    ObjectReader r(value, "results");
    const std::string schema = r.req("schema").asString();
    if (schema != kResultsSchema)
        throw json::Error("unsupported results schema '" + schema +
                          "' (this build reads " + kResultsSchema +
                          ")");
    if (grid_name != nullptr)
        *grid_name = r.req("name").asString();
    else
        r.req("name");
    // Documents written before the stamp existed read back as "".
    const Value *version_value = r.opt("codeVersion");
    if (code_version != nullptr)
        *code_version =
            version_value != nullptr ? version_value->asString() : "";
    const Value *hash_value = r.opt("gridHash");
    if (grid_hash != nullptr)
        *grid_hash = hash_value != nullptr ? hash_value->asString()
                                           : "";
    const Value *shard_value = r.opt("shard");
    if (shard != nullptr)
        *shard = shard_value != nullptr ? shard_value->asString() : "";

    std::vector<ResultPoint> points;
    for (const Value &entry : r.req("points").asArray()) {
        ObjectReader p(entry, "results point");
        ResultPoint point;
        point.index = p.req("index").asUint();
        point.label = p.req("label").asString();
        point.spec = specFromJson(p.req("spec"));
        point.result = resultFromJson(p.req("result"));
        points.push_back(std::move(point));
    }
    return points;
}

std::string
gridFingerprint(const std::string &grid_json)
{
    // FNV-1a, 64-bit: cheap, dependency-free, and stable across
    // platforms -- this is a consistency check, not cryptography.
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : grid_json) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
specFingerprint(const ExperimentSpec &spec)
{
    return gridFingerprint(json::write(specToJson(spec)));
}

} // namespace unison
