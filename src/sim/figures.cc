#include "sim/figures.hh"

#include <algorithm>

#include "common/logging.hh"
#include "dram/backend.hh"

namespace unison {

namespace {

ExperimentSpec
baseSpec(const FigureOptions &opts)
{
    ExperimentSpec spec;
    spec.quick = opts.quick;
    spec.seed = opts.seed;
    return spec;
}

/** Design axis from explicit (label, config) pairs, for grids whose
 *  "designs" are variants of one design (Unison page sizes, ablation
 *  arms). */
SweepGrid::AxisValue
designValue(const std::string &label, DesignConfig config)
{
    return {label, [config = std::move(config)](ExperimentSpec &spec) {
                spec.design = config;
            }};
}

// ------------------------------------------------------------- fig5

/** Unison miss ratio vs associativity: a small and a large cache per
 *  workload, 1/4/32 ways. */
std::vector<GridPoint>
fig5Grid(const FigureOptions &opts)
{
    std::vector<std::vector<GridPoint>> segments;
    for (Workload w : allWorkloads()) {
        const bool tpch = (w == Workload::TpchQueries);
        SweepGrid grid(baseSpec(opts));
        grid.base().design = DesignKind::Unison;
        grid.overWorkloads({w})
            .overCapacities({tpch ? 1_GiB : 128_MiB,
                             tpch ? 8_GiB : 1_GiB})
            .overKnob<std::uint32_t>(
                "assoc", {1, 4, 32},
                [](ExperimentSpec &spec, const std::uint32_t &assoc) {
                    spec.design.as<UnisonConfig>().assoc = assoc;
                });
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// ------------------------------------------------------------- fig6

/** Miss ratio vs capacity for the three main designs; TPC-H sweeps
 *  1-8 GB where CloudSuite sweeps 128 MB-1 GB. */
std::vector<GridPoint>
fig6Grid(const FigureOptions &opts)
{
    const std::vector<DesignKind> designs = {
        DesignKind::Alloy, DesignKind::Footprint, DesignKind::Unison};
    std::vector<std::vector<GridPoint>> segments;
    for (Workload w : allWorkloads()) {
        const bool tpch = (w == Workload::TpchQueries);
        SweepGrid grid(baseSpec(opts));
        grid.overWorkloads({w})
            .overCapacities(
                tpch ? std::vector<std::uint64_t>{1_GiB, 2_GiB, 4_GiB,
                                                  8_GiB}
                     : std::vector<std::uint64_t>{128_MiB, 256_MiB,
                                                  512_MiB, 1_GiB})
            .overDesigns(designs);
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// ------------------------------------------------------------- fig7

/** Speedup vs capacity over the no-DRAM-cache baseline: one baseline
 *  point per workload, then the full (capacity x design) block. */
std::vector<GridPoint>
fig7Grid(const FigureOptions &opts)
{
    const std::vector<std::uint64_t> sizes = {128_MiB, 256_MiB,
                                              512_MiB, 1_GiB};
    const std::vector<DesignKind> designs = {
        DesignKind::Alloy, DesignKind::Footprint, DesignKind::Unison,
        DesignKind::Ideal};
    std::vector<std::vector<GridPoint>> segments;
    for (Workload w : cloudSuiteWorkloads()) {
        SweepGrid baseline(baseSpec(opts));
        baseline.base().capacityBytes = sizes.back();
        baseline.overWorkloads({w}).overDesigns(
            {DesignKind::NoDramCache});
        segments.push_back(baseline.points());

        SweepGrid grid(baseSpec(opts));
        grid.overWorkloads({w}).overCapacities(sizes).overDesigns(
            designs);
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// ------------------------------------------------------------- fig8

/** TPC-H speedups for 1-8 GB caches; the baseline rides in the design
 *  axis, so each capacity block is (nocache, designs...). */
std::vector<GridPoint>
fig8Grid(const FigureOptions &opts)
{
    SweepGrid grid(baseSpec(opts));
    grid.base().workload = Workload::TpchQueries;
    grid.overCapacities({1_GiB, 2_GiB, 4_GiB, 8_GiB})
        .overDesigns({DesignKind::NoDramCache, DesignKind::Alloy,
                      DesignKind::Footprint, DesignKind::Unison,
                      DesignKind::Ideal});
    return grid.points();
}

// ------------------------------------------------------ sensitivity

/** Fig. 7 sensitivity companion: AC-vs-UC ordering as page-level
 *  temporal reuse (region Zipf skew) rises. */
std::vector<GridPoint>
sensitivityGrid(const FigureOptions &opts)
{
    const std::vector<double> alphas = {0.60, 0.85, 1.00, 1.10, 1.20};
    const std::vector<std::string> labels = {"0.60", "0.85", "1.00",
                                             "1.10", "1.20"};
    ExperimentSpec base = baseSpec(opts);
    base.capacityBytes = 64_MiB;
    base.accesses = opts.quick ? 2'500'000 : 10'000'000;

    SweepGrid grid(base);
    grid.overKnob<double>(
        "alpha", alphas, labels,
        [](ExperimentSpec &spec, const double &alpha) {
            WorkloadParams p = workloadParams(Workload::DataServing);
            p.regionZipfAlpha = alpha;
            spec.customWorkload = p;
        });
    grid.overDesigns({DesignKind::NoDramCache, DesignKind::Alloy,
                      DesignKind::Unison});
    return grid.points();
}

// ------------------------------------------------------------ table5

/** Predictor accuracies: Alloy, Footprint, Unison@960B and
 *  Unison@1984B per workload (8 GB cache for TPC-H, 1 GB else). */
std::vector<GridPoint>
table5Grid(const FigureOptions &opts)
{
    UnisonConfig uc960;
    uc960.pageBlocks = 15;
    UnisonConfig uc1984;
    uc1984.pageBlocks = 31;

    std::vector<std::vector<GridPoint>> segments;
    for (Workload w : allWorkloads()) {
        SweepGrid grid(baseSpec(opts));
        grid.base().capacityBytes =
            (w == Workload::TpchQueries) ? 8_GiB : 1_GiB;
        grid.overWorkloads({w}).over(
            "design",
            {designValue("alloy", DesignKind::Alloy),
             designValue("footprint", DesignKind::Footprint),
             designValue("unison960", uc960),
             designValue("unison1984", uc1984)});
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// ---------------------------------------------------------- ablation

/** The Unison design-choice ablations of core/DESIGN.md: baseline
 *  first, then one arm per deviation, per workload, all at 1 GB. The
 *  last three arms are compositions from the policy framework: the
 *  alloy-fp hybrid and the unisonwp pluggable-way-predictor variants. */
std::vector<GridPoint>
ablationGrid(const FigureOptions &opts)
{
    UnisonConfig fetch_all;
    fetch_all.wayPolicy = UnisonWayPolicy::FetchAll;
    UnisonConfig serial_tag;
    serial_tag.wayPolicy = UnisonWayPolicy::SerialTag;
    UnisonConfig pb31;
    pb31.pageBlocks = 31;
    UnisonConfig map_i;
    map_i.missPolicy = UnisonMissPolicy::MapI;
    UnisonConfig no_singleton;
    no_singleton.singletonEnabled = false;
    UnisonConfig no_fp;
    no_fp.footprintPredictionEnabled = false;
    UnisonWpConfig wp_mru;
    wp_mru.wayPredictorKind = UnisonWayPredictorKind::Mru;
    UnisonWpConfig wp_static;
    wp_static.wayPredictorKind = UnisonWayPredictorKind::Static0;

    std::vector<std::vector<GridPoint>> segments;
    for (Workload w : {Workload::DataServing, Workload::WebSearch,
                       Workload::DataAnalytics}) {
        SweepGrid grid(baseSpec(opts));
        grid.base().capacityBytes = 1_GiB;
        grid.overWorkloads({w}).over(
            "variant",
            {designValue("nocache", DesignKind::NoDramCache),
             designValue("baseline", UnisonConfig{}),
             designValue("fetch-all", fetch_all),
             designValue("serial-tag", serial_tag),
             designValue("pb31", pb31),
             designValue("map-i", map_i),
             designValue("no-singleton", no_singleton),
             designValue("no-footprint", no_fp),
             designValue("alloy-fp", AlloyFpConfig{}),
             designValue("wp-mru", wp_mru),
             designValue("wp-static0", wp_static)});
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// ------------------------------------------------------ alternatives

/** Sec. III-B: the rejected naive block/page combinations against the
 *  designs they splice together, plus the no-cache baseline. */
std::vector<GridPoint>
alternativesGrid(const FigureOptions &opts)
{
    SweepGrid grid(baseSpec(opts));
    grid.base().capacityBytes = 1_GiB;
    grid.overWorkloads({Workload::DataServing, Workload::WebSearch,
                        Workload::DataAnalytics})
        .overDesigns({DesignKind::NoDramCache, DesignKind::Alloy,
                      DesignKind::Footprint, DesignKind::NaiveBlockFp,
                      DesignKind::NaiveTaggedPage,
                      DesignKind::Unison});
    return grid.points();
}

// ------------------------------------------------------------ energy

/** Sec. V-D: row activations and dynamic DRAM energy per design (4 GB
 *  cache for TPC-H, 1 GB else). */
std::vector<GridPoint>
energyGrid(const FigureOptions &opts)
{
    std::vector<std::vector<GridPoint>> segments;
    for (Workload w : allWorkloads()) {
        SweepGrid grid(baseSpec(opts));
        grid.base().capacityBytes =
            (w == Workload::TpchQueries) ? 4_GiB : 1_GiB;
        grid.overWorkloads({w}).overDesigns(
            {DesignKind::Alloy, DesignKind::Footprint,
             DesignKind::Unison});
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// -------------------------------------------------------- analytical

/** The simulated arm of the conflict-model bench: Unison miss ratio
 *  vs associativity on two conflict-sensitive workloads, 128 MB. */
std::vector<GridPoint>
analyticalGrid(const FigureOptions &opts)
{
    SweepGrid grid(baseSpec(opts));
    grid.base().design = DesignKind::Unison;
    grid.base().capacityBytes = 128_MiB;
    grid.overWorkloads({Workload::WebServing, Workload::DataServing})
        .overKnob<std::uint32_t>(
            "assoc", {1, 2, 4, 8, 32},
            [](ExperimentSpec &spec, const std::uint32_t &assoc) {
                spec.design.as<UnisonConfig>().assoc = assoc;
            });
    return grid.points();
}

// ------------------------------------------------------------- mixes

std::vector<GridPoint>
defaultMixesGrid(const FigureOptions &opts)
{
    const int cores = 4;
    const std::uint64_t capacity = 256_MiB;
    std::uint64_t accesses = defaultAccessCount(capacity, opts.quick);
    accesses = std::max<std::uint64_t>(
        accesses - accesses % static_cast<std::uint64_t>(cores),
        static_cast<std::uint64_t>(cores));
    return mixesGrid(standardMixes(cores), capacity, accesses, cores,
                     opts);
}

// -------------------------------------------------------- datacenter

/**
 * Production-scale datacenter serving mixes: the three skewed-keyspace
 * scenarios (YCSB KV serving, DLRM embedding gathers, file serving)
 * plus a KV/file-server consolidation split, each at 4, 64 and 256
 * cores under Unison. This is the scale showcase the CloudSuite grids
 * never reach: a 256-core point tracks >= 1M distinct keys through the
 * O(active-set) page metadata and draws every key from the O(1)
 * two-level samplers. Quick mode shortens the runs 4x but keeps the
 * 256-core, million-key shape -- the CI byte-identity job runs it.
 */
std::vector<GridPoint>
datacenterGrid(const FigureOptions &opts)
{
    const std::uint64_t total = opts.quick ? 1'000'000 : 4'000'000;
    std::vector<std::vector<GridPoint>> segments;
    for (int cores : {4, 64, 256}) {
        const std::uint64_t accesses = std::max<std::uint64_t>(
            total - total % static_cast<std::uint64_t>(cores),
            static_cast<std::uint64_t>(cores));
        ExperimentSpec base = baseSpec(opts);
        base.capacityBytes = 512_MiB;
        base.accesses = accesses;
        base.design = DesignKind::Unison;
        base.system.numCores = cores;
        base.system.warmupAccesses = accesses / 2;
        base.system.perCoreAccessBudget =
            accesses / static_cast<std::uint64_t>(cores);

        const int first = (cores + 1) / 2;
        const int second = cores / 2;
        const std::vector<NamedMix> mixes = {
            {"ycsb-kv", {mixScenario(ScenarioKind::YcsbKv, cores)}},
            {"dlrm", {mixScenario(ScenarioKind::DlrmEmbed, cores)}},
            {"fileserve",
             {mixScenario(ScenarioKind::FileServe, cores)}},
            {"kv+fileserve",
             {mixScenario(ScenarioKind::YcsbKv, first),
              mixScenario(ScenarioKind::FileServe, second)}},
        };

        std::vector<SweepGrid::AxisValue> mix_axis;
        for (const NamedMix &mix : mixes)
            mix_axis.push_back(
                {mix.title, [parts = mix.parts](ExperimentSpec &spec) {
                     spec.mix = parts;
                 }});

        SweepGrid grid(base);
        grid.over("cores", {{"cores=" + std::to_string(cores),
                             [](ExperimentSpec &) {}}});
        grid.over("mix", std::move(mix_axis));
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// ------------------------------------------------------- convergence

/**
 * Measurement-window convergence: one pinned warm-up prefix per
 * (workload, design), crossed with growing measured windows. Every
 * point of a block shares its warm prefix, so the parallel runner
 * warms each block once, captures the boundary checkpoint and forks
 * the measurement runs from it -- the showcase (and the regression
 * canary) for warm-state checkpoint reuse. The data itself answers a
 * methodology question the paper's fixed two-thirds split sidesteps:
 * how long a measured window must be before the reported UIPC
 * stabilizes.
 */
std::vector<GridPoint>
convergenceGrid(const FigureOptions &opts)
{
    const std::uint64_t scale = opts.quick ? 8 : 1;
    const std::uint64_t warm = 4'000'000 / scale;
    const std::vector<std::pair<const char *, std::uint64_t>> windows =
        {{"win=0.5M", 500'000 / scale},
         {"win=1M", 1'000'000 / scale},
         {"win=2M", 2'000'000 / scale},
         {"win=4M", 4'000'000 / scale}};

    ExperimentSpec base = baseSpec(opts);
    base.capacityBytes = 128_MiB;
    base.system.warmupAccesses = warm;

    std::vector<SweepGrid::AxisValue> window_axis;
    for (const auto &[label, win] : windows)
        window_axis.push_back(
            {label, [total = warm + win](ExperimentSpec &spec) {
                 spec.accesses = total;
             }});

    std::vector<std::vector<GridPoint>> segments;
    for (Workload w : {Workload::WebServing, Workload::DataServing}) {
        SweepGrid grid(base);
        grid.overWorkloads({w})
            .overDesigns({DesignKind::Alloy, DesignKind::Unison})
            .over("window", window_axis);
        segments.push_back(grid.points());
    }
    return concatGrids(segments);
}

// -------------------------------------------------------- validation

/**
 * Fast-vs-detailed backend cross-validation: fig5/fig7-shaped points
 * (two CloudSuite workloads, a small and a large capacity, Alloy and
 * Unison) run under both memory backends. Consumers diff adjacent
 * backend pairs per point -- AMAT and UIPC deltas ARE the result: they
 * measure where the analytic model's error grows under contention
 * (bench/validation_backends.cpp prints the per-point table).
 */
std::vector<GridPoint>
validationGrid(const FigureOptions &opts)
{
    ExperimentSpec base = baseSpec(opts);
    base.system.numCores = 4;
    base.accesses = opts.quick ? 500'000 : 4'000'000;

    std::vector<SweepGrid::AxisValue> backend_axis;
    for (MemoryBackendKind kind :
         {MemoryBackendKind::Fast, MemoryBackendKind::Detailed})
        backend_axis.push_back(
            {memoryBackendId(kind), [kind](ExperimentSpec &spec) {
                 spec.system.memoryBackend = kind;
             }});

    SweepGrid grid(base);
    grid.overWorkloads({Workload::WebServing, Workload::DataServing})
        .overCapacities({128_MiB, 512_MiB})
        .overDesigns({DesignKind::Alloy, DesignKind::Unison})
        .over("backend", backend_axis);
    return grid.points();
}

// ------------------------------------------------------------- smoke

/** Seconds-scale CI grid: three designs at one small capacity. The
 *  checked-in specs/smoke.json export of this grid drives the
 *  shard/merge byte-identity job. */
std::vector<GridPoint>
smokeGrid(const FigureOptions &opts)
{
    ExperimentSpec base = baseSpec(opts);
    base.capacityBytes = 32_MiB;
    base.accesses = 150'000;
    base.system.numCores = 4;

    SweepGrid grid(base);
    grid.overWorkloads({Workload::WebServing})
        .overDesigns({DesignKind::NoDramCache, DesignKind::Alloy,
                      DesignKind::Unison});
    return grid.points();
}

struct FigureEntry
{
    const char *name;
    const char *summary;
    std::vector<GridPoint> (*build)(const FigureOptions &);
};

const FigureEntry kFigures[] = {
    {"fig5", "Unison miss ratio vs associativity (960B pages)",
     fig5Grid},
    {"fig6", "miss ratio vs capacity: Alloy / Footprint / Unison",
     fig6Grid},
    {"fig7", "CloudSuite speedup vs capacity over no-DRAM-cache",
     fig7Grid},
    {"fig7sens",
     "AC-vs-UC ordering vs page-level temporal reuse (companion)",
     sensitivityGrid},
    {"fig8", "TPC-H speedup, 1-8GB caches", fig8Grid},
    {"table5", "predictor accuracy per workload", table5Grid},
    {"ablation", "Unison design-choice ablations @ 1GB", ablationGrid},
    {"alternatives",
     "Sec. III-B naive block/page splices vs the real designs",
     alternativesGrid},
    {"analytical",
     "simulated Unison miss ratio vs associativity (conflict model)",
     analyticalGrid},
    {"energy",
     "Sec. V-D row activations and dynamic DRAM energy per design",
     energyGrid},
    {"mixes", "multiprogrammed consolidation mixes x designs",
     defaultMixesGrid},
    {"datacenter",
     "skewed-keyspace serving mixes at 4/64/256 cores under Unison",
     datacenterGrid},
    {"convergence",
     "UIPC vs measured-window length from one shared warm prefix",
     convergenceGrid},
    {"validation",
     "fast vs detailed memory backend: per-point AMAT/UIPC deltas",
     validationGrid},
    {"smoke", "seconds-scale CI grid (shard/merge identity checks)",
     smokeGrid},
};

} // namespace

const std::vector<std::string> &
figureNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const FigureEntry &entry : kFigures)
            out.push_back(entry.name);
        return out;
    }();
    return names;
}

std::string
figureSummary(const std::string &name)
{
    for (const FigureEntry &entry : kFigures)
        if (name == entry.name)
            return entry.summary;
    return "";
}

std::vector<GridPoint>
figureGrid(const std::string &name, const FigureOptions &opts)
{
    for (const FigureEntry &entry : kFigures)
        if (name == entry.name)
            return entry.build(opts);
    std::vector<std::string> known;
    for (const FigureEntry &entry : kFigures)
        known.push_back(entry.name);
    fatal("unknown figure '", name, "' (known figures: ",
          commaJoin(known), ")");
}

std::vector<NamedMix>
standardMixes(int cores)
{
    if (cores < 2)
        fatal("standardMixes needs a core count >= 2, got ", cores);
    // Odd counts give the first program the extra core; even counts
    // split exactly in half, matching the historical even-only tables.
    const int first = (cores + 1) / 2;
    const int second = cores / 2;
    return {
        {"web+tpch",
         {mixPreset(Workload::WebServing, first),
          mixPreset(Workload::TpchQueries, second)}},
        {"serving+analytics",
         {mixPreset(Workload::DataServing, first),
          mixPreset(Workload::DataAnalytics, second)}},
        {"scan+chase",
         {mixScenario(ScenarioKind::StreamScan, first),
          mixScenario(ScenarioKind::PointerChase, second)}},
        {"gups+web",
         {mixScenario(ScenarioKind::RandomUpdate, first),
          mixPreset(Workload::WebServing, second)}},
        {"prodcons",
         {mixScenario(ScenarioKind::ProducerConsumer, cores)}},
    };
}

std::vector<GridPoint>
mixesGrid(const std::vector<NamedMix> &mixes,
          std::uint64_t capacity_bytes, std::uint64_t accesses,
          int cores, const FigureOptions &opts)
{
    ExperimentSpec base;
    base.capacityBytes = capacity_bytes;
    base.accesses = accesses;
    base.seed = opts.seed;
    base.quick = opts.quick;
    base.system.numCores = cores;
    // Explicit measurement methodology: the first half of the
    // references only warms state, and every core gets the same
    // reference budget (fixed work per program).
    base.system.warmupAccesses = accesses / 2;
    base.system.perCoreAccessBudget =
        accesses / static_cast<std::uint64_t>(cores);

    std::vector<SweepGrid::AxisValue> mix_axis;
    for (const NamedMix &mix : mixes)
        mix_axis.push_back({mix.title,
                            [parts = mix.parts](ExperimentSpec &spec) {
                                spec.mix = parts;
                            }});

    SweepGrid grid(base);
    grid.over("mix", std::move(mix_axis));
    // NoDramCache first: it is the weighted-speedup baseline.
    grid.overDesigns({DesignKind::NoDramCache, DesignKind::Alloy,
                      DesignKind::Footprint, DesignKind::Unison});
    return grid.points();
}

} // namespace unison
