#include "sim/sweep.hh"

#include <algorithm>
#include <unordered_set>

#include "common/argparse.hh"
#include "common/logging.hh"

namespace unison {

SweepGrid &
SweepGrid::over(const std::string &axis, std::vector<AxisValue> values)
{
    if (values.empty())
        fatal("sweep axis '", axis, "' has no values");
    axes_.emplace_back(axis, std::move(values));
    return *this;
}

SweepGrid &
SweepGrid::overDesigns(const std::vector<DesignKind> &designs)
{
    std::vector<DesignConfig> configs;
    configs.reserve(designs.size());
    for (DesignKind kind : designs)
        configs.emplace_back(kind);
    return overDesignConfigs(configs);
}

SweepGrid &
SweepGrid::overDesignConfigs(const std::vector<DesignConfig> &configs)
{
    std::vector<AxisValue> axis;
    axis.reserve(configs.size());
    for (const DesignConfig &config : configs) {
        axis.push_back({designId(config.kind()),
                        [config](ExperimentSpec &spec) {
                            spec.design = config;
                        }});
    }
    return over("design", std::move(axis));
}

SweepGrid &
SweepGrid::overWorkloads(const std::vector<Workload> &workloads)
{
    std::vector<AxisValue> axis;
    axis.reserve(workloads.size());
    for (Workload w : workloads) {
        axis.push_back({normalizedNameKey(workloadName(w)),
                        [w](ExperimentSpec &spec) {
                            spec.workload = w;
                        }});
    }
    return over("workload", std::move(axis));
}

SweepGrid &
SweepGrid::overCapacities(const std::vector<std::uint64_t> &sizes)
{
    std::vector<AxisValue> axis;
    axis.reserve(sizes.size());
    for (std::uint64_t bytes : sizes) {
        axis.push_back({formatSize(bytes),
                        [bytes](ExperimentSpec &spec) {
                            spec.capacityBytes = bytes;
                        }});
    }
    return over("capacity", std::move(axis));
}

template <typename T>
SweepGrid &
SweepGrid::overKnob(const std::string &name, const std::vector<T> &values,
                    const std::vector<std::string> &labels,
                    std::function<void(ExperimentSpec &, const T &)> apply)
{
    if (labels.size() != values.size())
        fatal("sweep axis '", name, "': ", values.size(),
              " values but ", labels.size(), " labels");
    std::vector<AxisValue> axis;
    axis.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        const T value = values[i];
        axis.push_back({labels[i],
                        [apply, value](ExperimentSpec &spec) {
                            apply(spec, value);
                        }});
    }
    return over(name, std::move(axis));
}

// The label overload is used with these value types today; others go
// through the std::to_string overload in the header.
template SweepGrid &SweepGrid::overKnob<double>(
    const std::string &, const std::vector<double> &,
    const std::vector<std::string> &,
    std::function<void(ExperimentSpec &, const double &)>);
template SweepGrid &SweepGrid::overKnob<std::uint32_t>(
    const std::string &, const std::vector<std::uint32_t> &,
    const std::vector<std::string> &,
    std::function<void(ExperimentSpec &, const std::uint32_t &)>);

std::size_t
SweepGrid::size() const
{
    std::size_t n = 1;
    for (const auto &[name, values] : axes_)
        n *= values.size();
    return n;
}

std::vector<GridPoint>
SweepGrid::points() const
{
    std::vector<GridPoint> out;
    out.reserve(size());

    std::vector<std::size_t> coords(axes_.size(), 0);
    while (true) {
        GridPoint point;
        point.index = out.size();
        point.coords = coords;
        point.spec = base_;
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const AxisValue &value = axes_[a].second[coords[a]];
            value.apply(point.spec);
            if (a > 0)
                point.label += '/';
            point.label += value.label;
        }
        out.push_back(std::move(point));

        // Odometer increment, last axis fastest.
        std::size_t a = axes_.size();
        while (a > 0) {
            --a;
            if (++coords[a] < axes_[a].second.size())
                break;
            coords[a] = 0;
            if (a == 0)
                return out;
        }
        if (axes_.empty())
            return out;
    }
}

std::vector<GridPoint>
shardPoints(const std::vector<GridPoint> &points, std::size_t shard,
            std::size_t shards)
{
    if (shards == 0 || shard >= shards)
        fatal("bad shard ", shard, "/", shards,
              " (need 0 <= i < n)");
    std::vector<GridPoint> out;
    out.reserve(points.size() / shards + 1);
    for (std::size_t i = shard; i < points.size(); i += shards)
        out.push_back(points[i]);
    return out;
}

std::vector<GridPoint>
concatGrids(const std::vector<std::vector<GridPoint>> &segments)
{
    std::vector<GridPoint> out;
    std::unordered_set<std::string> seen;
    for (const std::vector<GridPoint> &segment : segments) {
        for (const GridPoint &point : segment) {
            if (!seen.insert(point.label).second)
                fatal("concatenated grids repeat the point label '",
                      point.label, "'");
            out.push_back(point);
            out.back().index = out.size() - 1;
        }
    }
    return out;
}

} // namespace unison
