/**
 * @file
 * The machine-readable experiment schema: (de)serialization between
 * ExperimentSpec/SimResult/grid files and JSON, so any frontend -- the
 * unison_sim CLI, CI, or a future network service -- can drive the
 * simulator and consume its results without linking bench code.
 *
 * Three document kinds, each self-identifying via a "schema" field:
 *
 *  - `unison-spec/4`    one experiment spec (v1..v3 are still read:
 *                       v4 is v3 plus >256-core systems and the
 *                       datacenter scenario knobs [numKeys,
 *                       keyZipfAlpha, recordBlocks, requestBlocksMean,
 *                       numTables, lookupsPerTable], v2 is v3 minus
 *                       system.memoryBackend [defaults to "fast"], v1
 *                       is v2 minus system.engineThreads [defaults to
 *                       1]; writes float to the *lowest* version that
 *                       expresses the spec -- a spec with <= 256 cores
 *                       and no datacenter scenarios still writes v3,
 *                       so documents from older studies stay
 *                       byte-identical);
 *  - `unison-grid/1`    a named list of labelled specs (a sweep);
 *  - `unison-results/1` a list of (index, label, spec, result) points.
 *
 * Guarantees the tests pin:
 *  - *round-trip exact*: parse(write(x)) == x for specs and results,
 *    byte-for-byte at the JSON level (doubles print in shortest
 *    round-trip form, 64-bit counters never go through a double);
 *  - *unknown-key rejection*: any key the schema does not define is a
 *    json::Error naming the offender and the accepted keys -- a typo'd
 *    knob cannot silently run defaults;
 *  - design knobs come from the design registry's knob table, so the
 *    schema extends automatically when a design registers a knob.
 *
 * Not serialized through schema v3 (fixed at their Table III
 * defaults): the SRAM hierarchy geometry and the DRAM
 * organization/timing structs. Bump the schema version before
 * serializing them.
 */

#ifndef UNISON_SIM_SPEC_JSON_HH
#define UNISON_SIM_SPEC_JSON_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/sweep.hh"

namespace unison {

inline constexpr const char *kSpecSchema = "unison-spec/4";
/** Previous spec schemas, still accepted by specFromJson (and still
 *  *written* when a spec does not need v4 features). */
inline constexpr const char *kSpecSchemaV3 = "unison-spec/3";
inline constexpr const char *kSpecSchemaV2 = "unison-spec/2";
inline constexpr const char *kSpecSchemaV1 = "unison-spec/1";
inline constexpr const char *kGridSchema = "unison-grid/1";
inline constexpr const char *kResultsSchema = "unison-results/1";

/** @name One experiment spec */
/**@{*/
json::Value specToJson(const ExperimentSpec &spec);
ExperimentSpec specFromJson(const json::Value &value);
/**@}*/

/** @name One simulation result */
/**@{*/
json::Value resultToJson(const SimResult &result);
SimResult resultFromJson(const json::Value &value);
/**@}*/

/** A parsed grid file: named, labelled specs in run order. */
struct GridFile
{
    std::string name; //!< grid identity ("fig7", "custom", ...)
    std::vector<GridPoint> points;
};

/** @name Grid documents
 * toJson accepts the points of a SweepGrid/figureGrid; fromJson also
 * accepts a bare `unison-spec/1` document as a one-point grid, so
 * `unison_sim --spec` runs either document kind.
 */
/**@{*/
json::Value gridToJson(const std::string &name,
                       const std::vector<GridPoint> &points);
GridFile gridFromJson(const json::Value &value);
/**@}*/

/** One completed point of a results document. */
struct ResultPoint
{
    std::size_t index = 0; //!< position in the *full* (unsharded) grid
    std::string label;
    ExperimentSpec spec;
    SimResult result;
};

/** @name Results documents
 * `shard` is "" for a full run or "i/n" for a shard; merging drops it.
 * `grid_hash` fingerprints the *full* grid the points came from, so a
 * merge can reject shards of different runs of a same-named grid.
 * Every document also stamps `codeVersion` (kSimCodeVersion) -- the
 * build that produced the numbers -- so merges and journal resumes can
 * refuse to mix results across behaviour-changing builds.
 * Points are written sorted by index, which is what makes a merge of
 * shard files byte-identical to an unsharded run.
 */
/**@{*/
json::Value resultsToJson(const std::string &grid_name,
                          const std::string &shard,
                          const std::string &grid_hash,
                          std::vector<ResultPoint> points);
std::vector<ResultPoint> resultsFromJson(const json::Value &value,
                                         std::string *grid_name,
                                         std::string *shard,
                                         std::string *grid_hash,
                                         std::string *code_version =
                                             nullptr);
/**@}*/

/** FNV-1a fingerprint (16 hex chars) of a serialized grid document;
 *  identical grids => identical fingerprints, so shard result files
 *  can prove they came from the same grid before merging. */
std::string gridFingerprint(const std::string &grid_json);

/** Content address of one experiment spec: the fingerprint of its
 *  canonical JSON serialization (specToJson + write, so two specs
 *  that serialize identically -- and therefore simulate identically --
 *  share an address). Keys the result store together with
 *  kSimCodeVersion. */
std::string specFingerprint(const ExperimentSpec &spec);

} // namespace unison

#endif // UNISON_SIM_SPEC_JSON_HH
