/**
 * @file
 * The design registry: one table mapping every DRAM-cache design to
 * its typed configuration, its names, its tunable knobs and its
 * factory. This is the single source of truth the rest of the repo
 * derives from --
 *
 *  - `ExperimentSpec` holds a design's typed config (the same
 *    `UnisonConfig`/`AlloyConfig`/... structs the caches are
 *    constructed from) in one `DesignVariant`, instead of smearing
 *    per-design knobs across a flat struct;
 *  - `makeCacheFactory` builds the cache through the registered
 *    factory (no `DesignKind` switch anywhere else);
 *  - display names (`designName`), CLI `--design` parsing and bench
 *    column labels all read the same table entries;
 *  - the JSON spec schema serializes a design as its registry id plus
 *    its knob table, with unknown knobs rejected.
 *
 * Each design defines its own `DesignInfo` next to its implementation
 * (the baselines/ and core/ source files) and the registry pulls them
 * in once on first use. The variant is deliberately closed: adding a
 * design means one new source file plus a DesignKind enumerator, a
 * DesignVariant alternative and an add() call here (see README
 * "Adding a new cache design"); add() rejects duplicate ids and kinds
 * so every registered design stays reachable.
 */

#ifndef UNISON_SIM_DESIGN_REGISTRY_HH
#define UNISON_SIM_DESIGN_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "baselines/alloy_cache.hh"
#include "baselines/footprint_cache.hh"
#include "baselines/ideal_cache.hh"
#include "baselines/lohhill_cache.hh"
#include "baselines/naive_block_fp.hh"
#include "baselines/naive_tagged_page.hh"
#include "baselines/no_cache.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/alloy_fp.hh"
#include "core/unison_cache.hh"
#include "core/unison_wp.hh"

namespace unison {

/** The designs the paper evaluates. Enumerator order must match the
 *  `DesignVariant` alternative order (checked by static_asserts in
 *  design_registry.cc). */
enum class DesignKind
{
    Unison,
    Alloy,
    Footprint,
    LohHill,  //!< Loh & Hill MICRO'11 (Sec. II-A discussion baseline)
    NaiveBlockFp,     //!< Sec. III-B.1 rejected design (Fig. 4a)
    NaiveTaggedPage,  //!< Sec. III-B.2 rejected design (Fig. 4b)
    Ideal,
    NoDramCache,
    AlloyFp,  //!< composed: block cache + footprint-grouped prefetch
    UnisonWp, //!< composed: Unison with pluggable way predictors
};

/**
 * The typed per-design configuration: exactly the struct the concrete
 * cache is constructed from. The spec-level fields every design shares
 * (capacityBytes, numCores, the stacked-DRAM organization) are
 * overridden from the ExperimentSpec when the cache is built, so sweep
 * axes like capacity never have to reach into the variant.
 */
using DesignVariant =
    std::variant<UnisonConfig, AlloyConfig, FootprintCacheConfig,
                 LohHillConfig, NaiveBlockFpConfig,
                 NaiveTaggedPageConfig, IdealConfig, NoCacheConfig,
                 AlloyFpConfig, UnisonWpConfig>;

/** Spec-level values the factory folds into the design config. */
struct DesignBuildContext
{
    std::uint64_t capacityBytes = 0;
    int numCores = 16;
    /** Timing model for the design's stacked pool (the build functions
     *  fold it into stackedOrg before constructing the pool). */
    MemoryBackendKind backend = MemoryBackendKind::Fast;
};

/**
 * One tunable of a design, as exposed in the JSON spec schema: a
 * stable key, a getter (serialization) and a range-checked setter
 * (parsing). The knob table *is* the design's public configuration
 * surface; anything not listed is an internal default.
 */
struct DesignKnob
{
    std::string key;
    std::string help;
    std::string type;  //!< "uint" | "bool" | "enum" (for --knobs)
    std::string range; //!< human-readable valid range / value set
    std::function<json::Value(const DesignVariant &)> get;
    /** Throws json::Error on a bad value. */
    std::function<void(DesignVariant &, const json::Value &)> set;
};

/** Everything the registry knows about one design. */
struct DesignInfo
{
    DesignKind kind = DesignKind::Unison;
    std::string id;        //!< canonical JSON/CLI token ("unison")
    std::string name;      //!< paper-style full name ("Unison Cache")
    std::string shortName; //!< bench column label ("Unison")
    std::string summary;   //!< one-liner for `unison_sim --list`
    DesignVariant defaults;
    std::vector<DesignKnob> knobs;

    /** Optional config validation: "" when fine, else an actionable
     *  message (ExperimentSpec::validationError appends context). */
    std::function<std::string(const DesignVariant &,
                              const DesignBuildContext &)>
        validate;

    /** Build the cache for a (config, spec context) pair. */
    std::function<std::unique_ptr<DramCache>(
        const DesignVariant &, const DesignBuildContext &,
        MemoryBackend *offchip)>
        build;
};

/**
 * The process-wide design table. Lookups are read-only after the
 * built-ins register on first use (thread-safe magic static); add()
 * throws std::invalid_argument on a duplicate id/name/kind.
 */
class DesignRegistry
{
  public:
    static DesignRegistry &instance();

    void add(DesignInfo info);

    /** Lookup by id or display name (case/punctuation-insensitive via
     *  normalizedNameKey); nullptr when unknown. */
    const DesignInfo *find(const std::string &id_or_name) const;

    /** find() that fails with a fatal() listing the registered ids --
     *  the CLI-facing variant. */
    const DesignInfo &byId(const std::string &id_or_name) const;

    const DesignInfo &byKind(DesignKind kind) const;

    /** All designs in registration order (paper order for built-ins). */
    const std::vector<DesignInfo> &all() const { return infos_; }

  private:
    DesignRegistry() = default;
    std::vector<DesignInfo> infos_;
};

/**
 * The design slot of an ExperimentSpec: a DesignVariant with
 * conversions that keep sweep code terse. `spec.design =
 * DesignKind::Alloy` selects a design with registry defaults;
 * `spec.design = my_unison_config` installs a fully custom config;
 * `spec.design.as<UnisonConfig>().assoc = 8` tweaks one knob.
 */
class DesignConfig
{
  public:
    DesignConfig() : v_(UnisonConfig{}) {}
    DesignConfig(DesignKind kind); //!< registry defaults (implicit)
    explicit DesignConfig(DesignVariant v) : v_(std::move(v)) {}
    DesignConfig(UnisonConfig c) : v_(std::move(c)) {}
    DesignConfig(AlloyConfig c) : v_(std::move(c)) {}
    DesignConfig(FootprintCacheConfig c) : v_(std::move(c)) {}
    DesignConfig(LohHillConfig c) : v_(std::move(c)) {}
    DesignConfig(NaiveBlockFpConfig c) : v_(std::move(c)) {}
    DesignConfig(NaiveTaggedPageConfig c) : v_(std::move(c)) {}
    DesignConfig(IdealConfig c) : v_(std::move(c)) {}
    DesignConfig(NoCacheConfig c) : v_(std::move(c)) {}
    DesignConfig(AlloyFpConfig c) : v_(std::move(c)) {}
    DesignConfig(UnisonWpConfig c) : v_(std::move(c)) {}

    DesignKind
    kind() const
    {
        return static_cast<DesignKind>(v_.index());
    }

    template <typename T>
    T &
    as()
    {
        T *cfg = std::get_if<T>(&v_);
        if (cfg == nullptr)
            panic("DesignConfig holds a different design's config");
        return *cfg;
    }

    template <typename T>
    const T &
    as() const
    {
        const T *cfg = std::get_if<T>(&v_);
        if (cfg == nullptr)
            panic("DesignConfig holds a different design's config");
        return *cfg;
    }

    DesignVariant &variant() { return v_; }
    const DesignVariant &variant() const { return v_; }

  private:
    DesignVariant v_;
};

/** Paper-style display name, driven by the registry table. */
std::string designName(DesignKind kind);

/** Canonical id token ("unison"), driven by the registry table. */
std::string designId(DesignKind kind);

/** @name Built-in design table entries
 * Defined next to each design's implementation; the registry calls
 * them exactly once. A new design adds its info function here (plus
 * its DesignKind enumerator and DesignVariant alternative above).
 */
/**@{*/
DesignInfo unisonDesignInfo();          // src/core/unison_cache.cc
DesignInfo alloyDesignInfo();           // src/baselines/alloy_cache.cc
DesignInfo footprintDesignInfo();       // src/baselines/footprint_cache.cc
DesignInfo lohHillDesignInfo();         // src/baselines/lohhill_cache.cc
DesignInfo naiveBlockFpDesignInfo();    // src/baselines/naive_block_fp.cc
DesignInfo naiveTaggedPageDesignInfo(); // src/baselines/naive_tagged_page.cc
DesignInfo idealDesignInfo();           // src/baselines/simple_designs.cc
DesignInfo noCacheDesignInfo();         // src/baselines/simple_designs.cc
DesignInfo alloyFpDesignInfo();         // src/core/alloy_fp.cc
DesignInfo unisonWpDesignInfo();        // src/core/unison_wp.cc
/**@}*/

/** @name Knob-table helpers
 * Build the common knob shapes from a member pointer (or a pair of
 * accessors for nested members) with range checking; design files
 * compose their knob tables from these.
 */
/**@{*/

template <typename Cfg, typename T>
DesignKnob
knobUInt(const char *key, const char *help, T Cfg::*member,
         std::uint64_t lo, std::uint64_t hi)
{
    DesignKnob k;
    k.key = key;
    k.help = help;
    k.type = "uint";
    k.range = "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
    k.get = [member](const DesignVariant &v) {
        return json::Value(
            static_cast<std::uint64_t>(std::get<Cfg>(v).*member));
    };
    k.set = [member, key = std::string(key), lo, hi](
                DesignVariant &v, const json::Value &in) {
        const std::uint64_t value = in.asUint();
        if (value < lo || value > hi)
            throw json::Error("knob '" + key + "' must be in [" +
                              std::to_string(lo) + ", " +
                              std::to_string(hi) + "], got " +
                              std::to_string(value));
        std::get<Cfg>(v).*member = static_cast<T>(value);
    };
    return k;
}

template <typename Cfg>
DesignKnob
knobBool(const char *key, const char *help, bool Cfg::*member)
{
    DesignKnob k;
    k.key = key;
    k.help = help;
    k.type = "bool";
    k.range = "true | false";
    k.get = [member](const DesignVariant &v) {
        return json::Value(std::get<Cfg>(v).*member);
    };
    k.set = [member](DesignVariant &v, const json::Value &in) {
        std::get<Cfg>(v).*member = in.asBool();
    };
    return k;
}

template <typename Cfg, typename E>
DesignKnob
knobEnum(const char *key, const char *help, E Cfg::*member,
         std::vector<std::pair<std::string, E>> values)
{
    DesignKnob k;
    k.key = key;
    k.help = help;
    k.type = "enum";
    {
        std::vector<std::string> names;
        for (const auto &[name, e] : values)
            names.push_back(name);
        k.range = commaJoin(names);
    }
    k.get = [member, values](const DesignVariant &v) {
        const E current = std::get<Cfg>(v).*member;
        for (const auto &[name, e] : values)
            if (e == current)
                return json::Value(name);
        panic("enum knob value has no name");
    };
    k.set = [member, values, key = std::string(key)](
                DesignVariant &v, const json::Value &in) {
        const std::string &name = in.asString();
        for (const auto &[candidate, e] : values) {
            if (candidate == name) {
                std::get<Cfg>(v).*member = e;
                return;
            }
        }
        std::vector<std::string> known;
        for (const auto &[candidate, e] : values)
            known.push_back(candidate);
        throw json::Error("knob '" + key + "': unknown value '" + name +
                          "' (one of: " + commaJoin(known) + ")");
    };
    return k;
}

/** Nested-member variant of knobUInt (e.g. fhtConfig.numEntries). */
template <typename Cfg, typename T>
DesignKnob
knobUIntFn(const char *key, const char *help,
           std::function<T &(Cfg &)> access, std::uint64_t lo,
           std::uint64_t hi)
{
    DesignKnob k;
    k.key = key;
    k.help = help;
    k.type = "uint";
    k.range = "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
    k.get = [access](const DesignVariant &v) {
        Cfg cfg = std::get<Cfg>(v);
        return json::Value(static_cast<std::uint64_t>(access(cfg)));
    };
    k.set = [access, key = std::string(key), lo, hi](
                DesignVariant &v, const json::Value &in) {
        const std::uint64_t value = in.asUint();
        if (value < lo || value > hi)
            throw json::Error("knob '" + key + "' must be in [" +
                              std::to_string(lo) + ", " +
                              std::to_string(hi) + "], got " +
                              std::to_string(value));
        access(std::get<Cfg>(v)) = static_cast<T>(value);
    };
    return k;
}

/**@}*/

} // namespace unison

#endif // UNISON_SIM_DESIGN_REGISTRY_HH
