#include "sim/runner.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace unison {

std::vector<SimResult>
runExperiments(const std::vector<ExperimentSpec> &specs, int threads,
               const ExperimentCallback &on_done)
{
    if (threads < 0)
        fatal("runExperiments: thread count must be >= 0 (0 = all "
              "hardware threads), got ", threads);

    std::vector<SimResult> results(specs.size());
    if (specs.empty())
        return results;

    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    const std::size_t workers = std::min<std::size_t>(
        specs.size(), static_cast<std::size_t>(std::max(threads, 1)));

    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            results[i] = runExperiment(specs[i]);
            if (on_done)
                on_done(i, results[i]);
        }
        return results;
    }

    // Work-stealing by atomic ticket: long experiments (TPC-H, 8 GB
    // caches) naturally load-balance against short ones.
    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;
    const auto worker = [&]() {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size())
                return;
            results[i] = runExperiment(specs[i]);
            if (on_done) {
                std::lock_guard<std::mutex> lock(done_mutex);
                on_done(i, results[i]);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &thread : pool)
        thread.join();
    return results;
}

} // namespace unison
