#include "sim/runner.hh"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"

namespace unison {

namespace {

/** Run the specs named by `todo` (indices into `specs`), in parallel
 *  on `workers` threads when it pays, through `run_one`. */
void
runBatch(const std::vector<ExperimentSpec> &specs,
         const std::vector<std::size_t> &todo,
         std::vector<SimResult> &results, std::size_t workers,
         const ExperimentCallback &on_done, std::mutex &done_mutex,
         const std::function<SimResult(std::size_t)> &run_one)
{
    if (workers <= 1 || todo.size() <= 1) {
        for (const std::size_t i : todo) {
            results[i] = run_one(i);
            if (on_done)
                on_done(i, results[i]);
        }
        return;
    }

    // Work-stealing by atomic ticket: long experiments (TPC-H, 8 GB
    // caches) naturally load-balance against short ones.
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        while (true) {
            const std::size_t t = next.fetch_add(1);
            if (t >= todo.size())
                return;
            const std::size_t i = todo[t];
            results[i] = run_one(i);
            if (on_done) {
                std::lock_guard<std::mutex> lock(done_mutex);
                on_done(i, results[i]);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(std::min(workers, todo.size()));
    for (std::size_t t = 0; t < std::min(workers, todo.size()); ++t)
        pool.emplace_back(worker);
    for (auto &thread : pool)
        thread.join();
}

} // namespace

std::vector<SimResult>
runExperiments(const std::vector<ExperimentSpec> &specs, int threads,
               const ExperimentCallback &on_done, const RunHooks &hooks)
{
    if (threads < 0)
        fatal("runExperiments: thread count must be >= 0 (0 = all "
              "hardware threads), got ", threads);

    std::vector<SimResult> results(specs.size());
    if (specs.empty())
        return results;

    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : static_cast<int>(hw);
    }

    // Journal replay: points a previous (possibly killed) invocation
    // already completed are restored, not re-simulated -- the
    // crash-safety contract is that this substitution is invisible in
    // the final output (results documents round-trip byte-exactly,
    // ctest-enforced). Replays complete first, in index order, before
    // any simulation starts. The result cache (content-addressed
    // store) is consulted after the journal: same substitution
    // contract, but keyed by spec content rather than run identity, so
    // hits come from *any* previous run of the same spec and build.
    std::vector<char> replayed(specs.size(), 0);
    if (hooks.journal != nullptr || hooks.cache != nullptr) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const bool hit =
                (hooks.journal != nullptr &&
                 hooks.journal->tryLoad(i, results[i])) ||
                (hooks.cache != nullptr &&
                 hooks.cache->tryLoad(i, results[i]));
            if (hit) {
                replayed[i] = 1;
                if (on_done)
                    on_done(i, results[i]);
            }
        }
    }

    std::vector<std::size_t> todo_all;
    for (std::size_t i = 0; i < specs.size(); ++i)
        if (!replayed[i])
            todo_all.push_back(i);
    if (todo_all.empty())
        return results;

    const std::size_t workers = std::min<std::size_t>(
        todo_all.size(),
        static_cast<std::size_t>(std::max(threads, 1)));

    // Warm-checkpoint reuse: specs that pin the same warm-up prefix
    // (identical spec modulo the measured window -- see warmPrefixKey)
    // simulate byte-identical states over [0, warmupAccesses). The
    // first member of each such group runs in phase 1 and captures the
    // boundary snapshot; the rest resume from it in phase 2, skipping
    // their warm-up entirely. The System checkpoint contract (pinned
    // by ctest) makes this invisible except in wall-clock; groups
    // whose design or source cannot serialize state simply leave the
    // snapshot invalid and the members fall back to plain runs.
    //
    // With a persistent store, a group of ANY size first asks the
    // store for the prefix's snapshot (captured by some earlier
    // process); a verified hit lets every member resume with no
    // leader run at all, and a miss makes the leader capture AND
    // persist for the next invocation. A store snapshot that later
    // fails its in-run shape checks degrades to a cold warm-up inside
    // runExperimentCk -- correctness never depends on the store.
    std::unordered_map<std::string, std::vector<std::size_t>> groups;
    for (const std::size_t i : todo_all)
        if (checkpointEligible(specs[i]))
            groups[warmPrefixKey(specs[i])].push_back(i);

    std::vector<WarmCheckpoint> checkpoints;
    std::vector<std::string> slot_key;
    // Per-spec checkpoint slot: a leader captures into its slot
    // (phase 1), members resume from it (phase 2); -1 = plain run.
    std::vector<std::ptrdiff_t> capture_slot(specs.size(), -1);
    std::vector<std::ptrdiff_t> resume_slot(specs.size(), -1);
    for (const auto &[key, members] : groups) {
        const bool persistent = hooks.checkpoints != nullptr;
        if (members.size() < 2 && !persistent)
            continue; // nothing to reuse: skip the serialization cost
        const auto slot =
            static_cast<std::ptrdiff_t>(checkpoints.size());
        checkpoints.emplace_back();
        slot_key.push_back(key);
        const bool loaded =
            persistent &&
            hooks.checkpoints->tryLoad(key, checkpoints.back()) &&
            checkpoints.back().valid();
        if (loaded) {
            for (const std::size_t i : members)
                resume_slot[i] = slot;
        } else {
            checkpoints.back() = WarmCheckpoint{};
            capture_slot[members.front()] = slot;
            for (std::size_t k = 1; k < members.size(); ++k)
                resume_slot[members[k]] = slot;
        }
    }

    std::vector<std::size_t> phase1, phase2;
    for (const std::size_t i : todo_all)
        (resume_slot[i] < 0 ? phase1 : phase2).push_back(i);

    const auto run_one = [&](std::size_t i) {
        if (capture_slot[i] < 0 && resume_slot[i] < 0)
            return runExperiment(specs[i]);
        const WarmCheckpoint *resume =
            resume_slot[i] < 0
                ? nullptr
                : &checkpoints[static_cast<std::size_t>(resume_slot[i])];
        WarmCheckpoint *capture =
            capture_slot[i] < 0
                ? nullptr
                : &checkpoints[static_cast<std::size_t>(capture_slot[i])];
        SimResult result = runExperimentCk(specs[i], resume, capture);
        if (capture != nullptr && hooks.checkpoints != nullptr &&
            capture->valid())
            hooks.checkpoints->save(
                slot_key[static_cast<std::size_t>(capture_slot[i])],
                *capture);
        return result;
    };

    // Journal appends ride the same serialization as on_done (the
    // done_mutex in the threaded path), and always run *before* the
    // progress callback: once the user sees "done", the record is
    // durable. Cache inserts follow the journal append -- publishing
    // to the shared store is best-effort and must not delay the
    // durability barrier.
    const ExperimentCallback complete =
        [&](std::size_t i, const SimResult &result) {
            if (hooks.journal != nullptr)
                hooks.journal->record(i, result);
            if (hooks.cache != nullptr)
                hooks.cache->record(i, result);
            if (on_done)
                on_done(i, result);
        };
    const ExperimentCallback &done_hook =
        hooks.journal != nullptr || hooks.cache != nullptr ? complete
                                                           : on_done;

    std::mutex done_mutex;
    runBatch(specs, phase1, results, workers, done_hook, done_mutex,
             run_one);
    // The phase barrier (thread join) publishes the leaders' captured
    // snapshots to the phase-2 workers.
    runBatch(specs, phase2, results, workers, done_hook, done_mutex,
             run_one);
    return results;
}

} // namespace unison
