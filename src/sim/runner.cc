#include "sim/runner.hh"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"

namespace unison {

namespace {

/** Run the specs named by `todo` (indices into `specs`), in parallel
 *  on `workers` threads when it pays, through `run_one`. */
void
runBatch(const std::vector<ExperimentSpec> &specs,
         const std::vector<std::size_t> &todo,
         std::vector<SimResult> &results, std::size_t workers,
         const ExperimentCallback &on_done, std::mutex &done_mutex,
         const std::function<SimResult(std::size_t)> &run_one)
{
    if (workers <= 1 || todo.size() <= 1) {
        for (const std::size_t i : todo) {
            results[i] = run_one(i);
            if (on_done)
                on_done(i, results[i]);
        }
        return;
    }

    // Work-stealing by atomic ticket: long experiments (TPC-H, 8 GB
    // caches) naturally load-balance against short ones.
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        while (true) {
            const std::size_t t = next.fetch_add(1);
            if (t >= todo.size())
                return;
            const std::size_t i = todo[t];
            results[i] = run_one(i);
            if (on_done) {
                std::lock_guard<std::mutex> lock(done_mutex);
                on_done(i, results[i]);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(std::min(workers, todo.size()));
    for (std::size_t t = 0; t < std::min(workers, todo.size()); ++t)
        pool.emplace_back(worker);
    for (auto &thread : pool)
        thread.join();
}

} // namespace

std::vector<SimResult>
runExperiments(const std::vector<ExperimentSpec> &specs, int threads,
               const ExperimentCallback &on_done)
{
    if (threads < 0)
        fatal("runExperiments: thread count must be >= 0 (0 = all "
              "hardware threads), got ", threads);

    std::vector<SimResult> results(specs.size());
    if (specs.empty())
        return results;

    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    const std::size_t workers = std::min<std::size_t>(
        specs.size(), static_cast<std::size_t>(std::max(threads, 1)));

    // Warm-checkpoint reuse: specs that pin the same warm-up prefix
    // (identical spec modulo the measured window -- see warmPrefixKey)
    // simulate byte-identical states over [0, warmupAccesses). The
    // first member of each such group runs in phase 1 and captures the
    // boundary snapshot; the rest resume from it in phase 2, skipping
    // their warm-up entirely. The System checkpoint contract (pinned
    // by ctest) makes this invisible except in wall-clock; groups
    // whose design or source cannot serialize state simply leave the
    // snapshot invalid and the members fall back to plain runs.
    std::unordered_map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < specs.size(); ++i)
        if (checkpointEligible(specs[i]))
            groups[warmPrefixKey(specs[i])].push_back(i);

    std::vector<WarmCheckpoint> checkpoints;
    // Per-spec checkpoint slot: a leader captures into its slot
    // (phase 1), members resume from it (phase 2); -1 = plain run.
    std::vector<std::ptrdiff_t> capture_slot(specs.size(), -1);
    std::vector<std::ptrdiff_t> resume_slot(specs.size(), -1);
    for (const auto &[key, members] : groups) {
        if (members.size() < 2)
            continue; // nothing to reuse: skip the serialization cost
        const auto slot =
            static_cast<std::ptrdiff_t>(checkpoints.size());
        checkpoints.emplace_back();
        capture_slot[members.front()] = slot;
        for (std::size_t k = 1; k < members.size(); ++k)
            resume_slot[members[k]] = slot;
    }

    std::vector<std::size_t> phase1, phase2;
    for (std::size_t i = 0; i < specs.size(); ++i)
        (resume_slot[i] < 0 ? phase1 : phase2).push_back(i);

    const auto run_one = [&](std::size_t i) {
        if (capture_slot[i] < 0 && resume_slot[i] < 0)
            return runExperiment(specs[i]);
        const WarmCheckpoint *resume =
            resume_slot[i] < 0
                ? nullptr
                : &checkpoints[static_cast<std::size_t>(resume_slot[i])];
        WarmCheckpoint *capture =
            capture_slot[i] < 0
                ? nullptr
                : &checkpoints[static_cast<std::size_t>(capture_slot[i])];
        return runExperimentCk(specs[i], resume, capture);
    };

    std::mutex done_mutex;
    runBatch(specs, phase1, results, workers, on_done, done_mutex,
             run_one);
    // The phase barrier (thread join) publishes the leaders' captured
    // snapshots to the phase-2 workers.
    runBatch(specs, phase2, results, workers, on_done, done_mutex,
             run_one);
    return results;
}

} // namespace unison
