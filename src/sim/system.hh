/**
 * @file
 * The full-system timing model: 16 cores playing back an access trace
 * through private L1s, the shared L2, the DRAM cache under study, and
 * the shared off-chip DDR3 channel.
 *
 * Core model: trace-driven with a base CPI for non-memory instructions
 * and a memory-level-parallelism factor that overlaps load stalls --
 * the standard trace-driven stand-in for the paper's 3-way OoO cores.
 * The performance metric is user instructions per cycle (UIPC), the
 * throughput proxy the paper adopts from SimFlex; speedups divide
 * UIPCs. Warm-up follows the paper: the first fraction of the trace
 * only warms state, then all statistics reset and measurement covers
 * the remainder.
 */

#ifndef UNISON_SIM_SYSTEM_HH
#define UNISON_SIM_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/dram_cache.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"
#include "stats/percore.hh"
#include "trace/access.hh"

namespace unison {

/** Core/system timing knobs (Table III-derived defaults). */
struct SystemConfig
{
    int numCores = 16;
    HierarchyConfig hierarchy{};
    DramOrganization offchipOrg = offChipDramOrganization();
    DramTimingParams offchipTiming = offChipDramTiming();

    /** Cycles per non-memory instruction (server-workload CPI on a modest 3-way OoO core). */
    double cpiBase = 2.0;

    /**
     * Outstanding DRAM-level loads a core can overlap (MSHR / OoO
     * window limit). The core stalls only when it would exceed this,
     * which keeps injection self-throttled under saturation.
     */
    int maxOutstandingMisses = 4;

    /** Fraction of the trace used for warm-up (paper: two thirds). */
    double warmFraction = 2.0 / 3.0;

    /**
     * Explicit warm-up window in accesses; overrides warmFraction
     * when non-zero. Accesses [0, warmupAccesses) only warm state,
     * all statistics reset at the boundary, and measurement covers
     * the remainder.
     */
    std::uint64_t warmupAccesses = 0;

    /**
     * Per-core cap on issued references, warm-up included (0 =
     * unlimited). A core that exhausts its budget stops issuing; the
     * run ends when every core has (or the total access count is
     * reached, whichever comes first). Gives every program of a mix
     * the same reference count regardless of its relative speed --
     * the fixed-work discipline multiprogrammed comparisons need.
     */
    std::uint64_t perCoreAccessBudget = 0;

    /**
     * Worker threads for the intra-experiment engine (1 = the serial
     * reference engine). The SimResult is bit-identical for any value
     * -- the same contract sweep-level --threads gives across
     * experiments, applied inside one: producer threads shard the
     * cores, run only per-core-independent work (stream generation and
     * the private L1s) ahead of time, and a commit thread replays the
     * recorded outcomes through the shared levels in exactly the
     * serial engine's scheduling order. Sources whose streams are not
     * per-core deterministic (trace readers, multi-core synthetic
     * generators sharing one RNG) silently fall back to the serial
     * engine, as do single-core systems and checkpoint capture/resume
     * runs.
     */
    int engineThreads = 1;

    /**
     * Timing model for *every* DRAM pool in the system: the off-chip
     * channel and each design's stacked pool (threaded to the designs
     * through DesignBuildContext). The fast analytic model is the
     * default and the one all goldens are pinned against; the detailed
     * FR-FCFS controller exists to cross-validate it (the `validation`
     * figure grid).
     */
    MemoryBackendKind memoryBackend = MemoryBackendKind::Fast;
};

/**
 * A warm-state snapshot taken at the warm-up boundary (see
 * common/state_io.hh for what "state" means). Captured by a run whose
 * spec pins the boundary with warmupAccesses; a later run over the
 * same (design, workload, system) prefix can resume from it and skip
 * re-simulating the warmup, byte-identical to having simulated it.
 */
struct WarmCheckpoint
{
    std::uint64_t warmAccesses = 0; //!< boundary the snapshot is at
    std::vector<std::uint8_t> bytes;

    bool valid() const { return !bytes.empty(); }
};

/** One core's slice of a simulation (multiprogrammed mixes). */
struct CoreSimResult
{
    std::string sourceName;        //!< workload/scenario on this core
    std::uint64_t instructions = 0;
    std::uint64_t references = 0;
    Cycle cycles = 0;              //!< this core's measured cycles
    double uipc = 0.0;             //!< instructions / own cycles
    double amatCycles = 0.0;       //!< mean load latency, cycles
};

/** Everything a bench needs from one simulation. */
struct SimResult
{
    std::string designName;

    std::uint64_t instructions = 0;
    Cycle cycles = 0;          //!< max per-core measured cycles
    double uipc = 0.0;         //!< instructions / (cycles * cores)

    std::uint64_t references = 0;  //!< measured CPU references
    double l1MissPercent = 0.0;
    double l2MissPercent = 0.0;

    DramCacheStats cache;      //!< snapshot of the design's counters
    DramPoolStats offchip;
    DramPoolStats stacked;

    /** Controller-queue counters; all-zero under the fast backend
     *  (which has no queues). */
    MemoryQueueStats offchipQueue;
    MemoryQueueStats stackedQueue;

    double avgDramCacheLatency = 0.0; //!< cycles, demand reads
    double avgMemLatency = 0.0;       //!< for misses, cycles

    /** Predictor accuracies (zero when not applicable). */
    double wpAccuracyPercent = 0.0;
    double mpAccuracyPercent = 0.0;
    double mpOverfetchPercent = 0.0;

    /** Per-core partition of the measured window (one entry per
     *  source core; sourceName filled in by runExperiment). */
    std::vector<CoreSimResult> perCore;

    double
    missRatioPercent() const
    {
        return cache.missRatioPercent();
    }
};

/** Builds the DRAM cache once the system's memory pool exists. */
using CacheFactory =
    std::function<std::unique_ptr<DramCache>(MemoryBackend *offchip)>;

/** The assembled machine: cores, SRAM hierarchy, the DRAM cache
 *  under study and the shared off-chip channel. */
class System
{
  public:
    System(const SystemConfig &config, const CacheFactory &factory);

    /**
     * Play `total_accesses` references from `source` through the
     * system; the first warmFraction of them only warm state.
     *
     * The timing loop is monomorphized twice over: once on the
     * concrete source type (AccessSourceKind) and once on the concrete
     * cache type (DramCacheKind), so for every built-in design both
     * the per-access next() and the per-access DramCache::access()
     * devirtualize and inline. Unknown kinds take the virtual path.
     */
    SimResult run(AccessSource &source, std::uint64_t total_accesses);

    /**
     * run() with warm-checkpoint hooks. When `capture_to` is non-null
     * and the run crosses the warm boundary, the boundary state is
     * serialized into it (left invalid if the stream drains first).
     * When `resume_from` is non-null the run starts *at* the boundary
     * from the snapshot instead of simulating [0, warmAccesses); the
     * caller must construct System and source from the identical spec
     * prefix (state shapes are fatal-checked, identity is the
     * caller's contract). Either hook forces the serial engine.
     */
    SimResult run(AccessSource &source, std::uint64_t total_accesses,
                  const WarmCheckpoint *resume_from,
                  WarmCheckpoint *capture_to);

    /** Whether this design + source pair can checkpoint its warm
     *  state (the spec-shape conditions are the runner's to check). */
    bool
    checkpointSupported(const AccessSource &source) const
    {
        return cache_->checkpointable() && source.checkpointable();
    }

    DramCache &cache() { return *cache_; }
    MemoryBackend &offchip() { return *offchip_; }
    CacheHierarchy &hierarchy() { return *hierarchy_; }
    const SystemConfig &config() const { return config_; }

  private:
    void resetAllStats();

    /** Second dispatch stage: switch on the concrete cache kind. */
    template <typename Source>
    SimResult dispatchCache(Source &source, std::uint64_t total_accesses);

    /** Engine selection: the epoch-sharded front end when eligible,
     *  else the serial one; both feed the same loop body. */
    template <typename Source, typename Cache>
    SimResult runLoop(Source &source, Cache &cache,
                      std::uint64_t total_accesses);

    /** The timing loop, monomorphized on (front end, source, cache) so
     *  the per-access calls devirtualize (see run()). */
    template <typename FrontEnd, typename Source, typename Cache>
    SimResult runLoopBody(FrontEnd &fe, Source &source, Cache &cache,
                          std::uint64_t total_accesses);

    /** Predictor-accuracy SimResult fields (design-specific, cold). */
    void fillPredictorStats(SimResult &result) const;

    SystemConfig config_;
    std::unique_ptr<MemoryBackend> offchip_;
    std::unique_ptr<DramCache> cache_;
    std::unique_ptr<CacheHierarchy> hierarchy_;

    /** Checkpoint hooks for the current run() (see the overload). */
    const WarmCheckpoint *resumeFrom_ = nullptr;
    WarmCheckpoint *captureTo_ = nullptr;
};

} // namespace unison

#endif // UNISON_SIM_SYSTEM_HH
