#include "predictors/singleton_table.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

SingletonTable::SingletonTable(const SingletonTableConfig &config)
    : config_(config)
{
    UNISON_ASSERT(config_.assoc >= 1, "singleton table assoc >= 1");
    UNISON_ASSERT(config_.numEntries % config_.assoc == 0,
                  "singleton entries not divisible by assoc");
    numSets_ = config_.numEntries / config_.assoc;
    UNISON_ASSERT(isPowerOfTwo(numSets_),
                  "singleton set count must be a power of two");
    entries_.resize(config_.numEntries);
}

void
SingletonTable::insert(std::uint64_t page_id, Pc pc, std::uint32_t offset,
                       std::uint32_t first_block)
{
    ++stats_.inserts;
    const std::uint64_t set = hashCombine(page_id, 0) & (numSets_ - 1);
    Entry *base = &entries_[set * config_.assoc];

    // Reuse an existing entry for the same page, else invalid, else LRU.
    Entry *slot = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].pageId == page_id) {
            slot = &base[w];
            break;
        }
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
        if (base[w].lastUse < slot->lastUse)
            slot = &base[w];
    }

    slot->valid = true;
    slot->pageId = page_id;
    slot->pc = pc;
    slot->offset = offset;
    slot->firstBlock = first_block;
    slot->lastUse = ++useCounter_;
}

bool
SingletonTable::checkAndRemove(std::uint64_t page_id, Pc &pc_out,
                               std::uint32_t &offset_out,
                               std::uint32_t &first_block_out)
{
    const std::uint64_t set = hashCombine(page_id, 0) & (numSets_ - 1);
    Entry *base = &entries_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pageId == page_id) {
            pc_out = e.pc;
            offset_out = e.offset;
            first_block_out = e.firstBlock;
            e.valid = false;
            ++stats_.promotions;
            return true;
        }
    }
    return false;
}

std::uint64_t
SingletonTable::storageBytes() const
{
    // Page tag (~48 bits) + PC hash (32) + offset (5) + first block (5)
    // + LRU (2): ~92 bits ~= 12 bytes per entry -> 3 KB at 256 entries.
    return config_.numEntries * 12;
}

} // namespace unison
