/**
 * @file
 * MAP-I style miss predictor used by the Alloy Cache baseline (from
 * Qureshi & Loh, MICRO 2012, as adopted in Sec. II-A / IV-C.3).
 *
 * A per-core table of 3-bit saturating counters indexed by a hash of
 * the instruction address. Hits increment, misses decrement; an access
 * is predicted to hit when the counter's MSB is set. Table II budgets
 * 96 B per core (256 x 3 bits), 1.5 KB for the 16-core CMP. The
 * predictor adds one cycle to the lookup path.
 */

#ifndef UNISON_PREDICTORS_MISS_PREDICTOR_HH
#define UNISON_PREDICTORS_MISS_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace unison {

struct MissPredictorConfig
{
    int numCores = 16;
    std::uint32_t entriesPerCore = 256;
    std::uint8_t counterMax = 7;    //!< 3-bit saturating counters
    std::uint8_t initValue = 7;     //!< start strongly predicting hit
    Cycle latency = 1;              //!< added cycle (Sec. IV-C.3)
};

/** Accuracy bookkeeping split the way Table V reports it. */
struct MissPredictorStats
{
    Counter missesPredicted;        //!< actual misses predicted as miss
    Counter missesTotal;            //!< all actual misses
    Counter hitsPredictedMiss;      //!< actual hits predicted as miss
    Counter hitsTotal;              //!< all actual hits

    /** "MP Accuracy": fraction of misses correctly identified. */
    double
    accuracyPercent() const
    {
        return percent(missesPredicted.value(), missesTotal.value());
    }

    /**
     * "MP Overfetch": hits wrongly sent to memory (extra off-chip
     * fetches), as a fraction of all fetched blocks.
     */
    double
    overfetchPercent() const
    {
        return percent(hitsPredictedMiss.value(),
                       hitsPredictedMiss.value() + missesTotal.value());
    }

    void
    reset()
    {
        missesPredicted.reset();
        missesTotal.reset();
        hitsPredictedMiss.reset();
        hitsTotal.reset();
    }
};

class MissPredictor
{
  public:
    explicit MissPredictor(const MissPredictorConfig &config);

    /** True if this (core, PC) access is predicted to hit. */
    bool predictHit(int core, Pc pc) const;

    /** Train with the actual outcome and update accuracy counters. */
    void train(int core, Pc pc, bool predicted_hit, bool actual_hit);

    const MissPredictorConfig &config() const { return config_; }
    const MissPredictorStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Modeled SRAM size in bytes across all cores (Table II check). */
    std::uint64_t storageBytes() const;

    /** Warm-state checkpoint of the saturating counters (stats
     *  excluded by the state_io.hh contract). */
    void saveState(StateWriter &out) const { out.podVector(counters_); }
    void loadState(StateReader &in) { in.podVectorExact(counters_); }

  private:
    std::uint64_t index(int core, Pc pc) const;

    MissPredictorConfig config_;
    std::vector<std::uint8_t> counters_;
    MissPredictorStats stats_;
};

} // namespace unison

#endif // UNISON_PREDICTORS_MISS_PREDICTOR_HH
