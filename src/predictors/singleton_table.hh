/**
 * @file
 * Singleton table (Sec. III-A.4). Pages whose predicted footprint is a
 * single block are *not* allocated in the cache -- the block is
 * forwarded straight to the requestor. Because such pages never get
 * evicted, mispredictions could never be corrected; this small table
 * remembers recently bypassed singleton pages so a second access to
 * one can be detected and the FHT entry widened.
 *
 * Table II budgets 3 KB of SRAM for it.
 */

#ifndef UNISON_PREDICTORS_SINGLETON_TABLE_HH
#define UNISON_PREDICTORS_SINGLETON_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace unison {

struct SingletonTableConfig
{
    std::uint32_t numEntries = 256;
    std::uint32_t assoc = 4;
};

struct SingletonTableStats
{
    Counter inserts;
    Counter promotions; //!< second access found the page: non-singleton

    void
    reset()
    {
        inserts.reset();
        promotions.reset();
    }
};

/**
 * Tracks (page id -> trigger (PC, offset), first block) for pages that
 * were bypassed as singletons.
 */
class SingletonTable
{
  public:
    explicit SingletonTable(const SingletonTableConfig &config);

    /** Remember a bypassed page and the trigger that predicted it. */
    void insert(std::uint64_t page_id, Pc pc, std::uint32_t offset,
                std::uint32_t first_block);

    /**
     * On a new miss to `page_id`, check whether it was bypassed as a
     * singleton. If so the entry is consumed and the stored trigger
     * returned so the caller can widen the FHT entry.
     * @return true if the page was found (and removed).
     */
    bool checkAndRemove(std::uint64_t page_id, Pc &pc_out,
                        std::uint32_t &offset_out,
                        std::uint32_t &first_block_out);

    const SingletonTableStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Modeled SRAM size in bytes (Table II check). */
    std::uint64_t storageBytes() const;

    /** Warm-state checkpoint of the tracked pages and the LRU clock
     *  (stats excluded by the state_io.hh contract). */
    void
    saveState(StateWriter &out) const
    {
        out.podVector(entries_);
        out.pod(useCounter_);
    }

    void
    loadState(StateReader &in)
    {
        in.podVectorExact(entries_);
        in.pod(useCounter_);
    }

  private:
    struct Entry
    {
        std::uint64_t pageId = 0;
        Pc pc = 0;
        std::uint32_t offset = 0;
        std::uint32_t firstBlock = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    SingletonTableConfig config_;
    std::uint32_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t useCounter_ = 0;
    SingletonTableStats stats_;
};

} // namespace unison

#endif // UNISON_PREDICTORS_SINGLETON_TABLE_HH
