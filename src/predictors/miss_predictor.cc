#include "predictors/miss_predictor.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

MissPredictor::MissPredictor(const MissPredictorConfig &config)
    : config_(config)
{
    UNISON_ASSERT(config_.numCores >= 1, "miss predictor needs cores");
    UNISON_ASSERT(isPowerOfTwo(config_.entriesPerCore),
                  "entriesPerCore must be a power of two");
    counters_.assign(
        static_cast<std::size_t>(config_.numCores) *
            config_.entriesPerCore,
        config_.initValue);
}

std::uint64_t
MissPredictor::index(int core, Pc pc) const
{
    UNISON_ASSERT(core >= 0 && core < config_.numCores,
                  "core ", core, " out of range");
    const std::uint64_t h =
        hashCombine(pc, 0x51ed) & (config_.entriesPerCore - 1);
    return static_cast<std::uint64_t>(core) * config_.entriesPerCore + h;
}

bool
MissPredictor::predictHit(int core, Pc pc) const
{
    const std::uint8_t counter = counters_[index(core, pc)];
    return counter > config_.counterMax / 2;
}

void
MissPredictor::train(int core, Pc pc, bool predicted_hit, bool actual_hit)
{
    std::uint8_t &counter = counters_[index(core, pc)];
    if (actual_hit) {
        ++stats_.hitsTotal;
        if (!predicted_hit)
            ++stats_.hitsPredictedMiss;
        if (counter < config_.counterMax)
            ++counter;
    } else {
        ++stats_.missesTotal;
        if (!predicted_hit)
            ++stats_.missesPredicted;
        if (counter > 0)
            --counter;
    }
}

std::uint64_t
MissPredictor::storageBytes() const
{
    // 3-bit counters: 256 entries x 3 bits = 96 B per core.
    return static_cast<std::uint64_t>(config_.numCores) *
           config_.entriesPerCore * 3 / 8;
}

} // namespace unison
