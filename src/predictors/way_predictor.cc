#include "predictors/way_predictor.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace unison {

WayPredictor::WayPredictor(std::uint32_t index_bits, std::uint32_t assoc)
    : indexBits_(index_bits), assoc_(assoc)
{
    UNISON_ASSERT(index_bits >= 4 && index_bits <= 24,
                  "way predictor index bits out of range: ", index_bits);
    UNISON_ASSERT(assoc >= 1, "way predictor for assoc 0");
    table_.assign(1ull << indexBits_, 0);
}

std::uint32_t
WayPredictor::predict(std::uint64_t page_id) const
{
    if (assoc_ <= 1)
        return 0;
    const std::uint64_t idx = xorFold(page_id, indexBits_);
    return table_[idx] % assoc_;
}

void
WayPredictor::train(std::uint64_t page_id, std::uint32_t way)
{
    if (assoc_ <= 1)
        return;
    UNISON_ASSERT(way < assoc_, "training with way ", way,
                  " >= assoc ", assoc_);
    const std::uint64_t idx = xorFold(page_id, indexBits_);
    table_[idx] = static_cast<std::uint8_t>(way);
}

std::uint32_t
WayPredictor::indexBitsForCapacity(std::uint64_t cache_bytes)
{
    return cache_bytes > 4_GiB ? 16 : 12;
}

std::uint64_t
WayPredictor::storageBytes() const
{
    // ceil(log2(assoc)) bits per entry; the paper's 4-way points use 2.
    std::uint32_t bits = 1;
    while ((1u << bits) < assoc_)
        ++bits;
    return (table_.size() * bits + 7) / 8;
}

} // namespace unison
