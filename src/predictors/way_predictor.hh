/**
 * @file
 * Address-based way predictor (Sec. III-A.6). A small array of way
 * fields indexed by an XOR hash of the *page* address; the DRAM
 * controller consults it off the critical path so that the data-block
 * read can target a single way, overlapped with the in-DRAM tag read.
 *
 * The paper uses a 2-bit array indexed by a 12-bit XOR hash (1 KB),
 * growing to a 16-bit hash (16 KB) for caches above 4 GB. Accuracy is
 * high (~95%) because predictions are page-grained: a page's first
 * access trains the entry and the abundant spatial locality makes the
 * following accesses to the same page predict correctly.
 */

#ifndef UNISON_PREDICTORS_WAY_PREDICTOR_HH
#define UNISON_PREDICTORS_WAY_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/state_io.hh"
#include "stats/stats.hh"

namespace unison {

struct WayPredictorStats
{
    Counter predictions;
    Counter correct;

    double
    accuracyPercent() const
    {
        return percent(correct.value(), predictions.value());
    }

    void
    reset()
    {
        predictions.reset();
        correct.reset();
    }
};

class WayPredictor
{
  public:
    /**
     * @param index_bits table index width (12 for <=4 GB, 16 above)
     * @param assoc number of ways being predicted
     */
    WayPredictor(std::uint32_t index_bits, std::uint32_t assoc);

    /** Predicted way for the page (does not count accuracy). */
    std::uint32_t predict(std::uint64_t page_id) const;

    /** Train with the way the page was actually found/placed in. */
    void train(std::uint64_t page_id, std::uint32_t way);

    /**
     * Convenience: record a resolved prediction in the stats counters.
     */
    void
    recordOutcome(bool was_correct)
    {
        ++stats_.predictions;
        if (was_correct)
            ++stats_.correct;
    }

    /** Paper-recommended index width for a given cache capacity. */
    static std::uint32_t indexBitsForCapacity(std::uint64_t cache_bytes);

    /** Modeled SRAM size in bytes (Table II check). */
    std::uint64_t storageBytes() const;

    const WayPredictorStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    std::uint32_t indexBits() const { return indexBits_; }

    /** Warm-state checkpoint of the prediction table (stats excluded
     *  by the state_io.hh contract). */
    void saveState(StateWriter &out) const { out.podVector(table_); }
    void loadState(StateReader &in) { in.podVectorExact(table_); }

  private:
    std::uint32_t indexBits_;
    std::uint32_t assoc_;
    std::vector<std::uint8_t> table_;
    WayPredictorStats stats_;
};

} // namespace unison

#endif // UNISON_PREDICTORS_WAY_PREDICTOR_HH
