#include "predictors/footprint_table.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

FootprintHistoryTable::FootprintHistoryTable(
    const FootprintTableConfig &config)
    : config_(config)
{
    UNISON_ASSERT(config_.assoc >= 1, "FHT assoc must be >= 1");
    UNISON_ASSERT(config_.numEntries % config_.assoc == 0,
                  "FHT entries not divisible by assoc");
    numSets_ = config_.numEntries / config_.assoc;
    UNISON_ASSERT(isPowerOfTwo(numSets_),
                  "FHT set count must be a power of two, got ", numSets_);
    UNISON_ASSERT(config_.maxBlocksPerPage <= 64,
                  "footprint masks wider than 64 blocks unsupported");
    UNISON_ASSERT(config_.tagBits <= 31,
                  "packed FHT entries hold at most 31 tag bits");
    entries_.resize(config_.numEntries);
}

void
FootprintHistoryTable::index(Pc pc, std::uint32_t offset,
                             std::uint64_t &set, std::uint32_t &tag) const
{
    const std::uint64_t h = hashCombine(pc, offset);
    set = h & (numSets_ - 1);
    tag = static_cast<std::uint32_t>(
        (h >> 32) & ((1ull << config_.tagBits) - 1));
}

FootprintHistoryTable::Entry *
FootprintHistoryTable::find(std::uint64_t set, std::uint32_t tag)
{
    Entry *base = &entries_[set * config_.assoc];
    const std::uint32_t key = Entry::kValid | tag;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].vtag == key)
            return &base[w];
    }
    return nullptr;
}

bool
FootprintHistoryTable::predict(Pc pc, std::uint32_t offset,
                               std::uint64_t &mask_out)
{
    ++stats_.lookups;
    std::uint64_t set;
    std::uint32_t tag;
    index(pc, offset, set, tag);
    Entry *entry = find(set, tag);
    if (entry == nullptr)
        return false;
    ++stats_.hits;
    entry->lastUse = ++useCounter_;
    mask_out = entry->mask;
    return true;
}

void
FootprintHistoryTable::update(Pc pc, std::uint32_t offset,
                              std::uint64_t actual_mask)
{
    ++stats_.updates;
    std::uint64_t set;
    std::uint32_t tag;
    index(pc, offset, set, tag);
    Entry *entry = find(set, tag);
    if (entry == nullptr) {
        ++stats_.inserts;
        // Allocate: invalid way first, else LRU.
        Entry *base = &entries_[set * config_.assoc];
        entry = base;
        for (std::uint32_t w = 0; w < config_.assoc; ++w) {
            if (!base[w].valid()) {
                entry = &base[w];
                break;
            }
            if (base[w].lastUse < entry->lastUse)
                entry = &base[w];
        }
        entry->vtag = Entry::kValid | tag;
    }
    entry->mask = actual_mask;
    entry->lastUse = ++useCounter_;
}

void
FootprintHistoryTable::merge(Pc pc, std::uint32_t offset,
                             std::uint64_t extra_mask)
{
    std::uint64_t set;
    std::uint32_t tag;
    index(pc, offset, set, tag);
    Entry *entry = find(set, tag);
    if (entry == nullptr) {
        update(pc, offset, extra_mask);
        return;
    }
    entry->mask |= extra_mask;
    entry->lastUse = ++useCounter_;
}

std::uint64_t
FootprintHistoryTable::storageBytes() const
{
    // tag + footprint vector + 2 LRU bits per entry, rounded to bits.
    const std::uint64_t bits_per_entry =
        config_.tagBits + config_.maxBlocksPerPage + 2;
    return config_.numEntries * bits_per_entry / 8;
}

} // namespace unison
