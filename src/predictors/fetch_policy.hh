/**
 * @file
 * The FetchPolicy layer of the DRAM-cache policy framework: what a
 * design fetches from off-chip memory on a trigger miss.
 *
 * The paper's design space has three points, all expressed here:
 *
 *  - footprint-predicted (Unison Cache, Footprint Cache): an FHT keyed
 *    by the trigger (PC, offset) predicts the page's footprint, and a
 *    singleton table lets one-block pages bypass allocation entirely;
 *  - full-page: the same policy with prediction disabled -- every
 *    trigger miss fetches the whole page;
 *  - single-block (Alloy Cache, Loh-Hill): SingleBlockFetchPolicy,
 *    which fetches exactly the demanded block and learns nothing.
 *
 * The policies own the predictor state (predictors/footprint_table.hh,
 * predictors/singleton_table.hh) and make decisions; issuing the
 * traffic they decide on -- and accounting for it -- is the fill
 * engine's job (core/fill_engine.hh).
 */

#ifndef UNISON_PREDICTORS_FETCH_POLICY_HH
#define UNISON_PREDICTORS_FETCH_POLICY_HH

#include <cstdint>

#include "common/state_io.hh"
#include "common/types.hh"
#include "predictors/footprint_table.hh"
#include "predictors/singleton_table.hh"

namespace unison {

/** FHT keys use the low 32 PC bits (the stored trigger PC width). */
inline Pc
fhtPc(Pc pc)
{
    return pc & 0xffffffffull;
}

/** What a fetch policy decided for one trigger miss. */
struct FetchDecision
{
    /** Blocks to fetch (the demanded block's bit is always set). */
    std::uint32_t mask = 0;
    /** Serve the block straight from memory, allocate nothing
     *  (Sec. III-A.4 singleton bypass). */
    bool bypassSingleton = false;
};

/**
 * Footprint-predicted fetch (Sec. III-A.1-4): FHT prediction keyed by
 * the trigger (PC, offset), singleton bypass with promotion on reuse,
 * and footprint training at eviction. With `footprintPrediction`
 * off it degrades to the full-page policy; `wholePageWhenUntrained`
 * selects what an FHT miss falls back to (whole page for the
 * page-organized designs; the block designs pass their own default).
 */
class FootprintFetchPolicy
{
  public:
    struct Config
    {
        FootprintTableConfig fht{};
        SingletonTableConfig singleton{};
        bool footprintPrediction = true;
        bool singletonBypass = true;
        /** Mask fetched when prediction is disabled entirely: the full
         *  page (page designs) or just the demand bit (block designs,
         *  which then degenerate to Alloy Cache). */
        bool wholePageWhenDisabled = true;
    };

    explicit FootprintFetchPolicy(const Config &config)
        : config_(config), fht_(config.fht), singletons_(config.singleton)
    {
    }

    /**
     * Decide what to fetch for the trigger miss (pc, offset) on
     * `page`. Handles singleton promotion (a previously bypassed page
     * seen again widens its FHT entry) and folds the demand bit in.
     * `full_mask` is the design's whole-page mask.
     */
    FetchDecision
    onTriggerMiss(std::uint64_t page, Pc pc, std::uint32_t offset,
                  std::uint32_t full_mask)
    {
        const std::uint32_t bit = 1u << offset;

        // Singleton promotion check (Sec. III-A.4): was this page
        // bypassed as a singleton earlier? Then it is not a singleton
        // after all -- widen its FHT entry.
        bool promoted = false;
        if (config_.singletonBypass) {
            Pc spc;
            std::uint32_t soff, sfirst;
            if (singletons_.checkAndRemove(page, spc, soff, sfirst)) {
                fht_.merge(spc, soff, (1u << sfirst) | bit);
                promoted = true;
            }
        }

        std::uint32_t predicted;
        if (!config_.footprintPrediction) {
            predicted = config_.wholePageWhenDisabled ? full_mask : 0;
        } else {
            predicted = full_mask;
            std::uint64_t fht_mask;
            if (fht_.predict(fhtPc(pc), offset, fht_mask))
                predicted =
                    static_cast<std::uint32_t>(fht_mask) & full_mask;
        }
        predicted |= bit;

        FetchDecision decision;
        decision.mask = predicted;
        decision.bypassSingleton = config_.singletonBypass &&
                                   !promoted && predicted == bit &&
                                   config_.footprintPrediction;
        return decision;
    }

    /** Remember a bypassed singleton page so a second access to it can
     *  be promoted. */
    void
    noteBypass(std::uint64_t page, Pc pc, std::uint32_t offset)
    {
        singletons_.insert(page, fhtPc(pc), offset, offset);
    }

    /** Train with a page's observed footprint at eviction. */
    void
    trainEviction(std::uint32_t pc_hash, std::uint32_t trigger,
                  std::uint32_t touched)
    {
        fht_.update(pc_hash, trigger, touched);
    }

    void
    resetStats()
    {
        fht_.resetStats();
        singletons_.resetStats();
    }

    const Config &config() const { return config_; }
    const FootprintHistoryTable &footprintTable() const { return fht_; }
    const SingletonTable &singletonTable() const { return singletons_; }

    /** Warm-state checkpoint: both owned predictor tables. */
    void
    saveState(StateWriter &out) const
    {
        fht_.saveState(out);
        singletons_.saveState(out);
    }

    void
    loadState(StateReader &in)
    {
        fht_.loadState(in);
        singletons_.loadState(in);
    }

  private:
    Config config_;
    FootprintHistoryTable fht_;
    SingletonTable singletons_;
};

/** Fetch exactly the demanded block; learn nothing (Alloy, Loh-Hill). */
struct SingleBlockFetchPolicy
{
    FetchDecision
    onTriggerMiss(std::uint64_t, Pc, std::uint32_t offset,
                  std::uint32_t) const
    {
        return {1u << offset, false};
    }

    void trainEviction(std::uint32_t, std::uint32_t, std::uint32_t) {}
    void resetStats() {}
    void saveState(StateWriter &) const {}
    void loadState(StateReader &) {}
};

} // namespace unison

#endif // UNISON_PREDICTORS_FETCH_POLICY_HH
