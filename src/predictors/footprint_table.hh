/**
 * @file
 * Footprint History Table (FHT) -- the spatial-correlation predictor
 * Unison Cache inherits from Footprint Cache (Sec. III-A.1-3).
 *
 * A page's *footprint* is the set of blocks touched between its
 * allocation and eviction. Footprints correlate with the code that
 * first touches the page: the table is keyed by the (PC, offset) pair
 * of the trigger access and stores one bit vector per entry. At page
 * allocation the predicted footprint decides which blocks to fetch; at
 * eviction the observed footprint updates the entry.
 *
 * Table II budgets 144 KB of SRAM for this structure; the default
 * geometry (24K entries x ~6 B) matches that.
 */

#ifndef UNISON_PREDICTORS_FOOTPRINT_TABLE_HH
#define UNISON_PREDICTORS_FOOTPRINT_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace unison {

/** Geometry of the FHT. */
struct FootprintTableConfig
{
    /** 4096 sets x 6 ways = 24K entries x ~6 B = the 144 KB budget. */
    std::uint32_t numEntries = 24 * 1024;
    std::uint32_t assoc = 6;
    std::uint32_t tagBits = 16;
    /** Widest footprint bit vector stored (blocks per page). */
    std::uint32_t maxBlocksPerPage = 32;
};

/** FHT statistics. */
struct FootprintTableStats
{
    Counter lookups;
    Counter hits;      //!< lookups that found a trained entry
    Counter updates;
    Counter inserts;   //!< updates that allocated a new entry

    void
    reset()
    {
        lookups.reset();
        hits.reset();
        updates.reset();
        inserts.reset();
    }
};

/** Set-associative (PC, offset) -> footprint-bit-vector table. */
class FootprintHistoryTable
{
  public:
    explicit FootprintHistoryTable(const FootprintTableConfig &config);

    /**
     * Look up the footprint trained for this (PC, offset) trigger.
     * @return true and the mask if a trained entry exists.
     */
    bool predict(Pc pc, std::uint32_t offset, std::uint64_t &mask_out);

    /** Record the observed footprint for the trigger (PC, offset). */
    void update(Pc pc, std::uint32_t offset, std::uint64_t actual_mask);

    /**
     * Merge extra blocks into an existing entry (used when a singleton
     * page turns out to be non-singleton, Sec. III-A.4).
     */
    void merge(Pc pc, std::uint32_t offset, std::uint64_t extra_mask);

    const FootprintTableConfig &config() const { return config_; }
    const FootprintTableStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Modeled SRAM footprint in bytes (Table II check). */
    std::uint64_t storageBytes() const;

    /** Warm-state checkpoint of the trained entries and the LRU clock
     *  (stats excluded by the state_io.hh contract). */
    void
    saveState(StateWriter &out) const
    {
        out.podVector(entries_);
        out.pod(useCounter_);
    }

    void
    loadState(StateReader &in)
    {
        in.podVectorExact(entries_);
        in.pod(useCounter_);
    }

  private:
    /**
     * Packed to 16 bytes (valid folded into the tag word, 32-bit LRU
     * stamp): lookups hash all over the 24K-entry table, so a 6-way
     * set spanning 1.5 host cache lines instead of 3 halves the miss
     * traffic of the hottest predictor.
     */
    struct Entry
    {
        static constexpr std::uint32_t kValid = 1u << 31;

        std::uint64_t mask = 0;
        std::uint32_t vtag = 0;    //!< kValid | tag (tagBits <= 31)
        std::uint32_t lastUse = 0;

        bool valid() const { return (vtag & kValid) != 0; }
    };
    static_assert(sizeof(Entry) == 16, "FHT entry no longer packed");

    /** Map (pc, offset) to (set, tag). */
    void index(Pc pc, std::uint32_t offset, std::uint64_t &set,
               std::uint32_t &tag) const;

    Entry *find(std::uint64_t set, std::uint32_t tag);

    FootprintTableConfig config_;
    std::uint32_t numSets_;
    std::vector<Entry> entries_;
    std::uint32_t useCounter_ = 0;
    FootprintTableStats stats_;
};

} // namespace unison

#endif // UNISON_PREDICTORS_FOOTPRINT_TABLE_HH
