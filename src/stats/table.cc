#include "stats/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "stats/stats.hh"

namespace unison {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    UNISON_ASSERT(!headers_.empty(), "table with no columns");
}

void
Table::beginRow()
{
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
}

void
Table::add(const std::string &cell)
{
    UNISON_ASSERT(!rows_.empty(), "add() before beginRow()");
    UNISON_ASSERT(rows_.back().size() < headers_.size(),
                  "row has more cells than headers");
    rows_.back().push_back(cell);
}

void
Table::add(double v, int precision)
{
    add(formatDouble(v, precision));
}

void
Table::add(std::uint64_t v)
{
    add(std::to_string(v));
}

void
Table::add(std::int64_t v)
{
    add(std::to_string(v));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            oss << (c == 0 ? "" : "  ");
            oss << cell << std::string(widths[c] - cell.size(), ' ');
        }
        oss << "\n";
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    oss << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

std::string
Table::csvField(const std::string &cell)
{
    // RFC 4180: fields containing the separator, quotes or line
    // breaks must be quoted, with embedded quotes doubled. Mix names
    // like "web+tpch,2:2" would otherwise shift every later column.
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string quoted;
    quoted.reserve(cell.size() + 2);
    quoted.push_back('"');
    for (char c : cell) {
        if (c == '"')
            quoted.push_back('"');
        quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
}

std::string
Table::toCsv() const
{
    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            if (c > 0)
                oss << ",";
            if (c < cells.size())
                oss << csvField(cells[c]);
        }
        oss << "\n";
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace unison
