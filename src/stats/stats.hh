/**
 * @file
 * Lightweight statistics primitives: named counters with reset support
 * (for warm-up handling), ratio helpers, and scalar accumulators.
 *
 * Every model in the simulator keeps its statistics in plain Counter
 * members grouped in a *Stats struct; the System resets them at the end
 * of the warm-up phase so that reported numbers cover only the measured
 * window, mirroring the paper's SimFlex-style warm/measure methodology.
 */

#ifndef UNISON_STATS_STATS_HH
#define UNISON_STATS_STATS_HH

#include <cstdint>
#include <string>

namespace unison {

/** A monotonically increasing event counter that can be snapshotted. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    /** Value accumulated since the last reset(). */
    std::uint64_t value() const { return value_; }

    /** Forget everything counted so far (warm-up boundary). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulator for averaged quantities (e.g. latency sums). */
class Average
{
  public:
    void
    record(double sample)
    {
        sum_ += sample;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t samples() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Safe x/y with a 0 fallback for empty denominators. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
                                static_cast<double>(den);
}

/** Ratio expressed in percent. */
inline double
percent(std::uint64_t num, std::uint64_t den)
{
    return 100.0 * ratio(num, den);
}

/** Format a double with fixed precision (helper for table cells). */
std::string formatDouble(double v, int precision = 2);

} // namespace unison

#endif // UNISON_STATS_STATS_HH
