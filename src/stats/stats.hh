/**
 * @file
 * Lightweight statistics primitives: named counters with reset support
 * (for warm-up handling), ratio helpers, and scalar accumulators.
 *
 * Every model in the simulator keeps its statistics in plain Counter
 * members grouped in a *Stats struct; the System resets them at the end
 * of the warm-up phase so that reported numbers cover only the measured
 * window, mirroring the paper's SimFlex-style warm/measure methodology.
 */

#ifndef UNISON_STATS_STATS_HH
#define UNISON_STATS_STATS_HH

#include <cstdint>
#include <string>

namespace unison {

/** A monotonically increasing event counter that can be snapshotted. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    /** Value accumulated since the last reset(). */
    std::uint64_t value() const { return value_; }

    /** Forget everything counted so far (warm-up boundary). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulator for averaged quantities (e.g. latency sums). */
class Average
{
  public:
    void
    record(double sample)
    {
        sum_ += sample;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t samples() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** @name X-macro field enumeration for *Stats structs
 *
 * Every *Stats struct declares its fields once, in an X-macro list
 * (`X(type, name)` entries), and generates the declarations, a
 * `forEachCounter(f)` visitor and `reset()` from that single list.
 * Reset, JSON serialization (sim/spec_json.cc) and table emission
 * (stats/table.hh addCounterRows) all iterate the same list, so a new
 * counter can never be counted but silently dropped from one of them.
 *
 * Usage:
 *
 *     #define MY_STATS_FIELDS(X)  X(Counter, hits) X(Counter, misses)
 *     struct MyStats { UNISON_STAT_STRUCT_BODY(MY_STATS_FIELDS) };
 *
 * Lists whose field type varies per instantiation (e.g. the DRAM
 * traffic counters, kept as Counter per channel but plain uint64_t in
 * the pool aggregate) take the type as a second list parameter and use
 * UNISON_STAT_STRUCT_BODY_T instead.
 */
/**@{*/

/** reset() visitor: Counters reset, arithmetic fields zero. */
struct ResetStatField
{
    void operator()(const char *, Counter &c) const { c.reset(); }
    template <typename T>
    void
    operator()(const char *, T &v) const
    {
        v = T{};
    }
};

#define UNISON_STAT_FIELD(type, name) type name{};
#define UNISON_STAT_VISIT(type, name) f(#name, name);

#define UNISON_STAT_STRUCT_BODY(LIST)                                   \
    LIST(UNISON_STAT_FIELD)                                             \
    template <typename F> void forEachCounter(F &&f)                    \
    {                                                                   \
        LIST(UNISON_STAT_VISIT)                                         \
    }                                                                   \
    template <typename F> void forEachCounter(F &&f) const              \
    {                                                                   \
        LIST(UNISON_STAT_VISIT)                                         \
    }                                                                   \
    void reset() { forEachCounter(ResetStatField{}); }

/** Same-type-ignored variants for lists parameterized by field type. */
#define UNISON_STAT_FIELD_T(type, name) type name{};
#define UNISON_STAT_VISIT_T(type, name) f(#name, name);

#define UNISON_STAT_STRUCT_BODY_T(LIST, TYPE)                           \
    LIST(UNISON_STAT_FIELD_T, TYPE)                                     \
    template <typename F> void forEachCounter(F &&f)                    \
    {                                                                   \
        LIST(UNISON_STAT_VISIT_T, TYPE)                                 \
    }                                                                   \
    template <typename F> void forEachCounter(F &&f) const              \
    {                                                                   \
        LIST(UNISON_STAT_VISIT_T, TYPE)                                 \
    }                                                                   \
    void reset() { forEachCounter(ResetStatField{}); }

/**@}*/

/** Safe x/y with a 0 fallback for empty denominators. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
                                static_cast<double>(den);
}

/** Ratio expressed in percent. */
inline double
percent(std::uint64_t num, std::uint64_t den)
{
    return 100.0 * ratio(num, den);
}

/** Format a double with fixed precision (helper for table cells). */
std::string formatDouble(double v, int precision = 2);

} // namespace unison

#endif // UNISON_STATS_STATS_HH
