/**
 * @file
 * Per-core partitions of measurement-window statistics.
 *
 * Multiprogrammed mixes need per-core accounting (each core may run a
 * different program, so aggregate UIPC hides exactly the fairness
 * effects under study). A PerCoreStats holds one CoreWindowStats
 * slice per core; the System accumulates into the slices during the
 * measured window and resets them all at the warm-up boundary, the
 * same discipline Counter follows.
 */

#ifndef UNISON_STATS_PERCORE_HH
#define UNISON_STATS_PERCORE_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"

namespace unison {

/**
 * One core's share of the measured window: user instructions retired,
 * memory references issued, read references (the AMAT sample count)
 * and their total latency in cycles. One X-macro list feeds reset()
 * and any per-field emission, like the other *Stats structs.
 */
#define UNISON_CORE_WINDOW_STATS_FIELDS(X)                              \
    X(std::uint64_t, instructions)                                      \
    X(std::uint64_t, references)                                        \
    X(std::uint64_t, loads)                                             \
    X(double, loadLatencySum)

struct CoreWindowStats
{
    UNISON_STAT_STRUCT_BODY(UNISON_CORE_WINDOW_STATS_FIELDS)

    /** Average memory access time of this core's loads, in cycles. */
    double
    amatCycles() const
    {
        return loads ? loadLatencySum / static_cast<double>(loads)
                     : 0.0;
    }
};

/** Fixed-size array of per-core slices with whole-window helpers. */
class PerCoreStats
{
  public:
    explicit PerCoreStats(int num_cores = 0)
        : cores_(static_cast<std::size_t>(num_cores))
    {
    }

    CoreWindowStats &operator[](int core)
    {
        return cores_[static_cast<std::size_t>(core)];
    }
    const CoreWindowStats &operator[](int core) const
    {
        return cores_[static_cast<std::size_t>(core)];
    }

    int numCores() const { return static_cast<int>(cores_.size()); }

    /** Warm-up boundary: forget everything accumulated so far. */
    void
    reset()
    {
        for (CoreWindowStats &c : cores_)
            c.reset();
    }

    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t sum = 0;
        for (const CoreWindowStats &c : cores_)
            sum += c.instructions;
        return sum;
    }

    std::uint64_t
    totalReferences() const
    {
        std::uint64_t sum = 0;
        for (const CoreWindowStats &c : cores_)
            sum += c.references;
        return sum;
    }

  private:
    std::vector<CoreWindowStats> cores_;
};

} // namespace unison

#endif // UNISON_STATS_PERCORE_HH
