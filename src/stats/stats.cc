#include "stats/stats.hh"

#include <cstdio>

namespace unison {

std::string
formatDouble(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace unison
