/**
 * @file
 * Plain-text table formatter. The bench binaries use it to print rows
 * shaped like the paper's tables and figure series, and it can also
 * emit CSV for plotting.
 */

#ifndef UNISON_STATS_TABLE_HH
#define UNISON_STATS_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace unison {

/**
 * A simple column-aligned table. Columns are declared up front; rows
 * are appended cell-by-cell with typed helpers.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add* calls fill it left to right. */
    void beginRow();

    void add(const std::string &cell);
    void add(double v, int precision = 2);
    void add(std::uint64_t v);
    void add(std::int64_t v);
    void add(int v) { add(static_cast<std::int64_t>(v)); }

    /** Render as an aligned text table. */
    std::string toString() const;

    /** Render as CSV (RFC 4180: fields with commas, quotes or line
     *  breaks are quoted, embedded quotes doubled). */
    std::string toCsv() const;

    /** Quote one field per RFC 4180 (identity for plain fields). */
    static std::string csvField(const std::string &cell);

    /** Convenience: print toString() to stdout. */
    void print() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Append one `(name, value)` row per counter of an X-macro *Stats
 * struct (DramCacheStats, DramChannelStats, ...). The third consumer
 * of the shared field lists, next to reset() and the JSON schema: a
 * counter added to the list shows up here without any other change.
 */
template <typename Stats>
void
addCounterRows(Table &table, const Stats &stats)
{
    stats.forEachCounter([&](const char *name, const auto &field) {
        table.beginRow();
        table.add(std::string(name));
        if constexpr (requires { field.value(); })
            table.add(field.value());
        else
            table.add(field);
    });
}

} // namespace unison

#endif // UNISON_STATS_TABLE_HH
