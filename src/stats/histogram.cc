#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace unison {

Histogram::Histogram(std::uint64_t max, std::uint32_t buckets)
    : max_(max), width_((max + buckets - 1) / buckets), counts_(buckets, 0)
{
    UNISON_ASSERT(max > 0 && buckets > 0, "empty histogram geometry");
    if (width_ == 0)
        width_ = 1;
}

void
Histogram::record(std::uint64_t sample)
{
    ++samples_;
    sum_ += static_cast<double>(sample);
    // Inclusive range: only samples strictly beyond max_ overflow. A
    // sample equal to max_ belongs to the last bucket (which the
    // rounded-up width may otherwise leave short of max_).
    if (sample > max_) {
        ++overflow_;
        return;
    }
    std::uint64_t idx = sample / width_;
    const std::uint64_t last = counts_.size() - 1;
    if (idx > last)
        idx = last;
    ++counts_[idx];
}

double
Histogram::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (samples_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(samples_))));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        // The upper edge of the last bucket is max_ itself, not the
        // rounded-up (i + 1) * width_ -- reporting past max_ biased
        // every quantile that landed in the tail.
        if (running >= target)
            return std::min((i + 1) * width_, max_);
    }
    return max_; // target falls among the overflow samples
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0.0;
}

std::string
Histogram::render(std::uint32_t max_width) const
{
    std::uint64_t peak = overflow_;
    for (auto c : counts_)
        peak = std::max(peak, c);
    if (peak == 0)
        peak = 1;

    std::ostringstream oss;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::uint64_t lo = i * width_;
        const std::uint32_t bar = static_cast<std::uint32_t>(
            counts_[i] * max_width / peak);
        oss << "[" << lo << ", ";
        if (i + 1 == counts_.size() && max_ >= lo)
            oss << max_ << "] "; // last bucket is inclusive of max
        else
            oss << lo + width_ << ") "; // incl. unreachable tail rows
        oss << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    if (overflow_ > 0) {
        const std::uint32_t bar = static_cast<std::uint32_t>(
            overflow_ * max_width / peak);
        oss << "(" << max_ << ", inf) " << std::string(bar, '#') << " "
            << overflow_ << "\n";
    }
    return oss.str();
}

} // namespace unison
