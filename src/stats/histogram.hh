/**
 * @file
 * Fixed-bucket histogram for latency/occupancy distributions, used by
 * the examples and the micro-benchmarks to show latency shapes.
 */

#ifndef UNISON_STATS_HISTOGRAM_HH
#define UNISON_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace unison {

/**
 * Linear-bucket histogram over the inclusive range [0, max]; samples
 * strictly greater than max land in the overflow bucket.
 *
 * Bucket widths are ceil(max / buckets), so the last bucket may be
 * narrower than the rest; it absorbs max itself. quantile() results
 * are clamped to max so the rounded-up width of the last bucket never
 * reports values outside the tracked range.
 */
class Histogram
{
  public:
    /**
     * @param max upper bound of the tracked range (inclusive)
     * @param buckets number of equal-width buckets
     */
    Histogram(std::uint64_t max, std::uint32_t buckets);

    void record(std::uint64_t sample);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t overflow() const { return overflow_; }
    double mean() const;

    /** Smallest sample value v such that quantile() of samples <= v. */
    std::uint64_t quantile(double q) const;

    /** Count in bucket i. */
    std::uint64_t bucketCount(std::uint32_t i) const { return counts_[i]; }
    std::uint32_t numBuckets() const
    {
        return static_cast<std::uint32_t>(counts_.size());
    }
    std::uint64_t bucketWidth() const { return width_; }

    void reset();

    /** Multi-line ASCII rendering for example programs. */
    std::string render(std::uint32_t max_width = 50) const;

  private:
    std::uint64_t max_;
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

} // namespace unison

#endif // UNISON_STATS_HISTOGRAM_HH
