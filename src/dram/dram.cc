#include "dram/dram.hh"

#include "common/logging.hh"

namespace unison {

DramModule::DramModule(const DramOrganization &org,
                       const DramTimingParams &params)
    : MemoryBackend(org, params),
      chDiv_(static_cast<std::uint64_t>(org.numChannels)),
      bankDiv_(static_cast<std::uint64_t>(org.banksPerChannel))
{
    channels_.reserve(org_.numChannels);
    for (int c = 0; c < org_.numChannels; ++c) {
        channels_.emplace_back(timing_, org_.banksPerChannel,
                               org_.openRowWindow);
    }
}

DramAccessTiming
DramModule::rowAccess(std::uint64_t row_idx, std::uint32_t bytes,
                      bool is_write, Cycle earliest)
{
    std::uint64_t per_channel, channel, row, bank;
    chDiv_.divMod(row_idx, per_channel, channel);
    bankDiv_.divMod(per_channel, row, bank);
    return channels_[channel].access(static_cast<int>(bank), row, bytes,
                                     is_write, earliest);
}

DramPoolStats
DramModule::stats() const
{
    DramPoolStats agg;
    for (const DramChannel &ch : channels_)
        agg.add(ch.stats());
    return agg;
}

void
DramModule::resetStats()
{
    for (DramChannel &ch : channels_)
        ch.resetStats();
}

} // namespace unison
