#include "dram/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace unison {

DramChannel::DramChannel(const DramTimingCpu &timing, int num_banks,
                         int open_row_window)
    : timing_(timing), openRowWindow_(open_row_window), banks_(num_banks)
{
    nextRefreshAt_ = timing_.refi; // 0 disables refresh

    UNISON_ASSERT(num_banks >= 1, "channel needs at least one bank");
    UNISON_ASSERT(open_row_window >= 1 &&
                      open_row_window <= kMaxOpenRowWindow,
                  "open-row window out of range: ", open_row_window);
}

Cycle
DramChannel::activateAllowedAt(Cycle t) const
{
    Cycle allowed = t;
    if (actCount_ >= 1)
        allowed = std::max(allowed, lastActivate_ + timing_.rrd);
    // tFAW: at most four activates in any tFAW window. The gate only
    // exists once four real activates have been recorded -- before
    // that, the ring slot still holds its construction-time zero,
    // which must not delay early activates under large tFAW values.
    // The window is half-open: an activate issuing on the exact cycle
    // the fourth-to-last one turns tFAW old is legal.
    if (actCount_ >= 4)
        allowed =
            std::max(allowed, actWindow_[actWindowIdx_] + timing_.faw);
    return allowed;
}

void
DramChannel::noteActivate(Cycle t)
{
    lastActivate_ = t;
    actWindow_[actWindowIdx_] = t;
    actWindowIdx_ = (actWindowIdx_ + 1) % 4;
    ++actCount_;
    ++stats_.activations;
}

Cycle
DramChannel::applyRefresh(Cycle t)
{
    if (timing_.refi == 0 || nextRefreshAt_ > t)
        return t;
    // Catch up on all refresh windows that started before t; the
    // channel is unavailable for tRFC after each (rank-wide refresh,
    // all banks close their rows). The number of elapsed windows is
    // closed-form -- after a long idle gap this must not walk every
    // missed window one at a time -- and only the *last* window's
    // busy-until matters for bank state, so one pass over the banks
    // reproduces the loop's effect exactly.
    const std::uint64_t elapsed =
        (t - nextRefreshAt_) / timing_.refi + 1;
    const Cycle last_window =
        nextRefreshAt_ + (elapsed - 1) * timing_.refi;
    refreshBusyUntil_ = last_window + timing_.rfc;
    nextRefreshAt_ = last_window + timing_.refi;
    stats_.refreshes += elapsed;
    for (BankState &bank : banks_) {
        for (int i = 0; i < kMaxOpenRowWindow; ++i)
            bank.openRows[i] = kNoRow;
        bank.busyUntil = std::max(bank.busyUntil, refreshBusyUntil_);
    }
    return std::max(t, refreshBusyUntil_);
}

DramAccessTiming
DramChannel::access(int bank_idx, std::uint64_t row, std::uint32_t bytes,
                    bool is_write, Cycle earliest)
{
    UNISON_ASSERT(bank_idx >= 0 &&
                      bank_idx < static_cast<int>(banks_.size()),
                  "bank ", bank_idx, " out of range");
    UNISON_ASSERT(bytes > 0, "zero-byte DRAM access");

    BankState &bank = banks_[bank_idx];
    // applyRefresh early-outs on one compare when no refresh window
    // elapsed (always, when refresh is disabled), so the common case
    // -- a hit on the bank's most-recently-opened row -- reaches the
    // column/bus arithmetic below without touching any loop.
    const Cycle start =
        applyRefresh(std::max(earliest, bank.busyUntil));

    DramAccessTiming result;
    Cycle col_ready; // earliest cycle the column command may issue

    if (bank.openRows[0] == row) {
        // Row-buffer hit on the open row: the column command can go
        // immediately.
        result.rowHit = true;
        ++stats_.rowHits;
        col_ready = start;
    } else if (bank.rowOpen(row, openRowWindow_)) {
        // Row hit via the FR-FCFS reordering window (recently-open
        // rows beyond the MRU one).
        result.rowHit = true;
        ++stats_.rowHits;
        col_ready = start;
    } else if (!bank.anyOpen(openRowWindow_)) {
        // Bank idle: activate, then column.
        ++stats_.rowEmpty;
        const Cycle act = activateAllowedAt(
            std::max(start, bank.activatedAt + timing_.rc));
        noteActivate(act);
        bank.activatedAt = act;
        col_ready = act + timing_.rcd;
        bank.openRowInsert(row, openRowWindow_);
    } else {
        // Row conflict: precharge the victim row (respecting tRAS and
        // read/write-to-precharge), activate the new one, then column.
        ++stats_.rowConflicts;
        const Cycle pre = std::max({start,
                                    bank.activatedAt + timing_.ras,
                                    bank.prechargeOkAt});
        const Cycle act = activateAllowedAt(
            std::max(pre + timing_.rp, bank.activatedAt + timing_.rc));
        noteActivate(act);
        bank.activatedAt = act;
        col_ready = act + timing_.rcd;
        bank.openRowInsert(row, openRowWindow_);
    }

    // Data transfer: CAS latency, then the burst on the shared bus.
    // A write->read direction switch on the bus pays the tWTR
    // turnaround (writes themselves sit in the controller's write
    // buffer, so they never gate reads beyond this bus-local penalty).
    Cycle bus_ready = busFreeAt_;
    if (!is_write && lastBurstWasWrite_)
        bus_ready += timing_.wtr;
    Cycle data_start = std::max(col_ready + timing_.cas, bus_ready);
    const Cycle burst = timing_.burstCycles(bytes);
    const Cycle data_end = data_start + burst;
    busFreeAt_ = data_end;
    lastBurstWasWrite_ = is_write;

    // Bank bookkeeping: column commands pipeline (tCCD ~ one burst),
    // so the bank only gates the *next column command*, not the data
    // return -- successive row-buffer hits stream back to back.
    bank.busyUntil = col_ready + burst;
    if (is_write) {
        bank.prechargeOkAt = data_end + timing_.wr;
        ++stats_.writes;
        stats_.bytesWritten += bytes;
    } else {
        bank.prechargeOkAt = col_ready + timing_.rtp;
        ++stats_.reads;
        stats_.bytesRead += bytes;
    }

    result.completion = data_end;
    return result;
}

} // namespace unison
