/**
 * @file
 * Dynamic-energy model for the DRAM pools (Sec. V-D of the paper).
 *
 * The paper's energy argument is about *operation counts*, not
 * absolute joules: page-based designs transfer whole footprints per
 * off-chip row activation where a block-based design activates a row
 * for almost every block, so off-chip activation energy drops by
 * roughly the footprint size. This module turns a pool's operation
 * counters (activations, bytes moved, refreshes) into a dynamic-energy
 * breakdown using representative per-operation costs:
 *
 *  - off-chip DDR3: ~20 nJ per activate/precharge pair of an 8 KB row
 *    and ~70 pJ/bit of data movement including I/O (DDR3-1600 DIMM
 *    figures commonly used in architecture studies);
 *  - die-stacked DRAM: ~8 nJ per activation (smaller arrays, shorter
 *    wires) and ~10.5 pJ/bit end to end (the published Hybrid Memory
 *    Cube figure).
 *
 * Absolute values are documented assumptions; every comparison in the
 * bench suite is a ratio between designs under the *same* parameters,
 * which is what the paper reports too.
 */

#ifndef UNISON_DRAM_ENERGY_HH
#define UNISON_DRAM_ENERGY_HH

#include "dram/dram.hh"

namespace unison {

/** Per-operation dynamic-energy costs of one DRAM pool. */
struct DramEnergyParams
{
    double activateNj = 20.0;     //!< activate+precharge, one 8 KB row
    double readNjPerByte = 0.56;  //!< data movement incl. I/O
    double writeNjPerByte = 0.60;
    double refreshNj = 30.0;      //!< one refresh command
};

/** Representative DDR3-1600 DIMM costs (off-chip pool). */
DramEnergyParams offChipDramEnergy();

/** Representative die-stacked DRAM costs (HMC-class). */
DramEnergyParams stackedDramEnergy();

/** Dynamic energy of one pool over a measurement window, in nJ. */
struct DramEnergyBreakdown
{
    double activationNj = 0.0;
    double readNj = 0.0;
    double writeNj = 0.0;
    double refreshNj = 0.0;

    double
    totalNj() const
    {
        return activationNj + readNj + writeNj + refreshNj;
    }

    double totalMj() const { return totalNj() * 1e-6; }
};

/** Apply the per-operation costs to a pool's counters. */
DramEnergyBreakdown computeDynamicEnergy(const DramPoolStats &stats,
                                         const DramEnergyParams &params);

} // namespace unison

#endif // UNISON_DRAM_ENERGY_HH
