/**
 * @file
 * The memory-backend seam: every consumer of DRAM timing (fill and
 * writeback engines, the designs' stacked pools, the off-chip pool in
 * System) talks to the abstract MemoryBackend below, never to a
 * concrete timing model. Two implementations exist:
 *
 *  - DramModule (dram.hh): the analytic open-page model. Fast, and the
 *    default -- all goldens are pinned against it.
 *  - DetailedBackend (detailed.hh): a cycle-accurate FR-FCFS controller
 *    with per-channel write queues, drain watermarks and a starvation
 *    cap. Slower; used to cross-validate the analytic model (the
 *    `validation` figure grid).
 *
 * Both share DramTimingParams/DramTimingCpu, the channel/bank/row
 * interleaving, and the UNISON_DRAM_TRAFFIC_FIELDS counters, so a
 * design sees identical organization and statistics regardless of the
 * backend behind the seam.
 */

#ifndef UNISON_DRAM_BACKEND_HH
#define UNISON_DRAM_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fastdiv.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"

namespace unison {

/** Aggregated statistics across a pool's channels: the same traffic
 *  field list as DramChannelStats, as plain uint64 sums. */
struct DramPoolStats
{
    UNISON_STAT_STRUCT_BODY_T(UNISON_DRAM_TRAFFIC_FIELDS, std::uint64_t)

    /** Fold one channel's counters in (field-by-field, generated from
     *  the shared list so an added counter cannot be missed here). */
#define UNISON_POOL_ADD_FIELD(T, name) name += ch.name.value();
    void
    add(const DramChannelStats &ch)
    {
        UNISON_DRAM_TRAFFIC_FIELDS(UNISON_POOL_ADD_FIELD, )
    }
#undef UNISON_POOL_ADD_FIELD

    std::uint64_t accesses() const { return reads + writes; }

    double
    rowHitRatio() const
    {
        const std::uint64_t total = rowHits + rowConflicts + rowEmpty;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
};

/**
 * Controller-queue statistics only the detailed backend produces; the
 * fast backend reports all-zero (it has no queues). Occupancy is a
 * power-of-two histogram of the write-queue depth sampled at every
 * enqueue: bucket 0 = empty before enqueue, bucket k = [2^(k-1), 2^k).
 */
struct MemoryQueueStats
{
    static constexpr int kOccupancyBuckets = 8;

    std::uint64_t writeDrains = 0;      //!< watermark drain episodes
    std::uint64_t drainedWrites = 0;    //!< writes retired from a queue
    std::uint64_t frfcfsReorders = 0;   //!< drains that skipped oldest
    std::uint64_t starvationDrains = 0; //!< forced by the bypass cap
    std::uint64_t occupancy[kOccupancyBuckets] = {};

    void
    add(const MemoryQueueStats &other)
    {
        writeDrains += other.writeDrains;
        drainedWrites += other.drainedWrites;
        frfcfsReorders += other.frfcfsReorders;
        starvationDrains += other.starvationDrains;
        for (int i = 0; i < kOccupancyBuckets; ++i)
            occupancy[i] += other.occupancy[i];
    }

    bool
    any() const
    {
        if (writeDrains || drainedWrites || frfcfsReorders ||
            starvationDrains)
            return true;
        for (std::uint64_t bucket : occupancy) {
            if (bucket)
                return true;
        }
        return false;
    }
};

/**
 * One DRAM pool behind a pluggable timing model. Rows are interleaved
 * across channels then banks, so consecutive row indices spread over
 * the parallel resources exactly as consecutive DRAM-cache sets should
 * (Sec. III-A.6); the interleaving lives here so every backend maps a
 * row index to the same (channel, bank, row) triple.
 */
class MemoryBackend
{
  public:
    MemoryBackend(const DramOrganization &org,
                  const DramTimingParams &params);
    virtual ~MemoryBackend() = default;

    MemoryBackend(const MemoryBackend &) = delete;
    MemoryBackend &operator=(const MemoryBackend &) = delete;

    /**
     * Time an access to global row `row_idx` (cache-controlled layout,
     * used by the stacked pool).
     */
    virtual DramAccessTiming rowAccess(std::uint64_t row_idx,
                                       std::uint32_t bytes, bool is_write,
                                       Cycle earliest) = 0;

    /**
     * Time an access to the row containing byte address `addr`
     * (memory-controlled layout, used by the off-chip pool).
     */
    DramAccessTiming
    addrAccess(Addr addr, std::uint32_t bytes, bool is_write,
               Cycle earliest)
    {
        return rowAccess(rowOfAddr(addr), bytes, is_write, earliest);
    }

    /** Global row index that backs byte address `addr`. */
    std::uint64_t
    rowOfAddr(Addr addr) const
    {
        return rowBytesDiv_.div(addr);
    }

    const DramOrganization &organization() const { return org_; }
    const DramTimingCpu &timing() const { return timing_; }

    /** Sum the per-channel traffic counters. */
    virtual DramPoolStats stats() const = 0;
    virtual void resetStats() = 0;

    /** Controller-queue counters; all-zero for queueless backends. */
    virtual MemoryQueueStats queueStats() const { return {}; }

    /** Warm-state checkpoint of every channel's timing state
     *  (statistics excluded by the state_io.hh contract). */
    virtual void saveState(StateWriter &out) const = 0;
    virtual void loadState(StateReader &in) = 0;

    /** Idealized unloaded read latency for a row-buffer hit/conflict. */
    Cycle
    unloadedRowHitLatency(std::uint32_t bytes) const
    {
        return timing_.cas + timing_.burstCycles(bytes);
    }

    Cycle
    unloadedRowConflictLatency(std::uint32_t bytes) const
    {
        return timing_.rp + timing_.rcd + timing_.cas +
               timing_.burstCycles(bytes);
    }

  protected:
    DramOrganization org_;
    DramTimingCpu timing_;
    FastDiv64 rowBytesDiv_;
};

/** Construct the backend selected by `org.backend`. */
std::unique_ptr<MemoryBackend>
makeMemoryBackend(const DramOrganization &org,
                  const DramTimingParams &params);

/** Registered backend ids, in enum order ("fast", "detailed"). */
const std::vector<std::string> &memoryBackendIds();

/** Spec/CLI token for a backend kind. */
std::string memoryBackendId(MemoryBackendKind kind);

/** One-line description for --list-backends. */
std::string memoryBackendSummary(MemoryBackendKind kind);

/** Parse a spec/CLI token; returns false on unknown tokens. */
bool memoryBackendFromId(const std::string &token,
                         MemoryBackendKind &out);

} // namespace unison

#endif // UNISON_DRAM_BACKEND_HH
