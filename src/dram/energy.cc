#include "dram/energy.hh"

namespace unison {

DramEnergyParams
offChipDramEnergy()
{
    DramEnergyParams p;
    // Activate + precharge of an 8 KB DDR3 row: ~20 nJ (IDD0-derived
    // figures for a DDR3-1600 x8 DIMM, as commonly used in
    // architecture studies).
    p.activateNj = 20.0;
    // ~70 pJ/bit end to end (core + I/O): 0.56 nJ per byte.
    p.readNjPerByte = 0.56;
    // Writes drive the bus plus write recovery: slightly higher.
    p.writeNjPerByte = 0.60;
    p.refreshNj = 30.0;
    return p;
}

DramEnergyParams
stackedDramEnergy()
{
    DramEnergyParams p;
    // Smaller banks and millimeter TSV wires: activation well under
    // half the DIMM cost.
    p.activateNj = 8.0;
    // The published HMC figure: ~10.5 pJ/bit = 0.084 nJ/byte.
    p.readNjPerByte = 0.084;
    p.writeNjPerByte = 0.090;
    p.refreshNj = 12.0;
    return p;
}

DramEnergyBreakdown
computeDynamicEnergy(const DramPoolStats &stats,
                     const DramEnergyParams &params)
{
    DramEnergyBreakdown out;
    out.activationNj =
        static_cast<double>(stats.activations) * params.activateNj;
    out.readNj =
        static_cast<double>(stats.bytesRead) * params.readNjPerByte;
    out.writeNj =
        static_cast<double>(stats.bytesWritten) * params.writeNjPerByte;
    out.refreshNj =
        static_cast<double>(stats.refreshes) * params.refreshNj;
    return out;
}

} // namespace unison
