/**
 * @file
 * DRAM timing parameters (Table III of the paper) and their conversion
 * from DRAM-clock to CPU-clock cycles.
 *
 * Both DRAM pools use the same JEDEC-style timing numbers; they differ
 * in clock (stacked: 1.6 GHz DDR-like; off-chip: DDR3-1600 at 800 MHz),
 * channel count (4 vs 1) and bus width (128-bit vs 64-bit). The CPU
 * runs at 3 GHz, so one stacked-DRAM cycle is 1.875 CPU cycles and one
 * off-chip DRAM cycle is 3.75 CPU cycles.
 */

#ifndef UNISON_DRAM_TIMING_HH
#define UNISON_DRAM_TIMING_HH

#include <cmath>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace unison {

/** Raw timing numbers in DRAM clock cycles (Table III). */
struct DramTimingParams
{
    std::uint32_t tCAS = 11;  //!< column access strobe latency
    std::uint32_t tRCD = 11;  //!< row-to-column delay
    std::uint32_t tRP = 11;   //!< row precharge
    std::uint32_t tRAS = 28;  //!< row active time (activate->precharge)
    std::uint32_t tRC = 39;   //!< row cycle (activate->activate, bank)
    std::uint32_t tWR = 12;   //!< write recovery (data end->precharge)
    std::uint32_t tWTR = 6;   //!< write-to-read turnaround
    std::uint32_t tRTP = 6;   //!< read-to-precharge
    std::uint32_t tRRD = 5;   //!< activate-to-activate (channel)
    std::uint32_t tFAW = 24;  //!< four-activate window

    /**
     * Refresh interval in DRAM cycles (0 disables refresh). JEDEC
     * tREFI is 7.8 us; at 800 MHz that is 6240 cycles. Disabled by
     * default so unit tests see exact latencies; System-level studies
     * can enable it.
     */
    std::uint32_t tREFI = 0;
    std::uint32_t tRFC = 208; //!< refresh cycle time (~260 ns)

    /** Data-bus payload per DRAM clock (DDR: 2 transfers/cycle). */
    std::uint32_t busBytesPerCycle = 16;

    /** DRAM clock in MHz (for the CPU-cycle conversion). */
    double clockMhz = 800.0;
};

/** CPU clock frequency assumed by the whole simulator (Table III). */
constexpr double kCpuClockMhz = 3000.0;

/** Timing of one DRAM pool, pre-converted to CPU cycles. */
struct DramTimingCpu
{
    Cycle cas, rcd, rp, ras, rc, wr, wtr, rtp, rrd, faw;
    Cycle refi = 0; //!< 0 = refresh disabled
    Cycle rfc = 0;
    double cpuPerDramCycle = 1.0;
    std::uint32_t busBytesPerDramCycle = 16;

    /** Construct from DRAM-clock parameters. */
    static DramTimingCpu
    fromParams(const DramTimingParams &p)
    {
        DramTimingCpu t;
        t.cpuPerDramCycle = kCpuClockMhz / p.clockMhz;
        auto conv = [&](std::uint32_t dram_cycles) {
            return static_cast<Cycle>(
                std::llround(std::ceil(dram_cycles * t.cpuPerDramCycle)));
        };
        t.cas = conv(p.tCAS);
        t.rcd = conv(p.tRCD);
        t.rp = conv(p.tRP);
        t.ras = conv(p.tRAS);
        t.rc = conv(p.tRC);
        t.wr = conv(p.tWR);
        t.wtr = conv(p.tWTR);
        t.rtp = conv(p.tRTP);
        t.rrd = conv(p.tRRD);
        t.faw = conv(p.tFAW);
        t.refi = conv(p.tREFI);
        t.rfc = conv(p.tRFC);
        t.busBytesPerDramCycle = p.busBytesPerCycle;
        return t;
    }

    /** CPU cycles to move `bytes` over the data bus. */
    Cycle
    burstCycles(std::uint32_t bytes) const
    {
        const std::uint32_t dram_cycles =
            (bytes + busBytesPerDramCycle - 1) / busBytesPerDramCycle;
        return static_cast<Cycle>(std::llround(
            std::ceil(dram_cycles * cpuPerDramCycle)));
    }
};

/**
 * Which timing implementation a DRAM pool runs behind the
 * MemoryBackend seam (dram/backend.hh): the analytic open-page model
 * or the cycle-accurate FR-FCFS controller.
 */
enum class MemoryBackendKind : std::uint8_t
{
    Fast,     //!< analytic open-page model (DramModule)
    Detailed, //!< FR-FCFS controller with write queues (DetailedBackend)
};

/**
 * Physical organization of one DRAM pool (channels x banks x rows).
 */
struct DramOrganization
{
    std::string name = "dram";
    int numChannels = 1;
    int banksPerChannel = 8;
    std::uint32_t rowBytes = kRowBytes;

    /** Timing implementation behind the MemoryBackend seam. */
    MemoryBackendKind backend = MemoryBackendKind::Fast;

    /**
     * Depth of the per-bank recently-open-row window. The channel
     * model processes requests in arrival order; a real FR-FCFS
     * scheduler would reorder row hits ahead of conflicts, letting one
     * stream's row survive another stream's interleaved conflict.
     * Treating the last `openRowWindow` rows of a bank as hittable
     * approximates that reordering without an event queue. 1 = strict
     * single open row (no reordering).
     */
    int openRowWindow = 4;
};

/** Die-stacked DRAM configuration (Table III). */
DramTimingParams stackedDramTiming();
DramOrganization stackedDramOrganization();

/** Off-chip DDR3-1600 configuration (Table III). */
DramTimingParams offChipDramTiming();
DramOrganization offChipDramOrganization();

} // namespace unison

#endif // UNISON_DRAM_TIMING_HH
