#include "dram/detailed.hh"

#include <algorithm>

#include "common/logging.hh"

namespace unison {
namespace {

/** Power-of-two occupancy bucket: 0, 1, [2,4), [4,8), ... */
int
occupancyBucket(int size)
{
    int bucket = 0;
    while (size > 0 && bucket < MemoryQueueStats::kOccupancyBuckets - 1) {
        ++bucket;
        size >>= 1;
    }
    return bucket;
}

} // namespace

DetailedChannel::DetailedChannel(const DramTimingCpu &timing,
                                 int num_banks)
    : timing_(timing), banks_(num_banks)
{
    nextRefreshAt_ = timing_.refi; // 0 disables refresh
    UNISON_ASSERT(num_banks >= 1, "channel needs at least one bank");
}

Cycle
DetailedChannel::activateAllowedAt(Cycle t) const
{
    // Identical to DramChannel::activateAllowedAt, including the
    // activate-count guards on the tRRD/tFAW gates.
    Cycle allowed = t;
    if (actCount_ >= 1)
        allowed = std::max(allowed, lastActivate_ + timing_.rrd);
    if (actCount_ >= 4)
        allowed =
            std::max(allowed, actWindow_[actWindowIdx_] + timing_.faw);
    return allowed;
}

void
DetailedChannel::noteActivate(Cycle t)
{
    lastActivate_ = t;
    actWindow_[actWindowIdx_] = t;
    actWindowIdx_ = (actWindowIdx_ + 1) % 4;
    ++actCount_;
    ++stats_.activations;
}

Cycle
DetailedChannel::applyRefresh(Cycle t)
{
    if (timing_.refi == 0 || nextRefreshAt_ > t)
        return t;
    // Closed-form catch-up, as in DramChannel::applyRefresh; the
    // rank-wide refresh closes every bank's row.
    const std::uint64_t elapsed = (t - nextRefreshAt_) / timing_.refi + 1;
    const Cycle last_window = nextRefreshAt_ + (elapsed - 1) * timing_.refi;
    refreshBusyUntil_ = last_window + timing_.rfc;
    nextRefreshAt_ = last_window + timing_.refi;
    stats_.refreshes += elapsed;
    for (BankState &bank : banks_) {
        bank.openRow = kNoRow;
        bank.busyUntil = std::max(bank.busyUntil, refreshBusyUntil_);
    }
    return std::max(t, refreshBusyUntil_);
}

DramAccessTiming
DetailedChannel::performCommand(int bank_idx, std::uint64_t row,
                                std::uint32_t bytes, bool is_write,
                                Cycle now)
{
    BankState &bank = banks_[bank_idx];
    const Cycle start = applyRefresh(std::max(now, bank.busyUntil));

    DramAccessTiming result;
    Cycle col_ready;

    if (bank.openRow == row) {
        result.rowHit = true;
        ++stats_.rowHits;
        col_ready = start;
    } else if (bank.openRow == kNoRow) {
        ++stats_.rowEmpty;
        const Cycle act = activateAllowedAt(
            std::max(start, bank.activatedAt + timing_.rc));
        noteActivate(act);
        bank.activatedAt = act;
        col_ready = act + timing_.rcd;
        bank.openRow = row;
    } else {
        ++stats_.rowConflicts;
        const Cycle pre = std::max(
            {start, bank.activatedAt + timing_.ras, bank.prechargeOkAt});
        const Cycle act = activateAllowedAt(
            std::max(pre + timing_.rp, bank.activatedAt + timing_.rc));
        noteActivate(act);
        bank.activatedAt = act;
        col_ready = act + timing_.rcd;
        bank.openRow = row;
    }

    Cycle bus_ready = busFreeAt_;
    if (!is_write && lastBurstWasWrite_)
        bus_ready += timing_.wtr;
    const Cycle data_start = std::max(col_ready + timing_.cas, bus_ready);
    const Cycle burst = timing_.burstCycles(bytes);
    const Cycle data_end = data_start + burst;
    busFreeAt_ = data_end;
    lastBurstWasWrite_ = is_write;
    bank.busyUntil = col_ready + burst;

    if (is_write) {
        bank.prechargeOkAt = data_end + timing_.wr;
        ++stats_.writes;
        stats_.bytesWritten += bytes;
    } else {
        bank.prechargeOkAt = col_ready + timing_.rtp;
        ++stats_.reads;
        stats_.bytesRead += bytes;
    }

    result.completion = data_end;
    return result;
}

void
DetailedChannel::removeQueued(int idx)
{
    for (int i = idx; i + 1 < wqSize_; ++i)
        wq_[i] = wq_[i + 1];
    --wqSize_;
}

void
DetailedChannel::drainOne(Cycle now)
{
    UNISON_ASSERT(wqSize_ > 0, "drain from an empty write queue");
    // FR-FCFS pick: the oldest write whose row is currently open in
    // its bank, falling back to the oldest write outright.
    int pick = 0;
    for (int i = 0; i < wqSize_; ++i) {
        const WriteEntry &entry = wq_[i];
        if (banks_[entry.bank].openRow == entry.row) {
            pick = i;
            break;
        }
    }
    if (pick != 0)
        ++qstats_.frfcfsReorders;
    const WriteEntry entry = wq_[pick];
    removeQueued(pick);
    performCommand(static_cast<int>(entry.bank), entry.row, entry.bytes,
                   true, now);
    ++qstats_.drainedWrites;
}

void
DetailedChannel::drainStarved(Cycle now)
{
    for (int i = 0; i < wqSize_; ++i) {
        if (wq_[i].bypasses < static_cast<std::uint32_t>(kStarvationCap))
            continue;
        if (i != 0)
            ++qstats_.frfcfsReorders;
        const WriteEntry entry = wq_[i];
        removeQueued(i);
        performCommand(static_cast<int>(entry.bank), entry.row,
                       entry.bytes, true, now);
        ++qstats_.drainedWrites;
        return;
    }
    panic("drainStarved with no starved entry queued");
}

std::uint32_t
DetailedChannel::maxQueuedBypasses() const
{
    std::uint32_t max_bypasses = 0;
    for (int i = 0; i < wqSize_; ++i)
        max_bypasses = std::max(max_bypasses, wq_[i].bypasses);
    return max_bypasses;
}

DramAccessTiming
DetailedChannel::access(int bank_idx, std::uint64_t row,
                        std::uint32_t bytes, bool is_write, Cycle earliest)
{
    UNISON_ASSERT(bank_idx >= 0 &&
                      bank_idx < static_cast<int>(banks_.size()),
                  "bank ", bank_idx, " out of range");
    UNISON_ASSERT(bytes > 0, "zero-byte DRAM access");

    if (is_write) {
        // Posted write: accepted into the queue now, performed later.
        // A full queue forces a single drain to make room; crossing
        // the high watermark drains down to the low one.
        if (wqSize_ == kWriteQueueDepth) {
            ++qstats_.writeDrains;
            drainOne(earliest);
        }
        WriteEntry &entry = wq_[wqSize_++];
        entry.row = row;
        entry.bank = static_cast<std::uint32_t>(bank_idx);
        entry.bytes = bytes;
        entry.bypasses = 0;
        ++qstats_.occupancy[occupancyBucket(wqSize_)];
        if (wqSize_ >= kWriteHighWatermark) {
            ++qstats_.writeDrains;
            while (wqSize_ > kWriteLowWatermark)
                drainOne(earliest);
        }
        DramAccessTiming result;
        result.completion = earliest;
        return result;
    }

    // Read priority: the read bypasses every queued write -- unless a
    // write has hit the starvation cap, in which case it retires
    // first. This bounds write latency without giving up read-first
    // scheduling.
    for (int i = 0; i < wqSize_; ++i)
        ++wq_[i].bypasses;
    while (maxQueuedBypasses() >=
           static_cast<std::uint32_t>(kStarvationCap)) {
        ++qstats_.starvationDrains;
        drainStarved(earliest);
    }
    return performCommand(bank_idx, row, bytes, false, earliest);
}

void
DetailedChannel::saveState(StateWriter &out) const
{
    out.podVector(banks_);
    out.pod(busFreeAt_);
    out.pod(lastBurstWasWrite_);
    out.pod(lastActivate_);
    out.pod(nextRefreshAt_);
    out.pod(refreshBusyUntil_);
    out.pod(actWindow_);
    out.pod(actWindowIdx_);
    out.pod(actCount_);
    out.pod(wq_);
    out.pod(wqSize_);
}

void
DetailedChannel::loadState(StateReader &in)
{
    in.podVectorExact(banks_);
    in.pod(busFreeAt_);
    in.pod(lastBurstWasWrite_);
    in.pod(lastActivate_);
    in.pod(nextRefreshAt_);
    in.pod(refreshBusyUntil_);
    in.pod(actWindow_);
    in.pod(actWindowIdx_);
    in.pod(actCount_);
    in.pod(wq_);
    in.pod(wqSize_);
}

DetailedBackend::DetailedBackend(const DramOrganization &org,
                                 const DramTimingParams &params)
    : MemoryBackend(org, params),
      chDiv_(static_cast<std::uint64_t>(org.numChannels)),
      bankDiv_(static_cast<std::uint64_t>(org.banksPerChannel))
{
    channels_.reserve(org_.numChannels);
    for (int c = 0; c < org_.numChannels; ++c)
        channels_.emplace_back(timing_, org_.banksPerChannel);
}

DramAccessTiming
DetailedBackend::rowAccess(std::uint64_t row_idx, std::uint32_t bytes,
                           bool is_write, Cycle earliest)
{
    std::uint64_t per_channel, channel, row, bank;
    chDiv_.divMod(row_idx, per_channel, channel);
    bankDiv_.divMod(per_channel, row, bank);
    return channels_[channel].access(static_cast<int>(bank), row, bytes,
                                     is_write, earliest);
}

DramPoolStats
DetailedBackend::stats() const
{
    DramPoolStats agg;
    for (const DetailedChannel &ch : channels_)
        agg.add(ch.stats());
    return agg;
}

void
DetailedBackend::resetStats()
{
    for (DetailedChannel &ch : channels_)
        ch.resetStats();
}

MemoryQueueStats
DetailedBackend::queueStats() const
{
    MemoryQueueStats agg;
    for (const DetailedChannel &ch : channels_)
        agg.add(ch.queueStats());
    return agg;
}

} // namespace unison
