#include "dram/timing.hh"

namespace unison {

DramTimingParams
stackedDramTiming()
{
    DramTimingParams p;            // Table III values
    p.clockMhz = 1600.0;           // DDR-like interface at 1.6 GHz
    p.busBytesPerCycle = 32;       // 128-bit DDR bus: 2 x 16 B / cycle
    return p;
}

DramOrganization
stackedDramOrganization()
{
    DramOrganization org;
    org.name = "stacked";
    org.numChannels = 4;
    org.banksPerChannel = 8;
    org.rowBytes = kRowBytes;
    return org;
}

DramTimingParams
offChipDramTiming()
{
    DramTimingParams p;            // DDR3-1600: 800 MHz clock
    p.clockMhz = 800.0;
    p.busBytesPerCycle = 16;       // 64-bit DDR bus: 2 x 8 B / cycle
    return p;
}

DramOrganization
offChipDramOrganization()
{
    DramOrganization org;
    org.name = "offchip";
    org.numChannels = 1;
    // Table III: 8 banks per rank; a 16-32 GB DDR3 DIMM population is
    // two ranks, giving 16 scheduler-visible banks on the channel.
    org.banksPerChannel = 16;
    org.rowBytes = kRowBytes;
    return org;
}

} // namespace unison
