/**
 * @file
 * A DRAM pool (stacked or off-chip): a set of channels plus the row
 * mapping. Cache designs either address it by *global row index* (the
 * stacked pool, whose layout the cache controls) or by *byte address*
 * (the off-chip pool, which backs all of physical memory).
 */

#ifndef UNISON_DRAM_DRAM_HH
#define UNISON_DRAM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/fastdiv.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"

namespace unison {

/** Aggregated statistics across a pool's channels: the same traffic
 *  field list as DramChannelStats, as plain uint64 sums. */
struct DramPoolStats
{
    UNISON_STAT_STRUCT_BODY_T(UNISON_DRAM_TRAFFIC_FIELDS, std::uint64_t)

    /** Fold one channel's counters in (field-by-field, generated from
     *  the shared list so an added counter cannot be missed here). */
#define UNISON_POOL_ADD_FIELD(T, name) name += ch.name.value();
    void
    add(const DramChannelStats &ch)
    {
        UNISON_DRAM_TRAFFIC_FIELDS(UNISON_POOL_ADD_FIELD, )
    }
#undef UNISON_POOL_ADD_FIELD

    std::uint64_t accesses() const { return reads + writes; }

    double
    rowHitRatio() const
    {
        const std::uint64_t total = rowHits + rowConflicts + rowEmpty;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
};

/**
 * One DRAM pool. Rows are interleaved across channels then banks, so
 * consecutive row indices spread over the parallel resources exactly
 * as consecutive DRAM-cache sets should (Sec. III-A.6).
 */
class DramModule
{
  public:
    DramModule(const DramOrganization &org, const DramTimingParams &params);

    /**
     * Time an access to global row `row_idx` (cache-controlled layout,
     * used by the stacked pool).
     */
    DramAccessTiming rowAccess(std::uint64_t row_idx, std::uint32_t bytes,
                               bool is_write, Cycle earliest);

    /**
     * Time an access to the row containing byte address `addr`
     * (memory-controlled layout, used by the off-chip pool).
     */
    DramAccessTiming addrAccess(Addr addr, std::uint32_t bytes,
                                bool is_write, Cycle earliest);

    /** Global row index that backs byte address `addr`. */
    std::uint64_t
    rowOfAddr(Addr addr) const
    {
        return rowBytesDiv_.div(addr);
    }

    const DramOrganization &organization() const { return org_; }
    const DramTimingCpu &timing() const { return timing_; }

    /** Sum the per-channel counters. */
    DramPoolStats stats() const;
    void resetStats();

    /** Warm-state checkpoint of every channel's timing state. */
    void
    saveState(StateWriter &out) const
    {
        for (const DramChannel &ch : channels_)
            ch.saveState(out);
    }

    void
    loadState(StateReader &in)
    {
        for (DramChannel &ch : channels_)
            ch.loadState(in);
    }

    /** Idealized unloaded read latency for a row-buffer hit/conflict. */
    Cycle unloadedRowHitLatency(std::uint32_t bytes) const;
    Cycle unloadedRowConflictLatency(std::uint32_t bytes) const;

  private:
    DramOrganization org_;
    DramTimingCpu timing_;
    /** Invariant-divisor splits of the row index (the channel/bank
     *  counts are runtime values, so plain '/' was a hardware divide
     *  on every access). */
    FastDiv64 chDiv_;
    FastDiv64 bankDiv_;
    FastDiv64 rowBytesDiv_;
    /** By value: the per-access channel lookup is one index, not a
     *  pointer chase. */
    std::vector<DramChannel> channels_;
};

} // namespace unison

#endif // UNISON_DRAM_DRAM_HH
