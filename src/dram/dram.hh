/**
 * @file
 * The analytic DRAM pool model (the "fast" MemoryBackend): a set of
 * open-page channels timed in arrival order. Cache designs either
 * address a pool by *global row index* (the stacked pool, whose layout
 * the cache controls) or by *byte address* (the off-chip pool, which
 * backs all of physical memory); both entry points live on the
 * MemoryBackend base in backend.hh.
 */

#ifndef UNISON_DRAM_DRAM_HH
#define UNISON_DRAM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/fastdiv.hh"
#include "dram/backend.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"

namespace unison {

/**
 * The analytic open-page pool. Every golden is pinned against this
 * backend; its per-access cost is a handful of compares, so it is also
 * the one the sweeps run.
 */
class DramModule final : public MemoryBackend
{
  public:
    DramModule(const DramOrganization &org, const DramTimingParams &params);

    DramAccessTiming rowAccess(std::uint64_t row_idx, std::uint32_t bytes,
                               bool is_write, Cycle earliest) override;

    /** Sum the per-channel counters. */
    DramPoolStats stats() const override;
    void resetStats() override;

    /** Warm-state checkpoint of every channel's timing state. */
    void
    saveState(StateWriter &out) const override
    {
        for (const DramChannel &ch : channels_)
            ch.saveState(out);
    }

    void
    loadState(StateReader &in) override
    {
        for (DramChannel &ch : channels_)
            ch.loadState(in);
    }

  private:
    /** Invariant-divisor splits of the row index (the channel/bank
     *  counts are runtime values, so plain '/' was a hardware divide
     *  on every access). */
    FastDiv64 chDiv_;
    FastDiv64 bankDiv_;
    /** By value: the per-access channel lookup is one index, not a
     *  pointer chase. */
    std::vector<DramChannel> channels_;
};

} // namespace unison

#endif // UNISON_DRAM_DRAM_HH
