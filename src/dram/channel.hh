/**
 * @file
 * One DRAM channel: per-bank row-buffer state machines, the shared
 * data bus, and the activate-rate limits (tRRD / tFAW). This is the
 * timing core of the DRAMSim2 substitute described in DESIGN.md.
 *
 * The model is open-page FCFS: requests are timed in the order they
 * arrive, each respecting bank state, bus occupancy and the activate
 * windows. Full FR-FCFS reordering is approximated by the open-row
 * window (see DramOrganization::openRowWindow); the cycle-accurate
 * FR-FCFS controller behind the same MemoryBackend seam lives in
 * detailed.hh, and the `validation` figure grid measures where this
 * approximation diverges from it.
 */

#ifndef UNISON_DRAM_CHANNEL_HH
#define UNISON_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "dram/timing.hh"
#include "stats/stats.hh"

namespace unison {

/**
 * The one list of DRAM traffic counters, shared by the per-channel
 * struct (Counter fields, resettable at the warm-up boundary) and the
 * pool aggregate (plain uint64 sums in backend.hh). rowConflicts counts
 * precharge + activate, rowEmpty an activate into an idle bank.
 */
#define UNISON_DRAM_TRAFFIC_FIELDS(X, T)                                \
    X(T, reads)                                                         \
    X(T, writes)                                                        \
    X(T, rowHits)                                                       \
    X(T, rowConflicts)                                                  \
    X(T, rowEmpty)                                                      \
    X(T, activations)                                                   \
    X(T, bytesRead)                                                     \
    X(T, bytesWritten)                                                  \
    X(T, refreshes)

/** Counters kept per channel (aggregated by DramModule). */
struct DramChannelStats
{
    UNISON_STAT_STRUCT_BODY_T(UNISON_DRAM_TRAFFIC_FIELDS, Counter)
};

/** Result of timing one access through the channel. */
struct DramAccessTiming
{
    Cycle completion = 0; //!< cycle the last data beat arrives
    bool rowHit = false;  //!< served from the open row buffer
};

/** One channel with `numBanks` banks behind a shared data bus. */
class DramChannel
{
  public:
    /**
     * @param open_row_window rows per bank treated as hittable (the
     *        FR-FCFS reordering approximation; see DramOrganization).
     */
    DramChannel(const DramTimingCpu &timing, int num_banks,
                int open_row_window = 2);

    /**
     * Time one column access of `bytes` to (bank, row) no earlier than
     * `earliest`, updating bank/bus/window state.
     */
    DramAccessTiming access(int bank, std::uint64_t row,
                            std::uint32_t bytes, bool is_write,
                            Cycle earliest);

    const DramChannelStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Cycle at which the data bus becomes free (test hook). */
    Cycle busFreeAt() const { return busFreeAt_; }

    int numBanks() const { return static_cast<int>(banks_.size()); }

    /** Warm-state checkpoint of the bank/bus/refresh state machines
     *  (statistics excluded by the state_io.hh contract). */
    void
    saveState(StateWriter &out) const
    {
        out.podVector(banks_);
        out.pod(busFreeAt_);
        out.pod(lastBurstWasWrite_);
        out.pod(lastActivate_);
        out.pod(nextRefreshAt_);
        out.pod(refreshBusyUntil_);
        out.pod(actWindow_);
        out.pod(actWindowIdx_);
        out.pod(actCount_);
    }

    void
    loadState(StateReader &in)
    {
        in.podVectorExact(banks_);
        in.pod(busFreeAt_);
        in.pod(lastBurstWasWrite_);
        in.pod(lastActivate_);
        in.pod(nextRefreshAt_);
        in.pod(refreshBusyUntil_);
        in.pod(actWindow_);
        in.pod(actWindowIdx_);
        in.pod(actCount_);
    }

  private:
    static constexpr std::uint64_t kNoRow = ~0ull;
    static constexpr int kMaxOpenRowWindow = 4;

    struct BankState
    {
        /** Recently-open rows, most recent first. */
        std::uint64_t openRows[kMaxOpenRowWindow] = {kNoRow, kNoRow,
                                                     kNoRow, kNoRow};
        Cycle busyUntil = 0;         //!< next-column-command gate
        Cycle activatedAt = 0;       //!< last activate (tRAS / tRC)
        Cycle prechargeOkAt = 0;     //!< earliest precharge (tRTP/tWR)

        bool
        rowOpen(std::uint64_t row, int window) const
        {
            for (int i = 0; i < window; ++i) {
                if (openRows[i] == row)
                    return true;
            }
            return false;
        }

        bool
        anyOpen(int window) const
        {
            for (int i = 0; i < window; ++i) {
                if (openRows[i] != kNoRow)
                    return true;
            }
            return false;
        }

        void
        openRowInsert(std::uint64_t row, int window)
        {
            for (int i = window - 1; i > 0; --i)
                openRows[i] = openRows[i - 1];
            openRows[0] = row;
        }
    };

    /** Earliest cycle a new activate may issue channel-wide. */
    Cycle activateAllowedAt(Cycle t) const;

    /** Apply any refresh windows that elapsed before `t`. */
    Cycle applyRefresh(Cycle t);

    /** Record an activate for the tRRD/tFAW windows. */
    void noteActivate(Cycle t);

    DramTimingCpu timing_;
    int openRowWindow_;
    std::vector<BankState> banks_;
    Cycle busFreeAt_ = 0;
    bool lastBurstWasWrite_ = false; //!< for the tWTR bus turnaround
    Cycle lastActivate_ = 0;         //!< for tRRD
    Cycle nextRefreshAt_ = 0;        //!< rank-wide refresh window
    Cycle refreshBusyUntil_ = 0;
    Cycle actWindow_[4] = {0, 0, 0, 0}; //!< ring buffer for tFAW
    int actWindowIdx_ = 0;
    /** Activates recorded so far: the tRRD/tFAW gates only apply once
     *  real activates back them (the ring's initial zeros are not
     *  activates at cycle 0). */
    std::uint64_t actCount_ = 0;
    DramChannelStats stats_;
};

} // namespace unison

#endif // UNISON_DRAM_CHANNEL_HH
