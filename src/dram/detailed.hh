/**
 * @file
 * The cycle-accurate FR-FCFS controller (the "detailed" MemoryBackend).
 *
 * Each channel keeps strict single-open-row bank state machines plus a
 * bounded write queue. Writes are posted: they complete at acceptance
 * and retire later, drained in FR-FCFS order (row hits first, oldest
 * otherwise) when the queue crosses its high watermark -- draining down
 * to the low watermark -- or when a queued write has been bypassed by
 * too many reads (the starvation cap). Reads are serviced immediately,
 * ahead of queued writes, which is exactly the reordering the analytic
 * model's open-row window approximates.
 *
 * Under zero contention (one request in flight, no queued writes) a
 * read takes the same cycle count here as through DramModule with
 * openRowWindow=1 -- the column/bus/refresh arithmetic is shared by
 * construction, and the backend-equivalence tests pin that.
 */

#ifndef UNISON_DRAM_DETAILED_HH
#define UNISON_DRAM_DETAILED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/fastdiv.hh"
#include "common/state_io.hh"
#include "dram/backend.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"

namespace unison {

/** One channel of the detailed controller. */
class DetailedChannel
{
  public:
    /** Write-queue geometry (public so the invariant tests can assert
     *  against the real values). */
    static constexpr int kWriteQueueDepth = 32;
    static constexpr int kWriteHighWatermark = 24;
    static constexpr int kWriteLowWatermark = 16;
    /** A queued write bypassed by this many reads is drained before
     *  the next read is serviced. */
    static constexpr int kStarvationCap = 16;

    DetailedChannel(const DramTimingCpu &timing, int num_banks);

    DramAccessTiming access(int bank, std::uint64_t row,
                            std::uint32_t bytes, bool is_write,
                            Cycle earliest);

    const DramChannelStats &stats() const { return stats_; }
    const MemoryQueueStats &queueStats() const { return qstats_; }

    void
    resetStats()
    {
        stats_.reset();
        qstats_ = MemoryQueueStats{};
    }

    int writeQueueSize() const { return wqSize_; }

    /** Largest bypass count over the queued writes (invariant hook). */
    std::uint32_t maxQueuedBypasses() const;

    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    static constexpr std::uint64_t kNoRow = ~0ull;

    struct BankState
    {
        std::uint64_t openRow = kNoRow;
        Cycle busyUntil = 0;     //!< next-column-command gate
        Cycle activatedAt = 0;   //!< last activate (tRAS / tRC)
        Cycle prechargeOkAt = 0; //!< earliest precharge (tRTP / tWR)
    };

    struct WriteEntry
    {
        std::uint64_t row = 0;
        std::uint32_t bank = 0;
        std::uint32_t bytes = 0;
        std::uint32_t bypasses = 0;
        std::uint32_t pad = 0; //!< keep the checkpoint image defined
    };

    Cycle activateAllowedAt(Cycle t) const;
    void noteActivate(Cycle t);
    Cycle applyRefresh(Cycle t);

    /** Time one actual DRAM command (the shared bank/bus arithmetic). */
    DramAccessTiming performCommand(int bank, std::uint64_t row,
                                    std::uint32_t bytes, bool is_write,
                                    Cycle now);

    /** Retire the FR-FCFS pick from the write queue (row hit first,
     *  oldest otherwise). */
    void drainOne(Cycle now);

    /** Retire the oldest write that hit the starvation cap. */
    void drainStarved(Cycle now);

    void removeQueued(int idx);

    DramTimingCpu timing_;
    std::vector<BankState> banks_;
    Cycle busFreeAt_ = 0;
    bool lastBurstWasWrite_ = false;
    Cycle lastActivate_ = 0;
    Cycle nextRefreshAt_ = 0;
    Cycle refreshBusyUntil_ = 0;
    Cycle actWindow_[4] = {0, 0, 0, 0};
    int actWindowIdx_ = 0;
    std::uint64_t actCount_ = 0;
    /** Fixed-capacity queue: the checkpoint image must be size-stable
     *  (state_io.hh restores vectors in place). */
    std::array<WriteEntry, kWriteQueueDepth> wq_{};
    int wqSize_ = 0;
    DramChannelStats stats_;
    MemoryQueueStats qstats_;
};

/** The detailed pool: DetailedChannel behind the shared interleaving. */
class DetailedBackend final : public MemoryBackend
{
  public:
    DetailedBackend(const DramOrganization &org,
                    const DramTimingParams &params);

    DramAccessTiming rowAccess(std::uint64_t row_idx, std::uint32_t bytes,
                               bool is_write, Cycle earliest) override;

    DramPoolStats stats() const override;
    void resetStats() override;
    MemoryQueueStats queueStats() const override;

    void
    saveState(StateWriter &out) const override
    {
        for (const DetailedChannel &ch : channels_)
            ch.saveState(out);
    }

    void
    loadState(StateReader &in) override
    {
        for (DetailedChannel &ch : channels_)
            ch.loadState(in);
    }

    /** Per-channel access for the invariant tests. */
    DetailedChannel &channel(int idx) { return channels_[idx]; }

  private:
    FastDiv64 chDiv_;
    FastDiv64 bankDiv_;
    std::vector<DetailedChannel> channels_;
};

} // namespace unison

#endif // UNISON_DRAM_DETAILED_HH
