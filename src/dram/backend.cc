#include "dram/backend.hh"

#include "common/logging.hh"
#include "dram/detailed.hh"
#include "dram/dram.hh"

namespace unison {

MemoryBackend::MemoryBackend(const DramOrganization &org,
                             const DramTimingParams &params)
    : org_(org),
      timing_(DramTimingCpu::fromParams(params)),
      rowBytesDiv_(org.rowBytes)
{
    UNISON_ASSERT(org_.numChannels >= 1, "pool needs >= 1 channel");
}

std::unique_ptr<MemoryBackend>
makeMemoryBackend(const DramOrganization &org,
                  const DramTimingParams &params)
{
    switch (org.backend) {
    case MemoryBackendKind::Fast:
        return std::make_unique<DramModule>(org, params);
    case MemoryBackendKind::Detailed:
        return std::make_unique<DetailedBackend>(org, params);
    }
    panic("unknown memory backend kind");
}

const std::vector<std::string> &
memoryBackendIds()
{
    static const std::vector<std::string> ids = {"fast", "detailed"};
    return ids;
}

std::string
memoryBackendId(MemoryBackendKind kind)
{
    return memoryBackendIds()[static_cast<std::size_t>(kind)];
}

std::string
memoryBackendSummary(MemoryBackendKind kind)
{
    switch (kind) {
    case MemoryBackendKind::Fast:
        return "analytic open-page model (default; goldens pinned "
               "against it)";
    case MemoryBackendKind::Detailed:
        return "cycle-accurate FR-FCFS controller with write-drain "
               "watermarks";
    }
    return "";
}

bool
memoryBackendFromId(const std::string &token, MemoryBackendKind &out)
{
    const std::vector<std::string> &ids = memoryBackendIds();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == token) {
            out = static_cast<MemoryBackendKind>(i);
            return true;
        }
    }
    return false;
}

} // namespace unison
