/**
 * @file
 * Page-group tracking for *block*-organized caches that still want
 * page-level footprint learning (the naive block+FP splice and the
 * composed alloy-fp hybrid): while any block of a logical page is
 * resident, the tracker remembers the page's trigger (PC, offset) and
 * its fetched/touched/resident masks so the footprint predictor can
 * be trained when the last block leaves.
 *
 * The tracker models an SRAM-side structure and charges no timing;
 * designs that would have to reconstruct this information from the
 * in-DRAM tags (Sec. III-B.1) charge those scans themselves.
 *
 * Storage is a flat open-addressing table (common/flat_map.hh): the
 * tracker sits on the per-access hot path and its population is the
 * cache's live page set, so it must be O(active set) in memory and
 * pointer-chase-free per lookup even when a datacenter-scale mix keeps
 * millions of distinct pages in flight.
 */

#ifndef UNISON_CACHE_PAGE_TRACKER_HH
#define UNISON_CACHE_PAGE_TRACKER_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/state_io.hh"

namespace unison {

class PageGroupTracker
{
  public:
    struct PageInfo
    {
        std::uint32_t pcHash = 0;
        std::uint8_t triggerOffset = 0;
        std::uint32_t fetchedMask = 0;
        std::uint32_t touchedMask = 0;
        std::uint32_t residentMask = 0;
    };

    /** Tracked info for `page`, nullptr when no block is resident. */
    PageInfo *find(std::uint64_t page) { return pages_.find(page); }

    bool tracked(std::uint64_t page) const { return pages_.contains(page); }

    /** Start tracking a page at its trigger miss (replaces any stale
     *  entry for the same page). */
    PageInfo &
    insert(std::uint64_t page, const PageInfo &info)
    {
        return pages_.insertOrAssign(page, info);
    }

    /**
     * A block of `page` left the cache. Clears its resident bit; when
     * that was the last resident block, copies the page's info to
     * `out`, stops tracking it and returns true -- the caller trains
     * the footprint predictor (and charges whatever tag-reconstruction
     * traffic its organization implies).
     */
    bool
    removeBlock(std::uint64_t page, std::uint32_t offset, PageInfo &out)
    {
        PageInfo *info = pages_.find(page);
        if (info == nullptr)
            return false;
        info->residentMask &= ~(1u << offset);
        if (info->residentMask != 0)
            return false;
        out = *info;
        pages_.erase(page);
        return true;
    }

    std::size_t size() const { return pages_.size(); }

    void clear() { pages_.clear(); }

    /** Warm-state checkpoint. The table is serialized as a flat
     *  key/value vector in slot order: its only operations are keyed
     *  lookups, so the rebuilt table's slot layout cannot affect
     *  behaviour. */
    struct FlatEntry
    {
        std::uint64_t page;
        PageInfo info;
    };

    void
    saveState(StateWriter &out) const
    {
        std::vector<FlatEntry> flat;
        flat.reserve(pages_.size());
        pages_.forEach([&flat](std::uint64_t page, const PageInfo &info) {
            flat.push_back({page, info});
        });
        out.podVector(flat);
    }

    void
    loadState(StateReader &in)
    {
        std::vector<FlatEntry> flat;
        in.podVectorResize(flat);
        pages_.clear();
        pages_.reserve(flat.size());
        for (const FlatEntry &e : flat)
            pages_.insertOrAssign(e.page, e.info);
    }

  private:
    FlatU64Map<PageInfo> pages_;
};

} // namespace unison

#endif // UNISON_CACHE_PAGE_TRACKER_HH
