/**
 * @file
 * A generic set-associative, write-back, write-allocate SRAM cache
 * model with true LRU. Used for the per-core L1s and the shared L2
 * (Table III), and reused by tests as a reference cache.
 *
 * Only tags and state are modelled (no data payloads): the simulator
 * studies miss behaviour and timing, not values.
 */

#ifndef UNISON_CACHE_SRAM_CACHE_HH
#define UNISON_CACHE_SRAM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace unison {

/** Geometry of one SRAM cache. */
struct SramCacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t blockBytes = kBlockBytes;
};

/** Statistic counters for one SRAM cache. */
struct SramCacheStats
{
    Counter accesses;
    Counter hits;
    Counter misses;
    Counter evictions;
    Counter writebacks; //!< dirty evictions

    void
    reset()
    {
        accesses.reset();
        hits.reset();
        misses.reset();
        evictions.reset();
        writebacks.reset();
    }
};

/** Outcome of one access (allocate-on-miss). */
struct SramAccessResult
{
    bool hit = false;
    bool writeback = false; //!< a dirty victim was evicted
    Addr writebackAddr = 0; //!< block address of that victim
};

/** A generic set-associative write-back SRAM cache with LRU
 *  replacement -- the building block of the L1/L2 hierarchy. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const SramCacheConfig &config);

    /**
     * Access (and on miss, allocate) the block containing `addr`.
     * Writes mark the block dirty.
     */
    SramAccessResult access(Addr addr, bool is_write);

    /** True if the block is resident (no state change). */
    bool probe(Addr addr) const;

    /** Drop the block if resident; returns true if it was dirty. */
    bool invalidate(Addr addr);

    const SramCacheConfig &config() const { return config_; }
    const SramCacheStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    std::uint32_t numSets() const { return numSets_; }

  private:
    /**
     * One tag entry, packed to 16 bytes so an 8-way set spans two
     * cache lines of the *host* machine instead of three -- the tag
     * arrays are the simulator's hottest data by far. Valid and dirty
     * live in the top bits of `meta`; the tag occupies the low bits
     * (block addresses fit in well under 56 bits).
     */
    struct Line
    {
        static constexpr std::uint64_t kValid = 1ull << 63;
        static constexpr std::uint64_t kDirty = 1ull << 62;
        static constexpr std::uint64_t kTagMask = kDirty - 1;

        std::uint64_t meta = 0;
        /** LRU stamp. 32 bits bound one cache instance to ~4.2G
         *  accesses, far beyond the longest configured run. */
        std::uint32_t lastUse = 0;
        std::uint32_t pad = 0;

        bool valid() const { return (meta & kValid) != 0; }
        bool dirty() const { return (meta & kDirty) != 0; }
        std::uint64_t tag() const { return meta & kTagMask; }
    };
    static_assert(sizeof(Line) == 16, "tag entry no longer packed");

    Line *setBase(std::uint64_t set)
    {
        return &lines_[set * config_.assoc];
    }
    const Line *setBase(std::uint64_t set) const
    {
        return &lines_[set * config_.assoc];
    }

    SramCacheConfig config_;
    std::uint32_t numSets_;
    std::uint32_t blockShift_;
    std::uint32_t setShift_; //!< log2(numSets_), hoisted off the hot path
    std::vector<Line> lines_;
    /** Most-recently-hit way per set: checked first on access, which
     *  usually touches one host cache line instead of scanning the
     *  whole set (block repeats and bursts make MRU hits common). */
    std::vector<std::uint8_t> mru_;
    std::uint32_t useCounter_ = 0;
    SramCacheStats stats_;
};

} // namespace unison

#endif // UNISON_CACHE_SRAM_CACHE_HH
