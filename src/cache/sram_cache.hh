/**
 * @file
 * A generic set-associative, write-back, write-allocate SRAM cache
 * model with true LRU. Used for the per-core L1s and the shared L2
 * (Table III), and reused by tests as a reference cache.
 *
 * Only tags and state are modelled (no data payloads): the simulator
 * studies miss behaviour and timing, not values.
 */

#ifndef UNISON_CACHE_SRAM_CACHE_HH
#define UNISON_CACHE_SRAM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/set_scan.hh"
#include "cache/set_scan_simd.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace unison {

/** Geometry of one SRAM cache. */
struct SramCacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t blockBytes = kBlockBytes;
};

/** Statistic counters for one SRAM cache. */
struct SramCacheStats
{
    Counter accesses;
    Counter hits;
    Counter misses;
    Counter evictions;
    Counter writebacks; //!< dirty evictions

    void
    reset()
    {
        accesses.reset();
        hits.reset();
        misses.reset();
        evictions.reset();
        writebacks.reset();
    }
};

/** Outcome of one access (allocate-on-miss). */
struct SramAccessResult
{
    bool hit = false;
    bool writeback = false; //!< a dirty victim was evicted
    Addr writebackAddr = 0; //!< block address of that victim
};

/**
 * A generic set-associative write-back SRAM cache with LRU replacement
 * -- the building block of the L1/L2 hierarchy.
 *
 * The per-way metadata is struct-of-arrays: one contiguous array of
 * packed tag words (valid/dirty in the top bits, tag in the low bits;
 * an 8-way set's tags span exactly one 64 B host cache line) and a
 * parallel array of LRU stamps, both indexed `set * assoc + way`.
 * These are the simulator's hottest arrays by far, and the tag scan is
 * a branch-reduced compare over the packed words (see set_scan.hh),
 * entered through a most-recently-hit way hint.
 */
class SetAssocCache
{
  public:
    /** Packed tag word layout (the shared set_scan.hh positions). */
    static constexpr std::uint64_t kValid = kWayValidBit;
    static constexpr std::uint64_t kDirty = kWayDirtyBit;
    static constexpr std::uint64_t kTagMask = kWayTagMask;

    explicit SetAssocCache(const SramCacheConfig &config);

    /**
     * Access (and on miss, allocate) the block containing `addr`.
     * Writes mark the block dirty. Defined inline: this is the first
     * thing every simulated reference does, and it must inline into
     * the timing loop even without LTO.
     */
    SramAccessResult
    access(Addr addr, bool is_write)
    {
        return accessImpl<true>(addr, is_write);
    }

    /**
     * access() without the statistic bumps: the epoch-sharded engine's
     * producer threads run their cores' private L1s through this so
     * the worker threads never race on the shared counters; the commit
     * thread accounts the L1 totals itself from the outcomes.
     */
    SramAccessResult
    accessQuiet(Addr addr, bool is_write)
    {
        return accessImpl<false>(addr, is_write);
    }

    /** True if the block is resident (no state change). */
    bool probe(Addr addr) const;

    /** Drop the block if resident; returns true if it was dirty. */
    bool invalidate(Addr addr);

    /** Serialize / restore the full replacement state (tags, stamps,
     *  MRU hints, the stamp counter) for warm-state checkpoints.
     *  Statistics are not part of a checkpoint: measurement runs reset
     *  them at the warm boundary anyway. */
    void
    saveState(StateWriter &out) const
    {
        out.podVector(meta_);
        out.podVector(lastUse_);
        out.podVector(mru_);
        out.pod(useCounter_);
    }

    void
    loadState(StateReader &in)
    {
        in.podVectorExact(meta_);
        in.podVectorExact(lastUse_);
        in.podVectorExact(mru_);
        in.pod(useCounter_);
    }

    const SramCacheConfig &config() const { return config_; }
    const SramCacheStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    std::uint32_t numSets() const { return numSets_; }

  private:
    template <bool CountStats>
    SramAccessResult
    accessImpl(Addr addr, bool is_write)
    {
        if constexpr (CountStats)
            ++stats_.accesses;
        const std::uint64_t block = addr >> blockShift_;
        const std::uint64_t set = block & (numSets_ - 1);
        const std::uint64_t tag = block >> setShift_;
        const std::uint64_t key = kValid | tag;
        const std::size_t base = set * config_.assoc;
        std::uint64_t *const tags = &meta_[base];

        SramAccessResult result;
        // MRU fast path. A hit on the hinted way needs no restamp: the
        // most recently touched way of a set by construction holds the
        // set's maximum LRU stamp, and victim selection compares
        // stamps only within a set, so skipping the write (and the
        // global counter bump) leaves every eviction decision
        // bit-identical while touching one cache line instead of two.
        const std::uint32_t mru = mru_[set];
        if ((tags[mru] & ~kDirty) == key) {
            if constexpr (CountStats)
                ++stats_.hits;
            if (is_write)
                tags[mru] |= kDirty;
            result.hit = true;
            return result;
        }

        // One fused sweep finds the hit way and, failing that, the
        // victim the miss path needs (invalid first, else LRU).
        int way;
        std::uint32_t victim;
        scanSetFast(tags, &lastUse_[base], config_.assoc, ~kDirty, key,
                    kValid, way, victim);
        if (way >= 0) {
            if constexpr (CountStats)
                ++stats_.hits;
            lastUse_[base + way] = ++useCounter_;
            if (is_write)
                tags[way] |= kDirty;
            mru_[set] = static_cast<std::uint8_t>(way);
            result.hit = true;
            return result;
        }
        const std::uint64_t old = tags[victim];
        if (old != 0) {
            if constexpr (CountStats)
                ++stats_.evictions;
            if ((old & kDirty) != 0) {
                if constexpr (CountStats)
                    ++stats_.writebacks;
                result.writeback = true;
                const std::uint64_t victim_block =
                    ((old & kTagMask) << setShift_) | set;
                result.writebackAddr = victim_block << blockShift_;
            }
        }
        if constexpr (CountStats)
            ++stats_.misses;
        tags[victim] = key | (is_write ? kDirty : 0);
        lastUse_[base + victim] = ++useCounter_;
        mru_[set] = static_cast<std::uint8_t>(victim);
        return result;
    }

    SramCacheConfig config_;
    std::uint32_t numSets_;
    std::uint32_t blockShift_;
    std::uint32_t setShift_; //!< log2(numSets_), hoisted off the hot path
    /** Packed tag words, `set * assoc + way` (kValid | kDirty | tag). */
    std::vector<std::uint64_t> meta_;
    /** LRU stamps, same indexing. 32 bits bound one cache instance to
     *  ~4.2G accesses, far beyond the longest configured run. */
    std::vector<std::uint32_t> lastUse_;
    /** Most-recently-hit way per set: probed first on access. */
    std::vector<std::uint8_t> mru_;
    std::uint32_t useCounter_ = 0;
    SramCacheStats stats_;
};

} // namespace unison

#endif // UNISON_CACHE_SRAM_CACHE_HH
