#include "cache/sram_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

SetAssocCache::SetAssocCache(const SramCacheConfig &config)
    : config_(config)
{
    UNISON_ASSERT(config_.assoc >= 1, config_.name, ": assoc must be >=1");
    UNISON_ASSERT(config_.assoc <= 256, config_.name, ": assoc too large");
    UNISON_ASSERT(isPowerOfTwo(config_.blockBytes),
                  config_.name, ": block size must be a power of two");
    const std::uint64_t blocks = config_.sizeBytes / config_.blockBytes;
    UNISON_ASSERT(blocks >= config_.assoc,
                  config_.name, ": cache smaller than one set");
    UNISON_ASSERT(blocks % config_.assoc == 0,
                  config_.name, ": size not divisible by assoc");
    numSets_ = static_cast<std::uint32_t>(blocks / config_.assoc);
    UNISON_ASSERT(isPowerOfTwo(numSets_),
                  config_.name, ": set count must be a power of two");
    blockShift_ = exactLog2(config_.blockBytes);
    setShift_ = exactLog2(numSets_);
    meta_.assign(blocks, 0);
    lastUse_.assign(blocks, 0);
    mru_.assign(numSets_, 0);
}

bool
SetAssocCache::probe(Addr addr) const
{
    const std::uint64_t block = addr >> blockShift_;
    const std::uint64_t set = block & (numSets_ - 1);
    const std::uint64_t tag = block >> setShift_;
    return scanWaysMruFast(&meta_[set * config_.assoc], config_.assoc,
                           ~kDirty, kValid | tag, mru_[set]) >= 0;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::uint64_t block = addr >> blockShift_;
    const std::uint64_t set = block & (numSets_ - 1);
    const std::uint64_t tag = block >> setShift_;
    const std::size_t base = set * config_.assoc;
    const int way = scanWaysMruFast(&meta_[base], config_.assoc,
                                    ~kDirty, kValid | tag, mru_[set]);
    if (way < 0)
        return false;
    const bool was_dirty = (meta_[base + way] & kDirty) != 0;
    meta_[base + way] = 0;
    return was_dirty;
}

} // namespace unison
