#include "cache/sram_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

SetAssocCache::SetAssocCache(const SramCacheConfig &config)
    : config_(config)
{
    UNISON_ASSERT(config_.assoc >= 1, config_.name, ": assoc must be >=1");
    UNISON_ASSERT(config_.assoc <= 256, config_.name, ": assoc too large");
    UNISON_ASSERT(isPowerOfTwo(config_.blockBytes),
                  config_.name, ": block size must be a power of two");
    const std::uint64_t blocks = config_.sizeBytes / config_.blockBytes;
    UNISON_ASSERT(blocks >= config_.assoc,
                  config_.name, ": cache smaller than one set");
    UNISON_ASSERT(blocks % config_.assoc == 0,
                  config_.name, ": size not divisible by assoc");
    numSets_ = static_cast<std::uint32_t>(blocks / config_.assoc);
    UNISON_ASSERT(isPowerOfTwo(numSets_),
                  config_.name, ": set count must be a power of two");
    blockShift_ = exactLog2(config_.blockBytes);
    setShift_ = exactLog2(numSets_);
    lines_.resize(blocks);
    mru_.resize(numSets_, 0);
}

SramAccessResult
SetAssocCache::access(Addr addr, bool is_write)
{
    ++stats_.accesses;
    const std::uint64_t block = addr >> blockShift_;
    const std::uint64_t set = block & (numSets_ - 1);
    const std::uint64_t tag = block >> setShift_;

    Line *base = setBase(set);
    SramAccessResult result;

    // Fast path: the most-recently-hit way of this set.
    Line &mru_line = base[mru_[set]];
    if ((mru_line.meta & ~Line::kDirty) == (Line::kValid | tag)) {
        ++stats_.hits;
        mru_line.lastUse = ++useCounter_;
        if (is_write)
            mru_line.meta |= Line::kDirty;
        result.hit = true;
        return result;
    }

    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if ((line.meta & ~Line::kDirty) == (Line::kValid | tag)) {
            ++stats_.hits;
            line.lastUse = ++useCounter_;
            if (is_write)
                line.meta |= Line::kDirty;
            mru_[set] = static_cast<std::uint8_t>(w);
            result.hit = true;
            return result;
        }
    }

    // Miss: pick an invalid way if one exists, else the LRU way.
    Line *victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid()) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }

    ++stats_.misses;
    if (victim->valid()) {
        ++stats_.evictions;
        if (victim->dirty()) {
            ++stats_.writebacks;
            result.writeback = true;
            const std::uint64_t victim_block =
                (victim->tag() << setShift_) | set;
            result.writebackAddr = victim_block << blockShift_;
        }
    }
    victim->meta = Line::kValid | tag | (is_write ? Line::kDirty : 0);
    victim->lastUse = ++useCounter_;
    mru_[set] = static_cast<std::uint8_t>(victim - base);
    return result;
}

bool
SetAssocCache::probe(Addr addr) const
{
    const std::uint64_t block = addr >> blockShift_;
    const std::uint64_t set = block & (numSets_ - 1);
    const std::uint64_t tag = block >> setShift_;
    const Line *base = setBase(set);
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if ((base[w].meta & ~Line::kDirty) == (Line::kValid | tag))
            return true;
    }
    return false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::uint64_t block = addr >> blockShift_;
    const std::uint64_t set = block & (numSets_ - 1);
    const std::uint64_t tag = block >> setShift_;
    Line *base = setBase(set);
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if ((base[w].meta & ~Line::kDirty) == (Line::kValid | tag)) {
            const bool was_dirty = base[w].dirty();
            base[w].meta = 0;
            return was_dirty;
        }
    }
    return false;
}

} // namespace unison
