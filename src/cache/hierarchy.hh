/**
 * @file
 * The on-chip SRAM hierarchy of the baseline CMP (Table III): private
 * 64 KB L1 data caches per core and a shared 4 MB 16-way L2. The DRAM
 * cache under study sits *below* this hierarchy, so it sees exactly the
 * L2 miss and L2 writeback streams -- which is why, as the paper notes,
 * little temporal locality survives to the DRAM cache level.
 */

#ifndef UNISON_CACHE_HIERARCHY_HH
#define UNISON_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/sram_cache.hh"
#include "common/types.hh"

namespace unison {

/** Geometry + latency knobs for the SRAM levels (Table III defaults). */
struct HierarchyConfig
{
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint32_t l1Assoc = 8;
    Cycle l1Latency = 2;   //!< load-to-use

    std::uint64_t l2Bytes = 4 * 1024 * 1024;
    std::uint32_t l2Assoc = 16;
    Cycle l2Latency = 13;  //!< hit latency
};

/**
 * What one core reference did to the SRAM levels. Everything the DRAM
 * cache must service is reported here: at most one demand miss and up
 * to two dirty-block writebacks (L2 demand-fill victim and the victim
 * of an L1-writeback allocation).
 */
struct HierarchyOutcome
{
    /** Deepest level that had to be consulted. */
    enum class Level { L1, L2, Beyond };

    Level level = Level::L1;

    /** SRAM-only latency component (L1, or L1+L2 probe). */
    Cycle sramLatency = 0;

    /** Dirty blocks pushed out to the DRAM-cache level. */
    int numWritebacks = 0;
    Addr writebackAddr[2] = {0, 0};
};

/** Per-core L1s in front of one shared L2. */
class CacheHierarchy
{
  public:
    CacheHierarchy(int num_cores, const HierarchyConfig &config);

    /** Run one reference through L1 and (if needed) L2. */
    HierarchyOutcome access(int core, Addr addr, bool is_write);

    const SetAssocCache &l1(int core) const { return *l1s_[core]; }
    const SetAssocCache &l2() const { return *l2_; }
    const HierarchyConfig &config() const { return config_; }

    void resetStats();

  private:
    /** Insert a dirty L1 victim into the L2 (write-allocate). */
    void writebackToL2(Addr addr, HierarchyOutcome &outcome);

    HierarchyConfig config_;
    std::vector<std::unique_ptr<SetAssocCache>> l1s_;
    std::unique_ptr<SetAssocCache> l2_;
};

} // namespace unison

#endif // UNISON_CACHE_HIERARCHY_HH
