/**
 * @file
 * The on-chip SRAM hierarchy of the baseline CMP (Table III): private
 * 64 KB L1 data caches per core and a shared 4 MB 16-way L2. The DRAM
 * cache under study sits *below* this hierarchy, so it sees exactly the
 * L2 miss and L2 writeback streams -- which is why, as the paper notes,
 * little temporal locality survives to the DRAM cache level.
 */

#ifndef UNISON_CACHE_HIERARCHY_HH
#define UNISON_CACHE_HIERARCHY_HH

#include <vector>

#include "cache/sram_cache.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace unison {

/** Geometry + latency knobs for the SRAM levels (Table III defaults). */
struct HierarchyConfig
{
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint32_t l1Assoc = 8;
    Cycle l1Latency = 2;   //!< load-to-use

    std::uint64_t l2Bytes = 4 * 1024 * 1024;
    std::uint32_t l2Assoc = 16;
    Cycle l2Latency = 13;  //!< hit latency
};

/**
 * What one core reference did to the SRAM levels. Everything the DRAM
 * cache must service is reported here: at most one demand miss and up
 * to two dirty-block writebacks (L2 demand-fill victim and the victim
 * of an L1-writeback allocation).
 */
struct HierarchyOutcome
{
    /** Deepest level that had to be consulted. */
    enum class Level { L1, L2, Beyond };

    Level level = Level::L1;

    /** SRAM-only latency component (L1, or L1+L2 probe). */
    Cycle sramLatency = 0;

    /** Dirty blocks pushed out to the DRAM-cache level. */
    int numWritebacks = 0;
    Addr writebackAddr[2] = {0, 0};
};

/**
 * Per-core L1s in front of one shared L2. The caches are stored by
 * value (no per-access pointer chase), and access() is inline: it is
 * the front door of every simulated reference.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(int num_cores, const HierarchyConfig &config);

    /** Run one reference through L1 and (if needed) L2. */
    HierarchyOutcome
    access(int core, Addr addr, bool is_write)
    {
        UNISON_ASSERT(core >= 0 && core < static_cast<int>(l1s_.size()),
                      "core ", core, " out of range");
        const SramAccessResult l1res = l1s_[core].access(addr, is_write);
        return finishAccess(l1res, addr, is_write);
    }

    /**
     * The shared-level half of access(): everything after the private
     * L1 probe. The epoch-sharded engine's producer threads run the L1
     * half themselves (each L1's evolution depends only on its own
     * core's stream) and its commit thread replays the recorded L1
     * outcome through this, in exactly the order the serial engine
     * would have -- which is the whole determinism argument.
     */
    HierarchyOutcome
    finishAccess(const SramAccessResult &l1res, Addr addr, bool is_write)
    {
        HierarchyOutcome outcome;
        if (l1res.hit) {
            outcome.level = HierarchyOutcome::Level::L1;
            outcome.sramLatency = config_.l1Latency;
            return outcome;
        }
        // L1 miss: a dirty L1 victim is written back into the L2 first.
        if (l1res.writeback)
            writebackToL2(l1res.writebackAddr, outcome);

        const SramAccessResult l2res = l2_.access(addr, is_write);
        if (l2res.writeback) {
            UNISON_ASSERT(outcome.numWritebacks < 2,
                          "more than two writebacks from one reference");
            outcome.writebackAddr[outcome.numWritebacks++] =
                l2res.writebackAddr;
        }

        if (l2res.hit) {
            outcome.level = HierarchyOutcome::Level::L2;
            outcome.sramLatency = config_.l1Latency + config_.l2Latency;
            return outcome;
        }

        outcome.level = HierarchyOutcome::Level::Beyond;
        outcome.sramLatency = config_.l1Latency + config_.l2Latency;
        return outcome;
    }

    const SetAssocCache &l1(int core) const { return l1s_[core]; }
    const SetAssocCache &l2() const { return l2_; }
    const HierarchyConfig &config() const { return config_; }

    /** Mutable L1 handle for the engine's producer threads (each one
     *  owns a disjoint core shard, so there is no sharing to police
     *  beyond that ownership). */
    SetAssocCache &l1Front(int core) { return l1s_[core]; }

    /** Warm-state checkpoint of every SRAM level (see state_io.hh). */
    void
    saveState(StateWriter &out) const
    {
        for (const SetAssocCache &l1 : l1s_)
            l1.saveState(out);
        l2_.saveState(out);
    }

    void
    loadState(StateReader &in)
    {
        for (SetAssocCache &l1 : l1s_)
            l1.loadState(in);
        l2_.loadState(in);
    }

    void resetStats();

  private:
    /** Insert a dirty L1 victim into the L2 (write-allocate). */
    void
    writebackToL2(Addr addr, HierarchyOutcome &outcome)
    {
        const SramAccessResult res = l2_.access(addr, /*is_write=*/true);
        if (res.writeback) {
            UNISON_ASSERT(outcome.numWritebacks < 2,
                          "more than two writebacks from one reference");
            outcome.writebackAddr[outcome.numWritebacks++] =
                res.writebackAddr;
        }
    }

    static SramCacheConfig l1Config(const HierarchyConfig &config, int core);
    static SramCacheConfig l2Config(const HierarchyConfig &config);

    HierarchyConfig config_;
    std::vector<SetAssocCache> l1s_;
    SetAssocCache l2_;
};

} // namespace unison

#endif // UNISON_CACHE_HIERARCHY_HH
