/**
 * @file
 * The CacheOrganization layer of the DRAM-cache policy framework: how
 * a byte address maps onto the stacked array's frames, and where the
 * tags that answer "is it here?" live. Every design in the repo is a
 * composition of one of these organizations with a fetch policy
 * (predictors/fetch_policy.hh) and the shared fill/writeback engines
 * (core/fill_engine.hh); the organizations own the packed-SoA tag
 * state and the branch-reduced scans from cache/set_scan.hh.
 *
 * Three tag granularities cover the whole design space of the paper:
 *
 *  - PageOrganization: page-granular frames in set-associative sets
 *    (Unison Cache, Footprint Cache; associativity 1 degenerates to
 *    the direct-mapped tagged-page straw man);
 *  - DirectOrganization: direct-mapped block frames with one packed
 *    tag word each (Alloy Cache, the naive block+FP splice, and the
 *    composed alloy-fp hybrid);
 *  - RowSetOrganization: one DRAM row per set with a wide way array
 *    (the Loh-Hill organization).
 *
 * None of these charge any timing: *where* tags live decides what the
 * design's access path must read, and that is the design's own
 * composition logic. The organizations only answer lookup, victim and
 * install questions over their metadata arrays.
 */

#ifndef UNISON_CACHE_ORGANIZATION_HH
#define UNISON_CACHE_ORGANIZATION_HH

#include <cstdint>
#include <vector>

#include "cache/page_set.hh"
#include "cache/set_scan.hh"
#include "cache/set_scan_simd.hh"
#include "common/fastdiv.hh"
#include "common/state_io.hh"
#include "common/types.hh"

namespace unison {

/** Where a byte address falls in a page-organized cache. */
struct PageLocation
{
    std::uint64_t page = 0;   //!< global page number
    std::uint32_t offset = 0; //!< block offset within the page
    std::uint64_t set = 0;
    std::uint32_t tag = 0;
};

/**
 * Page-granular, set-associative organization: `numSets * assoc` page
 * frames whose per-way metadata (packed tag words, footprint masks,
 * LRU stamps, trigger PCs) lives in the hot/cold-split PageWaySoa.
 * The page split and the set split both use invariant-divisor
 * reciprocals, so non-power-of-two page sizes (15/31 blocks) cost the
 * same as the power-of-two ones.
 */
class PageOrganization
{
  public:
    PageOrganization() = default;

    void
    init(std::uint32_t page_blocks, std::uint64_t num_sets,
         std::uint32_t assoc)
    {
        pageBlocks_ = page_blocks;
        numSets_ = num_sets;
        assoc_ = assoc;
        pageDiv_.init(page_blocks);
        numSetsDiv_.init(num_sets);
        ways_.resize(num_sets * assoc);
    }

    /** Page number and in-page block offset for a byte address. */
    void
    mapAddress(Addr addr, std::uint64_t &page,
               std::uint32_t &offset) const
    {
        std::uint64_t q, r;
        pageDiv_.divMod(blockNumber(addr), q, r);
        page = q;
        offset = static_cast<std::uint32_t>(r);
    }

    PageLocation
    locate(Addr addr) const
    {
        PageLocation loc;
        mapAddress(addr, loc.page, loc.offset);
        std::uint64_t q, r;
        numSetsDiv_.divMod(loc.page, q, r);
        loc.set = r;
        loc.tag = static_cast<std::uint32_t>(q);
        return loc;
    }

    /** Inverse of locate's set split: the global page number of the
     *  page resident in (set, way). */
    std::uint64_t
    pageOf(std::uint64_t set, std::uint32_t way) const
    {
        return ways_.tag(setBase(set) + way) * numSets_ + set;
    }

    /** Base SoA index of `set` (way fields live at base + way). */
    std::size_t
    setBase(std::uint64_t set) const
    {
        return static_cast<std::size_t>(set) * assoc_;
    }

    /** Way of `set` holding page tag `tag`, or -1 (absent). */
    int
    findWay(std::uint64_t set, std::uint32_t tag) const
    {
        return ways_.findWay(setBase(set), assoc_, tag);
    }

    /** Victim way of `set`: an invalid way if any, else LRU. */
    int
    pickVictim(std::uint64_t set) const
    {
        return static_cast<int>(ways_.pickVictim(setBase(set), assoc_));
    }

    std::uint32_t pageBlocks() const { return pageBlocks_; }
    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    PageWaySoa &ways() { return ways_; }
    const PageWaySoa &ways() const { return ways_; }

    /** Warm-state checkpoint of the per-way metadata arrays. */
    void saveState(StateWriter &out) const { ways_.saveState(out); }
    void loadState(StateReader &in) { ways_.loadState(in); }

  private:
    std::uint32_t pageBlocks_ = 1;
    std::uint64_t numSets_ = 1;
    std::uint32_t assoc_ = 1;
    /** Page split (block -> page, offset). The modelled hardware uses
     *  the MersenneDivider adder tree for its 2^n - 1 page sizes; the
     *  simulator computes the identical mapping with a reciprocal
     *  multiply, which also covers non-Mersenne ablation page sizes. */
    FastDiv64 pageDiv_;
    FastDiv64 numSetsDiv_;
    PageWaySoa ways_;
};

/**
 * Direct-mapped block organization: one packed 64-bit tag word per
 * frame (valid/dirty folded into the top bits, set_scan.hh layout), so
 * the whole lookup is a single 8-byte load and masked compare.
 */
class DirectOrganization
{
  public:
    DirectOrganization() = default;

    void
    init(std::uint64_t num_frames)
    {
        numFrames_ = num_frames;
        numFramesDiv_.init(num_frames);
        words_.assign(num_frames, 0);
    }

    /** Frame and tag of a global block number. */
    void
    locate(std::uint64_t block, std::uint64_t &frame,
           std::uint32_t &tag) const
    {
        std::uint64_t q;
        numFramesDiv_.divMod(block, q, frame);
        tag = static_cast<std::uint32_t>(q);
    }

    /** Global block number resident in `frame` (from its tag word). */
    std::uint64_t
    blockOf(std::uint64_t frame) const
    {
        return (words_[frame] & kWayTagMask) * numFrames_ + frame;
    }

    bool
    present(std::uint64_t frame, std::uint32_t tag) const
    {
        return (words_[frame] & ~kWayDirtyBit) == (kWayValidBit | tag);
    }

    std::uint64_t &word(std::uint64_t frame) { return words_[frame]; }
    const std::uint64_t &
    word(std::uint64_t frame) const
    {
        return words_[frame];
    }

    std::uint64_t numFrames() const { return numFrames_; }

    /** Warm-state checkpoint of the packed tag words. */
    void saveState(StateWriter &out) const { out.podVector(words_); }
    void loadState(StateReader &in) { in.podVectorExact(words_); }

  private:
    std::uint64_t numFrames_ = 1;
    FastDiv64 numFramesDiv_;
    /** One packed word per direct-mapped frame. */
    std::vector<std::uint64_t> words_;
};

/**
 * Row-as-set organization (Loh-Hill): every DRAM row is one very wide
 * set (113 ways of 8 B tag + 64 B data); packed tag words and LRU
 * stamps live in two parallel arrays indexed `set * waysPerSet + way`.
 */
class RowSetOrganization
{
  public:
    RowSetOrganization() = default;

    void
    init(std::uint64_t num_sets, std::uint32_t ways_per_set)
    {
        numSets_ = num_sets;
        waysPerSet_ = ways_per_set;
        numSetsDiv_.init(num_sets);
        tagv_.assign(num_sets * ways_per_set, 0);
        lastUse_.assign(num_sets * ways_per_set, 0);
    }

    /** Set and tag of a global block number. */
    void
    locate(std::uint64_t block, std::uint64_t &set,
           std::uint32_t &tag) const
    {
        std::uint64_t q;
        numSetsDiv_.divMod(block, q, set);
        tag = static_cast<std::uint32_t>(q);
    }

    /** Global block number resident in (set, way). */
    std::uint64_t
    blockOf(std::uint64_t set, std::uint32_t way) const
    {
        return (tagv_[base(set) + way] & kWayTagMask) * numSets_ + set;
    }

    std::size_t
    base(std::uint64_t set) const
    {
        return static_cast<std::size_t>(set) * waysPerSet_;
    }

    int
    findWay(std::uint64_t set, std::uint32_t tag) const
    {
        return scanWaysFast(&tagv_[base(set)], waysPerSet_,
                            ~kWayDirtyBit, kWayValidBit | tag);
    }

    int
    pickVictim(std::uint64_t set) const
    {
        const std::size_t b = base(set);
        return static_cast<int>(pickVictimWayFast(
            &tagv_[b], &lastUse_[b], waysPerSet_, kWayValidBit));
    }

    std::uint64_t &tagWord(std::size_t idx) { return tagv_[idx]; }
    const std::uint64_t &
    tagWord(std::size_t idx) const
    {
        return tagv_[idx];
    }
    std::uint32_t &lastUse(std::size_t idx) { return lastUse_[idx]; }

    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t waysPerSet() const { return waysPerSet_; }

    /** Warm-state checkpoint of the tag and LRU arrays. */
    void
    saveState(StateWriter &out) const
    {
        out.podVector(tagv_);
        out.podVector(lastUse_);
    }

    void
    loadState(StateReader &in)
    {
        in.podVectorExact(tagv_);
        in.podVectorExact(lastUse_);
    }

  private:
    std::uint64_t numSets_ = 1;
    std::uint32_t waysPerSet_ = 1;
    FastDiv64 numSetsDiv_;
    std::vector<std::uint64_t> tagv_;
    std::vector<std::uint32_t> lastUse_;
};

} // namespace unison

#endif // UNISON_CACHE_ORGANIZATION_HH
