#include "cache/hierarchy.hh"

#include <string>

namespace unison {

SramCacheConfig
CacheHierarchy::l1Config(const HierarchyConfig &config, int core)
{
    SramCacheConfig cfg;
    cfg.name = "l1d" + std::to_string(core);
    cfg.sizeBytes = config.l1Bytes;
    cfg.assoc = config.l1Assoc;
    return cfg;
}

SramCacheConfig
CacheHierarchy::l2Config(const HierarchyConfig &config)
{
    SramCacheConfig cfg;
    cfg.name = "l2";
    cfg.sizeBytes = config.l2Bytes;
    cfg.assoc = config.l2Assoc;
    return cfg;
}

CacheHierarchy::CacheHierarchy(int num_cores, const HierarchyConfig &config)
    : config_(config), l2_(l2Config(config))
{
    UNISON_ASSERT(num_cores >= 1, "hierarchy needs >= 1 core");
    l1s_.reserve(num_cores);
    for (int c = 0; c < num_cores; ++c)
        l1s_.emplace_back(l1Config(config, c));
}

void
CacheHierarchy::resetStats()
{
    for (SetAssocCache &l1 : l1s_)
        l1.resetStats();
    l2_.resetStats();
}

} // namespace unison
