#include "cache/hierarchy.hh"

#include "common/logging.hh"

namespace unison {

CacheHierarchy::CacheHierarchy(int num_cores, const HierarchyConfig &config)
    : config_(config)
{
    UNISON_ASSERT(num_cores >= 1, "hierarchy needs >= 1 core");
    l1s_.reserve(num_cores);
    for (int c = 0; c < num_cores; ++c) {
        SramCacheConfig l1cfg;
        l1cfg.name = "l1d" + std::to_string(c);
        l1cfg.sizeBytes = config_.l1Bytes;
        l1cfg.assoc = config_.l1Assoc;
        l1s_.push_back(std::make_unique<SetAssocCache>(l1cfg));
    }
    SramCacheConfig l2cfg;
    l2cfg.name = "l2";
    l2cfg.sizeBytes = config_.l2Bytes;
    l2cfg.assoc = config_.l2Assoc;
    l2_ = std::make_unique<SetAssocCache>(l2cfg);
}

void
CacheHierarchy::writebackToL2(Addr addr, HierarchyOutcome &outcome)
{
    const SramAccessResult res = l2_->access(addr, /*is_write=*/true);
    if (res.writeback) {
        UNISON_ASSERT(outcome.numWritebacks < 2,
                      "more than two writebacks from one reference");
        outcome.writebackAddr[outcome.numWritebacks++] = res.writebackAddr;
    }
}

HierarchyOutcome
CacheHierarchy::access(int core, Addr addr, bool is_write)
{
    UNISON_ASSERT(core >= 0 && core < static_cast<int>(l1s_.size()),
                  "core ", core, " out of range");
    HierarchyOutcome outcome;

    const SramAccessResult l1res = l1s_[core]->access(addr, is_write);
    if (l1res.hit) {
        outcome.level = HierarchyOutcome::Level::L1;
        outcome.sramLatency = config_.l1Latency;
        return outcome;
    }
    // L1 miss: a dirty L1 victim is written back into the L2 first.
    if (l1res.writeback)
        writebackToL2(l1res.writebackAddr, outcome);

    const SramAccessResult l2res = l2_->access(addr, is_write);
    if (l2res.writeback) {
        UNISON_ASSERT(outcome.numWritebacks < 2,
                      "more than two writebacks from one reference");
        outcome.writebackAddr[outcome.numWritebacks++] =
            l2res.writebackAddr;
    }

    if (l2res.hit) {
        outcome.level = HierarchyOutcome::Level::L2;
        outcome.sramLatency = config_.l1Latency + config_.l2Latency;
        return outcome;
    }

    outcome.level = HierarchyOutcome::Level::Beyond;
    outcome.sramLatency = config_.l1Latency + config_.l2Latency;
    return outcome;
}

void
CacheHierarchy::resetStats()
{
    for (auto &l1 : l1s_)
        l1->resetStats();
    l2_->resetStats();
}

} // namespace unison
