/**
 * @file
 * Branch-reduced scans over packed per-set tag arrays.
 *
 * Every cache model in the simulator keeps its per-set way metadata as
 * struct-of-arrays: one contiguous array of packed 64-bit tag words
 * (valid/dirty folded into the top bits, the tag in the low bits)
 * indexed by `set * assoc + way`, with the cold per-way fields (LRU
 * stamps, footprint masks, trigger PCs) in parallel arrays of their
 * own. A 4-way tag scan then touches 32 contiguous bytes -- half a
 * host cache line -- instead of pointer-chasing way objects, and the
 * compare loop below compiles to conditional moves instead of a
 * mispredicting early-exit branch per way.
 */

#ifndef UNISON_CACHE_SET_SCAN_HH
#define UNISON_CACHE_SET_SCAN_HH

#include <cstdint>

namespace unison {

/**
 * Shared packed tag-word layout: valid in bit 63, dirty (for caches
 * that fold it in) in bit 62, the tag in the low bits. Every cache
 * model's packed words use these positions, so the layout has one
 * source of truth next to the scans that interpret it.
 */
inline constexpr std::uint64_t kWayValidBit = 1ull << 63;
inline constexpr std::uint64_t kWayDirtyBit = 1ull << 62;
inline constexpr std::uint64_t kWayTagMask = kWayDirtyBit - 1;

/**
 * Find the way whose packed tag word matches `key` under `mask`:
 * returns the first `w < assoc` with `(tags[w] & mask) == key`, or -1.
 *
 * Tag words within a set are unique, so at most one way matches; the
 * ternary accumulation keeps the scan branchless (cmov chain) for the
 * small associativities (1-32) the designs use.
 */
inline int
scanWays(const std::uint64_t *tags, std::uint32_t assoc,
         std::uint64_t mask, std::uint64_t key)
{
    int hit = -1;
    for (std::uint32_t w = assoc; w-- > 0;)
        hit = (tags[w] & mask) == key ? static_cast<int>(w) : hit;
    return hit;
}

/**
 * scanWays with a most-recently-hit way hint probed first: block
 * repeats and bursty reuse make the hint hit often, and a hint hit
 * touches exactly one tag word.
 */
inline int
scanWaysMru(const std::uint64_t *tags, std::uint32_t assoc,
            std::uint64_t mask, std::uint64_t key, std::uint32_t mru)
{
    if ((tags[mru] & mask) == key)
        return static_cast<int>(mru);
    return scanWays(tags, assoc, mask, key);
}

/**
 * Victim-order key of one way: `invalid ? w : 2^63 | stamp << 8 | w`.
 * The replacement order every design here uses -- first invalid way,
 * else smallest stamp, lowest way on stamp ties -- becomes a plain
 * unsigned min over these keys, and the winning way index rides in the
 * low byte (which caps supported associativity at 256 ways; the widest
 * organization, Loh-Hill's row set, uses 113). Keys within a set are
 * unique because of that low byte, so the min is order-independent --
 * which is what lets the scalar and SIMD scans below, and the strided
 * page-set victim scan, all share this one definition.
 */
inline std::uint64_t
victimOrderKey(std::uint64_t word, std::uint32_t stamp, std::uint32_t w,
               std::uint64_t valid_bit)
{
    return (word & valid_bit) != 0
               ? (1ull << 63) | (static_cast<std::uint64_t>(stamp) << 8) |
                     w
               : w;
}

/**
 * One fused pass over a set: the hit way under (mask, key), and the
 * victim the miss path would evict (victimOrderKey min), so hit search
 * and victim selection share one sweep of the packed tag words instead
 * of two. The loop runs descending so the *lowest* matching way wins
 * -- the same answer scanWays gives -- which only matters for
 * synthetic duplicate-tag inputs (the property tests exercise them;
 * live sets never hold duplicates); the victim min is
 * order-independent.
 */
inline void
scanSet(const std::uint64_t *tags, const std::uint32_t *last_use,
        std::uint32_t assoc, std::uint64_t mask, std::uint64_t key,
        std::uint64_t valid_bit, int &hit_way, std::uint32_t &victim_way)
{
    int hit = -1;
    std::uint64_t best = ~0ull;
    for (std::uint32_t w = assoc; w-- > 0;) {
        const std::uint64_t word = tags[w];
        hit = (word & mask) == key ? static_cast<int>(w) : hit;
        const std::uint64_t vk =
            victimOrderKey(word, last_use[w], w, valid_bit);
        best = vk < best ? vk : best;
    }
    hit_way = hit;
    victim_way = static_cast<std::uint32_t>(best & 255);
}

/**
 * Victim selection over packed tags + LRU stamps: the first way whose
 * `valid_bit` is clear, else the way with the smallest stamp (first
 * one wins ties). Same branchless victimOrderKey min as scanSet's
 * fused victim half -- an invalid way's key is just its index, below
 * every valid key, so the min lands on the lowest invalid way exactly
 * as the old early-exit loop did.
 */
inline std::uint32_t
pickVictimWay(const std::uint64_t *tags, const std::uint32_t *last_use,
              std::uint32_t assoc, std::uint64_t valid_bit)
{
    std::uint64_t best = ~0ull;
    for (std::uint32_t w = assoc; w-- > 0;) {
        const std::uint64_t vk =
            victimOrderKey(tags[w], last_use[w], w, valid_bit);
        best = vk < best ? vk : best;
    }
    return static_cast<std::uint32_t>(best & 255);
}

} // namespace unison

#endif // UNISON_CACHE_SET_SCAN_HH
