/**
 * @file
 * Set metadata for page-granular cache frames (Unison Cache,
 * Footprint Cache, and the tagged-page straw man share the same
 * per-way record: tag, trigger PC, footprint bit vectors, LRU stamp).
 *
 * The layout is three parallel arrays indexed `set * assoc + way`,
 * split by access temperature -- on multi-MB metadata that misses the
 * host cache, the number of distinct lines a hit touches is what the
 * simulator's speed is made of:
 *
 *  - `tagv`: packed 64-bit tag words alone, so the hot lookup --
 *    "which way of this set holds page tag T?" -- sweeps contiguous
 *    8-byte loads (a 4-way set's tags are half a host cache line);
 *  - `hot`: the four fields every hit updates (fetched/touched/dirty
 *    masks + LRU stamp), 16 bytes, so a 4-way set's hit state is one
 *    64-byte line;
 *  - `cold`: fields read or written only at allocation and eviction
 *    (trigger PC, predicted mask, trigger offset, stats generation).
 *
 * (A fully exploded struct-of-arrays -- one array per field -- was
 * measured slower: five separate mask arrays meant five lines dirtied
 * per hit.)
 */

#ifndef UNISON_CACHE_PAGE_SET_HH
#define UNISON_CACHE_PAGE_SET_HH

#include <cstdint>
#include <vector>

#include "cache/set_scan.hh"
#include "cache/set_scan_simd.hh"
#include "common/state_io.hh"

namespace unison {

/** Per-way fields every hit touches (one 64 B line per 4-way set). */
struct PageWayHot
{
    std::uint32_t fetched = 0;   //!< valid blocks
    std::uint32_t touched = 0;   //!< demanded blocks
    std::uint32_t dirty = 0;     //!< dirty blocks
    std::uint32_t lastUse = 0;   //!< LRU stamp
};
static_assert(sizeof(PageWayHot) == 16, "hot page-way state unpacked");

/** Per-way fields touched only at allocation / eviction. */
struct PageWayCold
{
    std::uint32_t pcHash = 0;    //!< trigger PC (stored in row)
    std::uint32_t predicted = 0; //!< predicted-footprint mask
    std::uint8_t trigger = 0;    //!< trigger block offset
    std::uint8_t gen = 0;        //!< measurement generation
};

/** Metadata installed when a page is allocated into a way (Fig. 2:
 *  tag, bit vectors, trigger PC + offset, measurement generation). */
struct PageInstall
{
    std::uint32_t tag = 0;
    std::uint32_t pcHash = 0;
    std::uint8_t trigger = 0;
    std::uint32_t predicted = 0;
    std::uint32_t fetched = 0;
    std::uint32_t touched = 0;
    std::uint32_t lastUse = 0;
    std::uint8_t gen = 0;
};

/** Page-way metadata; all arrays are indexed `set * assoc + way`. */
struct PageWaySoa
{
    /** Packed tag word: kValid | page tag (tags fit well below 2^62). */
    static constexpr std::uint64_t kValid = 1ull << 63;

    std::vector<std::uint64_t> tagv;  //!< kValid | tag, 0 = invalid
    std::vector<PageWayHot> hot;
    std::vector<PageWayCold> cold;

    void
    resize(std::size_t ways)
    {
        tagv.assign(ways, 0);
        hot.assign(ways, PageWayHot{});
        cold.assign(ways, PageWayCold{});
    }

    bool valid(std::size_t idx) const { return tagv[idx] != 0; }
    std::uint64_t tag(std::size_t idx) const { return tagv[idx] & ~kValid; }
    void invalidate(std::size_t idx) { tagv[idx] = 0; }

    /** Install a freshly allocated page's metadata into way `idx`. */
    void
    install(std::size_t idx, const PageInstall &p)
    {
        tagv[idx] = kValid | p.tag;
        cold[idx].pcHash = p.pcHash;
        cold[idx].trigger = p.trigger;
        cold[idx].predicted = p.predicted;
        cold[idx].gen = p.gen;
        hot[idx].fetched = p.fetched;
        hot[idx].touched = p.touched;
        hot[idx].dirty = 0;
        hot[idx].lastUse = p.lastUse;
    }

    /** Way of the set at `base` holding `tag`, or -1 (absent). */
    int
    findWay(std::size_t base, std::uint32_t assoc, std::uint64_t tag) const
    {
        return scanWaysFast(&tagv[base], assoc, ~0ull, kValid | tag);
    }

    /** Victim way for the set at `base`: invalid first, else LRU --
     *  the shared victimOrderKey order. The stamps live strided
     *  inside PageWayHot (16 B apart), so this stays a scalar
     *  encoded-min loop rather than growing a gather. */
    std::uint32_t
    pickVictim(std::size_t base, std::uint32_t assoc) const
    {
        std::uint64_t best = ~0ull;
        for (std::uint32_t w = assoc; w-- > 0;) {
            const std::uint64_t vk = victimOrderKey(
                tagv[base + w], hot[base + w].lastUse, w, kValid);
            best = vk < best ? vk : best;
        }
        return static_cast<std::uint32_t>(best & 255);
    }

    /** Warm-state checkpoint of all three parallel arrays. */
    void
    saveState(StateWriter &out) const
    {
        out.podVector(tagv);
        out.podVector(hot);
        out.podVector(cold);
    }

    void
    loadState(StateReader &in)
    {
        in.podVectorExact(tagv);
        in.podVectorExact(hot);
        in.podVectorExact(cold);
    }
};

} // namespace unison

#endif // UNISON_CACHE_PAGE_SET_HH
