/**
 * @file
 * Vectorized variants of the set_scan.hh primitives.
 *
 * The packed tag words are already SoA-contiguous (set_scan.hh), so a
 * 4-way set scan is one 32-byte load: the AVX2 paths compare four
 * packed words per step and fold the fused victim selection
 * (victimOrderKey min) into the same sweep. Dispatch is two-level:
 *
 *  - compile time: `UNISON_FORCE_SCALAR_SCAN` (CMake option of the
 *    same name) or a non-x86-64 target compiles the *Fast entry points
 *    straight down to the scalar reference implementations -- that
 *    build is what the golden-byte-compare CI job pins against the
 *    SIMD build;
 *  - run time: one cached `__builtin_cpu_supports("avx2")` probe picks
 *    the AVX2 kernels (compiled with a `target("avx2")` attribute so
 *    the rest of the binary stays baseline x86-64); without AVX2 the
 *    hit scan falls back to a 2-wide SSE2 kernel and the victim scans
 *    to the scalar encoded-min loops, because baseline SSE2 has no
 *    64-bit compares (pcmpeqq/pcmpgtq are SSE4.1/4.2) -- the 64-bit
 *    equality below is synthesized from pcmpeqd + a lane-swapped AND.
 *
 * Every kernel returns bit-identical results to its scalar reference:
 * the lowest matching way for hit scans (at most one way can match in
 * a live set, but the property tests feed duplicates), and the unique
 * victimOrderKey minimum for victim scans. tests/set_scan_simd_test.cpp
 * fuzzes that equivalence across assoc 1-32 and the 113-way row-set
 * shape.
 */

#ifndef UNISON_CACHE_SET_SCAN_SIMD_HH
#define UNISON_CACHE_SET_SCAN_SIMD_HH

#include <cstdint>

#include "cache/set_scan.hh"

#if !defined(UNISON_FORCE_SCALAR_SCAN) && defined(__x86_64__)
#define UNISON_SET_SCAN_SIMD 1
#include <immintrin.h>
#else
#define UNISON_SET_SCAN_SIMD 0
#endif

namespace unison {

#if UNISON_SET_SCAN_SIMD

namespace simd_detail {

/** One probe at static-init time; the hot paths read a plain bool. */
inline const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;

/** Lowest way with (tags[w] & mask) == key, 4 words per step. */
__attribute__((target("avx2"))) inline int
scanWaysAvx2(const std::uint64_t *tags, std::uint32_t assoc,
             std::uint64_t mask, std::uint64_t key)
{
    const __m256i vmask =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
    std::uint32_t w = 0;
    for (; w + 4 <= assoc; w += 4) {
        const __m256i words = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const __m256i eq =
            _mm256_cmpeq_epi64(_mm256_and_si256(words, vmask), vkey);
        const int lanes = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        if (lanes != 0)
            return static_cast<int>(
                w + static_cast<std::uint32_t>(__builtin_ctz(
                        static_cast<unsigned>(lanes))));
    }
    for (; w < assoc; ++w)
        if ((tags[w] & mask) == key)
            return static_cast<int>(w);
    return -1;
}

/**
 * SSE2 hit scan: 64-bit equality from pcmpeqd -- a lane is equal iff
 * both of its 32-bit halves compare equal, so AND the dword-compare
 * result with its halves swapped.
 */
inline int
scanWaysSse2(const std::uint64_t *tags, std::uint32_t assoc,
             std::uint64_t mask, std::uint64_t key)
{
    const __m128i vmask = _mm_set1_epi64x(static_cast<long long>(mask));
    const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
    std::uint32_t w = 0;
    for (; w + 2 <= assoc; w += 2) {
        const __m128i words = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + w));
        const __m128i eq32 =
            _mm_cmpeq_epi32(_mm_and_si128(words, vmask), vkey);
        const __m128i eq64 = _mm_and_si128(
            eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
        const int lanes = _mm_movemask_pd(_mm_castsi128_pd(eq64));
        if (lanes != 0)
            return static_cast<int>(
                w + static_cast<std::uint32_t>(__builtin_ctz(
                        static_cast<unsigned>(lanes))));
    }
    if (w < assoc && (tags[w] & mask) == key)
        return static_cast<int>(w);
    return -1;
}

/** Horizontal unsigned min over the four victim keys of a vector. */
__attribute__((target("avx2"))) inline std::uint64_t
victimKeyMinAvx2(__m256i keys)
{
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), keys);
    const std::uint64_t lo =
        lanes[0] < lanes[1] ? lanes[0] : lanes[1];
    const std::uint64_t hi =
        lanes[2] < lanes[3] ? lanes[2] : lanes[3];
    return lo < hi ? lo : hi;
}

/**
 * Fused hit + victim sweep, 4 ways per step. Victim keys are built
 * exactly as victimOrderKey does -- widen the u32 stamps, blend the
 * encoded key against the bare index on the validity compare -- and
 * reduced with a sign-biased signed compare (unsigned 64-bit min).
 */
__attribute__((target("avx2"))) inline void
scanSetAvx2(const std::uint64_t *tags, const std::uint32_t *last_use,
            std::uint32_t assoc, std::uint64_t mask, std::uint64_t key,
            std::uint64_t valid_bit, int &hit_way,
            std::uint32_t &victim_way)
{
    const __m256i vmask =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
    const __m256i vvalid =
        _mm256_set1_epi64x(static_cast<long long>(valid_bit));
    const __m256i sign = _mm256_set1_epi64x(
        static_cast<long long>(1ull << 63));
    const __m256i step = _mm256_set1_epi64x(4);
    __m256i vidx = _mm256_set_epi64x(3, 2, 1, 0);
    __m256i vbest = _mm256_set1_epi64x(-1);
    int hit = -1;
    std::uint32_t w = 0;
    for (; w + 4 <= assoc; w += 4) {
        const __m256i words = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const __m256i eq =
            _mm256_cmpeq_epi64(_mm256_and_si256(words, vmask), vkey);
        const int lanes = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        if (lanes != 0 && hit < 0)
            hit = static_cast<int>(
                w + static_cast<std::uint32_t>(__builtin_ctz(
                        static_cast<unsigned>(lanes))));
        const __m256i stamps = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(last_use + w)));
        const __m256i validm = _mm256_cmpeq_epi64(
            _mm256_and_si256(words, vvalid), vvalid);
        const __m256i encoded = _mm256_or_si256(
            _mm256_or_si256(sign, _mm256_slli_epi64(stamps, 8)), vidx);
        const __m256i vk =
            _mm256_blendv_epi8(vidx, encoded, validm);
        const __m256i worse = _mm256_cmpgt_epi64(
            _mm256_xor_si256(vbest, sign), _mm256_xor_si256(vk, sign));
        vbest = _mm256_blendv_epi8(vbest, vk, worse);
        vidx = _mm256_add_epi64(vidx, step);
    }
    std::uint64_t best = victimKeyMinAvx2(vbest);
    for (; w < assoc; ++w) {
        const std::uint64_t word = tags[w];
        if (hit < 0 && (word & mask) == key)
            hit = static_cast<int>(w);
        const std::uint64_t vk =
            victimOrderKey(word, last_use[w], w, valid_bit);
        best = vk < best ? vk : best;
    }
    hit_way = hit;
    victim_way = static_cast<std::uint32_t>(best & 255);
}

/** Victim-only sweep: scanSetAvx2 minus the hit compare. */
__attribute__((target("avx2"))) inline std::uint32_t
pickVictimWayAvx2(const std::uint64_t *tags,
                  const std::uint32_t *last_use, std::uint32_t assoc,
                  std::uint64_t valid_bit)
{
    const __m256i vvalid =
        _mm256_set1_epi64x(static_cast<long long>(valid_bit));
    const __m256i sign = _mm256_set1_epi64x(
        static_cast<long long>(1ull << 63));
    const __m256i step = _mm256_set1_epi64x(4);
    __m256i vidx = _mm256_set_epi64x(3, 2, 1, 0);
    __m256i vbest = _mm256_set1_epi64x(-1);
    std::uint32_t w = 0;
    for (; w + 4 <= assoc; w += 4) {
        const __m256i words = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const __m256i stamps = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(last_use + w)));
        const __m256i validm = _mm256_cmpeq_epi64(
            _mm256_and_si256(words, vvalid), vvalid);
        const __m256i encoded = _mm256_or_si256(
            _mm256_or_si256(sign, _mm256_slli_epi64(stamps, 8)), vidx);
        const __m256i vk =
            _mm256_blendv_epi8(vidx, encoded, validm);
        const __m256i worse = _mm256_cmpgt_epi64(
            _mm256_xor_si256(vbest, sign), _mm256_xor_si256(vk, sign));
        vbest = _mm256_blendv_epi8(vbest, vk, worse);
        vidx = _mm256_add_epi64(vidx, step);
    }
    std::uint64_t best = victimKeyMinAvx2(vbest);
    for (; w < assoc; ++w) {
        const std::uint64_t vk =
            victimOrderKey(tags[w], last_use[w], w, valid_bit);
        best = vk < best ? vk : best;
    }
    return static_cast<std::uint32_t>(best & 255);
}

} // namespace simd_detail

#endif // UNISON_SET_SCAN_SIMD

/** scanWays with the best kernel the build + host support. */
inline int
scanWaysFast(const std::uint64_t *tags, std::uint32_t assoc,
             std::uint64_t mask, std::uint64_t key)
{
#if UNISON_SET_SCAN_SIMD
    if (assoc >= 4) {
        if (simd_detail::kHaveAvx2)
            return simd_detail::scanWaysAvx2(tags, assoc, mask, key);
        return simd_detail::scanWaysSse2(tags, assoc, mask, key);
    }
#endif
    return scanWays(tags, assoc, mask, key);
}

/** scanWaysMru with the vector scan behind the hint probe. */
inline int
scanWaysMruFast(const std::uint64_t *tags, std::uint32_t assoc,
                std::uint64_t mask, std::uint64_t key, std::uint32_t mru)
{
    if ((tags[mru] & mask) == key)
        return static_cast<int>(mru);
    return scanWaysFast(tags, assoc, mask, key);
}

/** Fused scanSet with the best kernel the build + host support. */
inline void
scanSetFast(const std::uint64_t *tags, const std::uint32_t *last_use,
            std::uint32_t assoc, std::uint64_t mask, std::uint64_t key,
            std::uint64_t valid_bit, int &hit_way,
            std::uint32_t &victim_way)
{
#if UNISON_SET_SCAN_SIMD
    if (assoc >= 4 && simd_detail::kHaveAvx2) {
        simd_detail::scanSetAvx2(tags, last_use, assoc, mask, key,
                                 valid_bit, hit_way, victim_way);
        return;
    }
#endif
    scanSet(tags, last_use, assoc, mask, key, valid_bit, hit_way,
            victim_way);
}

/** pickVictimWay with the best kernel the build + host support. */
inline std::uint32_t
pickVictimWayFast(const std::uint64_t *tags,
                  const std::uint32_t *last_use, std::uint32_t assoc,
                  std::uint64_t valid_bit)
{
#if UNISON_SET_SCAN_SIMD
    if (assoc >= 4 && simd_detail::kHaveAvx2)
        return simd_detail::pickVictimWayAvx2(tags, last_use, assoc,
                                              valid_bit);
#endif
    return pickVictimWay(tags, last_use, assoc, valid_bit);
}

} // namespace unison

#endif // UNISON_CACHE_SET_SCAN_SIMD_HH
