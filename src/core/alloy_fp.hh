/**
 * @file
 * `alloyfp` -- the second design composed from the policy framework: a
 * direct-mapped block cache (Alloy Cache's organization) with
 * footprint-grouped prefetching.
 *
 * The composition is DirectOrganization + FootprintFetchPolicy +
 * PageGroupTracker + the shared fill/writeback engines. On a trigger
 * miss to a logical page, the FHT predicts the page's footprint from
 * the trigger (PC, offset) and the whole predicted group streams from
 * memory into the block frames; the SRAM-side tracker keeps the
 * page's fetched/touched/resident masks so the predictor can be
 * trained when the page's last block is evicted.
 *
 * This is the hybrid the Sec. III-B.1 straw man *wanted* to be: the
 * same block array + footprint prediction splice, but with the page
 * presence and footprint metadata held in SRAM, so none of the
 * row-scan penalties the naive design pays (compare
 * baselines/naive_block_fp.hh, which charges them). Running the two
 * side by side isolates exactly what the in-DRAM metadata placement
 * costs -- the kind of design-space point the framework exists to
 * make cheap.
 */

#ifndef UNISON_CORE_ALLOY_FP_HH
#define UNISON_CORE_ALLOY_FP_HH

#include <cstdint>
#include <memory>

#include "cache/organization.hh"
#include "cache/page_tracker.hh"
#include "core/dram_cache.hh"
#include "core/fill_engine.hh"
#include "core/geometry.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"
#include "predictors/fetch_policy.hh"

namespace unison {

/** Configuration of the composed alloy-fp hybrid. */
struct AlloyFpConfig
{
    std::uint64_t capacityBytes = 1_GiB;

    /** Blocks per logical prefetch group (power of two). */
    std::uint32_t pageBlocks = 16;

    /** Fetch predicted footprints (false degenerates to Alloy without
     *  its miss predictor). */
    bool footprintPredictionEnabled = true;

    FootprintTableConfig fhtConfig{};

    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

class AlloyFpCache final : public DramCache
{
  public:
    AlloyFpCache(const AlloyFpConfig &config, MemoryBackend *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override { return "AlloyFP"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const AlloyFpConfig &config() const { return config_; }
    const AlloyGeometry &geometry() const { return geometry_; }
    const FootprintHistoryTable &footprintTable() const
    {
        return fetchPolicy_.footprintTable();
    }

    /** @name Test hooks */
    /**@{*/
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;
    bool pageTracked(Addr addr) const;
    /**@}*/

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        org_.saveState(out);
        stacked_->saveState(out);
        fetchPolicy_.saveState(out);
        pages_.saveState(out);
    }

    void
    loadState(StateReader &in) override
    {
        org_.loadState(in);
        stacked_->loadState(in);
        fetchPolicy_.loadState(in);
        pages_.loadState(in);
    }

  private:
    /** Packed TAD word (the shared set_scan.hh positions). */
    static constexpr std::uint64_t kValid = kWayValidBit;
    static constexpr std::uint64_t kDirty = kWayDirtyBit;
    static constexpr std::uint64_t kTagMask = kWayTagMask;

    struct Location
    {
        std::uint64_t block = 0;
        std::uint64_t page = 0;
        std::uint32_t offset = 0;
        std::uint64_t frame = 0;
        std::uint32_t tag = 0;
    };

    Location locate(Addr addr) const;

    /** Install `loc`'s block, evicting the direct-mapped victim (and
     *  training the FHT when the victim page's last block leaves). */
    void installBlock(const Location &loc, Cycle when);

    std::uint32_t
    fullMask() const
    {
        return fullBlockMask(config_.pageBlocks);
    }

    AlloyFpConfig config_;
    AlloyGeometry geometry_;
    /** Logical-page split (pageBlocks is a runtime power of two). */
    FastDiv64 pageDiv_;
    std::unique_ptr<MemoryBackend> stacked_;
    FootprintFetchPolicy fetchPolicy_;
    /** CacheOrganization: one packed word per direct-mapped frame. */
    DirectOrganization org_;
    PageGroupTracker pages_;
    FillEngine fill_;
    WritebackEngine writeback_;
};

} // namespace unison

#endif // UNISON_CORE_ALLOY_FP_HH
