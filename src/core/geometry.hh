/**
 * @file
 * In-DRAM layout geometry for the three cache organizations. This is
 * where the Table II arithmetic lives (blocks per 8 KB row, in-DRAM tag
 * overhead, SRAM tag-array sizes), so the characteristics bench and the
 * designs themselves share one source of truth.
 */

#ifndef UNISON_CORE_GEOMETRY_HH
#define UNISON_CORE_GEOMETRY_HH

#include <cstdint>

#include "common/fastdiv.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace unison {

/**
 * Unison Cache DRAM-row geometry (Fig. 3).
 *
 * Each page carries 16 B of in-row metadata: an 8 B word holding the
 * page tag, valid bit and the valid/dirty bit vectors (read first, as
 * one tag burst per set), plus an 8 B (PC, offset) word read only at
 * eviction. A set is `assoc` pages plus their metadata; as many whole
 * sets as fit share one 8 KB row (two sets for 960 B pages), and a set
 * wider than a row (the 32-way ablation) spans consecutive rows.
 */
struct UnisonGeometry
{
    std::uint64_t capacityBytes = 0;
    std::uint32_t pageBlocks = 15; //!< 15 (960 B) or 31 (1984 B)
    std::uint32_t assoc = 4;

    std::uint64_t numRows = 0;
    std::uint64_t numSets = 0;
    std::uint32_t setsPerRow = 0;  //!< 0 when a set spans rows
    std::uint32_t rowsPerSet = 1;
    std::uint32_t waysPerRow = 0;  //!< valid when rowsPerSet > 1

    std::uint32_t pageBytes = 0;
    std::uint32_t pageMetaBytes = 16;
    std::uint32_t tagBurstBytes = 0; //!< per-set tag read (8 B x assoc)

    /**
     * Physical address width. Footnote 3 of the paper: up to 40 bits
     * (1 TB), 8 B of tag word per page suffice (two bursts per 4-way
     * set on the 128-bit bus); beyond that the tag words grow to 12 B
     * and the set's tag read takes three bursts (~48 B).
     */
    std::uint32_t physAddrBits = 40;

    std::uint64_t dataBlocks = 0;  //!< total 64 B blocks of payload
    std::uint32_t blocksPerRow = 0;
    std::uint64_t inDramTagBytes = 0; //!< capacity - payload

    /** Invariant-divisor helpers for the per-access row mapping. */
    FastDiv64 setsPerRowDiv;  //!< valid when setsPerRow >= 1
    FastDiv64 waysPerRowDiv;
    FastDiv64 numSetsDiv;

    /** Compute the geometry; fatal on impossible configurations. */
    static UnisonGeometry compute(std::uint64_t capacity_bytes,
                                  std::uint32_t page_blocks,
                                  std::uint32_t assoc,
                                  std::uint32_t phys_addr_bits = 40);

    /** Row holding the set's tag metadata. */
    std::uint64_t
    rowOfSet(std::uint64_t set) const
    {
        UNISON_ASSERT(set < numSets, "set ", set, " out of range");
        if (setsPerRow >= 1)
            return setsPerRowDiv.div(set);
        return set * rowsPerSet;
    }

    /** Row holding way `way`'s data blocks. */
    std::uint64_t
    dataRowOfWay(std::uint64_t set, std::uint32_t way) const
    {
        UNISON_ASSERT(way < assoc, "way ", way, " out of range");
        if (setsPerRow >= 1)
            return rowOfSet(set);
        return rowOfSet(set) + waysPerRowDiv.div(way);
    }
};

/**
 * Alloy Cache geometry: 72 B tag-and-data (TAD) units, 112 per 8 KB
 * row (Sec. IV-C.3), direct-mapped.
 */
struct AlloyGeometry
{
    std::uint64_t capacityBytes = 0;
    std::uint64_t numRows = 0;
    std::uint32_t tadsPerRow = 112;
    std::uint32_t tadBytes = 72;
    std::uint64_t numTads = 0;     //!< == number of sets (direct-mapped)
    std::uint64_t inDramTagBytes = 0;

    /** Invariant-divisor helpers for the per-access mapping. */
    FastDiv64 tadsPerRowDiv;
    FastDiv64 numTadsDiv;

    static AlloyGeometry compute(std::uint64_t capacity_bytes);

    /** Row and slot of a TAD index. */
    std::uint64_t
    rowOfTad(std::uint64_t tad) const
    {
        return tadsPerRowDiv.div(tad);
    }
};

/**
 * Footprint Cache geometry: 2 KB pages, 32-way sets, tags in SRAM
 * (12 B per page, matching Table IV's 0.8 MB @128 MB ... 50 MB @8 GB
 * progression), four pages per DRAM row.
 */
struct FootprintGeometry
{
    std::uint64_t capacityBytes = 0;
    std::uint32_t pageBlocks = 32; //!< 2 KB pages
    std::uint32_t assoc = 32;
    std::uint64_t numPages = 0;
    std::uint64_t numSets = 0;
    std::uint32_t pagesPerRow = 4;
    std::uint64_t sramTagBytes = 0;
    Cycle tagLatency = 0;          //!< Table IV

    /** Invariant-divisor helpers for the per-access mapping. */
    FastDiv64 pagesPerRowDiv;
    FastDiv64 pageBlocksDiv;
    FastDiv64 numSetsDiv;

    static FootprintGeometry compute(std::uint64_t capacity_bytes);

    /** Table IV: SRAM tag-array lookup latency for a capacity. */
    static Cycle tagLatencyForCapacity(std::uint64_t capacity_bytes);

    /** DRAM row holding (set, way)'s data. */
    std::uint64_t
    dataRowOfWay(std::uint64_t set, std::uint32_t way) const
    {
        return pagesPerRowDiv.div(set * assoc + way);
    }
};

} // namespace unison

#endif // UNISON_CORE_GEOMETRY_HH
