/**
 * @file
 * `unisonwp` -- Unison Cache with *pluggable* way predictors, the
 * first design composed from the policy framework rather than written
 * as a monolith: the UnisonCacheT body from unison_cache.hh is
 * instantiated with a way-location policy whose predictor is swapped
 * via a registry knob. Together with the existing missPolicy knob
 * (always-hit vs MAP-I) this gives the Sec. III-A.5/6 ablation space
 * -- "how much of Unison's hit latency is the way predictor?" -- as
 * sweepable configurations instead of code changes:
 *
 *  - `hashed`: the paper's address-hash WayPredictor (the baseline;
 *    behaviourally identical to the `unison` design);
 *  - `mru`: predict the set's most-recently-used way -- no hash table
 *    at all, one log2(assoc)-bit field per set;
 *  - `static0`: always predict way 0 -- the floor any predictor must
 *    beat (~1/assoc accuracy under LRU churn).
 */

#ifndef UNISON_CORE_UNISON_WP_HH
#define UNISON_CORE_UNISON_WP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/unison_cache.hh"

namespace unison {

/** Which way predictor the swappable policy runs (the `wayPredictor`
 *  registry knob). */
enum class UnisonWayPredictorKind
{
    Hashed,  //!< the paper's address-hash predictor (Sec. III-A.6)
    Mru,     //!< per-set most-recently-used way
    Static0, //!< always way 0 (predictor-less floor)
};

/** UnisonConfig plus the predictor-selection knob. */
struct UnisonWpConfig : UnisonConfig
{
    UnisonWayPredictorKind wayPredictorKind =
        UnisonWayPredictorKind::Hashed;
};

/**
 * The pluggable way-location policy: one concrete composition type
 * (so the kind-tag dispatch stays devirtualized) that switches
 * predictors on a per-instance knob. Prediction accuracy is counted
 * here, uniformly across predictors.
 */
class SwappableWayPolicy
{
  public:
    static constexpr DramCacheKind kCacheKind = DramCacheKind::UnisonWp;

    SwappableWayPolicy(const UnisonWpConfig &config,
                       const UnisonGeometry &geometry)
        : kind_(config.wayPredictorKind),
          hashed_(config.wayPredictorIndexBits != 0
                      ? config.wayPredictorIndexBits
                      : WayPredictor::indexBitsForCapacity(
                            config.capacityBytes),
                  config.assoc)
    {
        if (kind_ == UnisonWayPredictorKind::Mru)
            mruWay_.assign(geometry.numSets, 0);
    }

    std::uint32_t
    predict(std::uint64_t page, std::uint64_t set) const
    {
        switch (kind_) {
          case UnisonWayPredictorKind::Hashed:
            return hashed_.predict(page);
          case UnisonWayPredictorKind::Mru:
            return mruWay_[set];
          case UnisonWayPredictorKind::Static0:
            return 0;
        }
        return 0;
    }

    void
    train(std::uint64_t page, std::uint64_t set, std::uint32_t way)
    {
        switch (kind_) {
          case UnisonWayPredictorKind::Hashed:
            hashed_.train(page, way);
            break;
          case UnisonWayPredictorKind::Mru:
            mruWay_[set] = static_cast<std::uint8_t>(way);
            break;
          case UnisonWayPredictorKind::Static0:
            break;
        }
    }

    void
    recordOutcome(bool correct)
    {
        ++stats_.predictions;
        if (correct)
            ++stats_.correct;
    }

    const WayPredictorStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_.reset();
        hashed_.resetStats();
    }

    std::string
    nameSuffix() const
    {
        switch (kind_) {
          case UnisonWayPredictorKind::Hashed:
            return "+wp=hashed";
          case UnisonWayPredictorKind::Mru:
            return "+wp=mru";
          case UnisonWayPredictorKind::Static0:
            return "+wp=static0";
        }
        return "";
    }

    UnisonWayPredictorKind kind() const { return kind_; }

    /** Warm-state checkpoint: every predictor variant's state (the
     *  unused ones are empty/no-ops, so the format stays uniform). */
    void
    saveState(StateWriter &out) const
    {
        hashed_.saveState(out);
        out.podVector(mruWay_);
    }

    void
    loadState(StateReader &in)
    {
        hashed_.loadState(in);
        in.podVectorExact(mruWay_);
    }

  private:
    UnisonWayPredictorKind kind_;
    WayPredictor hashed_;
    std::vector<std::uint8_t> mruWay_; //!< sized only for `mru`
    WayPredictorStats stats_;
};

/** The composed design: the Unison body with swappable predictors. */
using UnisonWpCache = UnisonCacheT<SwappableWayPolicy, UnisonWpConfig>;

} // namespace unison

#endif // UNISON_CORE_UNISON_WP_HH
