/**
 * @file
 * Registry entry for Unison Cache. The cache body itself is the
 * UnisonCacheT composition template in unison_cache.hh (shared with
 * the unison-wp ablation design in unison_wp.hh); this file only
 * describes the design -- names, knobs, validation, factory -- to the
 * design registry.
 */

#include "core/unison_cache.hh"

#include "sim/design_registry.hh"

namespace unison {

DesignInfo
unisonDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::Unison;
    info.id = "unison";
    info.name = "Unison Cache";
    info.shortName = "Unison";
    info.summary = "page-based, 4-way, in-DRAM tags read in unison "
                   "with the data (the paper's design)";
    info.defaults = UnisonConfig{};
    info.knobs = {
        knobUInt<UnisonConfig>(
            "pageBlocks", "blocks per page (15 = 960B, 31 = 1984B)",
            &UnisonConfig::pageBlocks, 1, 63),
        knobUInt<UnisonConfig>("assoc", "set associativity",
                               &UnisonConfig::assoc, 1, 32),
        knobEnum<UnisonConfig>(
            "wayPolicy",
            "way location: predict / fetch-all / serial-tag",
            &UnisonConfig::wayPolicy,
            {{"predict", UnisonWayPolicy::Predict},
             {"fetch-all", UnisonWayPolicy::FetchAll},
             {"serial-tag", UnisonWayPolicy::SerialTag}}),
        knobEnum<UnisonConfig>(
            "missPolicy", "hit speculation: always-hit / map-i",
            &UnisonConfig::missPolicy,
            {{"always-hit", UnisonMissPolicy::AlwaysHit},
             {"map-i", UnisonMissPolicy::MapI}}),
        knobBool<UnisonConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: whole pages)",
            &UnisonConfig::footprintPredictionEnabled),
        knobBool<UnisonConfig>(
            "singletonPrediction",
            "bypass pages predicted to be singletons",
            &UnisonConfig::singletonEnabled),
        knobUIntFn<UnisonConfig, std::uint32_t>(
            "fhtEntries", "footprint history table entries",
            [](UnisonConfig &c) -> std::uint32_t & {
                return c.fhtConfig.numEntries;
            },
            1, 1u << 24),
        knobUIntFn<UnisonConfig, std::uint32_t>(
            "fhtAssoc", "footprint history table associativity",
            [](UnisonConfig &c) -> std::uint32_t & {
                return c.fhtConfig.assoc;
            },
            1, 64),
        knobUInt<UnisonConfig>(
            "wayPredictorIndexBits",
            "way predictor index width (0 = paper sizing)",
            &UnisonConfig::wayPredictorIndexBits, 0, 24),
    };
    info.validate = [](const DesignVariant &v,
                       const DesignBuildContext &) -> std::string {
        return validateUnisonKnobs(std::get<UnisonConfig>(v));
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        UnisonConfig cfg = std::get<UnisonConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        cfg.numCores = ctx.numCores;
        return std::make_unique<UnisonCache>(cfg, offchip);
    };
    return info;
}

std::string
validateUnisonKnobs(const UnisonConfig &c)
{
    if (c.fhtConfig.numEntries % c.fhtConfig.assoc != 0)
        return "fhtEntries (" +
               std::to_string(c.fhtConfig.numEntries) +
               ") must be a multiple of fhtAssoc (" +
               std::to_string(c.fhtConfig.assoc) + ")";
    const std::uint32_t sets =
        c.fhtConfig.numEntries / c.fhtConfig.assoc;
    if ((sets & (sets - 1)) != 0)
        return "fhtEntries/fhtAssoc must be a power of two "
               "(FHT set count), got " +
               std::to_string(sets) + " sets";
    if (c.wayPredictorIndexBits != 0 &&
        c.wayPredictorIndexBits < 4)
        return "wayPredictorIndexBits must be 0 (auto) or >= 4";
    return "";
}

} // namespace unison
