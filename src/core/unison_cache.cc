#include "core/unison_cache.hh"

#include "sim/design_registry.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

namespace {

/** FHT keys use the low 32 PC bits (the stored trigger PC width). */
Pc
fhtPc(Pc pc)
{
    return pc & 0xffffffffull;
}

} // namespace

UnisonCache::UnisonCache(const UnisonConfig &config, DramModule *offchip)
    : DramCache(offchip, DramCacheKind::Unison),
      config_(config),
      geometry_(UnisonGeometry::compute(config.capacityBytes,
                                        config.pageBlocks, config.assoc)),
      pageDiv_(config.pageBlocks),
      stacked_(std::make_unique<DramModule>(config.stackedOrg,
                                            config.stackedTiming)),
      wayPred_(config.wayPredictorIndexBits != 0
                   ? config.wayPredictorIndexBits
                   : WayPredictor::indexBitsForCapacity(
                         config.capacityBytes),
               config.assoc),
      fht_([&] {
          FootprintTableConfig c = config.fhtConfig;
          c.maxBlocksPerPage = config.pageBlocks;
          return c;
      }()),
      singletons_(config.singletonConfig)
{
    UNISON_ASSERT(offchip != nullptr, "Unison Cache needs a memory pool");
    UNISON_ASSERT(config_.pageBlocks <= 32,
                  "page masks are 32 bits wide; pageBlocks = ",
                  config_.pageBlocks);
    if (config_.missPolicy == UnisonMissPolicy::MapI) {
        MissPredictorConfig mp;
        mp.numCores = config_.numCores;
        missPred_ = std::make_unique<MissPredictor>(mp);
    }
    ways_.resize(geometry_.numSets * config_.assoc);
}

std::string
UnisonCache::name() const
{
    return "Unison-" + std::to_string(config_.pageBlocks * kBlockBytes) +
           "B-" + std::to_string(config_.assoc) + "way";
}

void
UnisonCache::resetStats()
{
    DramCache::resetStats();
    ++statsGen_;
    wayPred_.resetStats();
    fht_.resetStats();
    singletons_.resetStats();
    if (missPred_)
        missPred_->resetStats();
}

void
UnisonCache::mapAddress(Addr addr, std::uint64_t &page,
                        std::uint32_t &offset) const
{
    // The modelled hardware computes this with the residue-arithmetic
    // adder tree (MersenneDivider, Sec. III-A.7; the paper charges it
    // 2 cycles, overlapped with the L2 access). The simulator itself
    // uses the reciprocal divider: the exact same quotient/remainder,
    // an order of magnitude fewer host instructions per access.
    std::uint64_t q, r;
    pageDiv_.divMod(blockNumber(addr), q, r);
    page = q;
    offset = static_cast<std::uint32_t>(r);
}

UnisonCache::Location
UnisonCache::locate(Addr addr) const
{
    Location loc;
    mapAddress(addr, loc.page, loc.offset);
    std::uint64_t q, r;
    geometry_.numSetsDiv.divMod(loc.page, q, r);
    loc.set = r;
    loc.tag = static_cast<std::uint32_t>(q);
    return loc;
}

void
UnisonCache::issueProbeReads(const Location &loc, std::uint32_t pred_way,
                             Cycle start, Cycle &tag_done,
                             Cycle &data_done)
{
    // Tag burst first, then the speculative data read: back-to-back
    // commands to the same row; the channel model overlaps the row
    // activation and serializes only the bus bursts (Sec. III-A).
    const std::uint64_t tag_row = geometry_.rowOfSet(loc.set);
    tag_done = stacked_
                   ->rowAccess(tag_row, geometry_.tagBurstBytes,
                               /*is_write=*/false, start)
                   .completion;

    if (config_.wayPolicy == UnisonWayPolicy::SerialTag) {
        data_done = 0; // the data read is issued after tag resolve
        return;
    }

    if (config_.wayPolicy == UnisonWayPolicy::FetchAll) {
        // Stream every way of the set (possibly from several rows).
        Cycle done = 0;
        if (geometry_.rowsPerSet == 1) {
            done = stacked_
                       ->rowAccess(tag_row,
                                   config_.assoc * kBlockBytes,
                                   false, start)
                       .completion;
        } else {
            for (std::uint32_t r = 0; r < geometry_.rowsPerSet; ++r) {
                done = std::max(
                    done,
                    stacked_
                        ->rowAccess(tag_row + r,
                                    geometry_.waysPerRow * kBlockBytes,
                                    false, start)
                        .completion);
            }
        }
        data_done = done;
        return;
    }

    const std::uint64_t data_row = geometry_.dataRowOfWay(loc.set,
                                                          pred_way);
    data_done = stacked_
                    ->rowAccess(data_row, kBlockBytes, false, start)
                    .completion;
}

DramCacheResult
UnisonCache::serveBlockHit(const DramCacheRequest &req, const Location &loc,
                           int way, std::uint32_t pred_way, Cycle tag_done,
                           Cycle data_done)
{
    const std::size_t idx = setBase(loc.set) + way;
    const std::uint32_t bit = blockBit(loc.offset);

    ++stats_.hits;
    ways_.hot[idx].touched |= bit;
    if (req.isWrite)
        ways_.hot[idx].dirty |= bit;
    ways_.hot[idx].lastUse = ++useCounter_;

    DramCacheResult result;
    result.hit = true;

    if (req.isWrite) {
        // Tag check resolved the way; then the block write goes to the
        // (open) row. Writes are posted: done when accepted.
        result.doneAt = stacked_
                            ->rowAccess(geometry_.dataRowOfWay(loc.set,
                                                               way),
                                        kBlockBytes, true, tag_done)
                            .completion;
        if (config_.assoc > 1 &&
            config_.wayPolicy == UnisonWayPolicy::Predict)
            wayPred_.train(loc.page, static_cast<std::uint32_t>(way));
        return result;
    }

    switch (config_.wayPolicy) {
      case UnisonWayPolicy::Predict: {
        const bool correct =
            static_cast<std::uint32_t>(way) == pred_way ||
            config_.assoc == 1;
        if (config_.assoc > 1) {
            wayPred_.recordOutcome(correct);
            wayPred_.train(loc.page, static_cast<std::uint32_t>(way));
        }
        if (correct) {
            result.doneAt = data_done;
        } else {
            // Way mispredict: re-read the correct way. The row is now
            // open, so this is a cheap row-buffer hit (Sec. III-A.6).
            result.doneAt =
                stacked_
                    ->rowAccess(geometry_.dataRowOfWay(loc.set, way),
                                kBlockBytes, false,
                                std::max(tag_done, data_done))
                    .completion;
        }
        break;
      }
      case UnisonWayPolicy::FetchAll:
        result.doneAt = std::max(tag_done, data_done);
        break;
      case UnisonWayPolicy::SerialTag:
        result.doneAt =
            stacked_
                ->rowAccess(geometry_.dataRowOfWay(loc.set, way),
                            kBlockBytes, false, tag_done)
                .completion;
        break;
    }
    return result;
}

DramCacheResult
UnisonCache::serveBlockMiss(const DramCacheRequest &req,
                            const Location &loc, int way, Cycle tag_done)
{
    const std::size_t idx = setBase(loc.set) + way;
    const std::uint32_t bit = blockBit(loc.offset);

    ++stats_.misses;
    ++stats_.blockMisses;
    ways_.hot[idx].lastUse = ++useCounter_;

    DramCacheResult result;
    result.hit = false;

    const std::uint64_t data_row = geometry_.dataRowOfWay(loc.set, way);
    if (req.isWrite) {
        // Full-block write allocation: no off-chip fetch needed.
        ways_.hot[idx].fetched |= bit;
        ways_.hot[idx].touched |= bit;
        ways_.hot[idx].dirty |= bit;
        result.doneAt = stacked_
                            ->rowAccess(data_row, kBlockBytes, true,
                                        tag_done)
                            .completion;
        return result;
    }

    // Underprediction (Sec. III-A.3): fetch just the missing block.
    // The miss is detected after the in-DRAM tag resolves.
    const Cycle mem_done =
        offchip_->addrAccess(req.addr, kBlockBytes, false, tag_done)
            .completion;
    ++stats_.offchipDemandBlocks;
    ways_.hot[idx].fetched |= bit;
    ways_.hot[idx].touched |= bit; // eviction will propagate the correction

    // Background fill of the block into the stacked row.
    stacked_->rowAccess(data_row, kBlockBytes, true, mem_done);
    result.doneAt = mem_done;
    return result;
}

void
UnisonCache::evictPage(std::uint64_t set, int way, Cycle when)
{
    const std::size_t idx = setBase(set) + way;
    UNISON_ASSERT(ways_.valid(idx), "evicting an invalid way");
    ++stats_.evictions;

    const std::uint64_t page =
        ways_.tag(idx) * geometry_.numSets + set;

    // Write back dirty blocks: one batched read from the stacked row,
    // then per-block writes into memory (footprint-granular transfers,
    // the Sec. V-D energy advantage).
    const std::uint32_t dirty_mask = ways_.hot[idx].dirty;
    if (dirty_mask != 0) {
        const std::uint32_t dirty_blocks = popCount(dirty_mask);
        const Cycle read_done =
            stacked_
                ->rowAccess(geometry_.dataRowOfWay(set, way),
                            dirty_blocks * kBlockBytes, false, when)
                .completion;
        std::uint32_t mask = dirty_mask;
        while (mask != 0) {
            const std::uint32_t off = static_cast<std::uint32_t>(
                std::countr_zero(mask));
            mask &= mask - 1;
            offchip_->addrAccess(blockAddrOf(page, off), kBlockBytes,
                                 true, read_done);
        }
        stats_.offchipWritebackBlocks += dirty_blocks;
    }

    // The stored (PC, offset) pair is read from the row only now, at
    // eviction, and used to train the FHT with the observed footprint.
    UNISON_ASSERT(ways_.hot[idx].touched != 0,
                  "resident page was never touched");
    fht_.update(ways_.cold[idx].pcHash, ways_.cold[idx].trigger,
                ways_.hot[idx].touched);

    // Table V bookkeeping -- only for pages allocated in the current
    // measurement generation (cold-phase allocations would otherwise
    // dominate large-cache statistics with default predictions).
    if (ways_.cold[idx].gen == statsGen_) {
        stats_.fpPredictedTouched +=
            popCount(ways_.cold[idx].predicted & ways_.hot[idx].touched);
        stats_.fpTouched += popCount(ways_.hot[idx].touched);
        stats_.fpFetchedUntouched +=
            popCount(ways_.hot[idx].fetched & ~ways_.hot[idx].touched);
        stats_.fpFetched += popCount(ways_.hot[idx].fetched);
    }

    ways_.invalidate(idx);
}

Cycle
UnisonCache::fetchFootprint(const Location &loc, std::uint32_t mask,
                            bool fetch_demand, Cycle start,
                            Cycle head_start, bool head_started,
                            Cycle &last_done)
{
    (void)head_started;
    const std::uint32_t demand_bit = blockBit(loc.offset);
    Cycle critical = start;
    last_done = start;

    if (fetch_demand && (mask & demand_bit) != 0) {
        critical = offchip_
                       ->addrAccess(blockAddrOf(loc.page, loc.offset),
                                    kBlockBytes, false, head_start)
                       .completion;
        last_done = critical;
        mask &= ~demand_bit;
    }

    // Remaining footprint blocks stream behind the critical block;
    // they share the memory row, so this is one activation plus
    // row-buffer hits (the bulk-transfer behaviour of Sec. V-D).
    while (mask != 0) {
        const std::uint32_t off = static_cast<std::uint32_t>(
            std::countr_zero(mask));
        mask &= mask - 1;
        const Cycle done =
            offchip_
                ->addrAccess(blockAddrOf(loc.page, off), kBlockBytes,
                             false, start)
                .completion;
        last_done = std::max(last_done, done);
    }
    return critical;
}

DramCacheResult
UnisonCache::serveTriggerMiss(const DramCacheRequest &req,
                              const Location &loc, Cycle tag_done,
                              Cycle offchip_head_start,
                              bool offchip_started)
{
    ++stats_.misses;
    ++stats_.pageMisses;

    if (req.isWrite) {
        // Write-no-allocate: an L2 writeback whose page is not
        // resident goes straight to memory. Allocating here would
        // evict a useful page and (worse) fetch a footprint predicted
        // from a trigger PC that has nothing to do with this data.
        DramCacheResult result;
        result.hit = false;
        result.doneAt =
            offchip_
                ->addrAccess(blockAddrOf(loc.page, loc.offset),
                             kBlockBytes, true, tag_done)
                .completion;
        ++stats_.offchipWritebackBlocks;
        return result;
    }

    // Singleton promotion check (Sec. III-A.4): was this page bypassed
    // as a singleton earlier? If so, widen its FHT entry -- it is not
    // a singleton after all.
    bool promoted = false;
    if (config_.singletonEnabled) {
        Pc spc;
        std::uint32_t soff, sfirst;
        if (singletons_.checkAndRemove(loc.page, spc, soff, sfirst)) {
            fht_.merge(spc, soff,
                       blockBit(sfirst) | blockBit(loc.offset));
            promoted = true;
        }
    }

    // Footprint prediction for the trigger (PC, offset).
    std::uint32_t predicted = fullPageMask();
    if (config_.footprintPredictionEnabled) {
        std::uint64_t fht_mask;
        if (fht_.predict(fhtPc(req.pc), loc.offset, fht_mask))
            predicted = static_cast<std::uint32_t>(fht_mask) &
                        fullPageMask();
    }
    predicted |= blockBit(loc.offset);

    DramCacheResult result;
    result.hit = false;

    // Singleton bypass: serve the block straight from memory without
    // allocating a page.
    if (config_.singletonEnabled && !promoted &&
        predicted == blockBit(loc.offset) &&
        config_.footprintPredictionEnabled) {
        ++stats_.singletonBypasses;
        const Addr addr = blockAddrOf(loc.page, loc.offset);
        result.doneAt = offchip_
                            ->addrAccess(addr, kBlockBytes, false,
                                         offchip_started
                                             ? offchip_head_start
                                             : tag_done)
                            .completion;
        ++stats_.offchipDemandBlocks;
        singletons_.insert(loc.page, fhtPc(req.pc), loc.offset,
                           loc.offset);
        return result;
    }

    // Allocate: evict the victim way first.
    const int victim = pickVictim(loc.set);
    const std::size_t idx = setBase(loc.set) + victim;
    if (ways_.valid(idx))
        evictPage(loc.set, victim, tag_done);

    // Fetch the predicted footprint, demanded block first.
    const std::uint32_t fetch_mask = predicted;
    Cycle last_done = tag_done;
    const Cycle critical = fetchFootprint(
        loc, fetch_mask, /*fetch_demand=*/true, tag_done,
        offchip_started ? offchip_head_start : tag_done, offchip_started,
        last_done);

    // Fill the page (data + metadata) into the stacked row.
    stacked_->rowAccess(geometry_.dataRowOfWay(loc.set, victim),
                        popCount(fetch_mask) * kBlockBytes +
                            geometry_.pageMetaBytes,
                        true, last_done);

    // Install the page metadata (Fig. 2: tag, bit vectors, PC+offset).
    ways_.tagv[idx] = PageWaySoa::kValid | loc.tag;
    ways_.cold[idx].pcHash = static_cast<std::uint32_t>(fhtPc(req.pc));
    ways_.cold[idx].trigger = static_cast<std::uint8_t>(loc.offset);
    ways_.cold[idx].predicted = predicted;
    ways_.hot[idx].fetched = fetch_mask;
    ways_.hot[idx].touched = blockBit(loc.offset);
    ways_.hot[idx].dirty = 0;
    ways_.hot[idx].lastUse = ++useCounter_;
    ways_.cold[idx].gen = statsGen_;

    if (config_.assoc > 1 && config_.wayPolicy == UnisonWayPolicy::Predict)
        wayPred_.train(loc.page, static_cast<std::uint32_t>(victim));

    ++stats_.offchipDemandBlocks;
    stats_.offchipPrefetchBlocks += popCount(fetch_mask) - 1;
    result.doneAt = critical;
    return result;
}

DramCacheResult
UnisonCache::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    // Miss-policy speculation (reads only; writes always probe).
    bool predicted_hit = true;
    Cycle start = req.cycle;
    if (missPred_ && !req.isWrite) {
        predicted_hit = missPred_->predictHit(req.core, req.pc);
        start += missPred_->config().latency;
    }

    const std::uint32_t pred_way =
        (config_.assoc > 1 && config_.wayPolicy == UnisonWayPolicy::Predict)
            ? wayPred_.predict(loc.page)
            : 0;

    // Probe: tag burst (+ overlapped speculative data read for reads).
    Cycle tag_done = 0;
    Cycle data_done = 0;
    if (req.isWrite) {
        tag_done = stacked_
                       ->rowAccess(geometry_.rowOfSet(loc.set),
                                   geometry_.tagBurstBytes, false, start)
                       .completion;
    } else {
        issueProbeReads(loc, pred_way, start, tag_done, data_done);
    }

    const int way = findWay(loc.set, loc.tag);
    const bool block_hit =
        way >= 0 &&
        (ways_.hot[setBase(loc.set) + way].fetched & blockBit(loc.offset)) !=
            0;

    // MAP-I ablation: train, and account for speculative memory reads.
    bool offchip_started = false;
    Cycle offchip_head_start = tag_done;
    if (missPred_ && !req.isWrite) {
        missPred_->train(req.core, req.pc, predicted_hit, block_hit);
        if (!predicted_hit) {
            if (block_hit) {
                // Useless fetch: the block was in the cache.
                offchip_->addrAccess(req.addr, kBlockBytes, false, start);
                ++stats_.offchipWastedBlocks;
            } else {
                offchip_started = true;
                offchip_head_start = start;
            }
        }
    }

    if (way >= 0) {
        if (block_hit)
            return serveBlockHit(req, loc, way, pred_way, tag_done,
                                 data_done);
        return serveBlockMiss(req, loc, way, tag_done);
    }
    return serveTriggerMiss(req, loc, tag_done, offchip_head_start,
                            offchip_started);
}

bool
UnisonCache::pagePresent(Addr addr) const
{
    const Location loc = locate(addr);
    return findWay(loc.set, loc.tag) >= 0;
}

bool
UnisonCache::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways_.hot[setBase(loc.set) + way].fetched &
            blockBit(loc.offset)) != 0;
}

bool
UnisonCache::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways_.hot[setBase(loc.set) + way].dirty &
            blockBit(loc.offset)) != 0;
}

bool
UnisonCache::blockTouched(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways_.hot[setBase(loc.set) + way].touched &
            blockBit(loc.offset)) != 0;
}


// --------------------------------------------------- registry entry

DesignInfo
unisonDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::Unison;
    info.id = "unison";
    info.name = "Unison Cache";
    info.shortName = "Unison";
    info.summary = "page-based, 4-way, in-DRAM tags read in unison "
                   "with the data (the paper's design)";
    info.defaults = UnisonConfig{};
    info.knobs = {
        knobUInt<UnisonConfig>(
            "pageBlocks", "blocks per page (15 = 960B, 31 = 1984B)",
            &UnisonConfig::pageBlocks, 1, 63),
        knobUInt<UnisonConfig>("assoc", "set associativity",
                               &UnisonConfig::assoc, 1, 32),
        knobEnum<UnisonConfig>(
            "wayPolicy",
            "way location: predict / fetch-all / serial-tag",
            &UnisonConfig::wayPolicy,
            {{"predict", UnisonWayPolicy::Predict},
             {"fetch-all", UnisonWayPolicy::FetchAll},
             {"serial-tag", UnisonWayPolicy::SerialTag}}),
        knobEnum<UnisonConfig>(
            "missPolicy", "hit speculation: always-hit / map-i",
            &UnisonConfig::missPolicy,
            {{"always-hit", UnisonMissPolicy::AlwaysHit},
             {"map-i", UnisonMissPolicy::MapI}}),
        knobBool<UnisonConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: whole pages)",
            &UnisonConfig::footprintPredictionEnabled),
        knobBool<UnisonConfig>(
            "singletonPrediction",
            "bypass pages predicted to be singletons",
            &UnisonConfig::singletonEnabled),
        knobUIntFn<UnisonConfig, std::uint32_t>(
            "fhtEntries", "footprint history table entries",
            [](UnisonConfig &c) -> std::uint32_t & {
                return c.fhtConfig.numEntries;
            },
            1, 1u << 24),
        knobUIntFn<UnisonConfig, std::uint32_t>(
            "fhtAssoc", "footprint history table associativity",
            [](UnisonConfig &c) -> std::uint32_t & {
                return c.fhtConfig.assoc;
            },
            1, 64),
        knobUInt<UnisonConfig>(
            "wayPredictorIndexBits",
            "way predictor index width (0 = paper sizing)",
            &UnisonConfig::wayPredictorIndexBits, 0, 24),
    };
    info.validate = [](const DesignVariant &v,
                       const DesignBuildContext &) -> std::string {
        const UnisonConfig &c = std::get<UnisonConfig>(v);
        if (c.fhtConfig.numEntries % c.fhtConfig.assoc != 0)
            return "fhtEntries (" +
                   std::to_string(c.fhtConfig.numEntries) +
                   ") must be a multiple of fhtAssoc (" +
                   std::to_string(c.fhtConfig.assoc) + ")";
        const std::uint32_t sets =
            c.fhtConfig.numEntries / c.fhtConfig.assoc;
        if ((sets & (sets - 1)) != 0)
            return "fhtEntries/fhtAssoc must be a power of two "
                   "(FHT set count), got " +
                   std::to_string(sets) + " sets";
        if (c.wayPredictorIndexBits != 0 &&
            c.wayPredictorIndexBits < 4)
            return "wayPredictorIndexBits must be 0 (auto) or >= 4";
        return "";
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    DramModule *offchip) -> std::unique_ptr<DramCache> {
        UnisonConfig cfg = std::get<UnisonConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.numCores = ctx.numCores;
        return std::make_unique<UnisonCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
