/**
 * @file
 * The DRAM-cache interface every design implements (Unison, Alloy,
 * Footprint, Ideal, NoCache), and the statistics contract the bench
 * harnesses consume.
 *
 * A DramCache sits below the SRAM hierarchy: it services L2 demand
 * misses (reads) and L2 dirty writebacks (writes), owns the stacked
 * DRAM pool, and issues fills/writebacks to the shared off-chip pool.
 */

#ifndef UNISON_CORE_DRAM_CACHE_HH
#define UNISON_CORE_DRAM_CACHE_HH

#include <cstdint>
#include <string>

#include "common/state_io.hh"
#include "common/types.hh"
#include "dram/backend.hh"
#include "stats/stats.hh"

namespace unison {

/** One request arriving at the DRAM-cache level. */
struct DramCacheRequest
{
    Addr addr = 0;      //!< physical byte address of the demanded word
    Pc pc = 0;          //!< instruction that triggered the L2 miss
    int core = 0;       //!< issuing core
    bool isWrite = false; //!< true for L2 dirty writebacks
    Cycle cycle = 0;    //!< cycle the request reaches this level
};

/** Completion information returned to the timing model. */
struct DramCacheResult
{
    Cycle doneAt = 0;   //!< cycle the critical block is available
    bool hit = false;   //!< serviced from the stacked DRAM
};

/**
 * The one field list of DramCacheStats. reset(), the JSON schema
 * (sim/spec_json.cc) and table emission (addCounterRows) all iterate
 * this list through forEachCounter, in this declaration order:
 *
 *  - reads/writes/hits/misses: the access classification;
 *  - pageMisses (trigger misses), blockMisses (page present, block
 *    absent = underprediction), evictions;
 *  - offchip*Blocks: off-chip traffic in 64 B blocks (demand fetches,
 *    footprint blocks beyond demand, mispredict-wasted fetches, dirty
 *    writebacks);
 *  - fp*: footprint bookkeeping accumulated at page evictions
 *    (|predicted AND touched|, |touched|, |fetched AND NOT touched|,
 *    |fetched|);
 *  - singletonBypasses: pages served without allocation.
 */
#define UNISON_DRAM_CACHE_STATS_FIELDS(X)                               \
    X(Counter, reads)                                                   \
    X(Counter, writes)                                                  \
    X(Counter, hits)                                                    \
    X(Counter, misses)                                                  \
    X(Counter, pageMisses)                                              \
    X(Counter, blockMisses)                                             \
    X(Counter, evictions)                                               \
    X(Counter, offchipDemandBlocks)                                     \
    X(Counter, offchipPrefetchBlocks)                                   \
    X(Counter, offchipWastedBlocks)                                     \
    X(Counter, offchipWritebackBlocks)                                  \
    X(Counter, fpPredictedTouched)                                      \
    X(Counter, fpTouched)                                               \
    X(Counter, fpFetchedUntouched)                                      \
    X(Counter, fpFetched)                                               \
    X(Counter, singletonBypasses)

/** Statistics every design maintains (superset; unused stay zero). */
struct DramCacheStats
{
    UNISON_STAT_STRUCT_BODY(UNISON_DRAM_CACHE_STATS_FIELDS)

    std::uint64_t
    accesses() const
    {
        return reads.value() + writes.value();
    }

    /** Cache miss ratio in percent (Figs. 5-6). */
    double
    missRatioPercent() const
    {
        return percent(misses.value(), accesses());
    }

    /**
     * "FP Accuracy" as Table V defines it: the fraction of each page's
     * actual footprint that the predictor fetched up front.
     */
    double
    fpAccuracyPercent() const
    {
        return percent(fpPredictedTouched.value(), fpTouched.value());
    }

    /** "FP Overfetch": fetched blocks never touched before eviction. */
    double
    fpOverfetchPercent() const
    {
        return percent(fpFetchedUntouched.value(), fpFetched.value());
    }

    /** All off-chip fetched blocks (demand + prefetch + wasted). */
    std::uint64_t
    offchipFetchedBlocks() const
    {
        return offchipDemandBlocks.value() +
               offchipPrefetchBlocks.value() +
               offchipWastedBlocks.value();
    }
};

/**
 * Concrete-type tag of a DramCache instance.
 *
 * The timing loop (System::runLoop) is monomorphized per concrete
 * cache type so access() devirtualizes and inlines; this tag is how
 * the once-per-run dispatch recovers the concrete type without a
 * dynamic_cast chain. Every design the experiment factory can build
 * carries its own tag; `Other` is the explicit opt-in for out-of-tree
 * subclasses, which take the generic virtual-dispatch loop.
 */
enum class DramCacheKind : std::uint8_t
{
    Unison,
    Alloy,
    Footprint,
    LohHill,
    NaiveBlockFp,
    NaiveTaggedPage,
    Ideal,
    NoCache,
    AlloyFp,  //!< composed: direct-mapped blocks + footprint prefetch
    UnisonWp, //!< composed: Unison with pluggable way predictors
    Other, //!< out-of-tree subclass: virtual per-access dispatch
};

/** Abstract DRAM cache. */
class DramCache
{
  public:
    /**
     * @param offchip the shared off-chip memory pool (not owned);
     *        nullptr only for designs that never touch memory.
     * @param kind concrete-type tag; subclasses outside this repo keep
     *        the `Other` default and run through virtual dispatch.
     */
    explicit DramCache(MemoryBackend *offchip,
                       DramCacheKind kind = DramCacheKind::Other)
        : offchip_(offchip), kind_(kind)
    {
    }
    virtual ~DramCache() = default;

    /** Concrete-type tag (see DramCacheKind). */
    DramCacheKind kind() const { return kind_; }

    DramCache(const DramCache &) = delete;
    DramCache &operator=(const DramCache &) = delete;

    /** Service one request, advancing all modelled state. */
    virtual DramCacheResult access(const DramCacheRequest &req) = 0;

    /** Design name as used in the paper's tables. */
    virtual std::string name() const = 0;

    /** Nominal stacked-DRAM capacity (0 for NoCache). */
    virtual std::uint64_t capacityBytes() const = 0;

    /** The stacked pool, if the design has one (for traffic stats). */
    virtual MemoryBackend *stackedDram() { return nullptr; }

    const DramCacheStats &stats() const { return stats_; }

    /** Reset measurement state (end of warm-up). */
    virtual void
    resetStats()
    {
        stats_.reset();
        if (stackedDram() != nullptr)
            stackedDram()->resetStats();
    }

    /**
     * Warm-state checkpoint support. A design that returns true must
     * serialize *all* mutable simulation state -- tag/stamp arrays,
     * predictor tables, trackers, the stacked pool's bank timing --
     * in saveState, such that loadState on a freshly constructed
     * identical design makes every subsequent access() bit-identical
     * to a design that simulated the warmup itself. Statistics are
     * excluded by contract (the warm boundary resets them). Default
     * false: out-of-tree designs simply opt out of checkpoint reuse.
     */
    virtual bool checkpointable() const { return false; }
    virtual void saveState(StateWriter &out) const { (void)out; }
    virtual void loadState(StateReader &in) { (void)in; }

  protected:
    MemoryBackend *offchip_;
    DramCacheStats stats_;

  private:
    DramCacheKind kind_;
};

} // namespace unison

#endif // UNISON_CORE_DRAM_CACHE_HH
