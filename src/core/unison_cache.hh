/**
 * @file
 * Unison Cache (Sec. III of the paper) -- the primary contribution.
 *
 * A page-based, set-associative stacked-DRAM cache whose tags live in
 * the stacked DRAM itself:
 *
 *  - pages of 15 blocks (960 B) or 31 blocks (1984 B); the
 *    non-power-of-two address mapping uses the residue-arithmetic
 *    divider (Sec. III-A.7);
 *  - 4-way sets colocated in one 8 KB DRAM row (two sets per row for
 *    960 B pages, Fig. 3), per-set tag metadata at the head of the row;
 *  - on every access the tag burst and the (way-predicted) data-block
 *    read are issued back-to-back to the same row, overlapped rather
 *    than serialized (Sec. III-A, first insight);
 *  - a footprint predictor decides which blocks to fetch on a page
 *    (trigger) miss, with singleton bypass (Sec. III-A.1-4);
 *  - a static always-hit policy replaces Alloy Cache's miss predictor
 *    (second insight); an optional MAP-I mode exists as an ablation;
 *  - block state uses the Footprint Cache V/D encoding (invalid /
 *    fetched-untouched / accessed-clean / accessed-dirty) so footprints
 *    can be learned without extra storage (Sec. III-A.2).
 */

#ifndef UNISON_CORE_UNISON_CACHE_HH
#define UNISON_CORE_UNISON_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/page_set.hh"
#include "common/fastdiv.hh"
#include "core/dram_cache.hh"
#include "core/geometry.hh"
#include "dram/dram.hh"
#include "dram/timing.hh"
#include "predictors/footprint_table.hh"
#include "predictors/miss_predictor.hh"
#include "predictors/singleton_table.hh"
#include "predictors/way_predictor.hh"

namespace unison {

/** How the correct way of a set is located (Sec. III-A.5 ablations). */
enum class UnisonWayPolicy
{
    Predict,   //!< way predictor, overlapped reads (the paper's design)
    FetchAll,  //!< stream all ways in parallel (4x hit traffic)
    SerialTag, //!< tag read, then data read (serialized)
};

/** Hit/miss speculation policy (Sec. III-A, second insight). */
enum class UnisonMissPolicy
{
    AlwaysHit, //!< static prediction; probe the cache first (default)
    MapI,      //!< Alloy-style dynamic miss predictor (ablation)
};

/** Full configuration of a Unison Cache instance. */
struct UnisonConfig
{
    std::uint64_t capacityBytes = 1_GiB;
    std::uint32_t pageBlocks = 15; //!< 15 (960 B) or 31 (1984 B)
    std::uint32_t assoc = 4;

    UnisonWayPolicy wayPolicy = UnisonWayPolicy::Predict;
    UnisonMissPolicy missPolicy = UnisonMissPolicy::AlwaysHit;

    /** Fetch predicted footprints (false: fetch whole pages). */
    bool footprintPredictionEnabled = true;

    /** Bypass pages predicted to be singletons. */
    bool singletonEnabled = true;

    /** 0 selects the paper's width for the capacity (12 or 16 bits). */
    std::uint32_t wayPredictorIndexBits = 0;

    FootprintTableConfig fhtConfig{};
    SingletonTableConfig singletonConfig{};

    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();

    int numCores = 16; //!< for the MAP-I ablation predictor
};

class UnisonCache final : public DramCache
{
  public:
    UnisonCache(const UnisonConfig &config, DramModule *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override;
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    DramModule *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const UnisonConfig &config() const { return config_; }
    const UnisonGeometry &geometry() const { return geometry_; }
    const WayPredictorStats &wayPredictorStats() const
    {
        return wayPred_.stats();
    }
    const FootprintHistoryTable &footprintTable() const { return fht_; }
    const SingletonTable &singletonTable() const { return singletons_; }
    const MissPredictor *missPredictor() const { return missPred_.get(); }

    /** @name Test hooks (model state inspection, no timing effects) */
    /**@{*/
    bool pagePresent(Addr addr) const;
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;
    bool blockTouched(Addr addr) const;
    /**@}*/

    /** Page number and in-page block offset for a byte address. */
    void
    mapAddress(Addr addr, std::uint64_t &page, std::uint32_t &offset) const;

  private:
    struct Location
    {
        std::uint64_t page = 0;
        std::uint32_t offset = 0;
        std::uint64_t set = 0;
        std::uint32_t tag = 0;
    };

    Location locate(Addr addr) const;

    /** Base SoA index of `set` (way fields live at base + way). */
    std::size_t setBase(std::uint64_t set) const
    {
        return static_cast<std::size_t>(set) * config_.assoc;
    }

    /** Find the way holding `tag` in `set`; -1 if absent. */
    int
    findWay(std::uint64_t set, std::uint32_t tag) const
    {
        return ways_.findWay(setBase(set), config_.assoc, tag);
    }

    /** Victim way: an invalid way if any, else LRU. */
    int
    pickVictim(std::uint64_t set) const
    {
        return static_cast<int>(
            ways_.pickVictim(setBase(set), config_.assoc));
    }

    /**
     * Time the overlapped tag + data reads that start every probe.
     * Returns the tag-resolve cycle and the predicted-way data cycle.
     */
    void issueProbeReads(const Location &loc, std::uint32_t pred_way,
                         Cycle start, Cycle &tag_done, Cycle &data_done);

    /** Service a hit to a fetched block. */
    DramCacheResult serveBlockHit(const DramCacheRequest &req,
                                  const Location &loc, int way,
                                  std::uint32_t pred_way, Cycle tag_done,
                                  Cycle data_done);

    /** Service an underprediction miss (page present, block absent). */
    DramCacheResult serveBlockMiss(const DramCacheRequest &req,
                                   const Location &loc, int way,
                                   Cycle tag_done);

    /** Service a trigger miss (page absent). */
    DramCacheResult serveTriggerMiss(const DramCacheRequest &req,
                                     const Location &loc, Cycle tag_done,
                                     Cycle offchip_head_start,
                                     bool offchip_started);

    /** Evict `way` of `set`: write back dirty data, train the FHT. */
    void evictPage(std::uint64_t set, int way, Cycle when);

    /** Fetch `mask` blocks of page `page` from memory; returns the
     *  completion of the critical (demanded) block. */
    Cycle fetchFootprint(const Location &loc, std::uint32_t mask,
                         bool write_allocate_demand, Cycle start,
                         Cycle head_start, bool head_started,
                         Cycle &last_done);

    std::uint32_t
    blockBit(std::uint32_t offset) const
    {
        return 1u << offset;
    }

    std::uint32_t
    fullPageMask() const
    {
        return (config_.pageBlocks >= 32)
                   ? 0xffffffffu
                   : ((1u << config_.pageBlocks) - 1);
    }

    Addr
    blockAddrOf(std::uint64_t page, std::uint32_t offset) const
    {
        return blockAddress(page * config_.pageBlocks + offset);
    }

    UnisonConfig config_;
    UnisonGeometry geometry_;
    /**
     * Page split (block -> page, offset). The modelled hardware uses
     * the MersenneDivider adder tree for its 2^n - 1 page sizes; the
     * simulator computes the identical mapping with a reciprocal
     * multiply, which also covers non-Mersenne ablation page sizes.
     */
    FastDiv64 pageDiv_;

    std::unique_ptr<DramModule> stacked_;
    WayPredictor wayPred_;
    FootprintHistoryTable fht_;
    SingletonTable singletons_;
    std::unique_ptr<MissPredictor> missPred_;

    /**
     * Per-way page metadata in struct-of-arrays form (the paper's
     * two-bit-per-block state encoding: fetched (valid) / touched
     * (demanded) / dirty, with predicted kept for accuracy accounting
     * only). The packed tag words are all the hot findWay scan reads:
     * a 4-way set's tags are 32 contiguous bytes.
     */
    PageWaySoa ways_;
    std::uint32_t useCounter_ = 0;

    /**
     * Incremented on resetStats(); footprint accuracy/overfetch are
     * only accumulated for pages *allocated* in the current
     * generation, so cold-phase allocations (default full-page
     * predictions) cannot pollute post-warm statistics.
     */
    std::uint8_t statsGen_ = 0;
};

} // namespace unison

#endif // UNISON_CORE_UNISON_CACHE_HH
