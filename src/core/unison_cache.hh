/**
 * @file
 * Unison Cache (Sec. III of the paper) -- the primary contribution --
 * expressed as a composition over the policy framework:
 *
 *  - CacheOrganization: PageOrganization (cache/organization.hh) --
 *    pages of 15 blocks (960 B) or 31 blocks (1984 B) in 4-way sets,
 *    located with the residue-arithmetic-equivalent reciprocal divide
 *    (Sec. III-A.7);
 *  - FetchPolicy: FootprintFetchPolicy (predictors/fetch_policy.hh) --
 *    footprint prediction with singleton bypass (Sec. III-A.1-4);
 *  - FillEngine/WritebackEngine (core/fill_engine.hh) own all
 *    off-chip traffic and its accounting;
 *  - the way-location policy is a *compile-time* template parameter
 *    (Sec. III-A.5/6): UnisonCache instantiates the paper's hashed
 *    address-based predictor; core/unison_wp.hh instantiates the same
 *    cache body with swappable predictors for ablation.
 *
 * What remains in this file is what genuinely defines Unison Cache:
 * the in-DRAM tag placement and its timing. Tags live in the stacked
 * DRAM rows themselves; on every access the tag burst and the
 * (way-predicted) data-block read are issued back-to-back to the same
 * row, overlapped rather than serialized (Sec. III-A, first insight);
 * a static always-hit policy replaces Alloy Cache's miss predictor
 * (second insight, with an optional MAP-I ablation); and block state
 * uses the Footprint Cache V/D encoding so footprints can be learned
 * without extra storage (Sec. III-A.2).
 */

#ifndef UNISON_CORE_UNISON_CACHE_HH
#define UNISON_CORE_UNISON_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/organization.hh"
#include "cache/page_set.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "core/dram_cache.hh"
#include "core/fill_engine.hh"
#include "core/geometry.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"
#include "predictors/fetch_policy.hh"
#include "predictors/miss_predictor.hh"
#include "predictors/way_predictor.hh"

namespace unison {

/** How the correct way of a set is located (Sec. III-A.5 ablations). */
enum class UnisonWayPolicy
{
    Predict,   //!< way predictor, overlapped reads (the paper's design)
    FetchAll,  //!< stream all ways in parallel (4x hit traffic)
    SerialTag, //!< tag read, then data read (serialized)
};

/** Hit/miss speculation policy (Sec. III-A, second insight). */
enum class UnisonMissPolicy
{
    AlwaysHit, //!< static prediction; probe the cache first (default)
    MapI,      //!< Alloy-style dynamic miss predictor (ablation)
};

/** Full configuration of a Unison Cache instance. */
struct UnisonConfig
{
    std::uint64_t capacityBytes = 1_GiB;
    std::uint32_t pageBlocks = 15; //!< 15 (960 B) or 31 (1984 B)
    std::uint32_t assoc = 4;

    UnisonWayPolicy wayPolicy = UnisonWayPolicy::Predict;
    UnisonMissPolicy missPolicy = UnisonMissPolicy::AlwaysHit;

    /** Fetch predicted footprints (false: fetch whole pages). */
    bool footprintPredictionEnabled = true;

    /** Bypass pages predicted to be singletons. */
    bool singletonEnabled = true;

    /** 0 selects the paper's width for the capacity (12 or 16 bits). */
    std::uint32_t wayPredictorIndexBits = 0;

    FootprintTableConfig fhtConfig{};
    SingletonTableConfig singletonConfig{};

    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();

    int numCores = 16; //!< for the MAP-I ablation predictor
};

/**
 * The paper's way predictor as a composition policy: the hashed
 * address-based WayPredictor (Sec. III-A.6), ignoring the set index.
 */
class HashedWayPolicy
{
  public:
    static constexpr DramCacheKind kCacheKind = DramCacheKind::Unison;

    HashedWayPolicy(const UnisonConfig &config, const UnisonGeometry &)
        : pred_(config.wayPredictorIndexBits != 0
                    ? config.wayPredictorIndexBits
                    : WayPredictor::indexBitsForCapacity(
                          config.capacityBytes),
                config.assoc)
    {
    }

    std::uint32_t
    predict(std::uint64_t page, std::uint64_t) const
    {
        return pred_.predict(page);
    }

    void
    train(std::uint64_t page, std::uint64_t, std::uint32_t way)
    {
        pred_.train(page, way);
    }

    void recordOutcome(bool correct) { pred_.recordOutcome(correct); }

    const WayPredictorStats &stats() const { return pred_.stats(); }
    void resetStats() { pred_.resetStats(); }

    std::string nameSuffix() const { return ""; }

    void saveState(StateWriter &out) const { pred_.saveState(out); }
    void loadState(StateReader &in) { pred_.loadState(in); }

  private:
    WayPredictor pred_;
};

/**
 * The Unison Cache body, parameterized on the way-location predictor
 * (a compile-time policy: `final` instantiations keep the kind-tag
 * devirtualized dispatch, zero virtual calls on the access path).
 *
 * @tparam WayPolicyT  constructed from (config, geometry); provides
 *         predict(page, set), train(page, set, way),
 *         recordOutcome(correct), stats(), resetStats(),
 *         nameSuffix(), and the composition's DramCacheKind.
 * @tparam ConfigT     UnisonConfig, or a derived struct carrying the
 *         policy's extra knobs (see UnisonWpConfig).
 */
template <typename WayPolicyT, typename ConfigT = UnisonConfig>
class UnisonCacheT final : public DramCache
{
  public:
    UnisonCacheT(const ConfigT &config, MemoryBackend *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override;
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const ConfigT &config() const { return config_; }
    const UnisonGeometry &geometry() const { return geometry_; }
    const WayPredictorStats &wayPredictorStats() const
    {
        return wayPred_.stats();
    }
    const FootprintHistoryTable &footprintTable() const
    {
        return fetchPolicy_.footprintTable();
    }
    const SingletonTable &singletonTable() const
    {
        return fetchPolicy_.singletonTable();
    }
    const MissPredictor *missPredictor() const { return missPred_.get(); }

    /** @name Test hooks (model state inspection, no timing effects) */
    /**@{*/
    bool pagePresent(Addr addr) const;
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;
    bool blockTouched(Addr addr) const;
    /**@}*/

    /** Page number and in-page block offset for a byte address. */
    void
    mapAddress(Addr addr, std::uint64_t &page,
               std::uint32_t &offset) const
    {
        org_.mapAddress(addr, page, offset);
    }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        org_.saveState(out);
        stacked_->saveState(out);
        wayPred_.saveState(out);
        fetchPolicy_.saveState(out);
        if (missPred_)
            missPred_->saveState(out);
        out.pod(useCounter_);
        out.pod(statsGen_);
    }

    void
    loadState(StateReader &in) override
    {
        org_.loadState(in);
        stacked_->loadState(in);
        wayPred_.loadState(in);
        fetchPolicy_.loadState(in);
        if (missPred_)
            missPred_->loadState(in);
        in.pod(useCounter_);
        in.pod(statsGen_);
    }

  private:
    using Location = PageLocation;

    Location locate(Addr addr) const { return org_.locate(addr); }

    std::size_t
    setBase(std::uint64_t set) const
    {
        return org_.setBase(set);
    }

    int
    findWay(std::uint64_t set, std::uint32_t tag) const
    {
        return org_.findWay(set, tag);
    }

    PageWaySoa &ways() { return org_.ways(); }
    const PageWaySoa &ways() const { return org_.ways(); }

    /**
     * Time the overlapped tag + data reads that start every probe.
     * Returns the tag-resolve cycle and the predicted-way data cycle.
     */
    void issueProbeReads(const Location &loc, std::uint32_t pred_way,
                         Cycle start, Cycle &tag_done, Cycle &data_done);

    /** Service a hit to a fetched block. */
    DramCacheResult serveBlockHit(const DramCacheRequest &req,
                                  const Location &loc, int way,
                                  std::uint32_t pred_way, Cycle tag_done,
                                  Cycle data_done);

    /** Service an underprediction miss (page present, block absent). */
    DramCacheResult serveBlockMiss(const DramCacheRequest &req,
                                   const Location &loc, int way,
                                   Cycle tag_done);

    /** Service a trigger miss (page absent). */
    DramCacheResult serveTriggerMiss(const DramCacheRequest &req,
                                     const Location &loc, Cycle tag_done,
                                     Cycle offchip_head_start,
                                     bool offchip_started);

    /** Evict `way` of `set`: write back dirty data, train the FHT. */
    void evictPage(std::uint64_t set, int way, Cycle when);

    std::uint32_t
    blockBit(std::uint32_t offset) const
    {
        return 1u << offset;
    }

    std::uint32_t
    fullPageMask() const
    {
        return fullBlockMask(config_.pageBlocks);
    }

    Addr
    blockAddrOf(std::uint64_t page, std::uint32_t offset) const
    {
        return blockAddress(page * config_.pageBlocks + offset);
    }

    ConfigT config_;
    UnisonGeometry geometry_;

    /** CacheOrganization: page split + set metadata (hot/cold SoA). */
    PageOrganization org_;

    std::unique_ptr<MemoryBackend> stacked_;
    WayPolicyT wayPred_;
    FootprintFetchPolicy fetchPolicy_;
    std::unique_ptr<MissPredictor> missPred_;
    FillEngine fill_;
    WritebackEngine writeback_;

    std::uint32_t useCounter_ = 0;

    /**
     * Incremented on resetStats(); footprint accuracy/overfetch are
     * only accumulated for pages *allocated* in the current
     * generation, so cold-phase allocations (default full-page
     * predictions) cannot pollute post-warm statistics.
     */
    std::uint8_t statsGen_ = 0;
};

// ------------------------------------------------- template bodies
// (header-resident: the System timing loop monomorphizes on the
// concrete instantiation, so access() inlines with no virtual calls)

template <typename WayPolicyT, typename ConfigT>
UnisonCacheT<WayPolicyT, ConfigT>::UnisonCacheT(const ConfigT &config,
                                                MemoryBackend *offchip)
    : DramCache(offchip, WayPolicyT::kCacheKind),
      config_(config),
      geometry_(UnisonGeometry::compute(config.capacityBytes,
                                        config.pageBlocks, config.assoc)),
      stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming)),
      wayPred_(config, geometry_),
      fetchPolicy_([&] {
          FootprintFetchPolicy::Config c;
          c.fht = config.fhtConfig;
          c.fht.maxBlocksPerPage = config.pageBlocks;
          c.singleton = config.singletonConfig;
          c.footprintPrediction = config.footprintPredictionEnabled;
          c.singletonBypass = config.singletonEnabled;
          return c;
      }())
{
    UNISON_ASSERT(offchip != nullptr, "Unison Cache needs a memory pool");
    UNISON_ASSERT(config_.pageBlocks <= 32,
                  "page masks are 32 bits wide; pageBlocks = ",
                  config_.pageBlocks);
    if (config_.missPolicy == UnisonMissPolicy::MapI) {
        MissPredictorConfig mp;
        mp.numCores = config_.numCores;
        missPred_ = std::make_unique<MissPredictor>(mp);
    }
    org_.init(config_.pageBlocks, geometry_.numSets, config_.assoc);
    fill_.init(offchip, &stats_);
    writeback_.init(offchip, &stats_);
}

template <typename WayPolicyT, typename ConfigT>
std::string
UnisonCacheT<WayPolicyT, ConfigT>::name() const
{
    return "Unison-" + std::to_string(config_.pageBlocks * kBlockBytes) +
           "B-" + std::to_string(config_.assoc) + "way" +
           wayPred_.nameSuffix();
}

template <typename WayPolicyT, typename ConfigT>
void
UnisonCacheT<WayPolicyT, ConfigT>::resetStats()
{
    DramCache::resetStats();
    ++statsGen_;
    wayPred_.resetStats();
    fetchPolicy_.resetStats();
    if (missPred_)
        missPred_->resetStats();
}

template <typename WayPolicyT, typename ConfigT>
void
UnisonCacheT<WayPolicyT, ConfigT>::issueProbeReads(
    const Location &loc, std::uint32_t pred_way, Cycle start,
    Cycle &tag_done, Cycle &data_done)
{
    // Tag burst first, then the speculative data read: back-to-back
    // commands to the same row; the channel model overlaps the row
    // activation and serializes only the bus bursts (Sec. III-A).
    const std::uint64_t tag_row = geometry_.rowOfSet(loc.set);
    tag_done = stacked_
                   ->rowAccess(tag_row, geometry_.tagBurstBytes,
                               /*is_write=*/false, start)
                   .completion;

    if (config_.wayPolicy == UnisonWayPolicy::SerialTag) {
        data_done = 0; // the data read is issued after tag resolve
        return;
    }

    if (config_.wayPolicy == UnisonWayPolicy::FetchAll) {
        // Stream every way of the set (possibly from several rows).
        Cycle done = 0;
        if (geometry_.rowsPerSet == 1) {
            done = stacked_
                       ->rowAccess(tag_row,
                                   config_.assoc * kBlockBytes,
                                   false, start)
                       .completion;
        } else {
            for (std::uint32_t r = 0; r < geometry_.rowsPerSet; ++r) {
                done = std::max(
                    done,
                    stacked_
                        ->rowAccess(tag_row + r,
                                    geometry_.waysPerRow * kBlockBytes,
                                    false, start)
                        .completion);
            }
        }
        data_done = done;
        return;
    }

    const std::uint64_t data_row = geometry_.dataRowOfWay(loc.set,
                                                          pred_way);
    data_done = stacked_
                    ->rowAccess(data_row, kBlockBytes, false, start)
                    .completion;
}

template <typename WayPolicyT, typename ConfigT>
DramCacheResult
UnisonCacheT<WayPolicyT, ConfigT>::serveBlockHit(
    const DramCacheRequest &req, const Location &loc, int way,
    std::uint32_t pred_way, Cycle tag_done, Cycle data_done)
{
    const std::size_t idx = setBase(loc.set) + way;
    const std::uint32_t bit = blockBit(loc.offset);

    ++stats_.hits;
    ways().hot[idx].touched |= bit;
    if (req.isWrite)
        ways().hot[idx].dirty |= bit;
    ways().hot[idx].lastUse = ++useCounter_;

    DramCacheResult result;
    result.hit = true;

    if (req.isWrite) {
        // Tag check resolved the way; then the block write goes to the
        // (open) row. Writes are posted: done when accepted.
        result.doneAt = stacked_
                            ->rowAccess(geometry_.dataRowOfWay(loc.set,
                                                               way),
                                        kBlockBytes, true, tag_done)
                            .completion;
        if (config_.assoc > 1 &&
            config_.wayPolicy == UnisonWayPolicy::Predict)
            wayPred_.train(loc.page, loc.set,
                           static_cast<std::uint32_t>(way));
        return result;
    }

    switch (config_.wayPolicy) {
      case UnisonWayPolicy::Predict: {
        const bool correct =
            static_cast<std::uint32_t>(way) == pred_way ||
            config_.assoc == 1;
        if (config_.assoc > 1) {
            wayPred_.recordOutcome(correct);
            wayPred_.train(loc.page, loc.set,
                           static_cast<std::uint32_t>(way));
        }
        if (correct) {
            result.doneAt = data_done;
        } else {
            // Way mispredict: re-read the correct way. The row is now
            // open, so this is a cheap row-buffer hit (Sec. III-A.6).
            result.doneAt =
                stacked_
                    ->rowAccess(geometry_.dataRowOfWay(loc.set, way),
                                kBlockBytes, false,
                                std::max(tag_done, data_done))
                    .completion;
        }
        break;
      }
      case UnisonWayPolicy::FetchAll:
        result.doneAt = std::max(tag_done, data_done);
        break;
      case UnisonWayPolicy::SerialTag:
        result.doneAt =
            stacked_
                ->rowAccess(geometry_.dataRowOfWay(loc.set, way),
                            kBlockBytes, false, tag_done)
                .completion;
        break;
    }
    return result;
}

template <typename WayPolicyT, typename ConfigT>
DramCacheResult
UnisonCacheT<WayPolicyT, ConfigT>::serveBlockMiss(
    const DramCacheRequest &req, const Location &loc, int way,
    Cycle tag_done)
{
    const std::size_t idx = setBase(loc.set) + way;
    const std::uint32_t bit = blockBit(loc.offset);

    ++stats_.misses;
    ++stats_.blockMisses;
    ways().hot[idx].lastUse = ++useCounter_;

    DramCacheResult result;
    result.hit = false;

    const std::uint64_t data_row = geometry_.dataRowOfWay(loc.set, way);
    if (req.isWrite) {
        // Full-block write allocation: no off-chip fetch needed.
        ways().hot[idx].fetched |= bit;
        ways().hot[idx].touched |= bit;
        ways().hot[idx].dirty |= bit;
        result.doneAt = stacked_
                            ->rowAccess(data_row, kBlockBytes, true,
                                        tag_done)
                            .completion;
        return result;
    }

    // Underprediction (Sec. III-A.3): fetch just the missing block.
    // The miss is detected after the in-DRAM tag resolves.
    const Cycle mem_done = fill_.demandBlock(req.addr, tag_done);
    ways().hot[idx].fetched |= bit;
    ways().hot[idx].touched |= bit; // eviction propagates the correction

    // Background fill of the block into the stacked row.
    stacked_->rowAccess(data_row, kBlockBytes, true, mem_done);
    result.doneAt = mem_done;
    return result;
}

template <typename WayPolicyT, typename ConfigT>
void
UnisonCacheT<WayPolicyT, ConfigT>::evictPage(std::uint64_t set, int way,
                                             Cycle when)
{
    const std::size_t idx = setBase(set) + way;
    const std::uint64_t page =
        org_.pageOf(set, static_cast<std::uint32_t>(way));

    // The stored (PC, offset) pair is read from the row only now, at
    // eviction, and used to train the FHT with the observed footprint;
    // dirty blocks leave as one batched read plus per-block writes
    // (footprint-granular transfers, the Sec. V-D energy advantage).
    evictPageWay(
        ways(), idx, writeback_, *stacked_,
        geometry_.dataRowOfWay(set, static_cast<std::uint32_t>(way)),
        [&](std::uint32_t off) { return blockAddrOf(page, off); }, when,
        fetchPolicy_, stats_, statsGen_);
}

template <typename WayPolicyT, typename ConfigT>
DramCacheResult
UnisonCacheT<WayPolicyT, ConfigT>::serveTriggerMiss(
    const DramCacheRequest &req, const Location &loc, Cycle tag_done,
    Cycle offchip_head_start, bool offchip_started)
{
    ++stats_.misses;
    ++stats_.pageMisses;

    if (req.isWrite) {
        // Write-no-allocate: an L2 writeback whose page is not
        // resident goes straight to memory. Allocating here would
        // evict a useful page and (worse) fetch a footprint predicted
        // from a trigger PC that has nothing to do with this data.
        DramCacheResult result;
        result.hit = false;
        result.doneAt = writeback_.writeBlock(
            blockAddrOf(loc.page, loc.offset), tag_done);
        return result;
    }

    // Footprint prediction for the trigger (PC, offset), including the
    // singleton promotion check (Sec. III-A.4).
    const FetchDecision decision = fetchPolicy_.onTriggerMiss(
        loc.page, req.pc, loc.offset, fullPageMask());

    DramCacheResult result;
    result.hit = false;

    // Singleton bypass: serve the block straight from memory without
    // allocating a page.
    if (decision.bypassSingleton) {
        ++stats_.singletonBypasses;
        result.doneAt = fill_.demandBlock(
            blockAddrOf(loc.page, loc.offset),
            offchip_started ? offchip_head_start : tag_done);
        fetchPolicy_.noteBypass(loc.page, req.pc, loc.offset);
        return result;
    }

    // Allocate: evict the victim way first.
    const int victim = org_.pickVictim(loc.set);
    const std::size_t idx = setBase(loc.set) + victim;
    if (ways().valid(idx))
        evictPage(loc.set, victim, tag_done);

    // Fetch the predicted footprint, demanded block first; remaining
    // blocks stream behind the critical one sharing the memory row.
    const std::uint32_t fetch_mask = decision.mask;
    const FillEngine::FootprintFetch fetch = fill_.fetchFootprint(
        [&](std::uint32_t off) { return blockAddrOf(loc.page, off); },
        fetch_mask, loc.offset, tag_done,
        offchip_started ? offchip_head_start : tag_done);

    // Fill the page (data + metadata) into the stacked row.
    stacked_->rowAccess(geometry_.dataRowOfWay(loc.set, victim),
                        popCount(fetch_mask) * kBlockBytes +
                            geometry_.pageMetaBytes,
                        true, fetch.lastDone);

    // Install the page metadata (Fig. 2: tag, bit vectors, PC+offset).
    ways().install(idx,
                   {loc.tag,
                    static_cast<std::uint32_t>(fhtPc(req.pc)),
                    static_cast<std::uint8_t>(loc.offset),
                    decision.mask, fetch_mask, blockBit(loc.offset),
                    ++useCounter_, statsGen_});

    if (config_.assoc > 1 && config_.wayPolicy == UnisonWayPolicy::Predict)
        wayPred_.train(loc.page, loc.set,
                       static_cast<std::uint32_t>(victim));

    result.doneAt = fetch.critical;
    return result;
}

template <typename WayPolicyT, typename ConfigT>
DramCacheResult
UnisonCacheT<WayPolicyT, ConfigT>::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    // Miss-policy speculation (reads only; writes always probe).
    bool predicted_hit = true;
    Cycle start = req.cycle;
    if (missPred_ && !req.isWrite) {
        predicted_hit = missPred_->predictHit(req.core, req.pc);
        start += missPred_->config().latency;
    }

    const std::uint32_t pred_way =
        (config_.assoc > 1 && config_.wayPolicy == UnisonWayPolicy::Predict)
            ? wayPred_.predict(loc.page, loc.set)
            : 0;

    // Probe: tag burst (+ overlapped speculative data read for reads).
    Cycle tag_done = 0;
    Cycle data_done = 0;
    if (req.isWrite) {
        tag_done = stacked_
                       ->rowAccess(geometry_.rowOfSet(loc.set),
                                   geometry_.tagBurstBytes, false, start)
                       .completion;
    } else {
        issueProbeReads(loc, pred_way, start, tag_done, data_done);
    }

    const int way = findWay(loc.set, loc.tag);
    const bool block_hit =
        way >= 0 &&
        (ways().hot[setBase(loc.set) + way].fetched &
         blockBit(loc.offset)) != 0;

    // MAP-I ablation: train, and account for speculative memory reads.
    bool offchip_started = false;
    Cycle offchip_head_start = tag_done;
    if (missPred_ && !req.isWrite) {
        missPred_->train(req.core, req.pc, predicted_hit, block_hit);
        if (!predicted_hit) {
            if (block_hit) {
                // Useless fetch: the block was in the cache.
                fill_.wastedBlock(req.addr, start);
            } else {
                offchip_started = true;
                offchip_head_start = start;
            }
        }
    }

    if (way >= 0) {
        if (block_hit)
            return serveBlockHit(req, loc, way, pred_way, tag_done,
                                 data_done);
        return serveBlockMiss(req, loc, way, tag_done);
    }
    return serveTriggerMiss(req, loc, tag_done, offchip_head_start,
                            offchip_started);
}

template <typename WayPolicyT, typename ConfigT>
bool
UnisonCacheT<WayPolicyT, ConfigT>::pagePresent(Addr addr) const
{
    const Location loc = locate(addr);
    return findWay(loc.set, loc.tag) >= 0;
}

template <typename WayPolicyT, typename ConfigT>
bool
UnisonCacheT<WayPolicyT, ConfigT>::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways().hot[setBase(loc.set) + way].fetched &
            blockBit(loc.offset)) != 0;
}

template <typename WayPolicyT, typename ConfigT>
bool
UnisonCacheT<WayPolicyT, ConfigT>::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways().hot[setBase(loc.set) + way].dirty &
            blockBit(loc.offset)) != 0;
}

template <typename WayPolicyT, typename ConfigT>
bool
UnisonCacheT<WayPolicyT, ConfigT>::blockTouched(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways().hot[setBase(loc.set) + way].touched &
            blockBit(loc.offset)) != 0;
}

/** The paper's Unison Cache: the body above composed with the hashed
 *  address-based way predictor. */
using UnisonCache = UnisonCacheT<HashedWayPolicy>;

/** Knob-range validation shared by the `unison` and `unisonwp`
 *  registry entries (defined in unison_cache.cc). */
std::string validateUnisonKnobs(const UnisonConfig &config);

} // namespace unison

#endif // UNISON_CORE_UNISON_CACHE_HH
