/**
 * @file
 * Analytical conflict model for direct-mapped and set-associative
 * page-based caches (Sec. III-A.5).
 *
 * The paper motivates Unison Cache's 4-way associativity with an
 * analytical model it omits "for space reasons", quoting only its
 * headline: for a 1 GB cache with 2 KB pages, the probability of
 * conflicts in a direct-mapped page-based organization is ~500x that
 * of a direct-mapped block-based cache of the same size, because two
 * blocks conflict "not only if the two blocks themselves are needed at
 * the same time, but also if any two blocks from the pages they belong
 * to are needed at the same time", so the probability grows
 * quadratically with the page size.
 *
 * This module reconstructs that model in two parts:
 *
 *  1. *Pairwise amplification*: given that two allocation units map to
 *     the same set, the probability that they are ever needed
 *     simultaneously is amplified from q (one block pair) to
 *     1 - (1-q)^(B^2) (any of the B x B cross pairs), which for small
 *     q approaches B^2 * q. Counting unordered pairs gives the paper's
 *     worst-case factor B^2 / 2 = 512 ~ "500" for B = 32 blocks.
 *
 *  2. *Set-occupancy model*: with W live units hashed uniformly into S
 *     sets of associativity a, per-set occupancy is ~Poisson(W/S) and
 *     the conflict-miss pressure is the expected fraction of live
 *     units that exceed a set's capacity. This reproduces Fig. 5's
 *     shape: 4 ways remove most of the direct-mapped conflicts and
 *     ways beyond ~4 show rapidly diminishing returns.
 */

#ifndef UNISON_CORE_CONFLICT_MODEL_HH
#define UNISON_CORE_CONFLICT_MODEL_HH

#include <cstdint>

namespace unison {

/**
 * Blocks per page for a (page, block) size pair.
 * @pre page_bytes is a positive multiple of block_bytes.
 */
std::uint32_t blocksPerPage(std::uint32_t page_bytes,
                            std::uint32_t block_bytes);

/**
 * Probability that two same-set *pages* are ever needed
 * simultaneously, given that an individual block pair is needed
 * simultaneously with probability `q`: 1 - (1-q)^(B^2).
 *
 * @param q per-block-pair simultaneity probability in [0, 1]
 * @param blocks_per_page B, the page size in blocks
 */
double pageConflictProbability(double q, std::uint32_t blocks_per_page);

/**
 * Amplification of the conflict probability of a page-based
 * direct-mapped cache over a block-based one: the ratio
 * pageConflictProbability(q, B) / q. Approaches B^2 as q -> 0.
 */
double conflictAmplification(double q, std::uint32_t blocks_per_page);

/**
 * The paper's worst-case headline factor: unordered cross pairs,
 * B^2 / 2. For 2 KB pages of 64 B blocks this is 512, the "~500"
 * quoted in Sec. III-A.5.
 */
double worstCaseConflictFactor(std::uint32_t page_bytes,
                               std::uint32_t block_bytes);

/**
 * Expected fraction of live units that do not fit in their set, under
 * uniform hashing of `live_units` items into `num_sets` sets of
 * `assoc` ways (per-set occupancy ~ Poisson(live_units / num_sets)):
 *
 *   E[max(K - assoc, 0)] / lambda,   K ~ Poisson(lambda)
 *
 * A proxy for the conflict-miss ratio contribution: 0 means every
 * live unit fits, 1 means (almost) nothing does.
 */
double expectedConflictFraction(std::uint64_t num_sets,
                                std::uint32_t assoc,
                                std::uint64_t live_units);

/**
 * Same proxy expressed directly in terms of the load factor
 * lambda = live_units / num_sets.
 */
double expectedConflictFractionLambda(double lambda, std::uint32_t assoc);

/**
 * Convenience: the model's predicted conflict pressure for a
 * direct-mapped page-based cache relative to a block-based one of the
 * same capacity, with a working set of `live_bytes` live data.
 * Combines the set-count change (B x fewer sets) with the residency
 * amplification. Reported by the analytical bench next to the
 * simulated miss ratios.
 */
double relativePageConflictPressure(std::uint64_t capacity_bytes,
                                    std::uint32_t page_bytes,
                                    std::uint32_t block_bytes,
                                    std::uint64_t live_bytes);

} // namespace unison

#endif // UNISON_CORE_CONFLICT_MODEL_HH
