#include "core/alloy_fp.hh"

#include "sim/design_registry.hh"

#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

AlloyFpCache::AlloyFpCache(const AlloyFpConfig &config,
                           MemoryBackend *offchip)
    : DramCache(offchip, DramCacheKind::AlloyFp),
      config_(config),
      geometry_(AlloyGeometry::compute(config.capacityBytes)),
      pageDiv_(config.pageBlocks),
      stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming)),
      fetchPolicy_([&] {
          FootprintFetchPolicy::Config c;
          c.fht = config.fhtConfig;
          c.fht.maxBlocksPerPage = config.pageBlocks;
          c.footprintPrediction = config.footprintPredictionEnabled;
          c.singletonBypass = false;
          // Prediction off degenerates to a predictor-less Alloy
          // Cache: fetch only the demanded block.
          c.wholePageWhenDisabled = false;
          return c;
      }())
{
    UNISON_ASSERT(offchip != nullptr,
                  "AlloyFP cache needs a memory pool");
    UNISON_ASSERT(std::has_single_bit(config_.pageBlocks),
                  "prefetch group size must be a power of two");
    UNISON_ASSERT(config_.pageBlocks <= 32,
                  "footprint masks hold at most 32 blocks");
    org_.init(geometry_.numTads);
    fill_.init(offchip, &stats_);
    writeback_.init(offchip, &stats_);
}

void
AlloyFpCache::resetStats()
{
    DramCache::resetStats();
    fetchPolicy_.resetStats();
}

AlloyFpCache::Location
AlloyFpCache::locate(Addr addr) const
{
    Location loc;
    loc.block = blockNumber(addr);
    std::uint64_t off;
    pageDiv_.divMod(loc.block, loc.page, off);
    loc.offset = static_cast<std::uint32_t>(off);
    org_.locate(loc.block, loc.frame, loc.tag);
    return loc;
}

void
AlloyFpCache::installBlock(const Location &loc, Cycle when)
{
    std::uint64_t &tad = org_.word(loc.frame);
    if ((tad & kValid) != 0 && (tad & kTagMask) != loc.tag) {
        ++stats_.evictions;
        const std::uint64_t victim_block = org_.blockOf(loc.frame);
        if ((tad & kDirty) != 0) {
            const Cycle read_done =
                stacked_
                    ->rowAccess(geometry_.rowOfTad(loc.frame),
                                kBlockBytes, false, when)
                    .completion;
            writeback_.writeBlock(blockAddress(victim_block),
                                  read_done);
        }
        // The SRAM tracker knows the victim page's footprint without
        // any row scan (the difference from naiveblockfp): when the
        // page's last block leaves, train the predictor directly.
        PageGroupTracker::PageInfo gone;
        if (pages_.removeBlock(
                victim_block / config_.pageBlocks,
                static_cast<std::uint32_t>(victim_block %
                                           config_.pageBlocks),
                gone)) {
            if (gone.touchedMask != 0)
                fetchPolicy_.trainEviction(gone.pcHash,
                                           gone.triggerOffset,
                                           gone.touchedMask);
            accountFootprint(stats_, gone.fetchedMask,
                             gone.touchedMask, gone.fetchedMask);
        }
    }
    tad = kValid | loc.tag;
    stacked_->rowAccess(geometry_.rowOfTad(loc.frame),
                        geometry_.tadBytes, true, when);
}

DramCacheResult
AlloyFpCache::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    std::uint64_t &tad = org_.word(loc.frame);
    const std::uint64_t row = geometry_.rowOfTad(loc.frame);
    const bool hit = (tad & ~kDirty) == (kValid | loc.tag);
    const std::uint32_t bit = 1u << loc.offset;

    DramCacheResult result;
    result.hit = hit;

    if (req.isWrite) {
        ++stats_.writes;
        const Cycle tag_done =
            stacked_->rowAccess(row, 8, false, req.cycle).completion;
        if (hit) {
            ++stats_.hits;
            tad |= kDirty;
            if (PageGroupTracker::PageInfo *info =
                    pages_.find(loc.page)) {
                info->touchedMask |= bit;
                info->fetchedMask |= bit;
            }
            result.doneAt =
                stacked_->rowAccess(row, kBlockBytes, true, tag_done)
                    .completion;
            return result;
        }
        // Write-no-allocate (the page-based designs' rationale:
        // footprints must not be trained from writeback PCs).
        ++stats_.misses;
        result.doneAt = writeback_.writeBlock(req.addr, req.cycle);
        return result;
    }

    ++stats_.reads;

    // Alloy-style probe: the block's TAD streamed in one access.
    const Cycle tad_done =
        stacked_->rowAccess(row, geometry_.tadBytes, false, req.cycle)
            .completion;

    if (hit) {
        ++stats_.hits;
        if (PageGroupTracker::PageInfo *info = pages_.find(loc.page))
            info->touchedMask |= bit;
        result.doneAt = tad_done;
        return result;
    }

    ++stats_.misses;

    if (pages_.tracked(loc.page)) {
        // Blocks of this page are resident: an underprediction. The
        // SRAM tracker classified it without the row scan the naive
        // splice needs; fetch just the demanded block.
        ++stats_.blockMisses;
        const Cycle mem_done = fill_.demandBlock(req.addr, tad_done);
        installBlock(loc, mem_done);
        if (PageGroupTracker::PageInfo *info = pages_.find(loc.page)) {
            info->fetchedMask |= bit;
            info->touchedMask |= bit;
            info->residentMask |= bit;
        }
        result.doneAt = mem_done;
        return result;
    }

    // Trigger miss: predict the footprint and stream the group in,
    // demanded block first.
    ++stats_.pageMisses;
    const FetchDecision decision = fetchPolicy_.onTriggerMiss(
        loc.page, req.pc, loc.offset, fullMask());

    const Cycle critical = fill_.demandBlock(req.addr, tad_done);

    PageGroupTracker::PageInfo info;
    info.pcHash = static_cast<std::uint32_t>(fhtPc(req.pc));
    info.triggerOffset = static_cast<std::uint8_t>(loc.offset);
    info.fetchedMask = bit;
    info.touchedMask = bit;
    info.residentMask = bit;
    pages_.insert(loc.page, info);

    installBlock(loc, critical);
    if (PageGroupTracker::PageInfo *self = pages_.find(loc.page))
        self->residentMask |= bit;

    std::uint32_t rest = decision.mask & ~bit;
    const std::uint64_t page_first_block =
        loc.page * config_.pageBlocks;
    while (rest != 0) {
        const std::uint32_t off =
            static_cast<std::uint32_t>(std::countr_zero(rest));
        rest &= rest - 1;
        const Location fl =
            locate(blockAddress(page_first_block + off));
        const Cycle done =
            fill_.prefetchBlock(blockAddress(fl.block), tad_done);
        installBlock(fl, done);
        PageGroupTracker::PageInfo *self = pages_.find(loc.page);
        if (self == nullptr)
            break; // a sibling fill conflicted this page away entirely
        self->fetchedMask |= 1u << off;
        self->residentMask |= 1u << off;
    }

    result.doneAt = critical;
    return result;
}

bool
AlloyFpCache::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    return org_.present(loc.frame, loc.tag);
}

bool
AlloyFpCache::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    return org_.word(loc.frame) == (kValid | kDirty | loc.tag);
}

bool
AlloyFpCache::pageTracked(Addr addr) const
{
    return pages_.tracked(locate(addr).page);
}


// --------------------------------------------------- registry entry

DesignInfo
alloyFpDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::AlloyFp;
    info.id = "alloyfp";
    info.name = "Alloy-FP";
    info.shortName = "AlloyFP";
    info.summary = "composed hybrid: direct-mapped block cache with "
                   "footprint-grouped prefetch (SRAM page tracking)";
    info.defaults = AlloyFpConfig{};
    info.knobs = {
        knobBool<AlloyFpConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: single blocks)",
            &AlloyFpConfig::footprintPredictionEnabled),
        knobUInt<AlloyFpConfig>(
            "pageBlocks",
            "blocks per prefetch group (power of two)",
            &AlloyFpConfig::pageBlocks, 1, 32),
        knobUIntFn<AlloyFpConfig, std::uint32_t>(
            "fhtEntries", "footprint history table entries",
            [](AlloyFpConfig &c) -> std::uint32_t & {
                return c.fhtConfig.numEntries;
            },
            1, 1u << 24),
    };
    info.validate = [](const DesignVariant &v,
                       const DesignBuildContext &) -> std::string {
        const AlloyFpConfig &c = std::get<AlloyFpConfig>(v);
        if ((c.pageBlocks & (c.pageBlocks - 1)) != 0)
            return "pageBlocks must be a power of two, got " +
                   std::to_string(c.pageBlocks);
        return "";
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        AlloyFpConfig cfg = std::get<AlloyFpConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        return std::make_unique<AlloyFpCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
