#include "core/conflict_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace unison {

std::uint32_t
blocksPerPage(std::uint32_t page_bytes, std::uint32_t block_bytes)
{
    UNISON_ASSERT(block_bytes > 0 && page_bytes > 0,
                  "sizes must be positive");
    UNISON_ASSERT(page_bytes % block_bytes == 0,
                  "page size must be a multiple of the block size");
    return page_bytes / block_bytes;
}

double
pageConflictProbability(double q, std::uint32_t blocks_per_page)
{
    UNISON_ASSERT(q >= 0.0 && q <= 1.0, "q is a probability");
    const double pairs = static_cast<double>(blocks_per_page) *
                         static_cast<double>(blocks_per_page);
    // 1 - (1-q)^pairs, computed stably for small q.
    return -std::expm1(pairs * std::log1p(-q));
}

double
conflictAmplification(double q, std::uint32_t blocks_per_page)
{
    UNISON_ASSERT(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
    return pageConflictProbability(q, blocks_per_page) / q;
}

double
worstCaseConflictFactor(std::uint32_t page_bytes,
                        std::uint32_t block_bytes)
{
    const double b = blocksPerPage(page_bytes, block_bytes);
    return b * b / 2.0;
}

double
expectedConflictFractionLambda(double lambda, std::uint32_t assoc)
{
    UNISON_ASSERT(lambda >= 0.0, "load factor must be non-negative");
    UNISON_ASSERT(assoc >= 1, "associativity must be at least 1");
    if (lambda == 0.0)
        return 0.0;

    // E[max(K - a, 0)] = lambda - a + sum_{k<a} (a - k) P(k),
    // with P(k) the Poisson(lambda) pmf -- only a terms needed.
    double pmf = std::exp(-lambda); // P(0)
    double deficit = 0.0;           // sum_{k<a} (a - k) P(k)
    for (std::uint32_t k = 0; k < assoc; ++k) {
        deficit += (assoc - k) * pmf;
        pmf *= lambda / (k + 1);
    }
    const double excess =
        lambda - static_cast<double>(assoc) + deficit;
    return std::clamp(excess / lambda, 0.0, 1.0);
}

double
expectedConflictFraction(std::uint64_t num_sets, std::uint32_t assoc,
                         std::uint64_t live_units)
{
    UNISON_ASSERT(num_sets > 0, "a cache needs sets");
    const double lambda = static_cast<double>(live_units) /
                          static_cast<double>(num_sets);
    return expectedConflictFractionLambda(lambda, assoc);
}

double
relativePageConflictPressure(std::uint64_t capacity_bytes,
                             std::uint32_t page_bytes,
                             std::uint32_t block_bytes,
                             std::uint64_t live_bytes)
{
    const std::uint32_t b = blocksPerPage(page_bytes, block_bytes);

    const std::uint64_t block_sets = capacity_bytes / block_bytes;
    const std::uint64_t page_sets = capacity_bytes / page_bytes;
    const std::uint64_t live_blocks =
        std::max<std::uint64_t>(1, live_bytes / block_bytes);
    const std::uint64_t live_pages =
        std::max<std::uint64_t>(1, live_bytes / page_bytes);

    const double block_pressure =
        expectedConflictFraction(block_sets, 1, live_blocks);
    // Page granularity: B x fewer sets, and every unit displaced from a
    // set takes a whole page's residency with it -- each lost page
    // costs up to B blocks' worth of reuse (the quadratic term's other
    // factor relative to the single-block loss).
    const double page_pressure =
        expectedConflictFraction(page_sets, 1, live_pages) *
        static_cast<double>(b);
    if (block_pressure == 0.0)
        return page_pressure > 0.0 ? worstCaseConflictFactor(
                                         page_bytes, block_bytes)
                                   : 1.0;
    return page_pressure / block_pressure;
}

} // namespace unison
