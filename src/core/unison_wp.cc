/**
 * @file
 * Registry entry for the `unisonwp` composition (see unison_wp.hh).
 * The knob table is Unison's, plus the predictor-selection knob --
 * the point of the policy framework is that this whole design is
 * described here and composed from existing parts.
 */

#include "core/unison_wp.hh"

#include "sim/design_registry.hh"

namespace unison {

DesignInfo
unisonWpDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::UnisonWp;
    info.id = "unisonwp";
    info.name = "Unison-WP";
    info.shortName = "UnisonWP";
    info.summary = "composed ablation: the Unison body with the way "
                   "predictor swapped via knob (hashed / mru / static0)";
    info.defaults = UnisonWpConfig{};
    info.knobs = {
        knobEnum<UnisonWpConfig, UnisonWayPredictorKind>(
            "wayPredictor",
            "way predictor: hashed (paper) / mru / static0",
            &UnisonWpConfig::wayPredictorKind,
            {{"hashed", UnisonWayPredictorKind::Hashed},
             {"mru", UnisonWayPredictorKind::Mru},
             {"static0", UnisonWayPredictorKind::Static0}}),
        knobUInt<UnisonWpConfig, std::uint32_t>(
            "pageBlocks", "blocks per page (15 = 960B, 31 = 1984B)",
            &UnisonWpConfig::pageBlocks, 1, 63),
        knobUInt<UnisonWpConfig, std::uint32_t>(
            "assoc", "set associativity", &UnisonWpConfig::assoc, 1,
            32),
        knobEnum<UnisonWpConfig, UnisonMissPolicy>(
            "missPolicy", "hit speculation: always-hit / map-i",
            &UnisonWpConfig::missPolicy,
            {{"always-hit", UnisonMissPolicy::AlwaysHit},
             {"map-i", UnisonMissPolicy::MapI}}),
        knobBool<UnisonWpConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: whole pages)",
            &UnisonWpConfig::footprintPredictionEnabled),
        knobBool<UnisonWpConfig>(
            "singletonPrediction",
            "bypass pages predicted to be singletons",
            &UnisonWpConfig::singletonEnabled),
        knobUIntFn<UnisonWpConfig, std::uint32_t>(
            "fhtEntries", "footprint history table entries",
            [](UnisonWpConfig &c) -> std::uint32_t & {
                return c.fhtConfig.numEntries;
            },
            1, 1u << 24),
        knobUIntFn<UnisonWpConfig, std::uint32_t>(
            "fhtAssoc", "footprint history table associativity",
            [](UnisonWpConfig &c) -> std::uint32_t & {
                return c.fhtConfig.assoc;
            },
            1, 64),
        knobUInt<UnisonWpConfig, std::uint32_t>(
            "wayPredictorIndexBits",
            "hashed-predictor index width (0 = paper sizing)",
            &UnisonWpConfig::wayPredictorIndexBits, 0, 24),
    };
    info.validate = [](const DesignVariant &v,
                       const DesignBuildContext &) -> std::string {
        return validateUnisonKnobs(std::get<UnisonWpConfig>(v));
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        UnisonWpConfig cfg = std::get<UnisonWpConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        cfg.numCores = ctx.numCores;
        return std::make_unique<UnisonWpCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
