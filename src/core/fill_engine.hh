/**
 * @file
 * The fill/writeback layer of the DRAM-cache policy framework: the two
 * engines that own ALL off-chip traffic a design generates, and the
 * DramCacheStats accounting for it -- exactly once, here.
 *
 *  - FillEngine issues the off-chip reads: the demanded block (counted
 *    as demand traffic), the streamed remainder of a predicted
 *    footprint (counted as prefetch traffic), and mispredict-wasted
 *    fetches (counted as wasted traffic).
 *  - WritebackEngine issues the off-chip writes: single-block
 *    writebacks/write-throughs and the batched dirty-footprint
 *    writeback of a page eviction (one stacked-row read, then
 *    per-block off-chip writes -- the footprint-granular transfer
 *    behaviour behind the Sec. V-D energy advantage).
 *
 * The accounting identity the engines guarantee (asserted by
 * tests/fill_engine_test.cpp): every off-chip read is exactly one of
 * demand / prefetch / wasted, so
 *
 *     offchipFetchedBlocks() == offchip reads issued,
 *     offchipWritebackBlocks == offchip writes issued.
 *
 * A design composes these with a CacheOrganization and a FetchPolicy;
 * the design's own code decides *when* (probe timing, hit/miss
 * serving) and the engines decide what that costs off-chip.
 */

#ifndef UNISON_CORE_FILL_ENGINE_HH
#define UNISON_CORE_FILL_ENGINE_HH

#include <bit>
#include <cstdint>

#include "cache/page_set.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "core/dram_cache.hh"
#include "dram/backend.hh"
#include "predictors/fetch_policy.hh"

namespace unison {

/**
 * Table V footprint-accuracy bookkeeping, accumulated when a page's
 * residency ends: how much of the touched footprint was predicted, and
 * how much of the fetched data was never touched.
 */
inline void
accountFootprint(DramCacheStats &stats, std::uint32_t predicted,
                 std::uint32_t touched, std::uint32_t fetched)
{
    stats.fpPredictedTouched += popCount(predicted & touched);
    stats.fpTouched += popCount(touched);
    stats.fpFetchedUntouched += popCount(fetched & ~touched);
    stats.fpFetched += popCount(fetched);
}

/** Issues and accounts all off-chip *read* traffic. */
class FillEngine
{
  public:
    void
    init(MemoryBackend *offchip, DramCacheStats *stats)
    {
        offchip_ = offchip;
        stats_ = stats;
    }

    /** Fetch the demanded block; counted as demand traffic. */
    Cycle
    demandBlock(Addr addr, Cycle start)
    {
        const Cycle done =
            offchip_->addrAccess(addr, kBlockBytes, false, start)
                .completion;
        ++stats_->offchipDemandBlocks;
        return done;
    }

    /** Fetch one non-demanded footprint block; counted as prefetch. */
    Cycle
    prefetchBlock(Addr addr, Cycle start)
    {
        const Cycle done =
            offchip_->addrAccess(addr, kBlockBytes, false, start)
                .completion;
        ++stats_->offchipPrefetchBlocks;
        return done;
    }

    /** A speculative fetch for a block the cache already had (miss
     *  predictor overfetch); counted as wasted traffic. */
    void
    wastedBlock(Addr addr, Cycle start)
    {
        offchip_->addrAccess(addr, kBlockBytes, false, start);
        ++stats_->offchipWastedBlocks;
    }

    struct FootprintFetch
    {
        Cycle critical = 0; //!< completion of the demanded block
        Cycle lastDone = 0; //!< completion of the slowest block
    };

    /**
     * Fetch a predicted footprint: the demanded block first (critical,
     * issued at `head_start` -- usually the tag-resolve cycle, earlier
     * when a miss predictor already started the fetch), then the
     * remaining blocks streamed from `rest_start`. They share memory
     * rows, so this is one activation plus row-buffer hits.
     *
     * @param block_addr maps an in-page block offset to its byte
     *        address.
     */
    template <typename AddrFn>
    FootprintFetch
    fetchFootprint(AddrFn &&block_addr, std::uint32_t mask,
                   std::uint32_t demand_offset, Cycle rest_start,
                   Cycle head_start)
    {
        const std::uint32_t demand_bit = 1u << demand_offset;
        UNISON_ASSERT((mask & demand_bit) != 0,
                      "footprint fetch must include the demand block");
        FootprintFetch result;
        result.critical = demandBlock(block_addr(demand_offset),
                                      head_start);
        result.lastDone = result.critical;
        std::uint32_t rest = mask & ~demand_bit;
        while (rest != 0) {
            const std::uint32_t off = static_cast<std::uint32_t>(
                std::countr_zero(rest));
            rest &= rest - 1;
            const Cycle done =
                prefetchBlock(block_addr(off), rest_start);
            result.lastDone = std::max(result.lastDone, done);
        }
        return result;
    }

  private:
    MemoryBackend *offchip_ = nullptr;
    DramCacheStats *stats_ = nullptr;
};

/** Issues and accounts all off-chip *write* traffic. */
class WritebackEngine
{
  public:
    void
    init(MemoryBackend *offchip, DramCacheStats *stats)
    {
        offchip_ = offchip;
        stats_ = stats;
    }

    /** One dirty block to memory (victim writeback, or the
     *  write-no-allocate path for writes missing the cache). */
    Cycle
    writeBlock(Addr addr, Cycle start)
    {
        const Cycle done =
            offchip_->addrAccess(addr, kBlockBytes, true, start)
                .completion;
        ++stats_->offchipWritebackBlocks;
        return done;
    }

    /**
     * Page-eviction writeback: one batched read of the dirty blocks
     * from the page's stacked row, then per-block writes into memory
     * (footprint-granular transfers). Caller guarantees a non-empty
     * dirty mask.
     * @return completion of the batched stacked-row read.
     */
    template <typename AddrFn>
    Cycle
    writebackDirty(MemoryBackend &stacked, std::uint64_t data_row,
                   std::uint32_t dirty_mask, AddrFn &&block_addr,
                   Cycle when)
    {
        UNISON_ASSERT(dirty_mask != 0, "empty dirty-writeback mask");
        const std::uint32_t dirty_blocks = popCount(dirty_mask);
        const Cycle read_done =
            stacked
                .rowAccess(data_row, dirty_blocks * kBlockBytes, false,
                           when)
                .completion;
        std::uint32_t mask = dirty_mask;
        while (mask != 0) {
            const std::uint32_t off = static_cast<std::uint32_t>(
                std::countr_zero(mask));
            mask &= mask - 1;
            offchip_->addrAccess(block_addr(off), kBlockBytes, true,
                                 read_done);
        }
        stats_->offchipWritebackBlocks += dirty_blocks;
        return read_done;
    }

  private:
    MemoryBackend *offchip_ = nullptr;
    DramCacheStats *stats_ = nullptr;
};

/**
 * The shared page-eviction sequence of the page-organized designs:
 * write back the dirty footprint, train the FHT with the observed
 * footprint (read from the row only now, at eviction), accumulate the
 * Table V accuracy counters -- only for pages *allocated* in the
 * current measurement generation, so cold-phase allocations cannot
 * pollute post-warm statistics -- and invalidate the way.
 */
template <typename AddrFn>
inline void
evictPageWay(PageWaySoa &ways, std::size_t idx, WritebackEngine &wb,
             MemoryBackend &stacked, std::uint64_t data_row,
             AddrFn &&block_addr, Cycle when, FootprintFetchPolicy &fp,
             DramCacheStats &stats, std::uint8_t stats_gen)
{
    UNISON_ASSERT(ways.valid(idx), "evicting an invalid way");
    ++stats.evictions;

    const std::uint32_t dirty_mask = ways.hot[idx].dirty;
    if (dirty_mask != 0)
        wb.writebackDirty(stacked, data_row, dirty_mask, block_addr,
                          when);

    UNISON_ASSERT(ways.hot[idx].touched != 0,
                  "resident page was never touched");
    fp.trainEviction(ways.cold[idx].pcHash, ways.cold[idx].trigger,
                     ways.hot[idx].touched);

    if (ways.cold[idx].gen == stats_gen)
        accountFootprint(stats, ways.cold[idx].predicted,
                         ways.hot[idx].touched, ways.hot[idx].fetched);

    ways.invalidate(idx);
}

} // namespace unison

#endif // UNISON_CORE_FILL_ENGINE_HH
