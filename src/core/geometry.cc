#include "core/geometry.hh"

#include "common/logging.hh"

namespace unison {

UnisonGeometry
UnisonGeometry::compute(std::uint64_t capacity_bytes,
                        std::uint32_t page_blocks, std::uint32_t assoc,
                        std::uint32_t phys_addr_bits)
{
    UNISON_ASSERT(page_blocks >= 1 && page_blocks <= 63,
                  "unsupported page size of ", page_blocks, " blocks");
    UNISON_ASSERT(assoc >= 1, "associativity must be >= 1");
    UNISON_ASSERT(capacity_bytes >= kRowBytes,
                  "capacity below one DRAM row");
    UNISON_ASSERT(phys_addr_bits >= 30 && phys_addr_bits <= 52,
                  "implausible physical address width of ",
                  phys_addr_bits, " bits");

    UnisonGeometry g;
    g.capacityBytes = capacity_bytes;
    g.pageBlocks = page_blocks;
    g.assoc = assoc;
    g.pageBytes = page_blocks * kBlockBytes;
    g.physAddrBits = phys_addr_bits;
    // Footnote 3: beyond 40 physical address bits (1 TB of memory)
    // the per-page tag word grows from 8 B to 12 B and the per-set
    // tag metadata read takes three bursts (~48 B for 4 ways).
    const std::uint32_t tag_word = phys_addr_bits <= 40 ? 8 : 12;
    g.pageMetaBytes = tag_word + 8; // + the (PC, offset) word
    g.tagBurstBytes = assoc * tag_word;
    g.numRows = capacity_bytes / kRowBytes;

    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(assoc) *
        (g.pageBytes + g.pageMetaBytes);

    if (set_bytes <= kRowBytes) {
        g.setsPerRow = static_cast<std::uint32_t>(kRowBytes / set_bytes);
        g.rowsPerSet = 1;
        g.numSets = g.numRows * g.setsPerRow;
        g.blocksPerRow = g.setsPerRow * assoc * page_blocks;
        g.waysPerRow = g.setsPerRow * assoc;
    } else {
        g.setsPerRow = 0;
        g.rowsPerSet = static_cast<std::uint32_t>(
            (set_bytes + kRowBytes - 1) / kRowBytes);
        g.numSets = g.numRows / g.rowsPerSet;
        UNISON_ASSERT(g.numSets >= 1,
                      "capacity too small for one ", assoc, "-way set");
        g.waysPerRow = (assoc + g.rowsPerSet - 1) / g.rowsPerSet;
        g.blocksPerRow = g.waysPerRow * page_blocks;
    }

    g.dataBlocks = g.numSets * assoc * page_blocks;
    g.inDramTagBytes =
        capacity_bytes - g.dataBlocks * static_cast<std::uint64_t>(
                                            kBlockBytes);
    if (g.setsPerRow >= 1)
        g.setsPerRowDiv.init(g.setsPerRow);
    if (g.waysPerRow >= 1)
        g.waysPerRowDiv.init(g.waysPerRow);
    g.numSetsDiv.init(g.numSets);
    return g;
}

AlloyGeometry
AlloyGeometry::compute(std::uint64_t capacity_bytes)
{
    UNISON_ASSERT(capacity_bytes >= kRowBytes,
                  "capacity below one DRAM row");
    AlloyGeometry g;
    g.capacityBytes = capacity_bytes;
    g.numRows = capacity_bytes / kRowBytes;
    g.numTads = g.numRows * g.tadsPerRow;
    g.inDramTagBytes =
        capacity_bytes -
        g.numTads * static_cast<std::uint64_t>(kBlockBytes);
    g.tadsPerRowDiv.init(g.tadsPerRow);
    g.numTadsDiv.init(g.numTads);
    return g;
}

FootprintGeometry
FootprintGeometry::compute(std::uint64_t capacity_bytes)
{
    FootprintGeometry g;
    g.capacityBytes = capacity_bytes;
    g.numPages = capacity_bytes / (g.pageBlocks * kBlockBytes);
    UNISON_ASSERT(g.numPages >= g.assoc,
                  "capacity below one 32-way set");
    g.numSets = g.numPages / g.assoc;
    g.sramTagBytes = g.numPages * 12; // 12 B/page, matches Table IV
    g.tagLatency = tagLatencyForCapacity(capacity_bytes);
    g.pagesPerRowDiv.init(g.pagesPerRow);
    g.pageBlocksDiv.init(g.pageBlocks);
    g.numSetsDiv.init(g.numSets);
    return g;
}

Cycle
FootprintGeometry::tagLatencyForCapacity(std::uint64_t capacity_bytes)
{
    // Table IV of the paper: conservatively estimated SRAM tag-array
    // latencies. Sizes between the listed points take the next-larger
    // entry's latency.
    struct Point
    {
        std::uint64_t size;
        Cycle latency;
    };
    static constexpr Point kTable[] = {
        {128_MiB, 6},  {256_MiB, 9},  {512_MiB, 11}, {1_GiB, 16},
        {2_GiB, 25},   {4_GiB, 36},   {8_GiB, 48},
    };
    for (const Point &p : kTable) {
        if (capacity_bytes <= p.size)
            return p.latency;
    }
    // Beyond 8 GB: extrapolate by +12 cycles per doubling.
    Cycle latency = 48;
    std::uint64_t size = 8_GiB;
    while (size < capacity_bytes) {
        size *= 2;
        latency += 12;
    }
    return latency;
}

} // namespace unison
