#include "store/result_store.hh"

#include <algorithm>
#include <cstdio>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc_frame.hh"
#include "common/file_io.hh"
#include "common/json.hh"
#include "sim/journal.hh"

namespace unison {

namespace {

constexpr std::uint32_t kStoreMagic = 0x43525355u; // 'USRC'

std::string
objectPayload(const std::string &spec_fp, const std::string &code_version,
              const ExperimentSpec &spec, const SimResult &result)
{
    json::Value out{json::Object{}};
    out.set("storeRecord", std::int64_t{1});
    out.set("specFingerprint", spec_fp);
    out.set("codeVersion", code_version);
    out.set("spec", specToJson(spec));
    out.set("result", resultToJson(result));
    return json::write(out);
}

} // namespace

ResultStore::ResultStore(std::string dir, std::string code_version)
    : dir_(std::move(dir)), codeVersion_(std::move(code_version)),
      versionTag_(fnvFingerprint(codeVersion_))
{
    if (!dir_.empty() && dir_.back() == '/')
        dir_.pop_back();
    // Best-effort create (store root, then the objects level); a
    // failure surfaces later as save warnings, never as a run failure.
    ::mkdir(dir_.c_str(), 0777);
    ::mkdir((dir_ + "/objects").c_str(), 0777);
}

std::string
ResultStore::objectPath(const std::string &spec_fp) const
{
    return dir_ + "/objects/" + spec_fp + "." + versionTag_ + ".res";
}

bool
ResultStore::lookup(const ExperimentSpec &spec, SimResult &out)
{
    return lookupFp(specFingerprint(spec), out);
}

bool
ResultStore::lookupFp(const std::string &spec_fp, SimResult &out)
{
    const std::string path = objectPath(spec_fp);
    if (!fileExists(path)) {
        ++misses_;
        return false;
    }

    // Every rejection below degrades to "simulate it" -- which is
    // always correct -- but says why, so tests and operators can tell
    // bit rot from version skew from a misplaced file.
    const auto reject = [&](const std::string &reason) {
        structuredWarn("store-rejected", {{"path", path},
                                          {"reason", reason},
                                          {"fallback", "simulate"}});
        ++misses_;
        return false;
    };

    std::vector<std::uint8_t> bytes;
    const SimStatus read = readFileBytes(path, bytes);
    if (!read.ok())
        return reject(read.message);

    FrameWalker walker(bytes.data(), bytes.size(), kStoreMagic);
    const std::uint8_t *payload = nullptr;
    std::size_t len = 0;
    if (!walker.next(payload, len))
        return reject(walker.torn() ? walker.tornReason()
                                    : "empty object file");
    if (walker.validBytes() != bytes.size())
        return reject("trailing bytes after object record");

    try {
        const json::Value doc = json::parse(
            std::string(reinterpret_cast<const char *>(payload), len));
        json::ObjectReader r(doc, "store object");
        if (r.req("storeRecord").asInt() != 1)
            throw json::Error("unknown store record version");
        const std::string rec_fp = r.req("specFingerprint").asString();
        const std::string rec_version =
            r.req("codeVersion").asString();
        const ExperimentSpec spec = specFromJson(r.req("spec"));
        const SimResult result = resultFromJson(r.req("result"));
        if (rec_version != codeVersion_)
            return reject("code version mismatch: object " +
                          rec_version + ", store " + codeVersion_);
        // Recompute the address from the embedded spec: a file whose
        // name merely collides (or was renamed into place) cannot
        // substitute a foreign result.
        if (rec_fp != spec_fp || specFingerprint(spec) != spec_fp)
            return reject("spec fingerprint mismatch");
        out = result;
    } catch (const json::Error &e) {
        return reject(std::string("object does not parse: ") +
                      e.what());
    }

    ++hits_;
    return true;
}

void
ResultStore::insert(const ExperimentSpec &spec, const SimResult &result)
{
    insertFp(specFingerprint(spec), spec, result);
}

void
ResultStore::insertFp(const std::string &spec_fp,
                      const ExperimentSpec &spec, const SimResult &result)
{
    const std::string path = objectPath(spec_fp);
    // Dot-prefixed temp in the same directory: invisible to lookup
    // and gc, and rename() is atomic within one filesystem, so a
    // reader sees either no object or a whole one -- never a torn
    // write, even against kill -9.
    const std::string tmp = dir_ + "/objects/.tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmpSeq_.fetch_add(1));

    const std::vector<std::uint8_t> frame = encodeRecordFrame(
        kStoreMagic,
        objectPayload(spec_fp, codeVersion_, spec, result));
    const SimStatus wrote = writeFileBytes(tmp, frame);
    if (!wrote.ok()) {
        ::unlink(tmp.c_str());
        structuredWarn("store-save-failed",
                       {{"path", path}, {"reason", wrote.message}});
        return;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        structuredWarn("store-save-failed",
                       {{"path", path},
                        {"reason", "cannot publish temp object"}});
        return;
    }
    ++inserts_;
}

void
ResultStore::pin(const std::string &spec_fp)
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    pinned_.insert(spec_fp);
}

void
ResultStore::unpin(const std::string &spec_fp)
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    const auto it = pinned_.find(spec_fp);
    if (it != pinned_.end())
        pinned_.erase(it);
}

StoreGcSummary
ResultStore::gc(std::uint64_t max_bytes)
{
    StoreGcSummary sum;

    struct Entry
    {
        std::string name;
        std::uint64_t bytes = 0;
        std::int64_t mtime = 0;
    };
    std::vector<Entry> entries;

    const std::string objects = dir_ + "/objects";
    DIR *d = ::opendir(objects.c_str());
    if (d == nullptr)
        return sum;
    while (const dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        // Objects only: temp files and anything else a future format
        // drops here are not ours to evict.
        if (name.size() < 4 || name[0] == '.' ||
            name.compare(name.size() - 4, 4, ".res") != 0)
            continue;
        struct stat st{};
        if (::stat((objects + "/" + name).c_str(), &st) != 0 ||
            !S_ISREG(st.st_mode))
            continue;
        entries.push_back({name, static_cast<std::uint64_t>(st.st_size),
                           static_cast<std::int64_t>(st.st_mtime)});
    }
    ::closedir(d);

    sum.scanned = entries.size();
    for (const Entry &e : entries)
        sum.bytesBefore += e.bytes;
    sum.bytesAfter = sum.bytesBefore;
    if (sum.bytesBefore <= max_bytes)
        return sum;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.name < b.name;
              });

    std::set<std::string> pinned_names;
    {
        std::lock_guard<std::mutex> lock(pinMutex_);
        for (const std::string &fp : pinned_)
            pinned_names.insert(fp + "." + versionTag_ + ".res");
    }

    for (const Entry &e : entries) {
        if (sum.bytesAfter <= max_bytes)
            break;
        if (pinned_names.count(e.name) != 0) {
            ++sum.pinnedKept;
            continue;
        }
        if (::unlink((objects + "/" + e.name).c_str()) != 0)
            continue;
        ++sum.evicted;
        sum.bytesAfter -= e.bytes;
    }
    return sum;
}

// ---------------------------------------------------- runner adapter

StoreCacheHook::StoreCacheHook(ResultStore &store,
                               const std::vector<ExperimentSpec> &specs)
    : store_(store), specs_(specs), hit_(specs.size(), 0)
{
    fps_.reserve(specs_.size());
    for (const ExperimentSpec &spec : specs_)
        fps_.push_back(specFingerprint(spec));
    for (const std::string &fp : fps_)
        store_.pin(fp);
}

StoreCacheHook::~StoreCacheHook()
{
    for (const std::string &fp : fps_)
        store_.unpin(fp);
}

bool
StoreCacheHook::tryLoad(std::size_t index, SimResult &out)
{
    if (!store_.lookupFp(fps_[index], out))
        return false;
    hit_[index] = 1;
    ++hits_;
    return true;
}

void
StoreCacheHook::record(std::size_t index, const SimResult &result)
{
    store_.insertFp(fps_[index], specs_[index], result);
}

} // namespace unison
