/**
 * @file
 * Content-addressed result store: completed SimResults keyed by what
 * they ARE -- (spec fingerprint, code version) -- instead of which run
 * produced them. Any invocation that is about to simulate a spec asks
 * the store first; a hit substitutes the cached result byte-for-byte
 * (the same substitution contract the journal's crash replay pins),
 * and every fresh completion is published back, so repeated sweeps of
 * overlapping grids converge to zero simulation.
 *
 * # Layout
 *
 * One file per object under `<dir>/objects/`:
 *
 *     <specFingerprint>.<fnv16(codeVersion)>.res
 *
 * holding a single CRC-32 record frame (common/crc_frame.hh, magic
 * 'USRC') around a JSON payload:
 *
 *     {storeRecord: 1, specFingerprint, codeVersion, spec, result}
 *
 * The spec fingerprint is the FNV-1a of the spec's canonical JSON
 * (spec_json.hh specFingerprint), so two specs that serialize
 * identically -- and therefore simulate identically -- share one
 * object. The code version in both the name and the payload refuses
 * hits across behaviour-changing builds; a rebuilt simulator simply
 * repopulates the store under new names.
 *
 * # Trust model
 *
 * Objects are published atomically (write to a dot-prefixed temp name
 * in the same directory, then rename), so readers never see a partial
 * object. On lookup every layer is verified before the result is
 * trusted: frame CRC, payload schema, embedded code version, and the
 * fingerprint *recomputed from the embedded spec* (guards misplaced or
 * hash-colliding files, not just bit rot). Any doubt is a structured
 * "store-rejected" warning and a miss -- the caller simulates, which
 * is always correct. Publishing is likewise best-effort: a failed
 * insert warns ("store-save-failed") and drops; the store is an
 * optimization, never a durability or correctness dependency.
 *
 * # Eviction
 *
 * gc() trims the objects directory to a byte budget, oldest mtime
 * first, and never touches entries pinned by an in-flight run
 * (StoreCacheHook pins every spec it serves for its lifetime). Pins
 * are per-process: the serve daemon, which owns the long-lived store,
 * is thereby safe to gc concurrently with active sweeps.
 */

#ifndef UNISON_STORE_RESULT_STORE_HH
#define UNISON_STORE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/version.hh"
#include "sim/runner.hh"
#include "sim/spec_json.hh"

namespace unison {

/** What one gc() pass saw and did. */
struct StoreGcSummary
{
    std::size_t scanned = 0;    //!< objects examined
    std::size_t evicted = 0;    //!< objects unlinked
    std::size_t pinnedKept = 0; //!< over-budget but in flight: spared
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
};

class ResultStore
{
  public:
    /** Open (creating directories best-effort) a store rooted at
     *  `dir`, serving results for `code_version` builds only. */
    explicit ResultStore(std::string dir,
                         std::string code_version = kSimCodeVersion);

    const std::string &dir() const { return dir_; }
    const std::string &codeVersion() const { return codeVersion_; }

    /** The object file a spec fingerprint maps to under this store's
     *  code version (exposed for tests and tooling). */
    std::string objectPath(const std::string &spec_fp) const;

    /** @name Lookup / insert
     * The Fp variants take a precomputed specFingerprint so batch
     * callers hash each spec once; the plain variants hash inline.
     * lookup returns false (a miss) on absence OR on any integrity
     * doubt; insert never fails the caller.
     */
    /**@{*/
    bool lookup(const ExperimentSpec &spec, SimResult &out);
    bool lookupFp(const std::string &spec_fp, SimResult &out);
    void insert(const ExperimentSpec &spec, const SimResult &result);
    void insertFp(const std::string &spec_fp, const ExperimentSpec &spec,
                  const SimResult &result);
    /**@}*/

    /** @name In-flight pinning
     * A pinned fingerprint's object survives gc() regardless of the
     * byte budget. Pins nest (a count per fingerprint); unpin drops
     * one level. Per-process only.
     */
    /**@{*/
    void pin(const std::string &spec_fp);
    void unpin(const std::string &spec_fp);
    /**@}*/

    /** Trim the objects directory to at most `max_bytes`, evicting
     *  unpinned objects oldest-mtime-first (name-ordered within a
     *  second). Temp files and pinned objects are never touched. */
    StoreGcSummary gc(std::uint64_t max_bytes);

    /** @name Counters (per ResultStore instance, thread-safe) */
    /**@{*/
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t inserts() const { return inserts_.load(); }
    /**@}*/

  private:
    std::string dir_;
    std::string codeVersion_;
    std::string versionTag_; //!< fnv16(codeVersion_), cached

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> inserts_{0};
    std::atomic<std::uint64_t> tmpSeq_{0};

    std::mutex pinMutex_;
    std::multiset<std::string> pinned_; //!< fingerprints, one per pin
};

/**
 * The runner-facing adapter: wires a ResultStore into runExperiments
 * as RunHooks::cache. Construction fingerprints every spec once and
 * pins them all (released on destruction), so a concurrent gc cannot
 * evict an object between its replay-pass hit and the end of the run.
 * `specs` must outlive the hook.
 */
class StoreCacheHook : public ResultJournalHook
{
  public:
    StoreCacheHook(ResultStore &store,
                   const std::vector<ExperimentSpec> &specs);
    ~StoreCacheHook() override;

    StoreCacheHook(const StoreCacheHook &) = delete;
    StoreCacheHook &operator=(const StoreCacheHook &) = delete;

    bool tryLoad(std::size_t index, SimResult &out) override;
    void record(std::size_t index, const SimResult &result) override;

    /** Points this hook served from the store (replay-pass hits). */
    std::uint64_t hits() const { return hits_.load(); }

    /** True when spec `index` was served from the store rather than
     *  simulated (set during the runner's replay pre-pass, which runs
     *  before any worker thread starts). */
    bool wasHit(std::size_t index) const { return hit_[index] != 0; }

    const std::string &fingerprintOf(std::size_t index) const
    {
        return fps_[index];
    }

  private:
    ResultStore &store_;
    const std::vector<ExperimentSpec> &specs_;
    std::vector<std::string> fps_;
    std::vector<char> hit_;
    std::atomic<std::uint64_t> hits_{0};
};

} // namespace unison

#endif // UNISON_STORE_RESULT_STORE_HH
