#include "trace/presets.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "common/types.hh"

namespace unison {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> kAll = {
        Workload::DataAnalytics,   Workload::DataServing,
        Workload::SoftwareTesting, Workload::WebSearch,
        Workload::WebServing,      Workload::TpchQueries,
    };
    return kAll;
}

const std::vector<Workload> &
cloudSuiteWorkloads()
{
    static const std::vector<Workload> kCloud = {
        Workload::DataAnalytics,   Workload::DataServing,
        Workload::SoftwareTesting, Workload::WebSearch,
        Workload::WebServing,
    };
    return kCloud;
}

std::string
workloadName(Workload w)
{
    switch (w) {
      case Workload::DataAnalytics:
        return "Data Analytics";
      case Workload::DataServing:
        return "Data Serving";
      case Workload::SoftwareTesting:
        return "Software Testing";
      case Workload::WebSearch:
        return "Web Search";
      case Workload::WebServing:
        return "Web Serving";
      case Workload::TpchQueries:
        return "TPC-H Queries";
    }
    panic("unknown workload enum");
}

WorkloadParams
workloadParams(Workload w)
{
    WorkloadParams p;
    p.name = workloadName(w);

    switch (w) {
      case Workload::DataAnalytics:
        // Map-Reduce: pointer-intensive hash-table lookups, the lowest
        // spatial locality in the suite (Sec. V-B); many singletons;
        // the gap between block- and page-based designs is smallest.
        p.datasetBytes = 8_GiB;
        p.meanFootprintBlocks = 6.0;
        p.footprintStddev = 4.0;
        p.contiguousFraction = 0.20;
        p.scanStretchMean = 1.0;
        p.singletonFunctionFraction = 0.25;
        p.pointerChaseFraction = 0.18;
        p.footprintNoiseDrop = 0.04;
        p.footprintNoiseAdd = 0.02;
        p.regionZipfAlpha = 0.90;       // hot hash buckets: block reuse
        p.functionZipfAlpha = 0.80;
        p.episodesPerCore = 4;          // fine-grain interleaving
        p.burstLength = 2;              // -> lower way-pred accuracy
        p.writeFraction = 0.18;
        p.blockRepeatMean = 16.0;
        p.instrsPerMemRef = 12.0;
        break;

      case Workload::DataServing:
        // Cassandra-style key-value store: wide rows, highly regular
        // accessors (FP accuracy ~97%), very memory-intensive -- the
        // workload with the largest DRAM-cache speedups (Fig. 7 uses a
        // different y-scale for it).
        p.datasetBytes = 12_GiB;
        p.meanFootprintBlocks = 14.0;
        p.footprintStddev = 5.0;
        p.contiguousFraction = 0.55;
        p.scanStretchMean = 1.0;
        p.singletonFunctionFraction = 0.08;
        p.pointerChaseFraction = 0.04;
        p.footprintNoiseDrop = 0.015;
        p.footprintNoiseAdd = 0.008;
        p.regionZipfAlpha = 0.60;       // little temporal reuse for AC
        p.functionZipfAlpha = 0.90;
        p.episodesPerCore = 3;
        p.burstLength = 4;
        p.writeFraction = 0.30;
        p.blockRepeatMean = 16.0;
        p.instrsPerMemRef = 8.0;        // memory bound
        break;

      case Workload::SoftwareTesting:
        // Symbolic-execution style: irregular, the least predictable
        // footprints in Table V (FP accuracy ~82-84%, overfetch ~21-27%).
        p.datasetBytes = 6_GiB;
        p.meanFootprintBlocks = 10.0;
        p.footprintStddev = 8.0;
        p.contiguousFraction = 0.30;
        p.scanStretchMean = 1.0;
        p.singletonFunctionFraction = 0.12;
        p.pointerChaseFraction = 0.08;
        p.footprintNoiseDrop = 0.14;
        p.footprintNoiseAdd = 0.08;
        p.regionZipfAlpha = 0.80;
        p.functionZipfAlpha = 0.70;
        p.episodesPerCore = 3;
        p.burstLength = 4;
        p.writeFraction = 0.22;
        p.blockRepeatMean = 20.0;
        p.instrsPerMemRef = 14.0;
        break;

      case Workload::WebSearch:
        // Index serving: extremely high spatial locality (posting-list
        // scans), the best FP accuracy and lowest overfetch in Table V.
        p.datasetBytes = 6_GiB;
        p.meanFootprintBlocks = 20.0;
        p.footprintStddev = 6.0;
        p.contiguousFraction = 0.80;
        p.scanStretchMean = 1.0;
        p.singletonFunctionFraction = 0.04;
        p.pointerChaseFraction = 0.02;
        p.footprintNoiseDrop = 0.008;
        p.footprintNoiseAdd = 0.003;
        p.regionZipfAlpha = 0.75;
        p.functionZipfAlpha = 0.95;
        p.episodesPerCore = 3;
        p.burstLength = 6;
        p.writeFraction = 0.10;
        p.blockRepeatMean = 24.0;
        p.instrsPerMemRef = 12.0;
        break;

      case Workload::WebServing:
        // PHP/DB tier: moderate locality, mid-pack accuracy numbers.
        p.datasetBytes = 8_GiB;
        p.meanFootprintBlocks = 12.0;
        p.footprintStddev = 6.0;
        p.contiguousFraction = 0.50;
        p.scanStretchMean = 1.0;
        p.singletonFunctionFraction = 0.10;
        p.pointerChaseFraction = 0.06;
        p.footprintNoiseDrop = 0.07;
        p.footprintNoiseAdd = 0.045;
        p.regionZipfAlpha = 0.85;
        p.functionZipfAlpha = 0.85;
        p.episodesPerCore = 3;
        p.burstLength = 5;
        p.writeFraction = 0.25;
        p.blockRepeatMean = 20.0;
        p.instrsPerMemRef = 12.0;
        break;

      case Workload::TpchQueries:
        // Column-store analytics on a >100 GB dataset: long scans
        // (dense contiguous footprints, the highest way-pred accuracy),
        // hash-join chase traffic, and reuse so cold that caches below
        // 2-4 GB barely help a block-based design (Fig. 6, right).
        p.datasetBytes = 128_GiB;
        p.meanFootprintBlocks = 24.0;
        p.footprintStddev = 6.0;
        p.contiguousFraction = 0.90;
        p.scanStretchMean = 10.0;
        p.singletonFunctionFraction = 0.05;
        p.pointerChaseFraction = 0.08;
        p.footprintNoiseDrop = 0.03;
        p.footprintNoiseAdd = 0.015;
        p.regionZipfAlpha = 0.70;
        p.functionZipfAlpha = 0.80;
        p.episodesPerCore = 2;
        p.burstLength = 8;              // scans: high way-pred accuracy
        p.writeFraction = 0.08;
        p.blockRepeatMean = 12.0;
        p.instrsPerMemRef = 10.0;
        break;
    }
    return p;
}

std::string
normalizedNameKey(const std::string &name)
{
    std::string key;
    key.reserve(name.size());
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            key.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
    }
    return key;
}

Workload
workloadFromName(const std::string &name)
{
    const std::string key = normalizedNameKey(name);
    for (Workload w : allWorkloads()) {
        if (normalizedNameKey(workloadName(w)) == key)
            return w;
    }
    // Short aliases.
    if (key == "analytics" || key == "da")
        return Workload::DataAnalytics;
    if (key == "serving" || key == "ds")
        return Workload::DataServing;
    if (key == "testing" || key == "st")
        return Workload::SoftwareTesting;
    if (key == "search" || key == "ws")
        return Workload::WebSearch;
    if (key == "webserving" || key == "wsv")
        return Workload::WebServing;
    if (key == "tpch" || key == "tpchqueries")
        return Workload::TpchQueries;
    fatal("unknown workload '", name, "'");
}

} // namespace unison
