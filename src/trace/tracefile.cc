#include "trace/tracefile.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace unison {

namespace {

constexpr char kMagic[4] = {'U', 'C', 'T', 'R'};

struct PackedHeader
{
    char magic[4];
    std::uint32_t version;
    std::uint32_t numCores;
    std::uint32_t pad;
};

#pragma pack(push, 1)
struct PackedRecord
{
    std::uint64_t addr;
    std::uint64_t pc;
    std::uint16_t instrsBefore;
    std::uint8_t core;
    std::uint8_t flags;
};
#pragma pack(pop)

static_assert(sizeof(PackedHeader) == 16, "header layout drifted");
static_assert(sizeof(PackedRecord) == 20, "record layout drifted");

} // namespace

TraceWriter::TraceWriter(const std::string &path, int num_cores)
{
    UNISON_ASSERT(num_cores >= 1 && num_cores <= 255,
                  "bad core count ", num_cores);
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        fatal("cannot open trace file '", path, "' for writing");

    PackedHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kTraceVersion;
    hdr.numCores = static_cast<std::uint32_t>(num_cores);
    if (std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("failed to write trace header to '", path, "'");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
TraceWriter::write(const MemoryAccess &access)
{
    UNISON_ASSERT(file_ != nullptr, "write to closed trace");
    PackedRecord rec{};
    rec.addr = access.addr;
    rec.pc = access.pc;
    rec.instrsBefore = access.instrsBefore;
    // The on-disk record keeps an 8-bit core id (the constructor caps
    // capture at 255 cores); in-memory core ids are wider.
    rec.core = static_cast<std::uint8_t>(access.core);
    rec.flags = access.isWrite ? 1 : 0;
    if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1)
        fatal("failed to append trace record");
    ++count_;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        fatal("cannot open trace file '", path, "'");

    PackedHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("trace file '", path, "' is truncated");
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'", path, "' is not a Unison trace file");
    if (hdr.version != kTraceVersion)
        fatal("trace version ", hdr.version, " unsupported (expected ",
              kTraceVersion, ")");
    if (hdr.numCores < 1 || hdr.numCores > 255)
        fatal("trace declares invalid core count ", hdr.numCores);
    numCores_ = static_cast<int>(hdr.numCores);
    buffers_.resize(numCores_);
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

std::size_t
TraceReader::readChunk()
{
    if (exhausted_)
        return 0;
    PackedRecord raw[kTraceReadChunk];
    const std::size_t got =
        std::fread(raw, sizeof(PackedRecord), kTraceReadChunk, file_);
    if (got < kTraceReadChunk)
        exhausted_ = true;
    for (std::size_t i = 0; i < got; ++i) {
        const PackedRecord &rec = raw[i];
        if (rec.core >= numCores_)
            fatal("trace record core ", static_cast<int>(rec.core),
                  " out of range (trace has ", numCores_, " cores)");
        MemoryAccess acc;
        acc.addr = rec.addr;
        acc.pc = rec.pc;
        acc.instrsBefore = rec.instrsBefore;
        acc.core = rec.core;
        acc.isWrite = (rec.flags & 1) != 0;
        buffers_[rec.core].push(acc);
    }
    count_ += got;
    return got;
}

bool
TraceReader::next(int core, MemoryAccess &out)
{
    UNISON_ASSERT(core >= 0 && core < numCores_,
                  "core ", core, " out of range");
    AccessChunkBuffer &buf = buffers_[core];
    while (buf.empty()) {
        if (readChunk() == 0)
            return false;
    }
    out = buf.front();
    buf.popFront();
    return true;
}

std::size_t
TraceReader::nextBatch(int core, MemoryAccess *out, std::size_t max)
{
    UNISON_ASSERT(core >= 0 && core < numCores_,
                  "core ", core, " out of range");
    AccessChunkBuffer &buf = buffers_[core];
    std::size_t produced = 0;
    while (produced < max) {
        const std::size_t take = std::min(max - produced, buf.size());
        if (take > 0) {
            const MemoryAccess *src = buf.pending();
            std::copy(src, src + take, out + produced);
            buf.consume(take);
            produced += take;
            continue;
        }
        if (readChunk() == 0)
            break;
    }
    return produced;
}

} // namespace unison
