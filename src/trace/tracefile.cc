#include "trace/tracefile.hh"

#include <cstring>

#include "common/logging.hh"

namespace unison {

namespace {

constexpr char kMagic[4] = {'U', 'C', 'T', 'R'};

struct PackedHeader
{
    char magic[4];
    std::uint32_t version;
    std::uint32_t numCores;
    std::uint32_t pad;
};

#pragma pack(push, 1)
struct PackedRecord
{
    std::uint64_t addr;
    std::uint64_t pc;
    std::uint16_t instrsBefore;
    std::uint8_t core;
    std::uint8_t flags;
};
#pragma pack(pop)

static_assert(sizeof(PackedHeader) == 16, "header layout drifted");
static_assert(sizeof(PackedRecord) == 20, "record layout drifted");

} // namespace

TraceWriter::TraceWriter(const std::string &path, int num_cores)
{
    UNISON_ASSERT(num_cores >= 1 && num_cores <= 255,
                  "bad core count ", num_cores);
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        fatal("cannot open trace file '", path, "' for writing");

    PackedHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kTraceVersion;
    hdr.numCores = static_cast<std::uint32_t>(num_cores);
    if (std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("failed to write trace header to '", path, "'");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
TraceWriter::write(const MemoryAccess &access)
{
    UNISON_ASSERT(file_ != nullptr, "write to closed trace");
    PackedRecord rec{};
    rec.addr = access.addr;
    rec.pc = access.pc;
    rec.instrsBefore = access.instrsBefore;
    rec.core = access.core;
    rec.flags = access.isWrite ? 1 : 0;
    if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1)
        fatal("failed to append trace record");
    ++count_;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        fatal("cannot open trace file '", path, "'");

    PackedHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("trace file '", path, "' is truncated");
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'", path, "' is not a Unison trace file");
    if (hdr.version != kTraceVersion)
        fatal("trace version ", hdr.version, " unsupported (expected ",
              kTraceVersion, ")");
    if (hdr.numCores < 1 || hdr.numCores > 255)
        fatal("trace declares invalid core count ", hdr.numCores);
    numCores_ = static_cast<int>(hdr.numCores);
    buffers_.resize(numCores_);
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceReader::readRecord(MemoryAccess &out)
{
    PackedRecord rec{};
    if (std::fread(&rec, sizeof(rec), 1, file_) != 1)
        return false;
    out.addr = rec.addr;
    out.pc = rec.pc;
    out.instrsBefore = rec.instrsBefore;
    out.core = rec.core;
    out.isWrite = (rec.flags & 1) != 0;
    if (out.core >= numCores_)
        fatal("trace record core ", static_cast<int>(out.core),
              " out of range (trace has ", numCores_, " cores)");
    ++count_;
    return true;
}

bool
TraceReader::next(int core, MemoryAccess &out)
{
    UNISON_ASSERT(core >= 0 && core < numCores_,
                  "core ", core, " out of range");
    if (!buffers_[core].empty()) {
        out = buffers_[core].front();
        buffers_[core].pop_front();
        return true;
    }
    // Scan forward, parking other cores' records in their buffers.
    MemoryAccess rec;
    while (readRecord(rec)) {
        if (rec.core == core) {
            out = rec;
            return true;
        }
        buffers_[rec.core].push_back(rec);
    }
    return false;
}

} // namespace unison
