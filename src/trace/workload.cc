#include "trace/workload.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

namespace {

/**
 * Bounded process-wide sampler cache. Keyed by (domain, alpha bit
 * pattern) -- presets use exact literals, so there is no
 * float-comparison fuzziness to worry about. Bounded FIFO: a
 * long-running `serve` session sees an unbounded stream of distinct
 * (n, alpha) pairs, and each entry holds tables worth tens to hundreds
 * of KB, so the cache must not grow monotonically. Eviction drops the
 * oldest *insertion*; experiments still running with an evicted
 * sampler keep it alive through their shared_ptr, so eviction is
 * purely a cache-residency decision, never a correctness one. All
 * access is under one mutex -- the construction pow-loop is the only
 * expensive path and concurrent served sweeps hit the map briefly at
 * experiment setup, never per access.
 */
template <typename Sampler>
class BoundedSamplerCache
{
  public:
    std::shared_ptr<const Sampler>
    get(std::uint64_t n, double alpha)
    {
        std::uint64_t alpha_bits;
        static_assert(sizeof(alpha_bits) == sizeof(alpha));
        std::memcpy(&alpha_bits, &alpha, sizeof(alpha));
        const Key key{n, alpha_bits};

        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        auto sampler = std::make_shared<const Sampler>(n, alpha);
        if (cache_.size() >= kSharedSamplerCacheCapacity) {
            cache_.erase(order_.front());
            order_.erase(order_.begin());
        }
        cache_.emplace(key, sampler);
        order_.push_back(key);
        return sampler;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return cache_.size();
    }

  private:
    using Key = std::pair<std::uint64_t, std::uint64_t>;

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<const Sampler>> cache_;
    std::vector<Key> order_; //!< insertion order, front is next victim
};

BoundedSamplerCache<ZipfAliasSampler> &
aliasSamplerCache()
{
    static BoundedSamplerCache<ZipfAliasSampler> cache;
    return cache;
}

BoundedSamplerCache<TwoLevelZipfSampler> &
twoLevelSamplerCache()
{
    static BoundedSamplerCache<TwoLevelZipfSampler> cache;
    return cache;
}

} // namespace

std::shared_ptr<const ZipfAliasSampler>
sharedZipfSampler(std::uint64_t n, double alpha)
{
    return aliasSamplerCache().get(n, alpha);
}

std::size_t
sharedZipfSamplerCacheSize()
{
    return aliasSamplerCache().size();
}

std::shared_ptr<const TwoLevelZipfSampler>
sharedTwoLevelZipfSampler(std::uint64_t n, double alpha)
{
    return twoLevelSamplerCache().get(n, alpha);
}

std::size_t
sharedTwoLevelZipfSamplerCacheSize()
{
    return twoLevelSamplerCache().size();
}

namespace {

/**
 * Scramble a Zipf rank into a region id so that popular regions are
 * scattered over the physical address space instead of clustering at
 * low addresses (which would create artificial set-index hot spots).
 */
std::uint64_t
scrambleRank(std::uint64_t rank, std::uint64_t num_regions)
{
    // Multiplicative hashing by a large odd constant, then fold into
    // the region domain. Near-uniform after the fold; the presets all
    // use power-of-two region counts, where a mask replaces the
    // 64-bit modulo.
    const std::uint64_t hashed = rank * 0x9e3779b97f4a7c15ull;
    if ((num_regions & (num_regions - 1)) == 0)
        return hashed & (num_regions - 1);
    return hashed % num_regions;
}

} // namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params,
                                     std::uint64_t seed)
    : params_(params),
      rng_(seed),
      functionZipf_(sharedZipfSampler(
          static_cast<std::uint64_t>(std::max(params.numFunctions, 1)),
          params.functionZipfAlpha)),
      regionZipf_(sharedZipfSampler(
          std::max<std::uint64_t>(params.numRegions(), 1),
          params.regionZipfAlpha))
{
    UNISON_ASSERT(params_.numCores >= 1, "workload needs >= 1 core");
    UNISON_ASSERT(params_.numFunctions >= 1, "workload needs functions");
    UNISON_ASSERT(params_.numRegions() >= 16,
                  "dataset too small: ", params_.datasetBytes);

    // Precomputed emitBlock constants (see emitBlock).
    {
        const double wf = std::clamp(params_.writeFraction, 0.0, 1.0);
        writeThresh24_ = static_cast<std::uint32_t>(
            wf * static_cast<double>(1u << 24));
        const double hi = 2.0 * params_.instrsPerMemRef - 1.0 + 0.5;
        instrSpan_ = static_cast<std::uint32_t>(std::max(hi, 1.0));
        if (params_.blockRepeatMean > 1.0) {
            geomRepeat_ = true;
            geomDenom_ = Rng::geometricDenom(params_.blockRepeatMean);
        }
    }

    buildFunctions();

    cores_.resize(params_.numCores);
    for (auto &core : cores_) {
        core.episodes.resize(std::max(params_.episodesPerCore, 1));
        for (auto &ep : core.episodes)
            startEpisode(ep);
        core.burstLeft = params_.burstLength;
    }
}

void
SyntheticWorkload::buildFunctions()
{
    functions_.resize(params_.numFunctions);
    const Pc pc_base = 0x400000;
    chasePcBase_ = 0x800000;

    const int num_singletons = static_cast<int>(
        params_.singletonFunctionFraction * params_.numFunctions);

    for (int f = 0; f < params_.numFunctions; ++f) {
        Function &fn = functions_[f];
        fn.pc = pc_base + static_cast<Pc>(f) * 4;

        if (f < num_singletons) {
            // Singleton function: touches exactly one block wherever
            // its object happens to land.
            fn.singleton = true;
            fn.pattern = 1;
            fn.width = 1;
            continue;
        }

        // Footprint size: truncated normal around the configured mean,
        // approximated by the mean of three uniform draws.
        const double spread = params_.footprintStddev * 3.46; // ~3 sigma
        double size = params_.meanFootprintBlocks +
                      spread * (rng_.uniform() + rng_.uniform() +
                                rng_.uniform() - 1.5) / 3.0;
        const int blocks = static_cast<int>(std::clamp(
            size, 2.0, static_cast<double>(kRegionBlocks)));

        std::uint32_t pattern = 1; // bit 0 (the trigger) is always set
        if (rng_.chance(params_.contiguousFraction)) {
            // Scan-like contiguous run.
            fn.contiguous = true;
            for (int b = 1; b < blocks; ++b)
                pattern |= 1u << b;
            fn.width = static_cast<std::uint8_t>(blocks);
        } else {
            // Scattered (structure-walk) pattern: fixed strides from
            // the first block, kept compact (real sparse objects are
            // clusters, not page-wide sprays -- this is also what
            // keeps them from splitting across every 960 B page).
            const std::uint32_t window = std::min<std::uint32_t>(
                kRegionBlocks, std::max<std::uint32_t>(
                                   4, static_cast<std::uint32_t>(
                                          blocks * 2)));
            while (popCount(pattern) <
                   static_cast<std::uint32_t>(blocks))
                pattern |= 1u << rng_.range(1, window - 1);
            fn.width = static_cast<std::uint8_t>(
                32 - std::countl_zero(pattern));
        }
        fn.pattern = pattern;
    }
}

std::uint64_t
SyntheticWorkload::pickRegion()
{
    const std::uint64_t rank = regionZipf_->sample(rng_);
    return scrambleRank(rank, params_.numRegions());
}

std::uint32_t
SyntheticWorkload::applyNoise(std::uint32_t mask, std::uint32_t width)
{
    if (params_.footprintNoiseDrop <= 0.0 &&
        params_.footprintNoiseAdd <= 0.0)
        return mask;

    std::uint32_t result = mask;
    const std::uint32_t span =
        std::min<std::uint32_t>(width + 4, kRegionBlocks);
    for (std::uint32_t b = 1; b < span; ++b) {
        const std::uint32_t bit = 1u << b;
        if (mask & bit) {
            if (rng_.chance(params_.footprintNoiseDrop))
                result &= ~bit;
        } else {
            if (rng_.chance(params_.footprintNoiseAdd))
                result |= bit;
        }
    }
    return result; // bit 0 (the trigger) is never dropped
}

void
SyntheticWorkload::startEpisode(Episode &ep)
{
    ep.active = true;
    ep.repeatsLeft = 0;
    ep.scan = false;

    if (rng_.chance(params_.pointerChaseFraction)) {
        // Pointer chase: one random block of a random region, from a
        // per-offset chase PC (so the predictor can still learn that
        // these are singletons).
        const std::uint64_t region = rng_.below(params_.numRegions());
        const std::uint32_t off = static_cast<std::uint32_t>(
            rng_.below(kRegionBlocks));
        ep.startBlock = region * kRegionBlocks + off;
        ep.pendingMask = 1;
        ep.pc = chasePcBase_ + (off & 7) * 4;
        return;
    }

    const std::uint64_t region = pickRegion();
    const std::uint64_t region_block = region * kRegionBlocks;

    // Most episodes on a region come from its owning function; the
    // rest are foreign visits by popularity-sampled code.
    std::uint32_t f;
    if (rng_.chance(params_.ownerAffinity)) {
        f = static_cast<std::uint32_t>(
            hashCombine(region, 0x04e12ull) %
            static_cast<std::uint64_t>(params_.numFunctions));
    } else {
        f = static_cast<std::uint32_t>(functionZipf_->sample(rng_));
    }
    const Function &fn = functions_[f];
    ep.pc = fn.pc;

    // Objects live at fixed addresses: the placement of this
    // function's data inside this region is a deterministic property
    // of (function, region), so revisiting the region touches the
    // same blocks again. Different (function, region) pairs still see
    // the full diversity of alignments.
    const std::uint64_t placement_hash =
        hashCombine(f + 1, region);

    if (fn.contiguous && params_.scanStretchMean > 1.0) {
        // Multi-region scan: stream `width x stretch` blocks from a
        // (function, region)-fixed start. Middle pages of the run are
        // dense, which is what makes scans so predictable for the
        // footprint machinery of any page size.
        const double stretch =
            params_.scanStretchMean *
            (0.5 + (placement_hash >> 32) * 0x1.0p-32);
        std::uint64_t len = static_cast<std::uint64_t>(
            fn.width * std::max(stretch, 1.0));
        len = std::clamp<std::uint64_t>(len, 2, 1024);
        const std::uint32_t align = static_cast<std::uint32_t>(
            placement_hash % kRegionBlocks);
        ep.startBlock = region_block + align;
        const std::uint64_t last_block =
            params_.numRegions() * kRegionBlocks - 1;
        if (ep.startBlock + len > last_block)
            ep.startBlock = last_block - len;
        ep.scan = true;
        ep.scanLeft = static_cast<std::uint32_t>(len);
        ep.scanNext = 0;
        return;
    }

    // Pattern episode: the relative pattern sits at the
    // (function, region)-fixed alignment. Placements are *not* clamped
    // to the region: real objects respect no page boundary, so a
    // footprint may straddle into the next region. (Clamping here
    // would mean no footprint ever crosses a 2 KB line -- artificially
    // perfect for a 2 KB-page cache and correspondingly unfair to the
    // 960 B / 1984 B organizations whose boundaries fall mid-region.)
    const std::uint32_t align = static_cast<std::uint32_t>(
        placement_hash % kRegionBlocks);
    ep.startBlock = region_block + align;
    const std::uint64_t last_block =
        params_.numRegions() * kRegionBlocks;
    if (ep.startBlock + fn.width > last_block)
        ep.startBlock = last_block - fn.width;
    ep.pendingMask =
        fn.singleton ? fn.pattern : applyNoise(fn.pattern, fn.width);
    if (ep.pendingMask == 0)
        ep.pendingMask = fn.pattern;
}

void
SyntheticWorkload::emitBlock(const Episode &ep, std::uint64_t block,
                             int core, MemoryAccess &out)
{
    out.addr = blockAddress(block);
    out.pc = ep.pc;
    out.core = static_cast<std::uint16_t>(core);
    // One RNG draw supplies both fields: the write flag from the top
    // 24 bits, the instruction gap from the low 32 (emitBlock runs
    // once per reference, so the second generator step it used to
    // take was measurable).
    const std::uint64_t r = rng_.next();
    out.isWrite = (r >> 40) < writeThresh24_;
    out.instrsBefore = static_cast<std::uint16_t>(
        1 + ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) *
              instrSpan_) >>
             32));
}

bool
SyntheticWorkload::emitFromEpisode(Episode &ep, int core,
                                   MemoryAccess &out)
{
    if (ep.repeatsLeft == 0) {
        // Advance to the next block of the episode.
        if (ep.scan) {
            // Skip dropped blocks (noise), never the first.
            while (ep.scanLeft > 0 && ep.scanNext > 0 &&
                   rng_.chance(params_.footprintNoiseDrop)) {
                ++ep.scanNext;
                --ep.scanLeft;
            }
            if (ep.scanLeft == 0) {
                ep.active = false;
                return false;
            }
            ep.currentBit = 0;
            --ep.scanLeft;
        } else {
            if (ep.pendingMask == 0) {
                ep.active = false;
                return false;
            }
            ep.currentBit = static_cast<std::uint8_t>(
                std::countr_zero(ep.pendingMask));
            ep.pendingMask &= ep.pendingMask - 1;
        }
        const std::uint64_t repeats =
            geomRepeat_ ? rng_.geometricWith(geomDenom_) : 1;
        ep.repeatsLeft = static_cast<std::uint8_t>(
            std::min<std::uint64_t>(repeats, 64));
    }

    --ep.repeatsLeft;
    const std::uint64_t block =
        ep.scan ? ep.startBlock + ep.scanNext
                : ep.startBlock + ep.currentBit;
    emitBlock(ep, block, core, out);
    if (ep.scan && ep.repeatsLeft == 0)
        ++ep.scanNext;
    return true;
}

bool
SyntheticWorkload::generate(CoreState &core, int core_idx,
                            MemoryAccess &out)
{
    for (int attempts = 0; attempts < 64; ++attempts) {
        if (core.burstLeft == 0) {
            // Rotate to the next in-flight episode (interleaving);
            // conditional wrap, since an integer divide here gates
            // every burst.
            core.burstLeft = params_.burstLength;
            ++core.slot;
            if (core.slot >= static_cast<int>(core.episodes.size()))
                core.slot = 0;
        }

        Episode &ep = core.episodes[core.slot];
        if (!ep.active)
            startEpisode(ep);
        if (emitFromEpisode(ep, core_idx, out)) {
            --core.burstLeft;
            return true;
        }
        // Episode drained mid-burst: start a fresh one next attempt.
        startEpisode(ep);
    }
    panic("SyntheticWorkload failed to produce an access");
}

bool
SyntheticWorkload::next(int core_idx, MemoryAccess &out)
{
    UNISON_ASSERT(core_idx >= 0 && core_idx < params_.numCores,
                  "core ", core_idx, " out of range");
    return generate(cores_[core_idx], core_idx, out);
}

std::size_t
SyntheticWorkload::nextBatch(int core_idx, MemoryAccess *out,
                             std::size_t max)
{
    UNISON_ASSERT(core_idx >= 0 && core_idx < params_.numCores,
                  "core ", core_idx, " out of range");
    // Identical record stream to `max` successive next() calls, with
    // the bounds check and virtual dispatch hoisted out of the loop.
    CoreState &core = cores_[core_idx];
    for (std::size_t i = 0; i < max; ++i)
        generate(core, core_idx, out[i]);
    return max;
}

std::uint32_t
SyntheticWorkload::functionMask(int f) const
{
    UNISON_ASSERT(f >= 0 && f < static_cast<int>(functions_.size()),
                  "bad function index");
    return functions_[f].pattern;
}

Pc
SyntheticWorkload::functionPc(int f) const
{
    UNISON_ASSERT(f >= 0 && f < static_cast<int>(functions_.size()),
                  "bad function index");
    return functions_[f].pc;
}

} // namespace unison
