#include "trace/scenarios.hh"

#include <algorithm>
#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "trace/presets.hh"

namespace unison {

namespace {

/** Dedicated PCs so predictors can key each scenario's behaviour. */
constexpr Pc kChasePc = 0xA00000;
constexpr Pc kScanPc = 0xA00100;
constexpr Pc kGupsPc = 0xA00200;
constexpr Pc kHotPc = 0xA00300;
constexpr Pc kColdPc = 0xA00400;

} // namespace

ScenarioParams
scenarioParams(ScenarioKind kind)
{
    ScenarioParams p;
    p.kind = kind;
    switch (kind) {
      case ScenarioKind::PointerChase:
        // Latency-bound dependent walk: singletons, nearly read-only.
        p.footprintBytes = 2ull << 30;
        p.writeFraction = 0.02;
        p.instrsPerMemRef = 4.0;
        break;
      case ScenarioKind::StreamScan:
        // Bandwidth-bound sequential sweep; a sprinkle of stores so
        // writeback paths stay exercised.
        p.footprintBytes = 4ull << 30;
        p.writeFraction = 0.05;
        p.instrsPerMemRef = 6.0;
        p.strideBlocks = 1;
        break;
      case ScenarioKind::RandomUpdate:
        // GUPS: every update is a load+store pair to a random block,
        // so the effective write fraction is ~50% regardless of
        // writeFraction (which only shapes the rare extra stores).
        p.footprintBytes = 1ull << 30;
        p.writeFraction = 0.0;
        p.instrsPerMemRef = 3.0;
        break;
      case ScenarioKind::ProducerConsumer:
        p.footprintBytes = 256ull << 20;
        p.hotSetBytes = 4ull << 20;
        p.hotFraction = 0.75;
        p.writeFraction = 0.05;
        p.instrsPerMemRef = 8.0;
        break;
    }
    return p;
}

std::string
scenarioName(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::PointerChase:
        return "Pointer Chase";
      case ScenarioKind::StreamScan:
        return "Streaming Scan";
      case ScenarioKind::RandomUpdate:
        return "Random Update";
      case ScenarioKind::ProducerConsumer:
        return "Producer-Consumer";
    }
    panic("unknown scenario kind");
}

bool
scenarioFromName(const std::string &name, ScenarioKind &out)
{
    const std::string key = normalizedNameKey(name);
    if (key == "pointerchase" || key == "chase") {
        out = ScenarioKind::PointerChase;
    } else if (key == "streamingscan" || key == "streamscan" ||
               key == "scan") {
        out = ScenarioKind::StreamScan;
    } else if (key == "randomupdate" || key == "gups") {
        out = ScenarioKind::RandomUpdate;
    } else if (key == "producerconsumer" || key == "prodcons") {
        out = ScenarioKind::ProducerConsumer;
    } else {
        return false;
    }
    return true;
}

ScenarioSource::ScenarioSource(const ScenarioParams &params,
                               std::uint64_t seed, int core_id,
                               Addr private_base, Addr shared_base)
    : params_(params),
      rng_(hashCombine(seed, static_cast<std::uint64_t>(core_id) + 1)),
      producer_(core_id % 2 == 0),
      privateBaseBlock_(blockNumber(private_base)),
      sharedBaseBlock_(blockNumber(shared_base)),
      privateBlocks_(std::max<std::uint64_t>(
          params.footprintBytes / kBlockBytes, 1)),
      hotBlocks_(std::max<std::uint64_t>(
          params.hotSetBytes / kBlockBytes, 1))
{
    UNISON_ASSERT(params_.strideBlocks >= 1, "scenario stride of 0");
    UNISON_ASSERT(params_.hotFraction >= 0.0 &&
                      params_.hotFraction <= 1.0,
                  "hotFraction outside [0, 1]");
    if (params_.kind == ScenarioKind::PointerChase) {
        // The chase walks a full-period LCG permutation, which needs a
        // power-of-two node count (a hash walk would collapse into a
        // ~sqrt(n) rho cycle and silently shrink the working set).
        privateBlocks_ = std::bit_floor(privateBlocks_);
    }
    const double wf = std::clamp(params_.writeFraction, 0.0, 1.0);
    writeThresh24_ =
        static_cast<std::uint32_t>(wf * static_cast<double>(1u << 24));
    const double hi = 2.0 * params_.instrsPerMemRef - 1.0 + 0.5;
    instrSpan_ = static_cast<std::uint32_t>(std::max(hi, 1.0));
    // Stagger scan starts so same-scenario cores do not march in
    // lockstep over identical offsets of their private regions.
    scanCursor_ = rng_.below(privateBlocks_);
    chaseCursor_ = rng_.below(privateBlocks_);
}

void
ScenarioSource::emit(std::uint64_t block, bool is_write, Pc pc,
                     MemoryAccess &out)
{
    out.addr = blockAddress(block);
    out.pc = pc;
    out.core = 0; // rewritten by MixedWorkload to the global core id
    const std::uint64_t r = rng_.next();
    out.isWrite = is_write || (r >> 40) < writeThresh24_;
    out.instrsBefore = static_cast<std::uint16_t>(
        1 + ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) *
              instrSpan_) >>
             32));
}

bool
ScenarioSource::next(int core, MemoryAccess &out)
{
    UNISON_ASSERT(core == 0, "ScenarioSource is single-core");
    switch (params_.kind) {
      case ScenarioKind::PointerChase: {
        // Dependent walk along a full-period LCG permutation (Hull-
        // Dobell: multiplier = 1 mod 4, odd increment, power-of-two
        // modulus): every block of the footprint is visited exactly
        // once per period, consecutive references share no spatial
        // locality, and every block is a singleton.
        chaseCursor_ = (chaseCursor_ * 0xd1342543de82ef95ull +
                        0x2545f4914f6cdd1dull) &
                       (privateBlocks_ - 1);
        emit(privateBaseBlock_ + chaseCursor_, false, kChasePc, out);
        return true;
      }
      case ScenarioKind::StreamScan: {
        scanCursor_ += params_.strideBlocks;
        if (scanCursor_ >= privateBlocks_)
            scanCursor_ -= privateBlocks_;
        emit(privateBaseBlock_ + scanCursor_, false, kScanPc, out);
        return true;
      }
      case ScenarioKind::RandomUpdate: {
        if (updatePending_) {
            // Second half of the update: store to the loaded block.
            updatePending_ = false;
            emit(updateBlock_, true, kGupsPc, out);
            return true;
        }
        updateBlock_ = privateBaseBlock_ + rng_.below(privateBlocks_);
        updatePending_ = true;
        emit(updateBlock_, false, kGupsPc, out);
        return true;
      }
      case ScenarioKind::ProducerConsumer: {
        if (rng_.chance(params_.hotFraction)) {
            // Shared hot set: identical addresses on every core of
            // the scenario. Producers write, consumers read.
            const std::uint64_t block =
                sharedBaseBlock_ + rng_.below(hotBlocks_);
            emit(block, producer_, kHotPc, out);
        } else {
            const std::uint64_t block =
                privateBaseBlock_ + rng_.below(privateBlocks_);
            emit(block, false, kColdPc, out);
        }
        return true;
      }
    }
    panic("unknown scenario kind");
}

} // namespace unison
