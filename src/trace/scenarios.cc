#include "trace/scenarios.hh"

#include <algorithm>
#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "trace/presets.hh"
#include "trace/workload.hh"

namespace unison {

namespace {

/** Dedicated PCs so predictors can key each scenario's behaviour. */
constexpr Pc kChasePc = 0xA00000;
constexpr Pc kScanPc = 0xA00100;
constexpr Pc kGupsPc = 0xA00200;
constexpr Pc kHotPc = 0xA00300;
constexpr Pc kColdPc = 0xA00400;
constexpr Pc kKvReqPc = 0xA00500;
constexpr Pc kKvDataPc = 0xA00600;
constexpr Pc kDlrmGatherPc = 0xA00700;
constexpr Pc kDlrmMlpPc = 0xA00800;
constexpr Pc kFileMetaPc = 0xA00900;
constexpr Pc kFileDataPc = 0xA00A00;

/** Per-table scatter salt (odd, so the scatter stays a bijection). */
std::uint64_t
tableSalt(std::uint32_t table)
{
    return (static_cast<std::uint64_t>(table) + 1) *
           0x6a09e667f3bcc909ull;
}

} // namespace

bool
scenarioIsDatacenter(ScenarioKind kind)
{
    return kind == ScenarioKind::YcsbKv ||
           kind == ScenarioKind::DlrmEmbed ||
           kind == ScenarioKind::FileServe;
}

std::uint64_t
scenarioKeySpace(const ScenarioParams &params)
{
    return std::bit_floor(std::max<std::uint64_t>(params.numKeys, 2));
}

std::uint64_t
scenarioSharedBytes(const ScenarioParams &params)
{
    const std::uint64_t record_blocks =
        std::max<std::uint64_t>(params.recordBlocks, 1);
    const std::uint64_t keyed =
        scenarioKeySpace(params) * record_blocks * kBlockBytes;
    switch (params.kind) {
      case ScenarioKind::YcsbKv:
        return keyed;
      case ScenarioKind::DlrmEmbed:
        return keyed * std::max<std::uint64_t>(params.numTables, 1);
      case ScenarioKind::FileServe: {
        // Metadata hot set first, file extents after it; the block
        // count must match the source's hotBlocks_ so the layouts
        // agree.
        const std::uint64_t meta_blocks =
            std::max<std::uint64_t>(params.hotSetBytes / kBlockBytes, 1);
        return meta_blocks * kBlockBytes + keyed;
      }
      default:
        return params.hotSetBytes;
    }
}

ScenarioParams
scenarioParams(ScenarioKind kind)
{
    ScenarioParams p;
    p.kind = kind;
    switch (kind) {
      case ScenarioKind::PointerChase:
        // Latency-bound dependent walk: singletons, nearly read-only.
        p.footprintBytes = 2ull << 30;
        p.writeFraction = 0.02;
        p.instrsPerMemRef = 4.0;
        break;
      case ScenarioKind::StreamScan:
        // Bandwidth-bound sequential sweep; a sprinkle of stores so
        // writeback paths stay exercised.
        p.footprintBytes = 4ull << 30;
        p.writeFraction = 0.05;
        p.instrsPerMemRef = 6.0;
        p.strideBlocks = 1;
        break;
      case ScenarioKind::RandomUpdate:
        // GUPS: every update is a load+store pair to a random block,
        // so the effective write fraction is ~50% regardless of
        // writeFraction (which only shapes the rare extra stores).
        p.footprintBytes = 1ull << 30;
        p.writeFraction = 0.0;
        p.instrsPerMemRef = 3.0;
        break;
      case ScenarioKind::ProducerConsumer:
        p.footprintBytes = 256ull << 20;
        p.hotSetBytes = 4ull << 20;
        p.hotFraction = 0.75;
        p.writeFraction = 0.05;
        p.instrsPerMemRef = 8.0;
        break;
      case ScenarioKind::YcsbKv:
        // YCSB-B-flavoured KV serving: 1M 1-KB records, zipfian 0.99
        // key popularity (the YCSB default), 5% updates, short
        // partial-record reads, per-request parse work in a private
        // scratch region.
        p.footprintBytes = 64ull << 20;
        p.numKeys = 1ull << 20;
        p.keyZipfAlpha = 0.99;
        p.recordBlocks = 16;
        p.requestBlocksMean = 4.0;
        p.writeFraction = 0.05;
        p.instrsPerMemRef = 8.0;
        break;
      case ScenarioKind::DlrmEmbed:
        // Embedding gathers: 8 tables x 128K rows x 128 B, 4 pooled
        // lookups per table per sample with per-table skew, then a
        // dense-MLP streaming burst over private activations.
        p.footprintBytes = 128ull << 20;
        p.numKeys = 1ull << 17;
        p.keyZipfAlpha = 1.05;
        p.recordBlocks = 2;
        p.numTables = 8;
        p.lookupsPerTable = 4;
        p.requestBlocksMean = 16.0;
        p.writeFraction = 0.0;
        p.instrsPerMemRef = 4.0;
        break;
      case ScenarioKind::FileServe:
        // Client/server file serving with a metadata hot set (the
        // orangefs sidcache/ucache shape): 40% of operations are
        // metadata lookups in a small shared cache, the rest stream a
        // geometric-length transfer out of a zipf-popular 4-KB file;
        // 10% of transfers are ingests (writes).
        p.footprintBytes = 64ull << 20;
        p.hotSetBytes = 2ull << 20;
        p.hotFraction = 0.4;
        p.numKeys = 1ull << 18;
        p.keyZipfAlpha = 1.1;
        p.recordBlocks = 64;
        p.requestBlocksMean = 16.0;
        p.writeFraction = 0.1;
        p.instrsPerMemRef = 6.0;
        break;
    }
    return p;
}

std::string
scenarioName(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::PointerChase:
        return "Pointer Chase";
      case ScenarioKind::StreamScan:
        return "Streaming Scan";
      case ScenarioKind::RandomUpdate:
        return "Random Update";
      case ScenarioKind::ProducerConsumer:
        return "Producer-Consumer";
      case ScenarioKind::YcsbKv:
        return "YCSB KV Serving";
      case ScenarioKind::DlrmEmbed:
        return "DLRM Embedding";
      case ScenarioKind::FileServe:
        return "File Serving";
    }
    panic("unknown scenario kind");
}

bool
scenarioFromName(const std::string &name, ScenarioKind &out)
{
    const std::string key = normalizedNameKey(name);
    if (key == "pointerchase" || key == "chase") {
        out = ScenarioKind::PointerChase;
    } else if (key == "streamingscan" || key == "streamscan" ||
               key == "scan") {
        out = ScenarioKind::StreamScan;
    } else if (key == "randomupdate" || key == "gups") {
        out = ScenarioKind::RandomUpdate;
    } else if (key == "producerconsumer" || key == "prodcons") {
        out = ScenarioKind::ProducerConsumer;
    } else if (key == "ycsbkvserving" || key == "ycsbkv" ||
               key == "ycsb" || key == "kvserving") {
        out = ScenarioKind::YcsbKv;
    } else if (key == "dlrmembedding" || key == "dlrmembed" ||
               key == "dlrm") {
        out = ScenarioKind::DlrmEmbed;
    } else if (key == "fileserving" || key == "fileserve") {
        out = ScenarioKind::FileServe;
    } else {
        return false;
    }
    return true;
}

ScenarioSource::ScenarioSource(const ScenarioParams &params,
                               std::uint64_t seed, int core_id,
                               Addr private_base, Addr shared_base)
    : params_(params),
      rng_(hashCombine(seed, static_cast<std::uint64_t>(core_id) + 1)),
      producer_(core_id % 2 == 0),
      privateBaseBlock_(blockNumber(private_base)),
      sharedBaseBlock_(blockNumber(shared_base)),
      privateBlocks_(std::max<std::uint64_t>(
          params.footprintBytes / kBlockBytes, 1)),
      hotBlocks_(std::max<std::uint64_t>(
          params.hotSetBytes / kBlockBytes, 1))
{
    UNISON_ASSERT(params_.strideBlocks >= 1, "scenario stride of 0");
    UNISON_ASSERT(params_.hotFraction >= 0.0 &&
                      params_.hotFraction <= 1.0,
                  "hotFraction outside [0, 1]");
    if (params_.kind == ScenarioKind::PointerChase) {
        // The chase walks a full-period LCG permutation, which needs a
        // power-of-two node count (a hash walk would collapse into a
        // ~sqrt(n) rho cycle and silently shrink the working set).
        privateBlocks_ = std::bit_floor(privateBlocks_);
    }
    const double wf = std::clamp(params_.writeFraction, 0.0, 1.0);
    writeThresh24_ =
        static_cast<std::uint32_t>(wf * static_cast<double>(1u << 24));
    const double hi = 2.0 * params_.instrsPerMemRef - 1.0 + 0.5;
    instrSpan_ = static_cast<std::uint32_t>(std::max(hi, 1.0));
    if (scenarioIsDatacenter(params_.kind)) {
        // Writes are drawn explicitly per *request* (an update writes
        // its whole transfer), so the per-access sprinkle is disabled.
        writeThresh24_ = 0;
        keySpace_ = scenarioKeySpace(params_);
        recordBlocks_ = std::max<std::uint64_t>(params_.recordBlocks, 1);
        keyZipf_ =
            sharedTwoLevelZipfSampler(keySpace_, params_.keyZipfAlpha);
        if (params_.requestBlocksMean > 1.0) {
            reqLenGeometric_ = true;
            reqLenDenom_ = Rng::geometricDenom(params_.requestBlocksMean);
        }
    }
    // Stagger scan starts so same-scenario cores do not march in
    // lockstep over identical offsets of their private regions.
    scanCursor_ = rng_.below(privateBlocks_);
    chaseCursor_ = rng_.below(privateBlocks_);
}

std::uint64_t
ScenarioSource::scatterKey(std::uint64_t rank, std::uint64_t salt) const
{
    // Odd-multiplier scatter is a bijection on the power-of-two
    // keyspace: every rank maps to a distinct key, so skew never
    // collapses the number of distinct keys touched.
    return (rank * 0x9e3779b97f4a7c15ull + salt) & (keySpace_ - 1);
}

std::uint64_t
ScenarioSource::requestLength()
{
    if (!reqLenGeometric_)
        return 1;
    return rng_.geometricWith(reqLenDenom_);
}

void
ScenarioSource::emit(std::uint64_t block, bool is_write, Pc pc,
                     MemoryAccess &out)
{
    out.addr = blockAddress(block);
    out.pc = pc;
    out.core = 0; // rewritten by MixedWorkload to the global core id
    const std::uint64_t r = rng_.next();
    out.isWrite = is_write || (r >> 40) < writeThresh24_;
    out.instrsBefore = static_cast<std::uint16_t>(
        1 + ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) *
              instrSpan_) >>
             32));
}

bool
ScenarioSource::next(int core, MemoryAccess &out)
{
    UNISON_ASSERT(core == 0, "ScenarioSource is single-core");
    switch (params_.kind) {
      case ScenarioKind::PointerChase: {
        // Dependent walk along a full-period LCG permutation (Hull-
        // Dobell: multiplier = 1 mod 4, odd increment, power-of-two
        // modulus): every block of the footprint is visited exactly
        // once per period, consecutive references share no spatial
        // locality, and every block is a singleton.
        chaseCursor_ = (chaseCursor_ * 0xd1342543de82ef95ull +
                        0x2545f4914f6cdd1dull) &
                       (privateBlocks_ - 1);
        emit(privateBaseBlock_ + chaseCursor_, false, kChasePc, out);
        return true;
      }
      case ScenarioKind::StreamScan: {
        scanCursor_ += params_.strideBlocks;
        if (scanCursor_ >= privateBlocks_)
            scanCursor_ -= privateBlocks_;
        emit(privateBaseBlock_ + scanCursor_, false, kScanPc, out);
        return true;
      }
      case ScenarioKind::RandomUpdate: {
        if (updatePending_) {
            // Second half of the update: store to the loaded block.
            updatePending_ = false;
            emit(updateBlock_, true, kGupsPc, out);
            return true;
        }
        updateBlock_ = privateBaseBlock_ + rng_.below(privateBlocks_);
        updatePending_ = true;
        emit(updateBlock_, false, kGupsPc, out);
        return true;
      }
      case ScenarioKind::ProducerConsumer: {
        if (rng_.chance(params_.hotFraction)) {
            // Shared hot set: identical addresses on every core of
            // the scenario. Producers write, consumers read.
            const std::uint64_t block =
                sharedBaseBlock_ + rng_.below(hotBlocks_);
            emit(block, producer_, kHotPc, out);
        } else {
            const std::uint64_t block =
                privateBaseBlock_ + rng_.below(privateBlocks_);
            emit(block, false, kColdPc, out);
        }
        return true;
      }
      case ScenarioKind::YcsbKv:
        return nextYcsbKv(out);
      case ScenarioKind::DlrmEmbed:
        return nextDlrmEmbed(out);
      case ScenarioKind::FileServe:
        return nextFileServe(out);
    }
    panic("unknown scenario kind");
}

bool
ScenarioSource::nextYcsbKv(MemoryAccess &out)
{
    if (burstLeft_ > 0) {
        // Drain the record transfer one block per call.
        --burstLeft_;
        emit(burstBlock_++, burstWrite_, kKvDataPc, out);
        return true;
    }
    // New request: pick a zipf-popular key, decide read vs update,
    // size the partial-record transfer, and open the request with one
    // parse/stack touch in this core's private scratch region.
    const std::uint64_t rank = keyZipf_->sample(rng_);
    const std::uint64_t key = scatterKey(rank, 0);
    burstWrite_ = rng_.chance(params_.writeFraction);
    burstBlock_ = sharedBaseBlock_ + key * recordBlocks_;
    burstLeft_ = std::min<std::uint64_t>(requestLength(), recordBlocks_);
    scanCursor_ = scanCursor_ + 1 == privateBlocks_ ? 0 : scanCursor_ + 1;
    emit(privateBaseBlock_ + scanCursor_, false, kKvReqPc, out);
    return true;
}

bool
ScenarioSource::nextDlrmEmbed(MemoryAccess &out)
{
    if (burstLeft_ > 0) {
        --burstLeft_;
        if (burstPhase_ == 2) {
            // MLP: read the activation, write the next layer's.
            emit(burstBlock_++, (burstLeft_ & 1) != 0, kDlrmMlpPc, out);
        } else {
            emit(burstBlock_++, false, kDlrmGatherPc, out);
        }
        return true;
    }
    if (burstPhase_ != 1) {
        // Start a new sample: gather from table 0 again.
        burstPhase_ = 1;
        tableCursor_ = 0;
        lookupCursor_ = 0;
    }
    const std::uint32_t tables = std::max<std::uint32_t>(
        params_.numTables, 1);
    const std::uint32_t lookups = std::max<std::uint32_t>(
        params_.lookupsPerTable, 1);
    if (tableCursor_ < tables) {
        // One pooled lookup: a whole embedding row, per-table salt so
        // every table has its own popularity-to-row permutation.
        const std::uint64_t rank = keyZipf_->sample(rng_);
        const std::uint64_t row = scatterKey(rank, tableSalt(tableCursor_));
        burstBlock_ = sharedBaseBlock_ +
                      (static_cast<std::uint64_t>(tableCursor_) *
                           keySpace_ +
                       row) *
                          recordBlocks_;
        burstLeft_ = recordBlocks_;
        if (++lookupCursor_ >= lookups) {
            lookupCursor_ = 0;
            ++tableCursor_;
        }
        --burstLeft_;
        emit(burstBlock_++, false, kDlrmGatherPc, out);
        return true;
    }
    // All tables gathered: dense-MLP streaming burst over the private
    // activation buffer, alternating read/write.
    burstPhase_ = 2;
    std::uint64_t len = std::max<std::uint64_t>(requestLength(), 2);
    if (scanCursor_ + len >= privateBlocks_)
        scanCursor_ = 0;
    burstBlock_ = privateBaseBlock_ + scanCursor_;
    scanCursor_ += len;
    burstLeft_ = len - 1;
    emit(burstBlock_++, (burstLeft_ & 1) != 0, kDlrmMlpPc, out);
    return true;
}

bool
ScenarioSource::nextFileServe(MemoryAccess &out)
{
    if (burstLeft_ > 0) {
        --burstLeft_;
        emit(burstBlock_++, burstWrite_, kFileDataPc, out);
        return true;
    }
    if (rng_.chance(params_.hotFraction)) {
        // Metadata operation in the shared hot cache (the
        // sidcache/ucache shape): small, heavily reused, read-mostly.
        const std::uint64_t block =
            sharedBaseBlock_ + rng_.below(hotBlocks_);
        emit(block, rng_.chance(params_.writeFraction), kFileMetaPc, out);
        return true;
    }
    // Data operation: stream a geometric-length transfer out of a
    // zipf-popular file's extent, from a random in-extent offset;
    // ingests (writes) with probability writeFraction.
    const std::uint64_t rank = keyZipf_->sample(rng_);
    const std::uint64_t file = scatterKey(rank, 0);
    burstWrite_ = rng_.chance(params_.writeFraction);
    const std::uint64_t len =
        std::min<std::uint64_t>(requestLength(), recordBlocks_);
    const std::uint64_t extent =
        sharedBaseBlock_ + hotBlocks_ + file * recordBlocks_;
    const std::uint64_t start =
        len >= recordBlocks_ ? 0 : rng_.below(recordBlocks_ - len + 1);
    burstBlock_ = extent + start;
    burstLeft_ = len - 1;
    emit(burstBlock_++, burstWrite_, kFileDataPc, out);
    return true;
}

} // namespace unison
