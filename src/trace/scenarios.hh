/**
 * @file
 * Synthetic micro-scenario generators for multiprogrammed mixes.
 *
 * The calibrated CloudSuite/TPC-H presets (presets.hh) model whole
 * server workloads; these scenarios are the orthogonal stress axes a
 * heterogeneous consolidation study needs on individual cores:
 *
 *  - *pointer chase*: a dependent random walk of singleton reads, the
 *    worst case for footprint prediction and page-granular allocation;
 *  - *streaming scan*: a sequential sweep that never reuses a block,
 *    the best case for spatial footprints and row-buffer locality;
 *  - *random update (GUPS-style)*: read-modify-write pairs to uniform
 *    random blocks, stressing dirty-writeback and off-chip bandwidth;
 *  - *producer/consumer*: most references land in a small hot set
 *    *shared between the cores running this scenario* (producers write
 *    it, consumers read it), creating inter-core page contention that
 *    a homogeneous source cannot express.
 *
 * Each ScenarioSource is a single-core AccessSource; MixedWorkload
 * (mix.hh) assigns one per core and lays out the private/shared
 * address regions so streams are deterministic per (params, seed,
 * core) regardless of how the scheduler interleaves cores.
 */

#ifndef UNISON_TRACE_SCENARIOS_HH
#define UNISON_TRACE_SCENARIOS_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/access.hh"

namespace unison {

/** The four mix-scenario generators. */
enum class ScenarioKind
{
    PointerChase,
    StreamScan,
    RandomUpdate,
    ProducerConsumer,
};

/** Tunables of one scenario instance (one core). */
struct ScenarioParams
{
    ScenarioKind kind = ScenarioKind::PointerChase;

    /** Private working set of this core. */
    std::uint64_t footprintBytes = 512ull << 20;

    /** Shared hot set (ProducerConsumer only; same region for every
     *  core running the scenario in a mix). */
    std::uint64_t hotSetBytes = 4ull << 20;

    /** Fraction of references that hit the shared hot set. */
    double hotFraction = 0.75;

    /** Store fraction of the non-paired references. */
    double writeFraction = 0.02;

    /** Mean non-memory instructions per reference. */
    double instrsPerMemRef = 6.0;

    /** Blocks advanced per reference (StreamScan). */
    std::uint32_t strideBlocks = 1;
};

/** Calibrated defaults for each scenario kind. */
ScenarioParams scenarioParams(ScenarioKind kind);

/** Display name ("Pointer Chase", "Streaming Scan", ...). */
std::string scenarioName(ScenarioKind kind);

/** Parse a scenario name or alias ("chase", "scan", "gups",
 *  "prodcons"); returns false when the name is not a scenario. */
bool scenarioFromName(const std::string &name, ScenarioKind &out);

/**
 * One core's scenario stream. Addresses fall in
 * [privateBase, privateBase + footprintBytes) plus, for
 * ProducerConsumer, [sharedBase, sharedBase + hotSetBytes); the mix
 * builder chooses the bases so private regions never overlap and the
 * hot set is common to all cores of the scenario.
 */
class ScenarioSource final : public AccessSource
{
  public:
    /**
     * @param core_id global core index: seeds the private stream and
     *        decides the producer/consumer role (even cores produce).
     */
    ScenarioSource(const ScenarioParams &params, std::uint64_t seed,
                   int core_id, Addr private_base, Addr shared_base);

    bool next(int core, MemoryAccess &out) override;
    int numCores() const override { return 1; }
    AccessSourceKind kind() const override
    {
        return AccessSourceKind::Scenario;
    }

    const ScenarioParams &params() const { return params_; }
    bool isProducer() const { return producer_; }

    /** Single-core by construction: the stream is a pure function of
     *  (params, seed, core_id). */
    bool perCoreDeterministic() const override { return true; }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        out.pod(rng_);
        out.pod(chaseCursor_);
        out.pod(scanCursor_);
        out.pod(updatePending_);
        out.pod(updateBlock_);
    }

    void
    loadState(StateReader &in) override
    {
        in.pod(rng_);
        in.pod(chaseCursor_);
        in.pod(scanCursor_);
        in.pod(updatePending_);
        in.pod(updateBlock_);
    }

  private:
    void emit(std::uint64_t block, bool is_write, Pc pc,
              MemoryAccess &out);

    ScenarioParams params_;
    Rng rng_;
    bool producer_;
    std::uint64_t privateBaseBlock_;
    std::uint64_t sharedBaseBlock_;
    std::uint64_t privateBlocks_;
    std::uint64_t hotBlocks_;
    std::uint32_t writeThresh24_;
    std::uint32_t instrSpan_;

    std::uint64_t chaseCursor_ = 0; //!< PointerChase position
    std::uint64_t scanCursor_ = 0;  //!< StreamScan position
    bool updatePending_ = false;    //!< RandomUpdate write half due
    std::uint64_t updateBlock_ = 0;
};

} // namespace unison

#endif // UNISON_TRACE_SCENARIOS_HH
