/**
 * @file
 * Synthetic micro-scenario generators for multiprogrammed mixes.
 *
 * The calibrated CloudSuite/TPC-H presets (presets.hh) model whole
 * server workloads; these scenarios are the orthogonal stress axes a
 * heterogeneous consolidation study needs on individual cores:
 *
 *  - *pointer chase*: a dependent random walk of singleton reads, the
 *    worst case for footprint prediction and page-granular allocation;
 *  - *streaming scan*: a sequential sweep that never reuses a block,
 *    the best case for spatial footprints and row-buffer locality;
 *  - *random update (GUPS-style)*: read-modify-write pairs to uniform
 *    random blocks, stressing dirty-writeback and off-chip bandwidth;
 *  - *producer/consumer*: most references land in a small hot set
 *    *shared between the cores running this scenario* (producers write
 *    it, consumers read it), creating inter-core page contention that
 *    a homogeneous source cannot express.
 *
 * Each ScenarioSource is a single-core AccessSource; MixedWorkload
 * (mix.hh) assigns one per core and lays out the private/shared
 * address regions so streams are deterministic per (params, seed,
 * core) regardless of how the scheduler interleaves cores.
 */

#ifndef UNISON_TRACE_SCENARIOS_HH
#define UNISON_TRACE_SCENARIOS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/access.hh"

namespace unison {

/** The mix-scenario generators. The last three are the *datacenter*
 *  family: skewed request streams over keyspaces of millions of
 *  distinct keys, modeled after YCSB-over-KV serving, DLRM embedding
 *  gathers and client/server file serving with a metadata hot set. */
enum class ScenarioKind
{
    PointerChase,
    StreamScan,
    RandomUpdate,
    ProducerConsumer,
    YcsbKv,
    DlrmEmbed,
    FileServe,
};

/** True for the large-keyspace serving generators (YcsbKv, DlrmEmbed,
 *  FileServe), which use the shared region as a keyed data space
 *  rather than a small hot set. */
bool scenarioIsDatacenter(ScenarioKind kind);

/** Tunables of one scenario instance (one core). */
struct ScenarioParams
{
    ScenarioKind kind = ScenarioKind::PointerChase;

    /** Private working set of this core. */
    std::uint64_t footprintBytes = 512ull << 20;

    /** Shared hot set (ProducerConsumer only; same region for every
     *  core running the scenario in a mix). */
    std::uint64_t hotSetBytes = 4ull << 20;

    /** Fraction of references that hit the shared hot set. */
    double hotFraction = 0.75;

    /** Store fraction of the non-paired references. */
    double writeFraction = 0.02;

    /** Mean non-memory instructions per reference. */
    double instrsPerMemRef = 6.0;

    /** Blocks advanced per reference (StreamScan). */
    std::uint32_t strideBlocks = 1;

    /** @name Datacenter generator knobs (YcsbKv, DlrmEmbed, FileServe)
     *
     * numKeys is the distinct keys (records / embedding rows per
     * table / files) in the shared keyspace; it is rounded *down* to a
     * power of two so Zipf ranks scatter bijectively over keys (a
     * modulo fold would silently lose ~37% of the distinct keys).
     * recordBlocks is the contiguous extent of one key's data.
     * requestBlocksMean shapes the per-request transfer length
     * (geometric, capped at recordBlocks for keyed reads).
     */
    /**@{*/
    std::uint64_t numKeys = 1ull << 20;
    double keyZipfAlpha = 0.99;
    std::uint32_t recordBlocks = 16;
    double requestBlocksMean = 4.0;
    std::uint32_t numTables = 8;       //!< DlrmEmbed embedding tables
    std::uint32_t lookupsPerTable = 4; //!< DlrmEmbed multi-hot degree
    /**@}*/
};

/** Power-of-two keyspace a datacenter scenario actually uses
 *  (bit_floor of numKeys; >= 2). */
std::uint64_t scenarioKeySpace(const ScenarioParams &params);

/** Bytes of shared region a mix must reserve for one scenario: the
 *  hot set for ProducerConsumer, the keyed data space (plus metadata
 *  hot set for FileServe) for the datacenter kinds. */
std::uint64_t scenarioSharedBytes(const ScenarioParams &params);

/** Calibrated defaults for each scenario kind. */
ScenarioParams scenarioParams(ScenarioKind kind);

/** Display name ("Pointer Chase", "Streaming Scan", ...). */
std::string scenarioName(ScenarioKind kind);

/** Parse a scenario name or alias ("chase", "scan", "gups",
 *  "prodcons"); returns false when the name is not a scenario. */
bool scenarioFromName(const std::string &name, ScenarioKind &out);

/**
 * One core's scenario stream. Addresses fall in
 * [privateBase, privateBase + footprintBytes) plus, for
 * ProducerConsumer, [sharedBase, sharedBase + hotSetBytes); the mix
 * builder chooses the bases so private regions never overlap and the
 * hot set is common to all cores of the scenario.
 */
class ScenarioSource final : public AccessSource
{
  public:
    /**
     * @param core_id global core index: seeds the private stream and
     *        decides the producer/consumer role (even cores produce).
     */
    ScenarioSource(const ScenarioParams &params, std::uint64_t seed,
                   int core_id, Addr private_base, Addr shared_base);

    bool next(int core, MemoryAccess &out) override;
    int numCores() const override { return 1; }
    AccessSourceKind kind() const override
    {
        return AccessSourceKind::Scenario;
    }

    const ScenarioParams &params() const { return params_; }
    bool isProducer() const { return producer_; }

    /** Single-core by construction: the stream is a pure function of
     *  (params, seed, core_id). */
    bool perCoreDeterministic() const override { return true; }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        out.pod(rng_);
        out.pod(chaseCursor_);
        out.pod(scanCursor_);
        out.pod(updatePending_);
        out.pod(updateBlock_);
        out.pod(burstBlock_);
        out.pod(burstLeft_);
        out.pod(burstWrite_);
        out.pod(burstPhase_);
        out.pod(tableCursor_);
        out.pod(lookupCursor_);
    }

    void
    loadState(StateReader &in) override
    {
        in.pod(rng_);
        in.pod(chaseCursor_);
        in.pod(scanCursor_);
        in.pod(updatePending_);
        in.pod(updateBlock_);
        in.pod(burstBlock_);
        in.pod(burstLeft_);
        in.pod(burstWrite_);
        in.pod(burstPhase_);
        in.pod(tableCursor_);
        in.pod(lookupCursor_);
    }

  private:
    void emit(std::uint64_t block, bool is_write, Pc pc,
              MemoryAccess &out);
    bool nextYcsbKv(MemoryAccess &out);
    bool nextDlrmEmbed(MemoryAccess &out);
    bool nextFileServe(MemoryAccess &out);
    std::uint64_t scatterKey(std::uint64_t rank, std::uint64_t salt) const;
    std::uint64_t requestLength();

    ScenarioParams params_;
    Rng rng_;
    bool producer_;
    std::uint64_t privateBaseBlock_;
    std::uint64_t sharedBaseBlock_;
    std::uint64_t privateBlocks_;
    std::uint64_t hotBlocks_;
    std::uint32_t writeThresh24_;
    std::uint32_t instrSpan_;

    /** Datacenter-kind constants (set at construction, not state). */
    std::shared_ptr<const TwoLevelZipfSampler> keyZipf_;
    std::uint64_t keySpace_ = 0;     //!< bit_floor(numKeys)
    std::uint64_t recordBlocks_ = 1; //!< >= 1 copy of params
    double reqLenDenom_ = 0.0;       //!< geometric denom, see Rng
    bool reqLenGeometric_ = false;   //!< requestBlocksMean > 1

    std::uint64_t chaseCursor_ = 0; //!< PointerChase position
    std::uint64_t scanCursor_ = 0;  //!< StreamScan / scratch position
    bool updatePending_ = false;    //!< RandomUpdate write half due
    std::uint64_t updateBlock_ = 0;

    /** @name Datacenter request-burst state
     * A request (KV record read, embedding-row gather, file transfer,
     * MLP pass) emits one access per next() call; these fields carry
     * the in-flight burst across calls and are checkpointed.
     */
    /**@{*/
    std::uint64_t burstBlock_ = 0;   //!< next block of the burst
    std::uint64_t burstLeft_ = 0;    //!< accesses left in the burst
    bool burstWrite_ = false;        //!< burst is a write transfer
    std::uint8_t burstPhase_ = 0;    //!< DlrmEmbed: 1 gather, 2 MLP
    std::uint32_t tableCursor_ = 0;  //!< DlrmEmbed table in progress
    std::uint32_t lookupCursor_ = 0; //!< DlrmEmbed lookup within table
    /**@}*/
};

} // namespace unison

#endif // UNISON_TRACE_SCENARIOS_HH
