/**
 * @file
 * Workload presets named after the paper's evaluation suite (five
 * CloudSuite workloads + TPC-H on MonetDB, Sec. IV-D). Each preset is a
 * WorkloadParams tuned so the synthetic stream reproduces the
 * published behaviour of that workload: footprint-predictor accuracy
 * and overfetch (Table V), miss-ratio ordering (Figs. 5-6), and the
 * qualitative locality notes in the text (e.g. Data Analytics is
 * pointer-intensive with the lowest spatial locality; Web Search has
 * extremely high spatial locality; TPC-H needs multi-GB caches).
 */

#ifndef UNISON_TRACE_PRESETS_HH
#define UNISON_TRACE_PRESETS_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace unison {

/** The paper's six workloads. */
enum class Workload
{
    DataAnalytics,
    DataServing,
    SoftwareTesting,
    WebSearch,
    WebServing,
    TpchQueries,
};

/** All six, in the paper's presentation order. */
const std::vector<Workload> &allWorkloads();

/** The five CloudSuite workloads (everything except TPC-H). */
const std::vector<Workload> &cloudSuiteWorkloads();

/** Parameters reproducing the named workload's published behaviour. */
WorkloadParams workloadParams(Workload w);

/** Display name as used in the paper's tables/figures. */
std::string workloadName(Workload w);

/** Parse a workload name (case-insensitive, ignoring spaces/dashes). */
Workload workloadFromName(const std::string &name);

/** Canonical matching key for workload/scenario/mix names: lowercase
 *  with everything non-alphanumeric stripped. */
std::string normalizedNameKey(const std::string &name);

} // namespace unison

#endif // UNISON_TRACE_PRESETS_HH
