#include "trace/mix.hh"

#include <cstdlib>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "trace/tracefile.hh"

namespace unison {

namespace {

/** Private regions are padded to 1 GiB so no two processes ever share
 *  a DRAM row, a cache set alias, or a 2 KB footprint region. */
constexpr Addr kMixAlign = 1ull << 30;

/** Synthetic/scenario private regions start at 64 TiB: trace parts
 *  replay captured *absolute* physical addresses, which live far
 *  below this, so generated regions can never collide with them. */
constexpr Addr kMixPrivateBase = 1ull << 46;

Addr
alignUp(Addr v)
{
    return (v + kMixAlign - 1) & ~(kMixAlign - 1);
}

int
validatedKinds(const MixPart &part)
{
    return (part.preset.has_value() ? 1 : 0) +
           (part.custom.has_value() ? 1 : 0) +
           (part.scenario.has_value() ? 1 : 0) +
           (part.tracePath.empty() ? 0 : 1);
}

/** Bytes of private address space one core of this part needs. */
Addr
privateSpan(const MixPart &part)
{
    if (part.preset)
        return workloadParams(*part.preset).datasetBytes;
    if (part.custom)
        return part.custom->datasetBytes;
    if (part.scenario)
        return part.scenario->footprintBytes;
    return 0; // trace files carry absolute addresses
}

} // namespace

std::string
MixPart::label() const
{
    if (preset)
        return workloadName(*preset);
    if (custom)
        return custom->name;
    if (scenario)
        return scenarioName(scenario->kind);
    if (!tracePath.empty())
        return "trace:" + tracePath;
    return "empty";
}

MixPart
mixPreset(Workload w, int cores)
{
    MixPart part;
    part.cores = cores;
    part.preset = w;
    return part;
}

MixPart
mixScenario(ScenarioKind kind, int cores)
{
    MixPart part;
    part.cores = cores;
    part.scenario = scenarioParams(kind);
    return part;
}

MixPart
mixCustom(const WorkloadParams &params, int cores)
{
    MixPart part;
    part.cores = cores;
    part.custom = params;
    return part;
}

std::vector<MixPart>
parseMixSpec(const std::string &text)
{
    std::vector<MixPart> parts;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            fatal("empty element in mix spec '", text, "'");

        int cores = 1;
        const std::size_t colon = token.rfind(':');
        if (colon != std::string::npos) {
            const std::string count = token.substr(colon + 1);
            char *end = nullptr;
            const long v = std::strtol(count.c_str(), &end, 10);
            if (end == count.c_str() || *end != '\0' || v < 1 ||
                v > kMaxCores) {
                fatal("bad core count '", count, "' in mix spec '",
                      text, "' (must be 1..", kMaxCores, ")");
            }
            cores = static_cast<int>(v);
            token = token.substr(0, colon);
        }

        ScenarioKind kind;
        if (scenarioFromName(token, kind))
            parts.push_back(mixScenario(kind, cores));
        else
            parts.push_back(mixPreset(workloadFromName(token), cores));

        if (comma == text.size())
            break;
    }
    if (parts.empty())
        fatal("empty mix spec");
    return parts;
}

std::string
mixName(const std::vector<MixPart> &parts)
{
    std::string name;
    for (const MixPart &part : parts) {
        if (!name.empty())
            name += "+";
        name += normalizedNameKey(part.label()) + ":" +
                std::to_string(part.cores);
    }
    return name;
}

MixedWorkload::MixedWorkload(const std::vector<MixPart> &parts,
                             int num_cores, std::uint64_t seed)
{
    UNISON_ASSERT(!parts.empty(), "mix with no parts");
    int total = 0;
    for (const MixPart &part : parts) {
        if (part.cores < 1)
            fatal("mix part '", part.label(), "' assigned ",
                  part.cores, " cores");
        if (validatedKinds(part) != 1)
            fatal("mix part must set exactly one of "
                  "preset/custom/scenario/tracePath");
        total += part.cores;
    }
    if (total != num_cores)
        fatal("mix assigns ", total, " cores but the system has ",
              num_cores);

    // Pass 1: lay out disjoint private regions, one per core, then
    // place each part's shared hot set (if any) after all of them.
    Addr base = kMixPrivateBase;
    std::vector<Addr> private_base; // per global core
    for (const MixPart &part : parts) {
        const Addr span = alignUp(privateSpan(part));
        for (int c = 0; c < part.cores; ++c) {
            private_base.push_back(base);
            base += span;
        }
    }
    std::vector<Addr> shared_base(parts.size(), 0);
    for (std::size_t p = 0; p < parts.size(); ++p) {
        if (parts[p].scenario) {
            shared_base[p] = base;
            // Hot set for the classic scenarios, keyed data space for
            // the datacenter generators (see scenarioSharedBytes).
            base += alignUp(scenarioSharedBytes(*parts[p].scenario));
        }
    }

    // Pass 2: build one generator per core (one reader per trace
    // part), each seeded by (seed, global core) so its stream never
    // depends on the interleaving of other cores.
    int core = 0;
    for (std::size_t p = 0; p < parts.size(); ++p) {
        const MixPart &part = parts[p];
        const std::string label = part.label();

        TraceReader *reader = nullptr;
        if (!part.tracePath.empty()) {
            noTraceParts_ = false;
            auto owned = std::make_unique<TraceReader>(part.tracePath);
            reader = owned.get();
            if (reader->numCores() < part.cores)
                fatal("trace '", part.tracePath, "' has ",
                      reader->numCores(), " cores but the mix needs ",
                      part.cores);
            owned_.push_back(std::move(owned));
        }

        for (int c = 0; c < part.cores; ++c, ++core) {
            const std::uint64_t core_seed = hashCombine(
                seed, static_cast<std::uint64_t>(core) + 0x517cull);
            CoreBinding binding;
            binding.label = label;
            if (reader != nullptr) {
                binding.source = reader;
                binding.localCore = c;
            } else if (part.scenario) {
                auto src = std::make_unique<ScenarioSource>(
                    *part.scenario, core_seed, core,
                    private_base[static_cast<std::size_t>(core)],
                    shared_base[p]);
                binding.source = src.get();
                owned_.push_back(std::move(src));
            } else {
                WorkloadParams params = part.preset
                                            ? workloadParams(*part.preset)
                                            : *part.custom;
                params.numCores = 1;
                auto src = std::make_unique<SyntheticWorkload>(
                    params, core_seed);
                binding.source = src.get();
                binding.addrOffset =
                    private_base[static_cast<std::size_t>(core)];
                owned_.push_back(std::move(src));
            }
            cores_.push_back(std::move(binding));
        }
    }
}

bool
MixedWorkload::next(int core, MemoryAccess &out)
{
    UNISON_ASSERT(core >= 0 &&
                      core < static_cast<int>(cores_.size()),
                  "mix core ", core, " out of range");
    CoreBinding &binding = cores_[static_cast<std::size_t>(core)];
    if (!binding.source->next(binding.localCore, out))
        return false;
    out.addr += binding.addrOffset;
    out.core = static_cast<std::uint16_t>(core);
    return true;
}

bool
MixedWorkload::checkpointable() const
{
    for (const auto &src : owned_)
        if (!src->checkpointable())
            return false;
    return true;
}

void
MixedWorkload::saveState(StateWriter &out) const
{
    for (const auto &src : owned_)
        src->saveState(out);
}

void
MixedWorkload::loadState(StateReader &in)
{
    for (const auto &src : owned_)
        src->loadState(in);
}

const std::string &
MixedWorkload::coreLabel(int core) const
{
    UNISON_ASSERT(core >= 0 &&
                      core < static_cast<int>(cores_.size()),
                  "mix core ", core, " out of range");
    return cores_[static_cast<std::size_t>(core)].label;
}

} // namespace unison
