/**
 * @file
 * Binary trace-file format so users can run the simulator on their own
 * captured traces instead of the synthetic workloads.
 *
 * Layout (little-endian):
 *   header : magic "UCTR" (4B) | version u32 | numCores u32 | pad u32
 *   record : addr u64 | pc u64 | instrsBefore u16 | core u8 | flags u8
 * flags bit 0 = write.
 */

#ifndef UNISON_TRACE_TRACEFILE_HH
#define UNISON_TRACE_TRACEFILE_HH

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace unison {

/** Current trace format version. */
constexpr std::uint32_t kTraceVersion = 1;

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Open (truncate) `path` and write the header. Fatal on error. */
    TraceWriter(const std::string &path, int num_cores);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void write(const MemoryAccess &access);

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

    /** Flush and close early (also done by the destructor). */
    void close();

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/** Streaming reader; implements AccessSource so it plugs into System. */
class TraceReader : public AccessSource
{
  public:
    /** Open `path` and validate the header. Fatal on error. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Next record for `core`. Records of other cores encountered while
     * scanning forward are buffered, so any interleaving in the file
     * is supported.
     */
    bool next(int core, MemoryAccess &out) override;
    int numCores() const override { return numCores_; }

    std::uint64_t recordsRead() const { return count_; }

  private:
    /** Read one raw record from the file. */
    bool readRecord(MemoryAccess &out);

    std::FILE *file_ = nullptr;
    int numCores_ = 0;
    std::uint64_t count_ = 0;
    std::vector<std::deque<MemoryAccess>> buffers_;
};

} // namespace unison

#endif // UNISON_TRACE_TRACEFILE_HH
