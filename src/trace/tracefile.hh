/**
 * @file
 * Binary trace-file format so users can run the simulator on their own
 * captured traces instead of the synthetic workloads.
 *
 * Layout (little-endian):
 *   header : magic "UCTR" (4B) | version u32 | numCores u32 | pad u32
 *   record : addr u64 | pc u64 | instrsBefore u16 | core u8 | flags u8
 * flags bit 0 = write.
 */

#ifndef UNISON_TRACE_TRACEFILE_HH
#define UNISON_TRACE_TRACEFILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace unison {

/** Current trace format version. */
constexpr std::uint32_t kTraceVersion = 1;

/** Records decoded from the file per fread (batched I/O). */
constexpr std::size_t kTraceReadChunk = 4096;

/**
 * Contiguous FIFO of parked records for one core: a flat vector plus a
 * consume cursor, compacted on refill. Replaces the former
 * deque-of-deques, whose per-node allocation and pointer-chasing
 * dominated the replay hot path.
 */
class AccessChunkBuffer
{
  public:
    bool empty() const { return head_ == data_.size(); }
    std::size_t size() const { return data_.size() - head_; }

    const MemoryAccess &front() const { return data_[head_]; }
    void popFront() { ++head_; }

    /** Contiguous view of the pending records. */
    const MemoryAccess *pending() const { return data_.data() + head_; }

    /** Drop `n` pending records (n <= size()). */
    void consume(std::size_t n) { head_ += n; }

    void
    push(const MemoryAccess &access)
    {
        compact();
        data_.push_back(access);
    }

  private:
    /** Reclaim the consumed prefix once it dominates the storage. */
    void
    compact()
    {
        if (head_ == data_.size()) {
            data_.clear();
            head_ = 0;
        } else if (head_ >= 4096 && head_ * 2 >= data_.size()) {
            data_.erase(data_.begin(),
                        data_.begin() + static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
    }

    std::vector<MemoryAccess> data_;
    std::size_t head_ = 0;
};

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Open (truncate) `path` and write the header. Fatal on error. */
    TraceWriter(const std::string &path, int num_cores);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void write(const MemoryAccess &access);

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

    /** Flush and close early (also done by the destructor). */
    void close();

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/** Streaming reader; implements AccessSource so it plugs into System. */
class TraceReader final : public AccessSource
{
  public:
    /** Open `path` and validate the header. Fatal on error. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Next record for `core`. Records of other cores encountered while
     * scanning forward are buffered, so any interleaving in the file
     * is supported.
     */
    bool next(int core, MemoryAccess &out) override;

    /** Batched variant: decodes the file in kTraceReadChunk chunks and
     *  hands out contiguous spans per core. */
    std::size_t nextBatch(int core, MemoryAccess *out,
                          std::size_t max) override;

    int numCores() const override { return numCores_; }
    AccessSourceKind kind() const override
    {
        return AccessSourceKind::TraceFile;
    }

    std::uint64_t recordsRead() const { return count_; }

  private:
    /**
     * Read and decode up to kTraceReadChunk records, parking each in
     * its core's buffer. Returns the number of records decoded (0 at
     * end of file).
     */
    std::size_t readChunk();

    std::FILE *file_ = nullptr;
    int numCores_ = 0;
    std::uint64_t count_ = 0;
    bool exhausted_ = false;
    std::vector<AccessChunkBuffer> buffers_;
};

} // namespace unison

#endif // UNISON_TRACE_TRACEFILE_HH
