/**
 * @file
 * Multiprogrammed workload mixes: a per-core assignment of access
 * sources (workload presets, custom WorkloadParams, scenario
 * generators, or trace files) behind one AccessSource facade.
 *
 * The paper consolidates heterogeneous server workloads on one CMP;
 * MixedWorkload expresses that: core 0 can run Web Serving while core
 * 1 streams TPC-H scans and core 2 pointer-chases. Each core's stream
 * comes from its own generator with its own seed, so the stream a
 * core sees is a pure function of (mix, seed, core) -- independent of
 * how the timing model interleaves cores, which is what keeps mix
 * sweeps bit-identical for any --threads worker count.
 *
 * Private address regions are laid out disjointly from 64 TiB upward
 * (multiprogrammed processes share no physical pages, and captured
 * traces replay absolute addresses far below that base); only the
 * ProducerConsumer scenario's hot set is deliberately mapped at one
 * shared base for all cores running it.
 */

#ifndef UNISON_TRACE_MIX_HH
#define UNISON_TRACE_MIX_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/presets.hh"
#include "trace/scenarios.hh"
#include "trace/workload.hh"

namespace unison {

/**
 * One slice of a mix: `cores` consecutive cores running the same kind
 * of source. Exactly one of preset/custom/scenario/tracePath must be
 * set.
 */
struct MixPart
{
    int cores = 1;

    std::optional<Workload> preset;
    std::optional<WorkloadParams> custom;
    std::optional<ScenarioParams> scenario;
    std::string tracePath;

    /** Short display label ("Web Serving", "Pointer Chase", ...). */
    std::string label() const;
};

/** Convenience constructors for mix tables. */
MixPart mixPreset(Workload w, int cores);
MixPart mixScenario(ScenarioKind kind, int cores);
MixPart mixCustom(const WorkloadParams &params, int cores);

/**
 * Parse a mix description like "webserving:2,tpch:2" or "scan,chase".
 * Each comma-separated element is a workload preset name/alias or a
 * scenario name/alias, optionally ":<cores>" (default 1). Fatal on
 * malformed input.
 */
std::vector<MixPart> parseMixSpec(const std::string &text);

/** Compact name for a mix ("webserving:2+tpchqueries:2"). */
std::string mixName(const std::vector<MixPart> &parts);

/** The per-core facade. */
class MixedWorkload final : public AccessSource
{
  public:
    /**
     * @param parts  per-slice assignments; core counts must sum to
     *               `num_cores` (fatal otherwise)
     * @param seed   base seed; core c's generator is seeded from
     *               (seed, c) so streams are core-independent
     */
    MixedWorkload(const std::vector<MixPart> &parts, int num_cores,
                  std::uint64_t seed);

    bool next(int core, MemoryAccess &out) override;
    int numCores() const override
    {
        return static_cast<int>(cores_.size());
    }
    AccessSourceKind kind() const override
    {
        return AccessSourceKind::Mixed;
    }

    /** Label of the source driving `core`. */
    const std::string &coreLabel(int core) const;

    /** Synthetic and scenario parts get one single-core generator per
     *  core (seeded by global core id), so their streams are per-core
     *  deterministic; only trace parts share a reader across cores. */
    bool perCoreDeterministic() const override { return noTraceParts_; }

    /** Checkpointable iff every per-core generator is (trace readers
     *  are not); state is the concatenation of the owned sources'. */
    bool checkpointable() const override;
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

  private:
    struct CoreBinding
    {
        AccessSource *source = nullptr; //!< borrowed from owned_
        int localCore = 0;   //!< sub-stream index within source
        Addr addrOffset = 0; //!< private-region displacement
        std::string label;
    };

    std::vector<std::unique_ptr<AccessSource>> owned_;
    std::vector<CoreBinding> cores_;
    bool noTraceParts_ = true;
};

} // namespace unison

#endif // UNISON_TRACE_MIX_HH
