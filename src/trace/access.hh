/**
 * @file
 * The memory-reference record that flows from a workload (synthetic or
 * trace file) into the simulated memory hierarchy, and the abstract
 * source interface both implement.
 */

#ifndef UNISON_TRACE_ACCESS_HH
#define UNISON_TRACE_ACCESS_HH

#include <cstddef>
#include <cstdint>

#include "common/state_io.hh"
#include "common/types.hh"

namespace unison {

/**
 * Hard core-count ceiling across the simulator (spec validation, mix
 * parsing, the scheduler's packed clock keys). 1024 covers the
 * datacenter consolidation studies ("hundreds of simulated cores");
 * the scheduler packs core ids into the low mantissa bits of its
 * clock keys, which holds comfortably up to this bound (see
 * System::runLoopBody).
 */
inline constexpr int kMaxCores = 1024;

/**
 * One memory reference as seen by a core's load/store unit.
 *
 * The stream is interleaved across cores; `instrsBefore` is the number
 * of (non-memory) instructions the issuing core executed since its
 * previous reference, which the timing model converts into compute
 * cycles. This is the standard trace-driven contract the paper's Flexus
 * traces provide.
 */
struct MemoryAccess
{
    Addr addr = 0;                 //!< physical byte address
    Pc pc = 0;                     //!< issuing instruction address
    std::uint16_t instrsBefore = 0;//!< instructions since core's last ref
    std::uint16_t core = 0;        //!< issuing core id (< kMaxCores)
    bool isWrite = false;          //!< store (true) or load (false)
};

/**
 * Concrete-type tag of an AccessSource.
 *
 * System::run monomorphizes its timing loop on the concrete source
 * type so the per-access next() devirtualizes; the tag is how that
 * once-per-run dispatch recovers the type. kind() is pure virtual on
 * purpose: a newly added source type fails to compile until its author
 * decides whether it gets a specialized loop (add an enum value and a
 * case in System::run -- -Wswitch keeps the two in sync) or explicitly
 * opts into the generic virtual-dispatch path with `Other`.
 */
enum class AccessSourceKind : std::uint8_t
{
    Synthetic, //!< SyntheticWorkload
    Mixed,     //!< MixedWorkload
    TraceFile, //!< TraceReader
    Scenario,  //!< ScenarioSource (single-core; mixes embed it)
    Other,     //!< explicit opt-in to the virtual slow path
};

/**
 * Anything that can produce per-core streams of MemoryAccess records:
 * the synthetic workload models, or a trace file reader.
 *
 * The timing model pulls the next reference *for a specific core* (the
 * one whose clock is furthest behind), which keeps the per-core clocks
 * synchronized -- the standard discipline for multi-core trace-driven
 * simulation.
 */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /** Concrete-type tag (see AccessSourceKind). */
    virtual AccessSourceKind kind() const = 0;

    /**
     * Produce core `core`'s next reference.
     * @return false when that core's stream is exhausted (synthetic
     *         sources never are).
     */
    virtual bool next(int core, MemoryAccess &out) = 0;

    /**
     * Fill up to `max` consecutive references for `core` into the
     * contiguous array `out` and return how many were produced (0 =
     * stream exhausted). For sources where amortization wins --
     * chunked trace-file decoding, bulk trace capture -- this is the
     * fast entry point; the timing model itself consumes one record
     * at a time (measurement showed staging records through memory
     * costs more than the dispatch it saves) and instead
     * devirtualizes next() by specializing its loop on the concrete
     * source type. The default forwards to next().
     */
    virtual std::size_t
    nextBatch(int core, MemoryAccess *out, std::size_t max)
    {
        std::size_t produced = 0;
        while (produced < max && next(core, out[produced]))
            ++produced;
        return produced;
    }

    /** Number of cores the source provides streams for. */
    virtual int numCores() const = 0;

    /**
     * True when core c's stream is a pure function of (source config,
     * seed, c) -- independent of the order next() is called across
     * cores. That independence is the eligibility condition for the
     * epoch-sharded engine: its producer threads pull each core's
     * stream ahead of the global commit order, so any source whose
     * streams couple through shared mutable state (one RNG shared by
     * several cores, a shared file cursor) must return false and run
     * on the serial engine. Default false: a new source must opt in
     * deliberately.
     */
    virtual bool perCoreDeterministic() const { return false; }

    /**
     * Warm-state checkpoint support. A source that returns true must
     * serialize *all* mutable stream state in saveState so a loadState
     * on a freshly constructed identical source resumes the exact
     * stream. Default false (and empty save/load): trace readers and
     * out-of-tree sources simply opt out of checkpoint reuse.
     */
    virtual bool checkpointable() const { return false; }
    virtual void saveState(StateWriter &out) const { (void)out; }
    virtual void loadState(StateReader &in) { (void)in; }
};

} // namespace unison

#endif // UNISON_TRACE_ACCESS_HH
