/**
 * @file
 * Synthetic server-workload model.
 *
 * The paper evaluates on CloudSuite + TPC-H traces captured with
 * Flexus/Simics; those traces are not redistributable, so this module
 * synthesizes streams with the properties the three DRAM-cache designs
 * actually sense:
 *
 *  - *code-correlated spatial footprints*: a set of "functions" (PCs)
 *    each touch a characteristic subset of blocks within a 2 KB region,
 *    which is exactly the correlation the footprint predictor (and its
 *    (PC, offset) keying) exploits;
 *  - *skewed temporal reuse* over a large dataset (Zipf region
 *    popularity), which determines block-level reuse (what Alloy Cache
 *    lives on) and page conflict pressure;
 *  - *singleton and pointer-chase traffic* (accesses that touch one
 *    block of a region), which the singleton predictor filters;
 *  - *multi-core interleaving*, which stresses the way predictor.
 *
 * Every knob is a WorkloadParams field; the six presets in presets.hh
 * are calibrated against the paper's Table V accuracies and the
 * miss-ratio/performance shapes of Figs. 5-8.
 */

#ifndef UNISON_TRACE_WORKLOAD_HH
#define UNISON_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/access.hh"

namespace unison {

/** Generator region: footprints are defined over 2 KB (32-block) spans. */
constexpr std::uint32_t kRegionBlocks = 32;
constexpr std::uint32_t kRegionBytes = kRegionBlocks * kBlockBytes;

/** All tunables of the synthetic workload model. */
struct WorkloadParams
{
    std::string name = "custom";

    /** Total touchable memory; must exceed the caches under study. */
    std::uint64_t datasetBytes = 8ull << 30;

    int numCores = 16;

    /** Distinct data-access functions (PC values) in the hot code. */
    int numFunctions = 512;

    /** Popularity skew of functions (0 = uniform). */
    double functionZipfAlpha = 0.9;

    /** Popularity skew of regions; controls temporal reuse distance. */
    double regionZipfAlpha = 0.6;

    /**
     * Probability that an episode on a region is executed by the
     * region's *owning* function (data structures are touched by the
     * code that owns them). The remainder are foreign visits by
     * Zipf-random functions, which is what makes footprints of shared
     * pages noisy.
     */
    double ownerAffinity = 0.85;

    /** Mean blocks (of 32) in a non-singleton function's footprint. */
    double meanFootprintBlocks = 12.0;

    /** Spread of footprint sizes across functions. */
    double footprintStddev = 6.0;

    /** Fraction of functions with contiguous (scan-like) footprints. */
    double contiguousFraction = 0.5;

    /**
     * Mean length of scan episodes, in multiples of the function's
     * footprint. Values above 1 make scan-like functions stream
     * across region boundaries (posting lists, column scans).
     */
    double scanStretchMean = 1.0;

    /** Fraction of functions whose footprint is a single block. */
    double singletonFunctionFraction = 0.10;

    /**
     * Fraction of episodes that are pointer chases: one access to one
     * random block of a random region, from a dedicated chase PC.
     */
    double pointerChaseFraction = 0.05;

    /** Per-episode probability of dropping a footprint block. */
    double footprintNoiseDrop = 0.05;

    /** Per-episode probability of adding a non-footprint block. */
    double footprintNoiseAdd = 0.02;

    /** Fraction of references that are stores. */
    double writeFraction = 0.20;

    /** Mean references per touched block (>1 adds L1-absorbed reuse). */
    double blockRepeatMean = 1.2;

    /** Episodes a core keeps in flight (interleaving depth). */
    int episodesPerCore = 3;

    /** References emitted from one episode before rotating. */
    int burstLength = 4;

    /** Non-memory instructions per reference (timing model input). */
    double instrsPerMemRef = 3.0;

    /** Number of 2 KB regions in the dataset. */
    std::uint64_t numRegions() const { return datasetBytes / kRegionBytes; }
};

/**
 * The synthetic stream generator. Deterministic for a given
 * (params, seed) pair.
 */
class SyntheticWorkload final : public AccessSource
{
  public:
    SyntheticWorkload(const WorkloadParams &params, std::uint64_t seed);

    bool next(int core, MemoryAccess &out) override;
    std::size_t nextBatch(int core, MemoryAccess *out,
                          std::size_t max) override;
    int numCores() const override { return params_.numCores; }
    AccessSourceKind kind() const override
    {
        return AccessSourceKind::Synthetic;
    }

    /**
     * One RNG drives every core's episode draws, so with several cores
     * the stream each core sees depends on the cross-core next()
     * order; only the single-core degenerate case (mix parts are built
     * this way) is per-core deterministic.
     */
    bool
    perCoreDeterministic() const override
    {
        return params_.numCores == 1;
    }

    bool checkpointable() const override { return true; }

    /** Mutable stream state: the RNG and each core's in-flight
     *  episodes. Functions/samplers are immutable after construction
     *  and rebuilt identically from (params, seed). */
    void
    saveState(StateWriter &out) const override
    {
        out.pod(rng_);
        for (const CoreState &core : cores_) {
            out.podVector(core.episodes);
            out.pod(core.slot);
            out.pod(core.burstLeft);
        }
    }

    void
    loadState(StateReader &in) override
    {
        in.pod(rng_);
        for (CoreState &core : cores_) {
            in.podVectorExact(core.episodes);
            in.pod(core.slot);
            in.pod(core.burstLeft);
        }
    }

    const WorkloadParams &params() const { return params_; }

    /** Canonical footprint mask of function f (test hook). */
    std::uint32_t functionMask(int f) const;

    /** PC assigned to function f (test hook). */
    Pc functionPc(int f) const;

  private:
    /**
     * A code location with a characteristic access pattern. The
     * pattern is *relative to the first touched block* (bit 0 is
     * always set); each episode places it at a fresh alignment, which
     * is exactly the alignment diversity the predictor's (PC, offset)
     * keying exists to absorb (Sec. III-A.1).
     */
    struct Function
    {
        Pc pc = 0;
        std::uint32_t pattern = 1; //!< relative footprint bits
        std::uint8_t width = 1;    //!< highest pattern bit + 1
        bool contiguous = false;   //!< scan-like (stretchable)
        bool singleton = false;
    };

    /** One in-flight traversal of a placed pattern or scan run. */
    struct Episode
    {
        std::uint64_t startBlock = 0;  //!< first block of the placement
        std::uint32_t pendingMask = 0; //!< pattern blocks still to touch
        std::uint32_t scanLeft = 0;    //!< blocks left (scan mode)
        std::uint32_t scanNext = 0;    //!< next block offset (scan mode)
        Pc pc = 0;
        std::uint8_t repeatsLeft = 0;  //!< extra refs to current block
        std::uint8_t currentBit = 0;
        bool scan = false;
        bool active = false;
    };

    struct CoreState
    {
        std::vector<Episode> episodes;
        int slot = 0;       //!< episode being drained
        int burstLeft = 0;  //!< refs before rotating episodes
    };

    void buildFunctions();
    void startEpisode(Episode &ep);
    std::uint64_t pickRegion();
    std::uint32_t applyNoise(std::uint32_t mask, std::uint32_t width);
    bool emitFromEpisode(Episode &ep, int core, MemoryAccess &out);
    void emitBlock(const Episode &ep, std::uint64_t block, int core,
                   MemoryAccess &out);
    bool generate(CoreState &core, int core_idx, MemoryAccess &out);

    WorkloadParams params_;
    Rng rng_;
    /** Shared immutable O(1) samplers (see sharedZipfSampler). */
    std::shared_ptr<const ZipfAliasSampler> functionZipf_;
    std::shared_ptr<const ZipfAliasSampler> regionZipf_;
    std::vector<Function> functions_;
    std::vector<CoreState> cores_;
    Pc chasePcBase_ = 0;
    std::uint32_t writeThresh24_ = 0; //!< writeFraction in 2^-24 units
    std::uint32_t instrSpan_ = 1;     //!< instrsBefore drawn from [1, span]
    /** Precomputed log1p(-1/blockRepeatMean): the geometric repeat
     *  draw runs once per distinct block, and the denominator log1p
     *  is invariant (see Rng::geometricDenom). */
    double geomDenom_ = 0.0;
    bool geomRepeat_ = false; //!< blockRepeatMean > 1
};

/**
 * Process-wide caches of immutable Zipf samplers keyed by
 * (domain, alpha). The tables are identical for every experiment on
 * the same preset, so concurrent sweeps share one copy and pay the
 * construction pow-loop once rather than per experiment. Thread-safe
 * (one mutex per cache, taken only at experiment setup).
 *
 * Both caches are *bounded* to kSharedSamplerCacheCapacity entries
 * with FIFO eviction: a long-running `serve` session sees an
 * unbounded stream of distinct (n, alpha) pairs, and resident sampler
 * tables must stay O(1), not O(session length). Experiments holding
 * an evicted sampler keep it alive via their shared_ptr.
 *
 * The ...CacheSize() accessors expose the live entry count so tests
 * (and operators debugging memory) can observe the bound.
 */
inline constexpr std::size_t kSharedSamplerCacheCapacity = 64;

std::shared_ptr<const ZipfAliasSampler>
sharedZipfSampler(std::uint64_t n, double alpha);
std::size_t sharedZipfSamplerCacheSize();

/** Hierarchical sampler for the datacenter-scale keyspaces (millions
 *  of keys); see TwoLevelZipfSampler in common/rng.hh. */
std::shared_ptr<const TwoLevelZipfSampler>
sharedTwoLevelZipfSampler(std::uint64_t n, double alpha);
std::size_t sharedTwoLevelZipfSamplerCacheSize();

} // namespace unison

#endif // UNISON_TRACE_WORKLOAD_HH
