/**
 * @file
 * The sweep-serving wire protocol: newline-delimited JSON documents
 * over a connected stream socket (one message per line, rendered by
 * json::writeCompact so a document can never contain a raw newline).
 *
 * # Requests (client -> server)
 *
 *     {"op":"submit","spec":<unison-spec/3 or unison-grid/1 doc>}
 *     {"op":"ping"}
 *     {"op":"shutdown"}
 *
 * # Replies (server -> client)
 *
 *     {"reply":"pong","codeVersion":...}
 *     {"reply":"point","index":N,"label":...,"source":...,
 *      "spec":...,"result":...}              (streamed, one per point,
 *                                             in completion order)
 *     {"reply":"done","gridName":...,"gridHash":...,"points":N,
 *      "storeHits":N,"peerHits":N,"simulated":N}
 *     {"reply":"error","class":"usage|io|corrupt-input","message":...}
 *
 * A submit streams `point` replies as points complete (store hits
 * first, immediately), then exactly one `done`; any failure replaces
 * the remainder of the stream with one `error` whose class maps onto
 * the SimError taxonomy, so a scripted client can exit with the same
 * classified code a local run would have. The connection stays usable
 * for further requests after `done` or `error`.
 *
 * `point.source` says how the result was obtained -- "store" (content-
 * addressed hit), "peer" (a concurrent submission was already
 * computing it), "dup" (an earlier point of the same submission), or
 * "simulated" -- which is diagnostic only: the bytes are identical by
 * the substitution contract.
 */

#ifndef UNISON_SERVE_PROTOCOL_HH
#define UNISON_SERVE_PROTOCOL_HH

#include <string>

#include "common/error.hh"
#include "common/json.hh"
#include "sim/spec_json.hh"

namespace unison {
namespace serve {

/** Sanity bound on one wire line; a runaway peer must classify as a
 *  protocol error, not an unbounded allocation. */
inline constexpr std::size_t kMaxLineBytes = 64u << 20;

/**
 * One JSON document per '\n'-terminated line over a connected socket.
 * Reading never throws on peer misbehaviour smaller than an I/O error
 * (EOF is a clean false; an over-long line is a SimError so the caller
 * drops the connection); writing reports a vanished peer as false so
 * the server can keep simulating for the store after a client hangs
 * up.
 */
class LineChannel
{
  public:
    explicit LineChannel(int fd) : fd_(fd) {}

    /** Read and parse the next line. False on clean EOF; throws
     *  SimError(Io) on read failure or an over-long line, json::Error
     *  on a malformed document. */
    bool readDoc(json::Value &out);

    /** Write one document as a single line. False when the peer is
     *  gone (EPIPE/ECONNRESET); other write failures throw Io. */
    bool writeDoc(const json::Value &doc);

  private:
    int fd_;
    std::string buf_;
};

/** @name Request builders */
/**@{*/
json::Value submitRequest(json::Value spec_doc);
json::Value pingRequest();
json::Value shutdownRequest();
/**@}*/

/** @name Reply builders */
/**@{*/
json::Value pongReply();
json::Value pointReply(const ResultPoint &point, const char *source);
json::Value doneReply(const std::string &grid_name,
                      const std::string &grid_hash, std::size_t points,
                      std::uint64_t store_hits, std::uint64_t peer_hits,
                      std::uint64_t simulated);
json::Value errorReply(SimErrc code, const std::string &message);
/**@}*/

/** Reverse of simErrcName, for clients reconstructing a SimError from
 *  an error reply; unknown names classify as Io (the conservative
 *  "environment misbehaved" class). */
SimErrc errcFromName(const std::string &name);

} // namespace serve
} // namespace unison

#endif // UNISON_SERVE_PROTOCOL_HH
