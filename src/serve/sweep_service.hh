/**
 * @file
 * The sweep-serving scheduler: turns one submitted grid into the
 * minimum amount of simulation, streaming each point's result the
 * moment it exists. Socket-free by design -- the server wraps it in a
 * connection handler, the tests drive it directly with threads.
 *
 * Every submission resolves each point through a three-level ladder:
 *
 *  1. *store*: the content-addressed ResultStore already holds the
 *     (spec fingerprint, code version) object -- streamed immediately,
 *     before any simulation starts (the runner's replay pre-pass);
 *  2. *peer*: a concurrent submission is already computing the same
 *     fingerprint -- this submission waits on the in-flight entry
 *     instead of duplicating the work;
 *  3. *simulate*: this submission claims the fingerprint, runs it
 *     (one runExperiments call for all its claimed points, so warm-
 *     checkpoint grouping and work stealing still apply), publishes
 *     the result to the store AND to any waiting peers.
 *
 * The claim table is what makes "concurrent overlapping submissions
 * never duplicate a point's simulation" hold: a fingerprint is either
 * in the store, in flight (exactly one owner), or unclaimed, and the
 * transition unclaimed -> in flight happens under one lock for all of
 * a submission's points at once. Results always reach the store
 * *before* the claim is released (the runner records to the cache hook
 * before on_done fires), so a fingerprint can never be both
 * unclaimed and unsimulated-but-requested.
 *
 * The substitution contract is the repo-wide one: however a point was
 * resolved, its result bytes are identical to an uninterrupted local
 * run's (ctest- and CI-enforced end to end).
 */

#ifndef UNISON_SERVE_SWEEP_SERVICE_HH
#define UNISON_SERVE_SWEEP_SERVICE_HH

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/spec_json.hh"
#include "store/result_store.hh"

namespace unison {
namespace serve {

/** How one submission's points were resolved. */
struct SubmitStats
{
    std::size_t points = 0;
    std::uint64_t storeHits = 0; //!< served from the result store
    std::uint64_t peerHits = 0;  //!< served by a concurrent submission
                                 //!< (or an identical earlier point)
    std::uint64_t simulated = 0; //!< actually run here
};

/** Per-point delivery: called once per grid point, in completion
 *  order (store hits first, in index order), never concurrently.
 *  `source` is "store", "peer", "dup" or "simulated". */
using PointSink =
    std::function<void(const ResultPoint &point, const char *source)>;

class SweepService
{
  public:
    /** @param threads  worker threads per submission (runExperiments
     *                  semantics: 0 = hardware concurrency). */
    SweepService(ResultStore &store, int threads);

    /**
     * Resolve one grid, streaming every point to `sink`. Validates all
     * specs up front (throws SimError(Usage) naming the bad point) and
     * fingerprints the grid exactly like a local `--spec` run, so the
     * client can reassemble a byte-identical results document.
     *
     * Safe to call from many threads at once; overlapping submissions
     * share in-flight work instead of duplicating it.
     *
     * @param grid_hash_out  receives the full-grid fingerprint
     */
    SubmitStats run(const GridFile &grid, const PointSink &sink,
                    std::string *grid_hash_out = nullptr);

    ResultStore &store() { return store_; }
    int threads() const { return threads_; }

  private:
    /** One fingerprint being computed by some submission; waiters
     *  block on the condition variable and read the result (or the
     *  failure) once `done`. */
    struct Inflight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        std::string error;
        SimResult result;
    };

    /** Resolve-and-erase: hand `result` (or the failure) to any
     *  waiters of `fp` and release the claim. */
    void publish(const std::string &fp, const SimResult *result,
                 const std::string &error);

    ResultStore &store_;
    int threads_;

    std::mutex mapMutex_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>>
        inflight_;
};

} // namespace serve
} // namespace unison

#endif // UNISON_SERVE_SWEEP_SERVICE_HH
