#include "serve/server.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/version.hh"
#include "serve/protocol.hh"

namespace unison {
namespace serve {

namespace {

/** Bind a listening unix-domain socket at `path`, replacing any stale
 *  socket file from a killed predecessor (one server per path; the
 *  newest wins, which is exactly the crash-restart story the smoke
 *  test exercises). */
int
bindListener(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throwUsage("--listen: socket path must be 1..",
                   sizeof(addr.sun_path) - 1, " bytes, got '", path,
                   "' (", path.size(), " bytes; run from a shorter "
                   "directory or use a relative path)");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwIo("cannot create socket: ", std::strerror(errno));
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throwIo("cannot bind ", path, ": ", std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        throwIo("cannot listen on ", path, ": ", std::strerror(err));
    }
    return fd;
}

class Server
{
  public:
    explicit Server(const ServeOptions &options)
        : store_(options.storeDir),
          service_(store_, options.threads),
          listenPath_(options.listenPath)
    {
    }

    int
    run()
    {
        // A client that vanishes mid-stream must surface as an EPIPE
        // return value (LineChannel handles it), not a process kill.
        ::signal(SIGPIPE, SIG_IGN);

        listenFd_ = bindListener(listenPath_);
        std::fprintf(stderr,
                     "unison_sim: serving on %s (store %s, %s)\n",
                     listenPath_.c_str(), store_.dir().c_str(),
                     kSimCodeVersion);

        while (true) {
            const int client = ::accept(listenFd_, nullptr, nullptr);
            if (client < 0) {
                if (errno == EINTR)
                    continue;
                if (stopping_.load())
                    break; // shutdown closed the listener under us
                throwIo("accept failed: ", std::strerror(errno));
            }
            std::lock_guard<std::mutex> lock(clientsMutex_);
            clients_.emplace_back(
                [this, client] { serveClient(client); });
        }

        // Joining here is what makes shutdown graceful: every active
        // sweep finishes (and lands in the store) before exit.
        {
            std::lock_guard<std::mutex> lock(clientsMutex_);
            for (std::thread &t : clients_)
                if (t.joinable())
                    t.join();
        }
        ::unlink(listenPath_.c_str());
        std::fprintf(stderr, "unison_sim: serve: shut down cleanly\n");
        return 0;
    }

  private:
    void
    beginShutdown()
    {
        if (stopping_.exchange(true))
            return;
        // Closing the listener is the wakeup for the accept loop.
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
    }

    void
    serveClient(int fd)
    {
        LineChannel channel(fd);
        try {
            json::Value request;
            while (channel.readDoc(request))
                if (!handleRequest(channel, request))
                    break;
        } catch (const json::Error &e) {
            // A stream that carries one malformed document cannot be
            // trusted to frame the next one: answer and hang up.
            channel.writeDoc(errorReply(SimErrc::Corrupt, e.what()));
        } catch (const SimError &e) {
            channel.writeDoc(errorReply(e.code(), e.what()));
        }
        ::close(fd);
    }

    /** One request; false ends the connection. */
    bool
    handleRequest(LineChannel &channel, const json::Value &request)
    {
        std::string op;
        json::Value spec_doc;
        try {
            json::ObjectReader r(request, "serve request");
            op = r.req("op").asString();
            if (op == "submit")
                spec_doc = r.req("spec");
            r.finish();
        } catch (const json::Error &e) {
            return channel.writeDoc(
                errorReply(SimErrc::Usage, e.what()));
        }

        if (op == "ping")
            return channel.writeDoc(pongReply());
        if (op == "shutdown") {
            beginShutdown();
            return false;
        }
        if (op == "submit")
            return handleSubmit(channel, spec_doc);
        return channel.writeDoc(errorReply(
            SimErrc::Usage, "unknown op '" + op +
                                "' (known: submit, ping, shutdown)"));
    }

    bool
    handleSubmit(LineChannel &channel, const json::Value &spec_doc)
    {
        // Once the peer is gone we stop writing but keep computing:
        // the sweep still publishes every point to the store, so the
        // client's retry is free.
        bool peer_alive = true;
        try {
            const GridFile grid = gridFromJson(spec_doc);
            std::string grid_hash;
            const SubmitStats stats = service_.run(
                grid,
                [&](const ResultPoint &point, const char *source) {
                    if (peer_alive &&
                        !channel.writeDoc(pointReply(point, source)))
                        peer_alive = false;
                },
                &grid_hash);
            if (!peer_alive) {
                structuredWarn("serve-client-vanished",
                               {{"grid", grid.name},
                                {"note", "sweep completed into the "
                                         "store anyway"}});
                return false;
            }
            return channel.writeDoc(doneReply(
                grid.name, grid_hash, stats.points, stats.storeHits,
                stats.peerHits, stats.simulated));
        } catch (const json::Error &e) {
            // Malformed spec: classified reply, connection stays up.
            return peer_alive &&
                   channel.writeDoc(
                       errorReply(SimErrc::Corrupt, e.what()));
        } catch (const SimError &e) {
            return peer_alive &&
                   channel.writeDoc(errorReply(e.code(), e.what()));
        }
    }

    ResultStore store_;
    SweepService service_;
    std::string listenPath_;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::mutex clientsMutex_;
    std::vector<std::thread> clients_;
};

} // namespace

int
serveForever(const ServeOptions &options)
{
    if (options.storeDir.empty())
        throwUsage("serve needs --store <dir> (the result store is "
                   "what makes serving worthwhile)");
    Server server(options);
    return server.run();
}

} // namespace serve
} // namespace unison
