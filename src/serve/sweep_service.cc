#include "serve/sweep_service.hh"

#include <utility>
#include <vector>

#include "sim/runner.hh"

namespace unison {
namespace serve {

SweepService::SweepService(ResultStore &store, int threads)
    : store_(store), threads_(threads)
{
}

void
SweepService::publish(const std::string &fp, const SimResult *result,
                      const std::string &error)
{
    std::shared_ptr<Inflight> fl;
    {
        std::lock_guard<std::mutex> lock(mapMutex_);
        const auto it = inflight_.find(fp);
        if (it == inflight_.end())
            return; // already resolved (duplicate label, same spec)
        fl = it->second;
        inflight_.erase(it);
    }
    {
        std::lock_guard<std::mutex> lock(fl->m);
        fl->done = true;
        if (result != nullptr) {
            fl->result = *result;
        } else {
            fl->failed = true;
            fl->error = error;
        }
    }
    fl->cv.notify_all();
}

SubmitStats
SweepService::run(const GridFile &grid, const PointSink &sink,
                  std::string *grid_hash_out)
{
    if (grid.points.empty())
        throwUsage("submitted grid '", grid.name, "' has no points");

    // Same fingerprint a local `--spec` run computes before sharding:
    // the client stamps it into its results document, which is what
    // lets `submit` round-trip byte-identically with a direct run.
    const std::string grid_hash =
        gridFingerprint(json::write(gridToJson(grid.name, grid.points)));
    if (grid_hash_out != nullptr)
        *grid_hash_out = grid_hash;

    // Validate everything before claiming anything: a bad point must
    // fail the submission without poisoning the in-flight table.
    for (const GridPoint &point : grid.points) {
        const std::string err = point.spec.validationError();
        if (!err.empty())
            throwUsage("point '", point.label, "': ", err);
    }

    const std::size_t n = grid.points.size();
    std::vector<std::string> fps;
    fps.reserve(n);
    for (const GridPoint &point : grid.points)
        fps.push_back(specFingerprint(point.spec));

    // Claim phase: one pass under one lock partitions the points into
    // owned (we compute), waited (a peer is computing) and duplicate
    // (an earlier point of this submission has the same fingerprint).
    std::vector<std::size_t> owned;
    std::vector<std::ptrdiff_t> dup_of(n, -1);
    std::vector<std::pair<std::size_t, std::shared_ptr<Inflight>>>
        waits;
    {
        std::unordered_map<std::string, std::size_t> mine;
        std::lock_guard<std::mutex> lock(mapMutex_);
        for (std::size_t i = 0; i < n; ++i) {
            const auto m = mine.find(fps[i]);
            if (m != mine.end()) {
                dup_of[i] = static_cast<std::ptrdiff_t>(m->second);
                continue;
            }
            const auto it = inflight_.find(fps[i]);
            if (it != inflight_.end()) {
                waits.emplace_back(i, it->second);
                continue;
            }
            inflight_.emplace(fps[i], std::make_shared<Inflight>());
            mine.emplace(fps[i], i);
            owned.push_back(i);
        }
    }

    SubmitStats stats;
    stats.points = n;

    const auto emit = [&](std::size_t i, const SimResult &result,
                          const char *source) {
        ResultPoint point;
        point.index = grid.points[i].index;
        point.label = grid.points[i].label;
        point.spec = grid.points[i].spec;
        point.result = result;
        if (sink)
            sink(point, source);
    };

    // Owned points run as ONE runExperiments call: store hits resolve
    // in its replay pre-pass (streamed first, before any simulation),
    // the rest simulate with work stealing and warm-checkpoint
    // grouping intact. The cache hook both serves the hits and
    // publishes fresh results to the store -- record() runs *before*
    // on_done, so by the time a waiter or a later submission sees the
    // point resolved, the object is already on disk.
    std::vector<SimResult> own_results;
    std::vector<std::ptrdiff_t> own_pos(n, -1);
    if (!owned.empty()) {
        std::vector<ExperimentSpec> specs;
        specs.reserve(owned.size());
        for (std::size_t j = 0; j < owned.size(); ++j) {
            specs.push_back(grid.points[owned[j]].spec);
            own_pos[owned[j]] = static_cast<std::ptrdiff_t>(j);
        }
        StoreCacheHook hook(store_, specs);
        RunHooks hooks;
        hooks.cache = &hook;
        const ExperimentCallback on_done =
            [&](std::size_t j, const SimResult &result) {
                const std::size_t i = owned[j];
                publish(fps[i], &result, "");
                const bool from_store = hook.wasHit(j);
                if (from_store)
                    ++stats.storeHits;
                else
                    ++stats.simulated;
                emit(i, result, from_store ? "store" : "simulated");
            };
        try {
            own_results =
                runExperiments(specs, threads_, on_done, hooks);
        } catch (const std::exception &e) {
            // Release every claim this submission still holds so a
            // waiting peer fails fast instead of blocking forever.
            for (const std::size_t i : owned)
                publish(fps[i], nullptr, e.what());
            throw;
        }
    }

    // Points a concurrent submission owns: block until each resolves.
    // The results stream later than the owner's clients see them, but
    // never later than the submission's `done` -- and no simulation
    // was duplicated to produce them.
    for (const auto &[i, fl] : waits) {
        std::unique_lock<std::mutex> lock(fl->m);
        fl->cv.wait(lock, [&] { return fl->done; });
        if (fl->failed)
            throwIo("point '", grid.points[i].label,
                    "': peer computation failed: ", fl->error);
        ++stats.peerHits;
        emit(i, fl->result, "peer");
    }

    // Within-submission duplicates (same spec under two labels): copy
    // the sibling's result.
    for (std::size_t i = 0; i < n; ++i) {
        if (dup_of[i] < 0)
            continue;
        const std::size_t first = static_cast<std::size_t>(dup_of[i]);
        const std::ptrdiff_t j = own_pos[first];
        SimResult result;
        if (j >= 0) {
            result = own_results[static_cast<std::size_t>(j)];
        } else {
            // The sibling was itself waited on; its Inflight is gone,
            // but its object is in the store by the publish ordering.
            if (!store_.lookupFp(fps[i], result))
                throwIo("point '", grid.points[i].label,
                        "': duplicate of a peer-served point but "
                        "absent from the store");
        }
        ++stats.peerHits;
        emit(i, result, "dup");
    }

    return stats;
}

} // namespace serve
} // namespace unison
