#include "serve/client.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/version.hh"
#include "serve/protocol.hh"

namespace unison {
namespace serve {

namespace {

/** Connected stream socket to the server, or a classified throw. */
int
connectTo(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throwUsage("--connect: socket path must be 1..",
                   sizeof(addr.sun_path) - 1, " bytes, got '", path,
                   "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwIo("cannot create socket: ", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throwIo("cannot connect to ", path, ": ", std::strerror(err),
                " (is `unison_sim serve --listen ", path,
                "` running?)");
    }
    return fd;
}

/** RAII fd close for the exception paths. */
struct FdGuard
{
    int fd;
    ~FdGuard() { ::close(fd); }
};

[[noreturn]] void
rethrowErrorReply(const json::Value &reply)
{
    json::ObjectReader r(reply, "error reply");
    r.req("reply");
    const SimErrc code = errcFromName(r.req("class").asString());
    const std::string message = r.req("message").asString();
    throw SimError(code, "server: " + message);
}

} // namespace

SubmitOutcome
submitGrid(const std::string &socket_path, const json::Value &spec_doc,
           bool quiet)
{
    ::signal(SIGPIPE, SIG_IGN);
    const int fd = connectTo(socket_path);
    FdGuard guard{fd};
    LineChannel channel(fd);

    if (!channel.writeDoc(submitRequest(spec_doc)))
        throwIo("server at ", socket_path,
                " hung up before the submission was sent");

    SubmitOutcome outcome;
    json::Value reply;
    bool done = false;
    while (!done) {
        if (!channel.readDoc(reply))
            throwIo("server at ", socket_path,
                    " closed the connection mid-sweep (after ",
                    outcome.points.size(), " point(s))");
        json::ObjectReader r(reply, "serve reply");
        const std::string kind = r.req("reply").asString();
        if (kind == "point") {
            ResultPoint point;
            point.index = r.req("index").asUint();
            point.label = r.req("label").asString();
            point.spec = specFromJson(r.req("spec"));
            point.result = resultFromJson(r.req("result"));
            const std::string source = r.req("source").asString();
            outcome.points.push_back(std::move(point));
            if (!quiet)
                std::fprintf(stderr,
                             "unison_sim: submit: [%zu] %s (%s)\n",
                             outcome.points.back().index,
                             outcome.points.back().label.c_str(),
                             source.c_str());
        } else if (kind == "done") {
            outcome.gridName = r.req("gridName").asString();
            outcome.gridHash = r.req("gridHash").asString();
            const std::uint64_t points = r.req("points").asUint();
            outcome.storeHits = r.req("storeHits").asUint();
            outcome.peerHits = r.req("peerHits").asUint();
            outcome.simulated = r.req("simulated").asUint();
            if (points != outcome.points.size())
                throwIo("server reported ", points,
                        " point(s) but streamed ",
                        outcome.points.size());
            done = true;
        } else if (kind == "error") {
            rethrowErrorReply(reply);
        } else {
            throwIo("unknown serve reply kind '", kind, "'");
        }
    }

    // Completion order -> document order. resultsToJson expects (and a
    // local run produces) points sorted by full-grid index.
    std::sort(outcome.points.begin(), outcome.points.end(),
              [](const ResultPoint &a, const ResultPoint &b) {
                  return a.index < b.index;
              });
    return outcome;
}

SimStatus
pingServer(const std::string &socket_path)
{
    try {
        ::signal(SIGPIPE, SIG_IGN);
        const int fd = connectTo(socket_path);
        FdGuard guard{fd};
        LineChannel channel(fd);
        if (!channel.writeDoc(pingRequest()))
            return SimStatus::failure(SimErrc::Io,
                                      "server hung up on ping");
        json::Value reply;
        if (!channel.readDoc(reply))
            return SimStatus::failure(SimErrc::Io,
                                      "no pong before EOF");
        json::ObjectReader r(reply, "pong reply");
        if (r.req("reply").asString() != "pong")
            return SimStatus::failure(SimErrc::Io, "expected pong");
        const std::string version = r.req("codeVersion").asString();
        if (version != kSimCodeVersion)
            return SimStatus::failure(
                SimErrc::Usage,
                "server runs " + version + ", this client is " +
                    kSimCodeVersion +
                    " (results would not be comparable)");
        return SimStatus::success();
    } catch (const std::exception &e) {
        return SimStatus::failure(SimErrc::Io, e.what());
    }
}

void
shutdownServer(const std::string &socket_path)
{
    ::signal(SIGPIPE, SIG_IGN);
    const int fd = connectTo(socket_path);
    FdGuard guard{fd};
    LineChannel channel(fd);
    if (!channel.writeDoc(shutdownRequest()))
        throwIo("server at ", socket_path, " hung up before the "
                                           "shutdown request");
    // The server acknowledges by closing the connection once the
    // request is processed; wait for the EOF so scripts can sequence
    // on our exit.
    json::Value reply;
    while (channel.readDoc(reply)) {
    }
}

} // namespace serve
} // namespace unison
