#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/version.hh"

namespace unison {
namespace serve {

bool
LineChannel::readDoc(json::Value &out)
{
    while (true) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            const std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (line.empty())
                continue; // tolerate blank keepalive lines
            out = json::parse(line);
            return true;
        }
        if (buf_.size() > kMaxLineBytes)
            throwIo("serve protocol: line exceeds ", kMaxLineBytes,
                    " bytes");

        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n == 0) {
            if (!buf_.empty())
                throwIo("serve protocol: connection closed "
                        "mid-line");
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwIo("serve protocol: read failed: ",
                    std::strerror(errno));
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
LineChannel::writeDoc(const json::Value &doc)
{
    std::string line = json::writeCompact(doc);
    line.push_back('\n');
    std::size_t sent = 0;
    while (sent < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + sent, line.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                return false;
            throwIo("serve protocol: write failed: ",
                    std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

json::Value
submitRequest(json::Value spec_doc)
{
    json::Value out{json::Object{}};
    out.set("op", "submit");
    out.set("spec", std::move(spec_doc));
    return out;
}

json::Value
pingRequest()
{
    json::Value out{json::Object{}};
    out.set("op", "ping");
    return out;
}

json::Value
shutdownRequest()
{
    json::Value out{json::Object{}};
    out.set("op", "shutdown");
    return out;
}

json::Value
pongReply()
{
    json::Value out{json::Object{}};
    out.set("reply", "pong");
    out.set("codeVersion", kSimCodeVersion);
    return out;
}

json::Value
pointReply(const ResultPoint &point, const char *source)
{
    json::Value out{json::Object{}};
    out.set("reply", "point");
    out.set("index", static_cast<std::uint64_t>(point.index));
    out.set("label", point.label);
    out.set("source", source);
    out.set("spec", specToJson(point.spec));
    out.set("result", resultToJson(point.result));
    return out;
}

json::Value
doneReply(const std::string &grid_name, const std::string &grid_hash,
          std::size_t points, std::uint64_t store_hits,
          std::uint64_t peer_hits, std::uint64_t simulated)
{
    json::Value out{json::Object{}};
    out.set("reply", "done");
    out.set("gridName", grid_name);
    out.set("gridHash", grid_hash);
    out.set("points", static_cast<std::uint64_t>(points));
    out.set("storeHits", store_hits);
    out.set("peerHits", peer_hits);
    out.set("simulated", simulated);
    return out;
}

json::Value
errorReply(SimErrc code, const std::string &message)
{
    json::Value out{json::Object{}};
    out.set("reply", "error");
    out.set("class", simErrcName(code));
    out.set("message", message);
    return out;
}

SimErrc
errcFromName(const std::string &name)
{
    for (const SimErrc code :
         {SimErrc::Usage, SimErrc::Io, SimErrc::Corrupt})
        if (name == simErrcName(code))
            return code;
    return SimErrc::Io;
}

} // namespace serve
} // namespace unison
