/**
 * @file
 * Client side of the sweep-serving protocol: connect to a
 * `unison_sim serve` socket, submit a spec/grid document, collect the
 * streamed points and reassemble the exact results document a local
 * `unison_sim --spec` run would have written (byte-identical,
 * CI-enforced). Also the readiness probe (ping) and the graceful-stop
 * request (shutdown) the scripts use.
 */

#ifndef UNISON_SERVE_CLIENT_HH
#define UNISON_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/json.hh"
#include "sim/spec_json.hh"

namespace unison {
namespace serve {

/** What one submit round trip produced. */
struct SubmitOutcome
{
    std::string gridName;
    std::string gridHash;
    std::vector<ResultPoint> points; //!< sorted by full-grid index
    std::uint64_t storeHits = 0;
    std::uint64_t peerHits = 0;
    std::uint64_t simulated = 0;
};

/**
 * Submit `spec_doc` (a unison-spec or unison-grid document) to the
 * server at `socket_path` and stream until `done`. Progress goes to
 * stderr unless `quiet`. An `error` reply rethrows as a SimError of
 * the same class, so `unison_sim submit` exits with the code the
 * equivalent local run would have. Throws Io when the server cannot
 * be reached or closes mid-sweep.
 */
SubmitOutcome submitGrid(const std::string &socket_path,
                         const json::Value &spec_doc,
                         bool quiet = false);

/** Readiness probe: Ok when the server answers a ping with a matching
 *  code version, a classified failure otherwise. Never throws. */
SimStatus pingServer(const std::string &socket_path);

/** Ask the server to stop accepting, finish active sweeps and exit.
 *  Throws Io when it cannot be reached. */
void shutdownServer(const std::string &socket_path);

} // namespace serve
} // namespace unison

#endif // UNISON_SERVE_CLIENT_HH
