/**
 * @file
 * The long-running serve mode: a unix-domain-socket front end over
 * SweepService + ResultStore. One `unison_sim serve` process owns a
 * store directory and accepts concurrent clients, each a stream of
 * newline-delimited JSON requests (serve/protocol.hh).
 *
 * Degradation contract:
 *  - a malformed or invalid spec answers one structured `error` reply
 *    (SimError taxonomy class + message) and the connection stays up;
 *  - a client that disconnects mid-sweep does not cancel the work:
 *    the sweep runs to completion and every result lands in the
 *    store, so a resubmission is pure cache hits;
 *  - `shutdown` stops accepting, waits for active sweeps, and exits 0
 *    (a kill -9 instead loses nothing but the points in flight -- the
 *    store's atomic-publish objects survive, CI-enforced).
 */

#ifndef UNISON_SERVE_SERVER_HH
#define UNISON_SERVE_SERVER_HH

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/sweep_service.hh"

namespace unison {
namespace serve {

struct ServeOptions
{
    std::string listenPath; //!< unix socket path (--listen)
    std::string storeDir;   //!< result store root (--store)
    int threads = 0;        //!< workers per submission (0 = all cores)
};

/**
 * Bind, announce ("serving on <path>" on stderr -- scripts poll
 * readiness with `submit --ping` instead of parsing it), then serve
 * until a shutdown request. Returns the process exit code. Throws
 * SimError for startup failures (bad path: Usage; bind/listen: Io).
 */
int serveForever(const ServeOptions &options);

} // namespace serve
} // namespace unison

#endif // UNISON_SERVE_SERVER_HH
