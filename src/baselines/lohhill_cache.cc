#include "baselines/lohhill_cache.hh"

#include "sim/design_registry.hh"

#include "cache/set_scan.hh"

#include "common/logging.hh"

namespace unison {

LohHillGeometry
LohHillGeometry::compute(std::uint64_t capacity_bytes)
{
    UNISON_ASSERT(capacity_bytes >= kRowBytes,
                  "capacity below one DRAM row");
    LohHillGeometry g;
    g.capacityBytes = capacity_bytes;
    g.numRows = capacity_bytes / kRowBytes;
    // Fit W ways of (8 B tag + 64 B data) into one 8 KB row.
    g.waysPerSet = kRowBytes / (8 + kBlockBytes); // 113
    g.tagBytes = g.waysPerSet * 8;
    g.inDramTagBytes =
        capacity_bytes - g.numRows * static_cast<std::uint64_t>(
                                         g.waysPerSet) *
                             kBlockBytes;
    // MissMap: one presence bit per cached block plus ~25% tag/LRU
    // overhead for its own set-associative organization.
    const std::uint64_t blocks = g.numRows * g.waysPerSet;
    g.missMapBytes = blocks / 8 * 5 / 4;
    g.numRowsDiv.init(g.numRows);
    return g;
}

LohHillCache::LohHillCache(const LohHillConfig &config, DramModule *offchip)
    : DramCache(offchip, DramCacheKind::LohHill),
      config_(config),
      geometry_(LohHillGeometry::compute(config.capacityBytes)),
      stacked_(std::make_unique<DramModule>(config.stackedOrg,
                                            config.stackedTiming))
{
    UNISON_ASSERT(offchip != nullptr,
                  "Loh-Hill cache needs a memory pool");
    const std::uint64_t ways = geometry_.numRows * geometry_.waysPerSet;
    tagv_.assign(ways, 0);
    lastUse_.assign(ways, 0);
}

void
LohHillCache::locate(Addr addr, std::uint64_t &set,
                     std::uint32_t &tag) const
{
    const std::uint64_t block = blockNumber(addr);
    std::uint64_t q;
    geometry_.numRowsDiv.divMod(block, q, set);
    tag = static_cast<std::uint32_t>(q);
}

int
LohHillCache::findWay(std::uint64_t set, std::uint32_t tag) const
{
    return scanWays(&tagv_[set * geometry_.waysPerSet],
                    geometry_.waysPerSet, ~kDirty, kValid | tag);
}

int
LohHillCache::pickVictim(std::uint64_t set) const
{
    const std::size_t base = set * geometry_.waysPerSet;
    return static_cast<int>(pickVictimWay(&tagv_[base], &lastUse_[base],
                                          geometry_.waysPerSet, kValid));
}

DramCacheResult
LohHillCache::access(const DramCacheRequest &req)
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(req.addr, set, tag);
    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    // Every access consults the MissMap first (Sec. II-A: it "further
    // increases the DRAM cache hit latency").
    const Cycle mm_done = req.cycle + config_.missMapLatency;
    const int way = findWay(set, tag);

    DramCacheResult result;

    if (way < 0) {
        // MissMap says absent: go straight to memory, no DRAM probe
        // (the design's miss-latency advantage).
        ++stats_.misses;
        result.hit = false;
        if (req.isWrite) {
            // Write-no-allocate keeps the comparison uniform with the
            // other block-based baseline behaviourally relevant paths.
            result.doneAt =
                offchip_
                    ->addrAccess(req.addr, kBlockBytes, true, mm_done)
                    .completion;
            ++stats_.offchipWritebackBlocks;
            return result;
        }
        const Cycle mem_done =
            offchip_->addrAccess(req.addr, kBlockBytes, false, mm_done)
                .completion;
        ++stats_.offchipDemandBlocks;

        // Allocate: tag write + data fill into the row; evict LRU.
        const int victim = pickVictim(set);
        const std::size_t vidx = set * geometry_.waysPerSet + victim;
        const std::uint64_t vw = tagv_[vidx];
        if ((vw & kValid) != 0) {
            ++stats_.evictions;
            if ((vw & kDirty) != 0) {
                const Cycle victim_read =
                    stacked_
                        ->rowAccess(set, kBlockBytes, false, mem_done)
                        .completion;
                const Addr victim_addr = blockAddress(
                    (vw & kTagMask) * geometry_.numRows + set);
                offchip_->addrAccess(victim_addr, kBlockBytes, true,
                                     victim_read);
                ++stats_.offchipWritebackBlocks;
            }
        }
        tagv_[vidx] = kValid | tag;
        lastUse_[vidx] = ++useCounter_;
        stacked_->rowAccess(set, kBlockBytes + 8, true, mem_done);
        result.doneAt = mem_done;
        return result;
    }

    // Present: tag region read first, then the data block -- two
    // *serialized* accesses to the same row (compound scheduling keeps
    // the second a row-buffer hit; Sec. II-A).
    ++stats_.hits;
    result.hit = true;
    const std::size_t hidx = set * geometry_.waysPerSet + way;
    lastUse_[hidx] = ++useCounter_;
    const Cycle tag_done =
        stacked_->rowAccess(set, geometry_.tagBytes, false, mm_done)
            .completion;
    if (req.isWrite) {
        tagv_[hidx] |= kDirty;
        result.doneAt =
            stacked_->rowAccess(set, kBlockBytes, true, tag_done)
                .completion;
    } else {
        result.doneAt =
            stacked_->rowAccess(set, kBlockBytes, false, tag_done)
                .completion;
    }
    return result;
}

bool
LohHillCache::blockPresent(Addr addr) const
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(addr, set, tag);
    return findWay(set, tag) >= 0;
}

bool
LohHillCache::blockDirty(Addr addr) const
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(addr, set, tag);
    const int way = findWay(set, tag);
    return way >= 0 &&
           (tagv_[set * geometry_.waysPerSet + way] & kDirty) != 0;
}


// --------------------------------------------------- registry entry

DesignInfo
lohHillDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::LohHill;
    info.id = "lohhill";
    info.name = "Loh-Hill Cache";
    info.shortName = "Loh-Hill";
    info.summary = "row-as-set block cache with an SRAM MissMap "
                   "(Loh & Hill, MICRO'11)";
    info.defaults = LohHillConfig{};
    info.knobs = {
        knobUInt<LohHillConfig>(
            "missMapLatency", "MissMap SRAM lookup latency in cycles",
            &LohHillConfig::missMapLatency, 1, 1000),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    DramModule *offchip) -> std::unique_ptr<DramCache> {
        LohHillConfig cfg = std::get<LohHillConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        return std::make_unique<LohHillCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
