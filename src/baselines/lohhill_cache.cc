#include "baselines/lohhill_cache.hh"

#include "sim/design_registry.hh"

#include "common/logging.hh"

namespace unison {

LohHillGeometry
LohHillGeometry::compute(std::uint64_t capacity_bytes)
{
    UNISON_ASSERT(capacity_bytes >= kRowBytes,
                  "capacity below one DRAM row");
    LohHillGeometry g;
    g.capacityBytes = capacity_bytes;
    g.numRows = capacity_bytes / kRowBytes;
    // Fit W ways of (8 B tag + 64 B data) into one 8 KB row.
    g.waysPerSet = kRowBytes / (8 + kBlockBytes); // 113
    g.tagBytes = g.waysPerSet * 8;
    g.inDramTagBytes =
        capacity_bytes - g.numRows * static_cast<std::uint64_t>(
                                         g.waysPerSet) *
                             kBlockBytes;
    // MissMap: one presence bit per cached block plus ~25% tag/LRU
    // overhead for its own set-associative organization.
    const std::uint64_t blocks = g.numRows * g.waysPerSet;
    g.missMapBytes = blocks / 8 * 5 / 4;
    g.numRowsDiv.init(g.numRows);
    return g;
}

LohHillCache::LohHillCache(const LohHillConfig &config, MemoryBackend *offchip)
    : DramCache(offchip, DramCacheKind::LohHill),
      config_(config),
      geometry_(LohHillGeometry::compute(config.capacityBytes)),
      stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming))
{
    UNISON_ASSERT(offchip != nullptr,
                  "Loh-Hill cache needs a memory pool");
    org_.init(geometry_.numRows, geometry_.waysPerSet);
    fill_.init(offchip, &stats_);
    writeback_.init(offchip, &stats_);
}

void
LohHillCache::locate(Addr addr, std::uint64_t &set,
                     std::uint32_t &tag) const
{
    org_.locate(blockNumber(addr), set, tag);
}

DramCacheResult
LohHillCache::access(const DramCacheRequest &req)
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(req.addr, set, tag);
    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    // Every access consults the MissMap first (Sec. II-A: it "further
    // increases the DRAM cache hit latency").
    const Cycle mm_done = req.cycle + config_.missMapLatency;
    const int way = org_.findWay(set, tag);

    DramCacheResult result;

    if (way < 0) {
        // MissMap says absent: go straight to memory, no DRAM probe
        // (the design's miss-latency advantage).
        ++stats_.misses;
        result.hit = false;
        if (req.isWrite) {
            // Write-no-allocate keeps the comparison uniform with the
            // other block-based baseline behaviourally relevant paths.
            result.doneAt = writeback_.writeBlock(req.addr, mm_done);
            return result;
        }
        const Cycle mem_done = fill_.demandBlock(req.addr, mm_done);

        // Allocate: tag write + data fill into the row; evict LRU.
        const int victim = org_.pickVictim(set);
        const std::size_t vidx = org_.base(set) + victim;
        const std::uint64_t vw = org_.tagWord(vidx);
        if ((vw & kValid) != 0) {
            ++stats_.evictions;
            if ((vw & kDirty) != 0) {
                const Cycle victim_read =
                    stacked_
                        ->rowAccess(set, kBlockBytes, false, mem_done)
                        .completion;
                writeback_.writeBlock(
                    blockAddress(org_.blockOf(set, victim)),
                    victim_read);
            }
        }
        org_.tagWord(vidx) = kValid | tag;
        org_.lastUse(vidx) = ++useCounter_;
        stacked_->rowAccess(set, kBlockBytes + 8, true, mem_done);
        result.doneAt = mem_done;
        return result;
    }

    // Present: tag region read first, then the data block -- two
    // *serialized* accesses to the same row (compound scheduling keeps
    // the second a row-buffer hit; Sec. II-A).
    ++stats_.hits;
    result.hit = true;
    const std::size_t hidx = org_.base(set) + way;
    org_.lastUse(hidx) = ++useCounter_;
    const Cycle tag_done =
        stacked_->rowAccess(set, geometry_.tagBytes, false, mm_done)
            .completion;
    if (req.isWrite) {
        org_.tagWord(hidx) |= kDirty;
        result.doneAt =
            stacked_->rowAccess(set, kBlockBytes, true, tag_done)
                .completion;
    } else {
        result.doneAt =
            stacked_->rowAccess(set, kBlockBytes, false, tag_done)
                .completion;
    }
    return result;
}

bool
LohHillCache::blockPresent(Addr addr) const
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(addr, set, tag);
    return org_.findWay(set, tag) >= 0;
}

bool
LohHillCache::blockDirty(Addr addr) const
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(addr, set, tag);
    const int way = org_.findWay(set, tag);
    return way >= 0 &&
           (org_.tagWord(org_.base(set) + way) & kDirty) != 0;
}


// --------------------------------------------------- registry entry

DesignInfo
lohHillDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::LohHill;
    info.id = "lohhill";
    info.name = "Loh-Hill Cache";
    info.shortName = "Loh-Hill";
    info.summary = "row-as-set block cache with an SRAM MissMap "
                   "(Loh & Hill, MICRO'11)";
    info.defaults = LohHillConfig{};
    info.knobs = {
        knobUInt<LohHillConfig>(
            "missMapLatency", "MissMap SRAM lookup latency in cycles",
            &LohHillConfig::missMapLatency, 1, 1000),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        LohHillConfig cfg = std::get<LohHillConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        return std::make_unique<LohHillCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
