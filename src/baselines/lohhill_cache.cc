#include "baselines/lohhill_cache.hh"

#include "common/logging.hh"

namespace unison {

LohHillGeometry
LohHillGeometry::compute(std::uint64_t capacity_bytes)
{
    UNISON_ASSERT(capacity_bytes >= kRowBytes,
                  "capacity below one DRAM row");
    LohHillGeometry g;
    g.capacityBytes = capacity_bytes;
    g.numRows = capacity_bytes / kRowBytes;
    // Fit W ways of (8 B tag + 64 B data) into one 8 KB row.
    g.waysPerSet = kRowBytes / (8 + kBlockBytes); // 113
    g.tagBytes = g.waysPerSet * 8;
    g.inDramTagBytes =
        capacity_bytes - g.numRows * static_cast<std::uint64_t>(
                                         g.waysPerSet) *
                             kBlockBytes;
    // MissMap: one presence bit per cached block plus ~25% tag/LRU
    // overhead for its own set-associative organization.
    const std::uint64_t blocks = g.numRows * g.waysPerSet;
    g.missMapBytes = blocks / 8 * 5 / 4;
    return g;
}

LohHillCache::LohHillCache(const LohHillConfig &config, DramModule *offchip)
    : DramCache(offchip),
      config_(config),
      geometry_(LohHillGeometry::compute(config.capacityBytes)),
      stacked_(std::make_unique<DramModule>(config.stackedOrg,
                                            config.stackedTiming))
{
    UNISON_ASSERT(offchip != nullptr,
                  "Loh-Hill cache needs a memory pool");
    ways_.resize(geometry_.numRows * geometry_.waysPerSet);
}

void
LohHillCache::locate(Addr addr, std::uint64_t &set,
                     std::uint32_t &tag) const
{
    const std::uint64_t block = blockNumber(addr);
    set = block % geometry_.numRows;
    tag = static_cast<std::uint32_t>(block / geometry_.numRows);
}

int
LohHillCache::findWay(std::uint64_t set, std::uint32_t tag) const
{
    const Way *base = &ways_[set * geometry_.waysPerSet];
    for (std::uint32_t w = 0; w < geometry_.waysPerSet; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

int
LohHillCache::pickVictim(std::uint64_t set) const
{
    const Way *base = &ways_[set * geometry_.waysPerSet];
    int victim = 0;
    for (std::uint32_t w = 0; w < geometry_.waysPerSet; ++w) {
        if (!base[w].valid)
            return static_cast<int>(w);
        if (base[w].lastUse < base[victim].lastUse)
            victim = static_cast<int>(w);
    }
    return victim;
}

DramCacheResult
LohHillCache::access(const DramCacheRequest &req)
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(req.addr, set, tag);
    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    // Every access consults the MissMap first (Sec. II-A: it "further
    // increases the DRAM cache hit latency").
    const Cycle mm_done = req.cycle + config_.missMapLatency;
    const int way = findWay(set, tag);

    DramCacheResult result;

    if (way < 0) {
        // MissMap says absent: go straight to memory, no DRAM probe
        // (the design's miss-latency advantage).
        ++stats_.misses;
        result.hit = false;
        if (req.isWrite) {
            // Write-no-allocate keeps the comparison uniform with the
            // other block-based baseline behaviourally relevant paths.
            result.doneAt =
                offchip_
                    ->addrAccess(req.addr, kBlockBytes, true, mm_done)
                    .completion;
            ++stats_.offchipWritebackBlocks;
            return result;
        }
        const Cycle mem_done =
            offchip_->addrAccess(req.addr, kBlockBytes, false, mm_done)
                .completion;
        ++stats_.offchipDemandBlocks;

        // Allocate: tag write + data fill into the row; evict LRU.
        const int victim = pickVictim(set);
        Way &vw = ways_[set * geometry_.waysPerSet + victim];
        if (vw.valid) {
            ++stats_.evictions;
            if (vw.dirty) {
                const Cycle victim_read =
                    stacked_
                        ->rowAccess(set, kBlockBytes, false, mem_done)
                        .completion;
                const Addr victim_addr = blockAddress(
                    static_cast<std::uint64_t>(vw.tag) *
                        geometry_.numRows +
                    set);
                offchip_->addrAccess(victim_addr, kBlockBytes, true,
                                     victim_read);
                ++stats_.offchipWritebackBlocks;
            }
        }
        vw.valid = true;
        vw.tag = tag;
        vw.dirty = false;
        vw.lastUse = ++useCounter_;
        stacked_->rowAccess(set, kBlockBytes + 8, true, mem_done);
        result.doneAt = mem_done;
        return result;
    }

    // Present: tag region read first, then the data block -- two
    // *serialized* accesses to the same row (compound scheduling keeps
    // the second a row-buffer hit; Sec. II-A).
    ++stats_.hits;
    result.hit = true;
    Way &hw = ways_[set * geometry_.waysPerSet + way];
    hw.lastUse = ++useCounter_;
    const Cycle tag_done =
        stacked_->rowAccess(set, geometry_.tagBytes, false, mm_done)
            .completion;
    if (req.isWrite) {
        hw.dirty = true;
        result.doneAt =
            stacked_->rowAccess(set, kBlockBytes, true, tag_done)
                .completion;
    } else {
        result.doneAt =
            stacked_->rowAccess(set, kBlockBytes, false, tag_done)
                .completion;
    }
    return result;
}

bool
LohHillCache::blockPresent(Addr addr) const
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(addr, set, tag);
    return findWay(set, tag) >= 0;
}

bool
LohHillCache::blockDirty(Addr addr) const
{
    std::uint64_t set;
    std::uint32_t tag;
    locate(addr, set, tag);
    const int way = findWay(set, tag);
    return way >= 0 &&
           ways_[set * geometry_.waysPerSet + way].dirty;
}

} // namespace unison
