/**
 * @file
 * Registry entries for the two bracketing designs that are
 * header-only: the ideal cache (upper bound of Figs. 7-8) and the
 * no-DRAM-cache baseline (speedup denominator). Neither has tunable
 * knobs; they exist so every sweep axis endpoint goes through the same
 * registry path as the real designs.
 */

#include "baselines/ideal_cache.hh"
#include "baselines/no_cache.hh"
#include "sim/design_registry.hh"

namespace unison {

DesignInfo
idealDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::Ideal;
    info.id = "ideal";
    info.name = "Ideal";
    info.shortName = "Ideal";
    info.summary = "every access hits at raw stacked-DRAM latency "
                   "(upper bound of Figs. 7-8)";
    info.defaults = IdealConfig{};
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        IdealConfig cfg = std::get<IdealConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        return std::make_unique<IdealCache>(cfg, offchip);
    };
    return info;
}

DesignInfo
noCacheDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::NoDramCache;
    info.id = "nocache";
    info.name = "No DRAM cache";
    info.shortName = "NoCache";
    info.summary = "all L2 misses go straight off-chip (speedup "
                   "denominator)";
    info.defaults = NoCacheConfig{};
    info.build = [](const DesignVariant &, const DesignBuildContext &,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        return std::make_unique<NoCache>(offchip);
    };
    return info;
}

} // namespace unison
