/**
 * @file
 * "Block-based cache with footprint prediction" -- the first naive
 * combination of Alloy Cache and Footprint Cache that Sec. III-B.1 of
 * the paper analyzes (Fig. 4a) and rejects. Implemented here as an
 * ablation baseline so the bench suite can quantify the problems the
 * paper describes qualitatively.
 *
 * In framework terms: DirectOrganization (Alloy's 72 B TAD units, 112
 * per 8 KB row) + FootprintFetchPolicy over *logical pages* (groups
 * of neighbouring blocks) + a PageGroupTracker standing in for
 * metadata the hardware could not actually keep. The design inherits
 * exactly the mismatches the paper calls out:
 *
 *  - there is no fast page-presence lookup, so classifying a miss as a
 *    trigger miss requires scanning all the TAD tags in the DRAM row
 *    (`tagScanBytes` read charged per miss);
 *  - block-presence information is spread over the row, so
 *    reconstructing a page's footprint at eviction requires another
 *    row scan;
 *  - pages can only coexist in a row while their footprints are
 *    disjoint at the TAD level; a conflicting fill evicts another
 *    page's blocks one by one, truncating that page's footprint
 *    prematurely (counted in `prematureEvictions`);
 *  - per-page (PC, offset) metadata has no natural home in the row; it
 *    is modelled as a side table whose storage the hardware could not
 *    actually provide (documented, measured in `pageInfoPeak`).
 *
 * Contrast with core/alloy_fp.hh: the *same* composition minus the
 * penalty charges -- what the splice would cost if the page-presence
 * and footprint metadata lived in SRAM.
 */

#ifndef UNISON_BASELINES_NAIVE_BLOCK_FP_HH
#define UNISON_BASELINES_NAIVE_BLOCK_FP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/organization.hh"
#include "cache/page_tracker.hh"
#include "core/dram_cache.hh"
#include "core/fill_engine.hh"
#include "core/geometry.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"
#include "predictors/fetch_policy.hh"

namespace unison {

/** Configuration of the Fig. 4a rejected design. */
struct NaiveBlockFpConfig
{
    std::uint64_t capacityBytes = 1_GiB;

    /** Blocks per logical page (power of two so block mapping stays
     *  trivial; the footprint predictor tracks this granularity). */
    std::uint32_t pageBlocks = 16;

    /** Fetch predicted footprints (false degenerates to Alloy). */
    bool footprintPredictionEnabled = true;

    FootprintTableConfig fhtConfig{};

    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

/** The row-scan and conflict pathologies Sec. III-B.1 predicts.
 *  (pageInfoPeak deliberately survives reset: it measures a structural
 *  storage requirement, not a rate.) */
#define UNISON_NAIVE_BLOCK_FP_STATS_FIELDS(X)                           \
    X(Counter, rowScans)           /* full-row tag scans issued */      \
    X(Counter, scanBytes)          /* stacked bytes those scans read */ \
    X(Counter, prematureEvictions) /* pages truncated by a fill */      \
    X(Counter, conflictFills)      /* fills displacing another page */

struct NaiveBlockFpStats
{
    UNISON_STAT_STRUCT_BODY(UNISON_NAIVE_BLOCK_FP_STATS_FIELDS)

    std::uint64_t pageInfoPeak = 0; //!< high-water mark of side-table pages
};

/** Block-based direct-mapped TAD cache with bolted-on footprint
 *  prefetching (the Sec. III-B.1 straw man). */
class NaiveBlockFpCache final : public DramCache
{
  public:
    NaiveBlockFpCache(const NaiveBlockFpConfig &config, MemoryBackend *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override { return "NaiveBlockFP"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const NaiveBlockFpConfig &config() const { return config_; }
    const AlloyGeometry &geometry() const { return geometry_; }
    const NaiveBlockFpStats &naiveStats() const { return naiveStats_; }
    const FootprintHistoryTable &footprintTable() const
    {
        return fetchPolicy_.footprintTable();
    }

    /** @name Test hooks */
    /**@{*/
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;
    bool pageTracked(Addr addr) const;
    std::size_t trackedPages() const { return pages_.size(); }
    /**@}*/

    bool checkpointable() const override { return true; }

    /** pageInfoPeak rides along although it lives in the stats struct:
     *  it deliberately survives the warm-boundary reset (a structural
     *  high-water mark), so a resumed run must inherit it. */
    void
    saveState(StateWriter &out) const override
    {
        org_.saveState(out);
        stacked_->saveState(out);
        fetchPolicy_.saveState(out);
        pages_.saveState(out);
        out.pod(naiveStats_.pageInfoPeak);
    }

    void
    loadState(StateReader &in) override
    {
        org_.loadState(in);
        stacked_->loadState(in);
        fetchPolicy_.loadState(in);
        pages_.loadState(in);
        in.pod(naiveStats_.pageInfoPeak);
    }

  private:
    /** Packed TAD word (the shared set_scan.hh positions). */
    static constexpr std::uint64_t kValid = kWayValidBit;
    static constexpr std::uint64_t kDirty = kWayDirtyBit;
    static constexpr std::uint64_t kTagMask = kWayTagMask;

    struct Location
    {
        std::uint64_t block = 0;
        std::uint64_t page = 0;
        std::uint32_t offset = 0;
        std::uint64_t tadIdx = 0;
        std::uint32_t tag = 0;
    };

    Location locate(Addr addr) const;

    /** Charge one full-row tag scan to the stacked DRAM. */
    Cycle chargeRowScan(std::uint64_t row, Cycle start);

    /**
     * Install `loc`'s block, evicting whatever direct-mapped victim
     * occupies the TAD slot. Returns the victim writeback time.
     */
    void installBlock(const Location &loc, bool dirty, Cycle when);

    /** Remove one block of `page` from the side table; when the last
     *  block leaves, train the FHT (charging the eviction scan). */
    void noteBlockEvicted(std::uint64_t page, std::uint32_t offset,
                          Cycle when);

    Addr
    blockAddr(std::uint64_t block) const
    {
        return blockAddress(block);
    }

    NaiveBlockFpConfig config_;
    AlloyGeometry geometry_;
    /** Logical-page split (pageBlocks is a runtime power of two). */
    FastDiv64 pageDiv_;
    std::unique_ptr<MemoryBackend> stacked_;
    FootprintFetchPolicy fetchPolicy_;
    /** CacheOrganization: one packed word per direct-mapped TAD frame. */
    DirectOrganization org_;
    PageGroupTracker pages_;
    FillEngine fill_;
    WritebackEngine writeback_;
    NaiveBlockFpStats naiveStats_;
};

} // namespace unison

#endif // UNISON_BASELINES_NAIVE_BLOCK_FP_HH
