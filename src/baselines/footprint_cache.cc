#include "baselines/footprint_cache.hh"

#include "sim/design_registry.hh"

#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

namespace {

Pc
fhtPc(Pc pc)
{
    return pc & 0xffffffffull;
}

constexpr std::uint32_t kFullMask = 0xffffffffu; // 32-block pages

} // namespace

FootprintCache::FootprintCache(const FootprintCacheConfig &config,
                               DramModule *offchip)
    : DramCache(offchip, DramCacheKind::Footprint),
      config_(config),
      geometry_(FootprintGeometry::compute(config.capacityBytes)),
      tagLatency_(config.tagLatencyOverride != 0
                      ? config.tagLatencyOverride
                      : geometry_.tagLatency),
      stacked_(std::make_unique<DramModule>(config.stackedOrg,
                                            config.stackedTiming)),
      fht_([&] {
          FootprintTableConfig c = config.fhtConfig;
          c.maxBlocksPerPage = 32;
          return c;
      }()),
      singletons_(config.singletonConfig)
{
    UNISON_ASSERT(offchip != nullptr,
                  "Footprint Cache needs a memory pool");
    ways_.resize(geometry_.numSets * geometry_.assoc);
}

void
FootprintCache::resetStats()
{
    DramCache::resetStats();
    ++statsGen_;
    fht_.resetStats();
    singletons_.resetStats();
}

FootprintCache::Location
FootprintCache::locate(Addr addr) const
{
    Location loc;
    const std::uint64_t block = blockNumber(addr);
    std::uint64_t off, tag, set;
    geometry_.pageBlocksDiv.divMod(block, loc.page, off);
    loc.offset = static_cast<std::uint32_t>(off);
    geometry_.numSetsDiv.divMod(loc.page, tag, set);
    loc.set = set;
    loc.tag = static_cast<std::uint32_t>(tag);
    return loc;
}

void
FootprintCache::evictPage(std::uint64_t set, int way, Cycle when)
{
    const std::size_t idx = setBase(set) + way;
    UNISON_ASSERT(ways_.valid(idx), "evicting an invalid way");
    ++stats_.evictions;

    const std::uint64_t page =
        ways_.tag(idx) * geometry_.numSets + set;

    const std::uint32_t dirty_mask = ways_.hot[idx].dirty;
    if (dirty_mask != 0) {
        const std::uint32_t dirty_blocks = popCount(dirty_mask);
        const Cycle read_done =
            stacked_
                ->rowAccess(geometry_.dataRowOfWay(set, way),
                            dirty_blocks * kBlockBytes, false, when)
                .completion;
        std::uint32_t mask = dirty_mask;
        while (mask != 0) {
            const std::uint32_t off = static_cast<std::uint32_t>(
                std::countr_zero(mask));
            mask &= mask - 1;
            offchip_->addrAccess(blockAddrOf(page, off), kBlockBytes,
                                 true, read_done);
        }
        stats_.offchipWritebackBlocks += dirty_blocks;
    }

    UNISON_ASSERT(ways_.hot[idx].touched != 0, "resident page never touched");
    fht_.update(ways_.cold[idx].pcHash, ways_.cold[idx].trigger,
                ways_.hot[idx].touched);

    if (ways_.cold[idx].gen == statsGen_) {
        stats_.fpPredictedTouched +=
            popCount(ways_.cold[idx].predicted & ways_.hot[idx].touched);
        stats_.fpTouched += popCount(ways_.hot[idx].touched);
        stats_.fpFetchedUntouched +=
            popCount(ways_.hot[idx].fetched & ~ways_.hot[idx].touched);
        stats_.fpFetched += popCount(ways_.hot[idx].fetched);
    }

    ways_.invalidate(idx);
}

DramCacheResult
FootprintCache::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    // Every access pays the SRAM tag-array latency first (Table IV).
    const Cycle tag_done = req.cycle + tagLatency_;
    const int way = findWay(loc.set, loc.tag);
    const std::uint32_t bit = 1u << loc.offset;

    DramCacheResult result;

    if (way >= 0) {
        const std::size_t idx = setBase(loc.set) + way;
        const std::uint64_t data_row =
            geometry_.dataRowOfWay(loc.set, way);
        if ((ways_.hot[idx].fetched & bit) != 0) {
            // Block hit: SRAM tag, then the DRAM data access
            // (serialized -- Table II's FC hit-latency structure).
            ++stats_.hits;
            ways_.hot[idx].touched |= bit;
            if (req.isWrite)
                ways_.hot[idx].dirty |= bit;
            ways_.hot[idx].lastUse = ++useCounter_;
            result.hit = true;
            result.doneAt =
                stacked_
                    ->rowAccess(data_row, kBlockBytes, req.isWrite,
                                tag_done)
                    .completion;
            return result;
        }
        // Underprediction: the SRAM tags identify the miss at SRAM
        // speed; fetch only the missing block.
        ++stats_.misses;
        ++stats_.blockMisses;
        ways_.hot[idx].lastUse = ++useCounter_;
        result.hit = false;
        if (req.isWrite) {
            ways_.hot[idx].fetched |= bit;
            ways_.hot[idx].touched |= bit;
            ways_.hot[idx].dirty |= bit;
            result.doneAt =
                stacked_->rowAccess(data_row, kBlockBytes, true, tag_done)
                    .completion;
            return result;
        }
        const Cycle mem_done =
            offchip_->addrAccess(req.addr, kBlockBytes, false, tag_done)
                .completion;
        ++stats_.offchipDemandBlocks;
        ways_.hot[idx].fetched |= bit;
        ways_.hot[idx].touched |= bit;
        stacked_->rowAccess(data_row, kBlockBytes, true, mem_done);
        result.doneAt = mem_done;
        return result;
    }

    // Trigger miss.
    ++stats_.misses;
    ++stats_.pageMisses;
    result.hit = false;

    if (req.isWrite) {
        // Write-no-allocate: L2 writebacks to non-resident pages go
        // straight to memory (see the Unison Cache rationale).
        result.doneAt =
            offchip_
                ->addrAccess(blockAddrOf(loc.page, loc.offset),
                             kBlockBytes, true, tag_done)
                .completion;
        ++stats_.offchipWritebackBlocks;
        return result;
    }

    bool promoted = false;
    if (config_.singletonEnabled) {
        Pc spc;
        std::uint32_t soff, sfirst;
        if (singletons_.checkAndRemove(loc.page, spc, soff, sfirst)) {
            fht_.merge(spc, soff, (1u << sfirst) | bit);
            promoted = true;
        }
    }

    std::uint32_t predicted = kFullMask;
    if (config_.footprintPredictionEnabled) {
        std::uint64_t fht_mask;
        if (fht_.predict(fhtPc(req.pc), loc.offset, fht_mask))
            predicted = static_cast<std::uint32_t>(fht_mask);
    }
    predicted |= bit;

    if (config_.singletonEnabled && !promoted && predicted == bit &&
        config_.footprintPredictionEnabled) {
        ++stats_.singletonBypasses;
        const Addr addr = blockAddrOf(loc.page, loc.offset);
        result.doneAt =
            offchip_->addrAccess(addr, kBlockBytes, false, tag_done)
                .completion;
        ++stats_.offchipDemandBlocks;
        singletons_.insert(loc.page, fhtPc(req.pc), loc.offset,
                           loc.offset);
        return result;
    }

    const int victim = pickVictim(loc.set);
    const std::size_t idx = setBase(loc.set) + victim;
    if (ways_.valid(idx))
        evictPage(loc.set, victim, tag_done);

    // Fetch the footprint: demanded block first (critical), the rest
    // streamed behind it.
    const std::uint32_t fetch_mask = predicted;
    Cycle critical = tag_done;
    Cycle last_done = tag_done;
    std::uint32_t mask = fetch_mask;
    if ((mask & bit) != 0) {
        critical = offchip_
                       ->addrAccess(blockAddrOf(loc.page, loc.offset),
                                    kBlockBytes, false, tag_done)
                       .completion;
        last_done = critical;
        mask &= ~bit;
    }
    while (mask != 0) {
        const std::uint32_t off = static_cast<std::uint32_t>(
            std::countr_zero(mask));
        mask &= mask - 1;
        const Cycle done =
            offchip_
                ->addrAccess(blockAddrOf(loc.page, off), kBlockBytes,
                             false, tag_done)
                .completion;
        last_done = std::max(last_done, done);
    }

    stacked_->rowAccess(geometry_.dataRowOfWay(loc.set, victim),
                        popCount(fetch_mask) * kBlockBytes, true,
                        last_done);

    ways_.tagv[idx] = PageWaySoa::kValid | loc.tag;
    ways_.cold[idx].pcHash = static_cast<std::uint32_t>(fhtPc(req.pc));
    ways_.cold[idx].trigger = static_cast<std::uint8_t>(loc.offset);
    ways_.cold[idx].predicted = predicted;
    ways_.hot[idx].fetched = fetch_mask;
    ways_.hot[idx].touched = bit;
    ways_.hot[idx].dirty = 0;
    ways_.hot[idx].lastUse = ++useCounter_;
    ways_.cold[idx].gen = statsGen_;

    ++stats_.offchipDemandBlocks;
    stats_.offchipPrefetchBlocks += popCount(fetch_mask) - 1;
    result.doneAt = critical;
    return result;
}

bool
FootprintCache::pagePresent(Addr addr) const
{
    const Location loc = locate(addr);
    return findWay(loc.set, loc.tag) >= 0;
}

bool
FootprintCache::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways_.hot[setBase(loc.set) + way].fetched &
            (1u << loc.offset)) != 0;
}

bool
FootprintCache::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways_.hot[setBase(loc.set) + way].dirty &
            (1u << loc.offset)) != 0;
}


// --------------------------------------------------- registry entry

DesignInfo
footprintDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::Footprint;
    info.id = "footprint";
    info.name = "Footprint Cache";
    info.shortName = "Footprint";
    info.summary = "page-based, 32-way, SRAM tag array that grows with "
                   "capacity (Jevdjic et al., ISCA'13)";
    info.defaults = FootprintCacheConfig{};
    info.knobs = {
        knobBool<FootprintCacheConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: whole pages)",
            &FootprintCacheConfig::footprintPredictionEnabled),
        knobBool<FootprintCacheConfig>(
            "singletonPrediction",
            "bypass pages predicted to be singletons",
            &FootprintCacheConfig::singletonEnabled),
        knobUInt<FootprintCacheConfig>(
            "tagLatency",
            "SRAM tag latency override in cycles (0 = Table IV)",
            &FootprintCacheConfig::tagLatencyOverride, 0, 1000),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    DramModule *offchip) -> std::unique_ptr<DramCache> {
        FootprintCacheConfig cfg = std::get<FootprintCacheConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        return std::make_unique<FootprintCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
