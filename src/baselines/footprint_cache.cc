#include "baselines/footprint_cache.hh"

#include "sim/design_registry.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

FootprintCache::FootprintCache(const FootprintCacheConfig &config,
                               MemoryBackend *offchip)
    : DramCache(offchip, DramCacheKind::Footprint),
      config_(config),
      geometry_(FootprintGeometry::compute(config.capacityBytes)),
      tagLatency_(config.tagLatencyOverride != 0
                      ? config.tagLatencyOverride
                      : geometry_.tagLatency),
      stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming)),
      fetchPolicy_([&] {
          FootprintFetchPolicy::Config c;
          c.fht = config.fhtConfig;
          c.fht.maxBlocksPerPage = 32;
          c.singleton = config.singletonConfig;
          c.footprintPrediction = config.footprintPredictionEnabled;
          c.singletonBypass = config.singletonEnabled;
          return c;
      }())
{
    UNISON_ASSERT(offchip != nullptr,
                  "Footprint Cache needs a memory pool");
    org_.init(geometry_.pageBlocks, geometry_.numSets, geometry_.assoc);
    fill_.init(offchip, &stats_);
    writeback_.init(offchip, &stats_);
}

void
FootprintCache::resetStats()
{
    DramCache::resetStats();
    ++statsGen_;
    fetchPolicy_.resetStats();
}

void
FootprintCache::evictPage(std::uint64_t set, int way, Cycle when)
{
    const std::size_t idx = setBase(set) + way;
    const std::uint64_t page =
        org_.pageOf(set, static_cast<std::uint32_t>(way));
    evictPageWay(
        ways(), idx, writeback_, *stacked_,
        geometry_.dataRowOfWay(set, static_cast<std::uint32_t>(way)),
        [&](std::uint32_t off) { return blockAddrOf(page, off); }, when,
        fetchPolicy_, stats_, statsGen_);
}

DramCacheResult
FootprintCache::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    if (req.isWrite)
        ++stats_.writes;
    else
        ++stats_.reads;

    // Every access pays the SRAM tag-array latency first (Table IV).
    const Cycle tag_done = req.cycle + tagLatency_;
    const int way = findWay(loc.set, loc.tag);
    const std::uint32_t bit = 1u << loc.offset;

    DramCacheResult result;

    if (way >= 0) {
        const std::size_t idx = setBase(loc.set) + way;
        const std::uint64_t data_row =
            geometry_.dataRowOfWay(loc.set, way);
        if ((ways().hot[idx].fetched & bit) != 0) {
            // Block hit: SRAM tag, then the DRAM data access
            // (serialized -- Table II's FC hit-latency structure).
            ++stats_.hits;
            ways().hot[idx].touched |= bit;
            if (req.isWrite)
                ways().hot[idx].dirty |= bit;
            ways().hot[idx].lastUse = ++useCounter_;
            result.hit = true;
            result.doneAt =
                stacked_
                    ->rowAccess(data_row, kBlockBytes, req.isWrite,
                                tag_done)
                    .completion;
            return result;
        }
        // Underprediction: the SRAM tags identify the miss at SRAM
        // speed; fetch only the missing block.
        ++stats_.misses;
        ++stats_.blockMisses;
        ways().hot[idx].lastUse = ++useCounter_;
        result.hit = false;
        if (req.isWrite) {
            ways().hot[idx].fetched |= bit;
            ways().hot[idx].touched |= bit;
            ways().hot[idx].dirty |= bit;
            result.doneAt =
                stacked_->rowAccess(data_row, kBlockBytes, true, tag_done)
                    .completion;
            return result;
        }
        const Cycle mem_done = fill_.demandBlock(req.addr, tag_done);
        ways().hot[idx].fetched |= bit;
        ways().hot[idx].touched |= bit;
        stacked_->rowAccess(data_row, kBlockBytes, true, mem_done);
        result.doneAt = mem_done;
        return result;
    }

    // Trigger miss.
    ++stats_.misses;
    ++stats_.pageMisses;
    result.hit = false;

    if (req.isWrite) {
        // Write-no-allocate: L2 writebacks to non-resident pages go
        // straight to memory (see the Unison Cache rationale).
        result.doneAt = writeback_.writeBlock(
            blockAddrOf(loc.page, loc.offset), tag_done);
        return result;
    }

    // Footprint prediction (and singleton promotion) for the trigger.
    const FetchDecision decision = fetchPolicy_.onTriggerMiss(
        loc.page, req.pc, loc.offset, 0xffffffffu);

    if (decision.bypassSingleton) {
        ++stats_.singletonBypasses;
        result.doneAt = fill_.demandBlock(
            blockAddrOf(loc.page, loc.offset), tag_done);
        fetchPolicy_.noteBypass(loc.page, req.pc, loc.offset);
        return result;
    }

    const int victim = org_.pickVictim(loc.set);
    const std::size_t idx = setBase(loc.set) + victim;
    if (ways().valid(idx))
        evictPage(loc.set, victim, tag_done);

    // Fetch the footprint: demanded block first (critical), the rest
    // streamed behind it.
    const std::uint32_t fetch_mask = decision.mask;
    const FillEngine::FootprintFetch fetch = fill_.fetchFootprint(
        [&](std::uint32_t off) { return blockAddrOf(loc.page, off); },
        fetch_mask, loc.offset, tag_done, tag_done);

    stacked_->rowAccess(geometry_.dataRowOfWay(loc.set, victim),
                        popCount(fetch_mask) * kBlockBytes, true,
                        fetch.lastDone);

    ways().install(idx,
                   {loc.tag,
                    static_cast<std::uint32_t>(fhtPc(req.pc)),
                    static_cast<std::uint8_t>(loc.offset),
                    decision.mask, fetch_mask, bit, ++useCounter_,
                    statsGen_});

    result.doneAt = fetch.critical;
    return result;
}

bool
FootprintCache::pagePresent(Addr addr) const
{
    const Location loc = locate(addr);
    return findWay(loc.set, loc.tag) >= 0;
}

bool
FootprintCache::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways().hot[setBase(loc.set) + way].fetched &
            (1u << loc.offset)) != 0;
}

bool
FootprintCache::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    const int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    return (ways().hot[setBase(loc.set) + way].dirty &
            (1u << loc.offset)) != 0;
}


// --------------------------------------------------- registry entry

DesignInfo
footprintDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::Footprint;
    info.id = "footprint";
    info.name = "Footprint Cache";
    info.shortName = "Footprint";
    info.summary = "page-based, 32-way, SRAM tag array that grows with "
                   "capacity (Jevdjic et al., ISCA'13)";
    info.defaults = FootprintCacheConfig{};
    info.knobs = {
        knobBool<FootprintCacheConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: whole pages)",
            &FootprintCacheConfig::footprintPredictionEnabled),
        knobBool<FootprintCacheConfig>(
            "singletonPrediction",
            "bypass pages predicted to be singletons",
            &FootprintCacheConfig::singletonEnabled),
        knobUInt<FootprintCacheConfig>(
            "tagLatency",
            "SRAM tag latency override in cycles (0 = Table IV)",
            &FootprintCacheConfig::tagLatencyOverride, 0, 1000),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        FootprintCacheConfig cfg = std::get<FootprintCacheConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        return std::make_unique<FootprintCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
