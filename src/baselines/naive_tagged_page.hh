/**
 * @file
 * "Page-based cache with tagged blocks" -- the second naive
 * combination of Footprint Cache and Alloy Cache that Sec. III-B.2 of
 * the paper analyzes (Fig. 4b) and rejects. Implemented as an ablation
 * baseline so the benches can measure the costs the paper predicts.
 *
 * The organization keeps Footprint Cache's page-granularity allocation
 * and footprint prediction, but stores each block *alloyed* with its
 * own 8 B tag (a 72 B TAD), so a hit streams tag and data in a single
 * DRAM access like Alloy Cache. The page's (PC, offset) trigger word
 * sits at a fixed position at the head of the page's row segment, so
 * trigger misses are detectable without a scan. The costs, exactly as
 * the paper lists them:
 *
 *  - tag replication: 8 B of tag for every 64 B block cuts the data
 *    capacity by 1/9 (28-block pages instead of FC's 32-block pages in
 *    the same footprint), raising the miss ratio;
 *  - page insertion must (re)write the tag word and reset the valid
 *    bit of *every* TAD in the page, including blocks the footprint
 *    does not fetch -- one extra DRAM tag write per non-footprint
 *    block (`extraTagWrites`);
 *  - page eviction has no footprint-summary lookup: the page's TAD
 *    headers must all be read back to discover which blocks are valid
 *    and dirty (`evictionScans`, `scanBytes`).
 */

#ifndef UNISON_BASELINES_NAIVE_TAGGED_PAGE_HH
#define UNISON_BASELINES_NAIVE_TAGGED_PAGE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/organization.hh"
#include "cache/page_set.hh"
#include "common/fastdiv.hh"
#include "core/dram_cache.hh"
#include "core/fill_engine.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"
#include "predictors/fetch_policy.hh"

namespace unison {

/** Configuration of the Fig. 4b rejected design. */
struct NaiveTaggedPageConfig
{
    std::uint64_t capacityBytes = 1_GiB;

    /** Fetch predicted footprints (false: whole pages). */
    bool footprintPredictionEnabled = true;

    FootprintTableConfig fhtConfig{};

    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

/** Derived layout for the tagged-page organization. */
struct NaiveTaggedPageGeometry
{
    std::uint64_t capacityBytes = 0;
    /** 28 x 72 B TADs + 8 B (PC, offset) word = 2024 B per page slot;
     *  four slots per 8 KB row (with 96 B of row padding). */
    std::uint32_t pageBlocks = 28;
    std::uint32_t tadBytes = 72;
    std::uint32_t pagesPerRow = 4;
    std::uint64_t numRows = 0;
    std::uint64_t numFrames = 0;    //!< direct-mapped page frames
    std::uint64_t dataBlocks = 0;   //!< payload capacity in blocks
    std::uint64_t inDramTagBytes = 0;

    /** Invariant-divisor helpers for the per-access mapping. */
    FastDiv64 pageBlocksDiv;
    FastDiv64 numFramesDiv;
    FastDiv64 pagesPerRowDiv;

    static NaiveTaggedPageGeometry compute(std::uint64_t capacity_bytes);

    std::uint64_t
    rowOfFrame(std::uint64_t frame) const
    {
        return pagesPerRowDiv.div(frame);
    }
};

/** The insertion-write and eviction-scan pathologies of Sec. III-B.2. */
#define UNISON_NAIVE_TAGGED_PAGE_STATS_FIELDS(X)                        \
    X(Counter, extraTagWrites) /* tag resets for unfetched blocks */    \
    X(Counter, evictionScans)  /* full page-header scans at evict */    \
    X(Counter, scanBytes)      /* stacked bytes those scans read */

struct NaiveTaggedPageStats
{
    UNISON_STAT_STRUCT_BODY(UNISON_NAIVE_TAGGED_PAGE_STATS_FIELDS)
};

/** Page-based cache whose blocks each carry their own tag (the
 *  Sec. III-B.2 straw man). */
class NaiveTaggedPageCache final : public DramCache
{
  public:
    NaiveTaggedPageCache(const NaiveTaggedPageConfig &config,
                         MemoryBackend *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override { return "NaiveTaggedPage"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const NaiveTaggedPageConfig &config() const { return config_; }
    const NaiveTaggedPageGeometry &geometry() const { return geometry_; }
    const NaiveTaggedPageStats &naiveStats() const { return naiveStats_; }
    const FootprintHistoryTable &footprintTable() const
    {
        return fetchPolicy_.footprintTable();
    }

    /** @name Test hooks */
    /**@{*/
    bool pagePresent(Addr addr) const;
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;
    /**@}*/

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        org_.saveState(out);
        stacked_->saveState(out);
        fetchPolicy_.saveState(out);
        out.pod(statsGen_);
    }

    void
    loadState(StateReader &in) override
    {
        org_.loadState(in);
        stacked_->loadState(in);
        fetchPolicy_.loadState(in);
        in.pod(statsGen_);
    }

  private:
    using Location = PageLocation; //!< set == direct-mapped frame

    Location locate(Addr addr) const { return org_.locate(addr); }

    PageWaySoa &frames() { return org_.ways(); }
    const PageWaySoa &frames() const { return org_.ways(); }

    /** Evict the resident page of `frame`: header scan, writebacks,
     *  FHT training. */
    void evictFrame(std::uint64_t frame, Cycle when);

    Addr
    blockAddrOf(std::uint64_t page, std::uint32_t offset) const
    {
        return blockAddress(page * geometry_.pageBlocks + offset);
    }

    std::uint32_t
    fullMask() const
    {
        return (1u << geometry_.pageBlocks) - 1;
    }

    NaiveTaggedPageConfig config_;
    NaiveTaggedPageGeometry geometry_;
    std::unique_ptr<MemoryBackend> stacked_;
    FootprintFetchPolicy fetchPolicy_;
    /** CacheOrganization: direct-mapped page frames (assoc-1 sets of
     *  the shared page-way SoA with an unused LRU column). */
    PageOrganization org_;
    FillEngine fill_;
    WritebackEngine writeback_;
    NaiveTaggedPageStats naiveStats_;
    std::uint8_t statsGen_ = 0;
};

} // namespace unison

#endif // UNISON_BASELINES_NAIVE_TAGGED_PAGE_HH
