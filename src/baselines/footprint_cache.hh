/**
 * @file
 * Footprint Cache baseline (Jevdjic et al., ISCA 2013; Sec. II-B and
 * IV-C.2 of the Unison paper).
 *
 * A page-based stacked-DRAM cache with *SRAM* tags, expressed as a
 * composition over the policy framework: PageOrganization (2 KB
 * pages, 32-way sets) + FootprintFetchPolicy (the same footprint
 * predictor and singleton machinery as Unison Cache) + the shared
 * fill/writeback engines. Every access pays the SRAM tag-array
 * latency (Table IV, 6-48 cycles depending on capacity) before the
 * DRAM data access -- the scalability problem Unison Cache exists to
 * remove. Misses, however, are detected at SRAM speed (FC's
 * miss-latency advantage).
 */

#ifndef UNISON_BASELINES_FOOTPRINT_CACHE_HH
#define UNISON_BASELINES_FOOTPRINT_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/organization.hh"
#include "core/dram_cache.hh"
#include "core/fill_engine.hh"
#include "core/geometry.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"
#include "predictors/fetch_policy.hh"

namespace unison {

struct FootprintCacheConfig
{
    std::uint64_t capacityBytes = 512_MiB;

    /** Fetch predicted footprints (false: whole pages). */
    bool footprintPredictionEnabled = true;
    bool singletonEnabled = true;

    /** 0 uses Table IV's latency for the capacity. */
    Cycle tagLatencyOverride = 0;

    FootprintTableConfig fhtConfig{};
    SingletonTableConfig singletonConfig{};

    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

class FootprintCache final : public DramCache
{
  public:
    FootprintCache(const FootprintCacheConfig &config, MemoryBackend *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override { return "Footprint"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const FootprintCacheConfig &config() const { return config_; }
    const FootprintGeometry &geometry() const { return geometry_; }
    Cycle tagLatency() const { return tagLatency_; }
    const FootprintHistoryTable &footprintTable() const
    {
        return fetchPolicy_.footprintTable();
    }
    const SingletonTable &singletonTable() const
    {
        return fetchPolicy_.singletonTable();
    }

    /** @name Test hooks */
    /**@{*/
    bool pagePresent(Addr addr) const;
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;
    /**@}*/

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        org_.saveState(out);
        stacked_->saveState(out);
        fetchPolicy_.saveState(out);
        out.pod(useCounter_);
        out.pod(statsGen_);
    }

    void
    loadState(StateReader &in) override
    {
        org_.loadState(in);
        stacked_->loadState(in);
        fetchPolicy_.loadState(in);
        in.pod(useCounter_);
        in.pod(statsGen_);
    }

  private:
    using Location = PageLocation;

    Location locate(Addr addr) const { return org_.locate(addr); }

    std::size_t setBase(std::uint64_t set) const
    {
        return org_.setBase(set);
    }
    int
    findWay(std::uint64_t set, std::uint32_t tag) const
    {
        return org_.findWay(set, tag);
    }
    void evictPage(std::uint64_t set, int way, Cycle when);

    PageWaySoa &ways() { return org_.ways(); }
    const PageWaySoa &ways() const { return org_.ways(); }

    Addr
    blockAddrOf(std::uint64_t page, std::uint32_t offset) const
    {
        return blockAddress(page * geometry_.pageBlocks + offset);
    }

    FootprintCacheConfig config_;
    FootprintGeometry geometry_;
    Cycle tagLatency_;
    std::unique_ptr<MemoryBackend> stacked_;
    FootprintFetchPolicy fetchPolicy_;
    /** CacheOrganization: SoA page-way metadata; FC's 32-way sets make
     *  the contiguous packed-tag scan matter most here (256 B vs a
     *  1 KB AoS sweep). */
    PageOrganization org_;
    FillEngine fill_;
    WritebackEngine writeback_;
    std::uint32_t useCounter_ = 0;
    std::uint8_t statsGen_ = 0; //!< see UnisonCacheT::statsGen_
};

} // namespace unison

#endif // UNISON_BASELINES_FOOTPRINT_CACHE_HH
