/**
 * @file
 * Loh-Hill cache (MICRO 2011), the block-based in-DRAM-tag design the
 * paper's Sec. II-A analyzes as Alloy Cache's predecessor.
 *
 * Each 8 KB DRAM row is one large set: the tags of all ways sit at the
 * head of the row and are read *first*; on a match the data block is
 * read with a second, serialized access (scheduled to hit the open
 * row). A multi-MB on-chip "MissMap" tracks block presence so misses
 * can bypass the in-DRAM tag probe -- at the price of adding its
 * lookup latency to every access, hits included. The Unison paper's
 * critique (which this model reproduces): hits pay MissMap + tag-then-
 * data serialization, and the MissMap itself cannot scale to multi-GB
 * caches.
 *
 * The MissMap is modelled as presence bits with a fixed lookup latency
 * and a reported SRAM budget; its capacity-eviction side effects are
 * idealized away (DESIGN.md, substitutions).
 */

#ifndef UNISON_BASELINES_LOHHILL_CACHE_HH
#define UNISON_BASELINES_LOHHILL_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/organization.hh"
#include "common/fastdiv.hh"
#include "core/dram_cache.hh"
#include "core/fill_engine.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"

namespace unison {

struct LohHillConfig
{
    std::uint64_t capacityBytes = 1_GiB;

    /** MissMap lookup latency (multi-MB SRAM; Sec. II-A). */
    Cycle missMapLatency = 24;

    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

/** Row-as-set geometry for the Loh-Hill organization. */
struct LohHillGeometry
{
    std::uint64_t capacityBytes = 0;
    std::uint64_t numRows = 0;     //!< one set per row
    std::uint32_t waysPerSet = 0;  //!< 8 B tag + 64 B data per way
    std::uint32_t tagBytes = 0;    //!< tag region read on every probe
    std::uint64_t inDramTagBytes = 0;
    std::uint64_t missMapBytes = 0; //!< presence bits, 1 per block

    /** Invariant-divisor split of the block index (row-as-set). */
    FastDiv64 numRowsDiv;

    static LohHillGeometry compute(std::uint64_t capacity_bytes);
};

class LohHillCache final : public DramCache
{
  public:
    LohHillCache(const LohHillConfig &config, MemoryBackend *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override { return "LohHill"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }

    const LohHillConfig &config() const { return config_; }
    const LohHillGeometry &geometry() const { return geometry_; }

    /** @name Test hooks */
    /**@{*/
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;
    /**@}*/

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        org_.saveState(out);
        stacked_->saveState(out);
        out.pod(useCounter_);
    }

    void
    loadState(StateReader &in) override
    {
        org_.loadState(in);
        stacked_->loadState(in);
        in.pod(useCounter_);
    }

  private:
    /** Packed way word (the shared set_scan.hh positions). */
    static constexpr std::uint64_t kValid = kWayValidBit;
    static constexpr std::uint64_t kDirty = kWayDirtyBit;
    static constexpr std::uint64_t kTagMask = kWayTagMask;

    void locate(Addr addr, std::uint64_t &set, std::uint32_t &tag) const;

    LohHillConfig config_;
    LohHillGeometry geometry_;
    std::unique_ptr<MemoryBackend> stacked_;
    /** CacheOrganization: SoA way metadata (`set * waysPerSet + way`);
     *  the 113-way row-as-set scan sweeps packed tag words
     *  contiguously instead of pointer-chasing way objects. */
    RowSetOrganization org_;
    FillEngine fill_;
    WritebackEngine writeback_;
    std::uint32_t useCounter_ = 0;
};

} // namespace unison

#endif // UNISON_BASELINES_LOHHILL_CACHE_HH
