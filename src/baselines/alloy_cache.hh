/**
 * @file
 * Alloy Cache baseline (Qureshi & Loh, MICRO 2012; Sec. II-A and
 * IV-C.3 of the Unison paper).
 *
 * A direct-mapped, block-based stacked-DRAM cache that "alloys" each
 * 64 B data block with its 8 B tag into a 72 B TAD unit, streamed in a
 * single DRAM access (112 TADs per 8 KB row). A MAP-I miss predictor
 * moves the in-DRAM tag probe off the critical path on predicted
 * misses: the off-chip fetch is issued immediately and the probe only
 * verifies. Mispredicted hits cost a useless memory fetch; mispredicted
 * misses serialize the probe before the memory access.
 */

#ifndef UNISON_BASELINES_ALLOY_CACHE_HH
#define UNISON_BASELINES_ALLOY_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_scan.hh"
#include "core/dram_cache.hh"
#include "core/geometry.hh"
#include "dram/dram.hh"
#include "dram/timing.hh"
#include "predictors/miss_predictor.hh"

namespace unison {

/** Configuration of the Alloy Cache baseline (Sec. IV-C.3). */
struct AlloyConfig
{
    std::uint64_t capacityBytes = 1_GiB;
    bool missPredictorEnabled = true;
    int numCores = 16;
    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

class AlloyCache final : public DramCache
{
  public:
    AlloyCache(const AlloyConfig &config, DramModule *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override { return "Alloy"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    DramModule *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const AlloyConfig &config() const { return config_; }
    const AlloyGeometry &geometry() const { return geometry_; }
    const MissPredictor *missPredictor() const { return missPred_.get(); }

    /** Test hook: is the block resident? */
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;

  private:
    /** Packed TAD word (the shared set_scan.hh positions). */
    static constexpr std::uint64_t kValid = kWayValidBit;
    static constexpr std::uint64_t kDirty = kWayDirtyBit;
    static constexpr std::uint64_t kTagMask = kWayTagMask;

    void locate(Addr addr, std::uint64_t &tad_idx,
                std::uint32_t &tag) const;

    AlloyConfig config_;
    AlloyGeometry geometry_;
    std::unique_ptr<DramModule> stacked_;
    std::unique_ptr<MissPredictor> missPred_;
    /** One packed word per direct-mapped TAD frame: the whole lookup
     *  is a single 8-byte load and masked compare. */
    std::vector<std::uint64_t> tads_;
};

} // namespace unison

#endif // UNISON_BASELINES_ALLOY_CACHE_HH
