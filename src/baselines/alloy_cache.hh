/**
 * @file
 * Alloy Cache baseline (Qureshi & Loh, MICRO 2012; Sec. II-A and
 * IV-C.3 of the Unison paper).
 *
 * A direct-mapped, block-based stacked-DRAM cache that "alloys" each
 * 64 B data block with its 8 B tag into a 72 B TAD unit, streamed in a
 * single DRAM access (112 TADs per 8 KB row). In framework terms this
 * is DirectOrganization (one packed tag word per TAD frame) with the
 * single-block fetch policy -- no footprint machinery -- plus a MAP-I
 * miss predictor that moves the in-DRAM tag probe off the critical
 * path on predicted misses: the off-chip fetch is issued immediately
 * and the probe only verifies. Mispredicted hits cost a useless memory
 * fetch; mispredicted misses serialize the probe before the memory
 * access.
 */

#ifndef UNISON_BASELINES_ALLOY_CACHE_HH
#define UNISON_BASELINES_ALLOY_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/organization.hh"
#include "core/dram_cache.hh"
#include "core/fill_engine.hh"
#include "core/geometry.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"
#include "predictors/miss_predictor.hh"

namespace unison {

/** Configuration of the Alloy Cache baseline (Sec. IV-C.3). */
struct AlloyConfig
{
    std::uint64_t capacityBytes = 1_GiB;
    bool missPredictorEnabled = true;
    int numCores = 16;
    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

class AlloyCache final : public DramCache
{
  public:
    AlloyCache(const AlloyConfig &config, MemoryBackend *offchip);

    DramCacheResult access(const DramCacheRequest &req) override;

    std::string name() const override { return "Alloy"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }
    void resetStats() override;

    const AlloyConfig &config() const { return config_; }
    const AlloyGeometry &geometry() const { return geometry_; }
    const MissPredictor *missPredictor() const { return missPred_.get(); }

    /** Test hook: is the block resident? */
    bool blockPresent(Addr addr) const;
    bool blockDirty(Addr addr) const;

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        org_.saveState(out);
        stacked_->saveState(out);
        if (missPred_)
            missPred_->saveState(out);
    }

    void
    loadState(StateReader &in) override
    {
        org_.loadState(in);
        stacked_->loadState(in);
        if (missPred_)
            missPred_->loadState(in);
    }

  private:
    /** Packed TAD word (the shared set_scan.hh positions). */
    static constexpr std::uint64_t kValid = kWayValidBit;
    static constexpr std::uint64_t kDirty = kWayDirtyBit;
    static constexpr std::uint64_t kTagMask = kWayTagMask;

    AlloyConfig config_;
    AlloyGeometry geometry_;
    std::unique_ptr<MemoryBackend> stacked_;
    std::unique_ptr<MissPredictor> missPred_;
    /** CacheOrganization: one packed word per direct-mapped TAD frame;
     *  the whole lookup is a single 8-byte load and masked compare. */
    DirectOrganization org_;
    FillEngine fill_;
    WritebackEngine writeback_;
};

} // namespace unison

#endif // UNISON_BASELINES_ALLOY_CACHE_HH
