/**
 * @file
 * The no-DRAM-cache baseline: every L2 miss goes straight to the
 * single off-chip DDR3 channel. This is the denominator of the
 * speedups reported in Figs. 7-8.
 */

#ifndef UNISON_BASELINES_NO_CACHE_HH
#define UNISON_BASELINES_NO_CACHE_HH

#include "core/dram_cache.hh"

namespace unison {

/** No tunables: the baseline is the absence of a cache. Exists so the
 *  design registry's typed-config variant has an alternative per
 *  design. */
struct NoCacheConfig
{
};

/** The speedup denominator: no stacked DRAM at all. */
class NoCache final : public DramCache
{
  public:
    explicit NoCache(MemoryBackend *offchip)
        : DramCache(offchip, DramCacheKind::NoCache)
    {
    }

    DramCacheResult
    access(const DramCacheRequest &req) override
    {
        if (req.isWrite)
            ++stats_.writes;
        else
            ++stats_.reads;
        ++stats_.misses;
        if (req.isWrite)
            ++stats_.offchipWritebackBlocks;
        else
            ++stats_.offchipDemandBlocks;

        DramCacheResult result;
        result.hit = false;
        result.doneAt = offchip_
                            ->addrAccess(req.addr, kBlockBytes,
                                         req.isWrite, req.cycle)
                            .completion;
        return result;
    }

    std::string name() const override { return "NoCache"; }
    std::uint64_t capacityBytes() const override { return 0; }

    /** Stateless (the off-chip pool is checkpointed by the system). */
    bool checkpointable() const override { return true; }
    void saveState(StateWriter &) const override {}
    void loadState(StateReader &) override {}
};

} // namespace unison

#endif // UNISON_BASELINES_NO_CACHE_HH
