#include "baselines/alloy_cache.hh"

#include "sim/design_registry.hh"

#include "common/logging.hh"

namespace unison {

AlloyCache::AlloyCache(const AlloyConfig &config, DramModule *offchip)
    : DramCache(offchip, DramCacheKind::Alloy),
      config_(config),
      geometry_(AlloyGeometry::compute(config.capacityBytes)),
      stacked_(std::make_unique<DramModule>(config.stackedOrg,
                                            config.stackedTiming))
{
    UNISON_ASSERT(offchip != nullptr, "Alloy Cache needs a memory pool");
    if (config_.missPredictorEnabled) {
        MissPredictorConfig mp;
        mp.numCores = config_.numCores;
        missPred_ = std::make_unique<MissPredictor>(mp);
    }
    tads_.assign(geometry_.numTads, 0);
}

void
AlloyCache::resetStats()
{
    DramCache::resetStats();
    if (missPred_)
        missPred_->resetStats();
}

void
AlloyCache::locate(Addr addr, std::uint64_t &tad_idx,
                   std::uint32_t &tag) const
{
    const std::uint64_t block = blockNumber(addr);
    std::uint64_t q;
    geometry_.numTadsDiv.divMod(block, q, tad_idx);
    tag = static_cast<std::uint32_t>(q);
}

DramCacheResult
AlloyCache::access(const DramCacheRequest &req)
{
    std::uint64_t tad_idx;
    std::uint32_t tag;
    locate(req.addr, tad_idx, tag);
    std::uint64_t &tad = tads_[tad_idx];
    const std::uint64_t row = geometry_.rowOfTad(tad_idx);
    const bool hit = (tad & ~kDirty) == (kValid | tag);

    DramCacheResult result;
    result.hit = hit;

    if (req.isWrite) {
        ++stats_.writes;
        // Tag check (8 B read), then the block write to the open row.
        const Cycle tag_done =
            stacked_->rowAccess(row, 8, false, req.cycle).completion;
        if (hit) {
            ++stats_.hits;
            tad |= kDirty;
            result.doneAt =
                stacked_->rowAccess(row, kBlockBytes, true, tag_done)
                    .completion;
            return result;
        }
        // Write-allocate without an off-chip fetch (full-block write).
        ++stats_.misses;
        if ((tad & kValid) != 0) {
            ++stats_.evictions;
            if ((tad & kDirty) != 0) {
                const Cycle victim_read =
                    stacked_->rowAccess(row, kBlockBytes, false, tag_done)
                        .completion;
                const Addr victim_addr = blockAddress(
                    (tad & kTagMask) * geometry_.numTads + tad_idx);
                offchip_->addrAccess(victim_addr, kBlockBytes, true,
                                     victim_read);
                ++stats_.offchipWritebackBlocks;
            }
        }
        tad = kValid | kDirty | tag;
        result.doneAt =
            stacked_->rowAccess(row, geometry_.tadBytes, true, tag_done)
                .completion;
        return result;
    }

    ++stats_.reads;

    bool predicted_hit = true;
    Cycle start = req.cycle;
    if (missPred_) {
        predicted_hit = missPred_->predictHit(req.core, req.pc);
        start += missPred_->config().latency;
        missPred_->train(req.core, req.pc, predicted_hit, hit);
    }

    if (predicted_hit) {
        // Probe first: one TAD streamed out in a single access.
        const Cycle tad_done =
            stacked_->rowAccess(row, geometry_.tadBytes, false, start)
                .completion;
        if (hit) {
            ++stats_.hits;
            result.doneAt = tad_done;
            return result;
        }
        // Predicted hit, actual miss: memory access is serialized
        // behind the in-DRAM tag probe (the AC miss penalty).
        ++stats_.misses;
        const Cycle mem_done =
            offchip_->addrAccess(req.addr, kBlockBytes, false, tad_done)
                .completion;
        ++stats_.offchipDemandBlocks;
        result.doneAt = mem_done;
    } else {
        // Predicted miss: fetch from memory immediately; the probe
        // only verifies (issued in parallel).
        const Cycle tad_done =
            stacked_->rowAccess(row, geometry_.tadBytes, false, start)
                .completion;
        if (hit) {
            // Useless memory fetch for a block we already have.
            ++stats_.hits;
            offchip_->addrAccess(req.addr, kBlockBytes, false, start);
            ++stats_.offchipWastedBlocks;
            result.doneAt = tad_done;
            return result;
        }
        ++stats_.misses;
        const Cycle mem_done =
            offchip_->addrAccess(req.addr, kBlockBytes, false, start)
                .completion;
        ++stats_.offchipDemandBlocks;
        result.doneAt = std::max(mem_done, Cycle(0));
    }

    // Allocate the fetched block (evicting the direct-mapped victim).
    if ((tad & kValid) != 0) {
        ++stats_.evictions;
        if ((tad & kDirty) != 0) {
            // The victim's data arrived with the probe; write it back.
            const Addr victim_addr = blockAddress(
                (tad & kTagMask) * geometry_.numTads + tad_idx);
            offchip_->addrAccess(victim_addr, kBlockBytes, true,
                                 result.doneAt);
            ++stats_.offchipWritebackBlocks;
        }
    }
    tad = kValid | tag;
    stacked_->rowAccess(row, geometry_.tadBytes, true, result.doneAt);
    return result;
}

bool
AlloyCache::blockPresent(Addr addr) const
{
    std::uint64_t tad_idx;
    std::uint32_t tag;
    locate(addr, tad_idx, tag);
    return (tads_[tad_idx] & ~kDirty) == (kValid | tag);
}

bool
AlloyCache::blockDirty(Addr addr) const
{
    std::uint64_t tad_idx;
    std::uint32_t tag;
    locate(addr, tad_idx, tag);
    return tads_[tad_idx] == (kValid | kDirty | tag);
}


// --------------------------------------------------- registry entry

DesignInfo
alloyDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::Alloy;
    info.id = "alloy";
    info.name = "Alloy Cache";
    info.shortName = "Alloy";
    info.summary = "direct-mapped block cache, 72B tag-and-data units, "
                   "MAP-I miss predictor (Qureshi & Loh)";
    info.defaults = AlloyConfig{};
    info.knobs = {
        knobBool<AlloyConfig>(
            "missPredictor",
            "MAP-I miss predictor (false: always probe first)",
            &AlloyConfig::missPredictorEnabled),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    DramModule *offchip) -> std::unique_ptr<DramCache> {
        AlloyConfig cfg = std::get<AlloyConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.numCores = ctx.numCores;
        return std::make_unique<AlloyCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
