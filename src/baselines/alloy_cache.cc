#include "baselines/alloy_cache.hh"

#include "sim/design_registry.hh"

#include "common/logging.hh"

namespace unison {

AlloyCache::AlloyCache(const AlloyConfig &config, MemoryBackend *offchip)
    : DramCache(offchip, DramCacheKind::Alloy),
      config_(config),
      geometry_(AlloyGeometry::compute(config.capacityBytes)),
      stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming))
{
    UNISON_ASSERT(offchip != nullptr, "Alloy Cache needs a memory pool");
    if (config_.missPredictorEnabled) {
        MissPredictorConfig mp;
        mp.numCores = config_.numCores;
        missPred_ = std::make_unique<MissPredictor>(mp);
    }
    org_.init(geometry_.numTads);
    fill_.init(offchip, &stats_);
    writeback_.init(offchip, &stats_);
}

void
AlloyCache::resetStats()
{
    DramCache::resetStats();
    if (missPred_)
        missPred_->resetStats();
}

DramCacheResult
AlloyCache::access(const DramCacheRequest &req)
{
    std::uint64_t tad_idx;
    std::uint32_t tag;
    org_.locate(blockNumber(req.addr), tad_idx, tag);
    std::uint64_t &tad = org_.word(tad_idx);
    const std::uint64_t row = geometry_.rowOfTad(tad_idx);
    const bool hit = (tad & ~kDirty) == (kValid | tag);

    DramCacheResult result;
    result.hit = hit;

    if (req.isWrite) {
        ++stats_.writes;
        // Tag check (8 B read), then the block write to the open row.
        const Cycle tag_done =
            stacked_->rowAccess(row, 8, false, req.cycle).completion;
        if (hit) {
            ++stats_.hits;
            tad |= kDirty;
            result.doneAt =
                stacked_->rowAccess(row, kBlockBytes, true, tag_done)
                    .completion;
            return result;
        }
        // Write-allocate without an off-chip fetch (full-block write).
        ++stats_.misses;
        if ((tad & kValid) != 0) {
            ++stats_.evictions;
            if ((tad & kDirty) != 0) {
                const Cycle victim_read =
                    stacked_->rowAccess(row, kBlockBytes, false, tag_done)
                        .completion;
                writeback_.writeBlock(
                    blockAddress(org_.blockOf(tad_idx)), victim_read);
            }
        }
        tad = kValid | kDirty | tag;
        result.doneAt =
            stacked_->rowAccess(row, geometry_.tadBytes, true, tag_done)
                .completion;
        return result;
    }

    ++stats_.reads;

    bool predicted_hit = true;
    Cycle start = req.cycle;
    if (missPred_) {
        predicted_hit = missPred_->predictHit(req.core, req.pc);
        start += missPred_->config().latency;
        missPred_->train(req.core, req.pc, predicted_hit, hit);
    }

    if (predicted_hit) {
        // Probe first: one TAD streamed out in a single access.
        const Cycle tad_done =
            stacked_->rowAccess(row, geometry_.tadBytes, false, start)
                .completion;
        if (hit) {
            ++stats_.hits;
            result.doneAt = tad_done;
            return result;
        }
        // Predicted hit, actual miss: memory access is serialized
        // behind the in-DRAM tag probe (the AC miss penalty).
        ++stats_.misses;
        result.doneAt = fill_.demandBlock(req.addr, tad_done);
    } else {
        // Predicted miss: fetch from memory immediately; the probe
        // only verifies (issued in parallel).
        const Cycle tad_done =
            stacked_->rowAccess(row, geometry_.tadBytes, false, start)
                .completion;
        if (hit) {
            // Useless memory fetch for a block we already have.
            ++stats_.hits;
            fill_.wastedBlock(req.addr, start);
            result.doneAt = tad_done;
            return result;
        }
        ++stats_.misses;
        const Cycle mem_done = fill_.demandBlock(req.addr, start);
        result.doneAt = std::max(mem_done, Cycle(0));
    }

    // Allocate the fetched block (evicting the direct-mapped victim).
    if ((tad & kValid) != 0) {
        ++stats_.evictions;
        if ((tad & kDirty) != 0) {
            // The victim's data arrived with the probe; write it back.
            writeback_.writeBlock(blockAddress(org_.blockOf(tad_idx)),
                                  result.doneAt);
        }
    }
    tad = kValid | tag;
    stacked_->rowAccess(row, geometry_.tadBytes, true, result.doneAt);
    return result;
}

bool
AlloyCache::blockPresent(Addr addr) const
{
    std::uint64_t tad_idx;
    std::uint32_t tag;
    org_.locate(blockNumber(addr), tad_idx, tag);
    return org_.present(tad_idx, tag);
}

bool
AlloyCache::blockDirty(Addr addr) const
{
    std::uint64_t tad_idx;
    std::uint32_t tag;
    org_.locate(blockNumber(addr), tad_idx, tag);
    return org_.word(tad_idx) == (kValid | kDirty | tag);
}


// --------------------------------------------------- registry entry

DesignInfo
alloyDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::Alloy;
    info.id = "alloy";
    info.name = "Alloy Cache";
    info.shortName = "Alloy";
    info.summary = "direct-mapped block cache, 72B tag-and-data units, "
                   "MAP-I miss predictor (Qureshi & Loh)";
    info.defaults = AlloyConfig{};
    info.knobs = {
        knobBool<AlloyConfig>(
            "missPredictor",
            "MAP-I miss predictor (false: always probe first)",
            &AlloyConfig::missPredictorEnabled),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        AlloyConfig cfg = std::get<AlloyConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        cfg.numCores = ctx.numCores;
        return std::make_unique<AlloyCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
