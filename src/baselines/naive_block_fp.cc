#include "baselines/naive_block_fp.hh"

#include "sim/design_registry.hh"

#include <algorithm>
#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

NaiveBlockFpCache::NaiveBlockFpCache(const NaiveBlockFpConfig &config,
                                     MemoryBackend *offchip)
    : DramCache(offchip, DramCacheKind::NaiveBlockFp),
      config_(config),
      geometry_(AlloyGeometry::compute(config.capacityBytes)),
      pageDiv_(config.pageBlocks),
      stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming)),
      fetchPolicy_([&] {
          FootprintFetchPolicy::Config c;
          c.fht = config.fhtConfig;
          c.fht.maxBlocksPerPage = config.pageBlocks;
          c.footprintPrediction = config.footprintPredictionEnabled;
          c.singletonBypass = false;
          // Disabling prediction degenerates to Alloy Cache: fetch
          // only the demanded block, not the whole logical page.
          c.wholePageWhenDisabled = false;
          return c;
      }())
{
    UNISON_ASSERT(offchip != nullptr,
                  "NaiveBlockFP cache needs a memory pool");
    UNISON_ASSERT(std::has_single_bit(config_.pageBlocks),
                  "logical page size must be a power of two");
    UNISON_ASSERT(config_.pageBlocks <= 32,
                  "footprint masks hold at most 32 blocks");
    org_.init(geometry_.numTads);
    fill_.init(offchip, &stats_);
    writeback_.init(offchip, &stats_);
}

void
NaiveBlockFpCache::resetStats()
{
    DramCache::resetStats();
    naiveStats_.reset();
    fetchPolicy_.resetStats();
}

NaiveBlockFpCache::Location
NaiveBlockFpCache::locate(Addr addr) const
{
    Location loc;
    loc.block = blockNumber(addr);
    std::uint64_t off;
    pageDiv_.divMod(loc.block, loc.page, off);
    loc.offset = static_cast<std::uint32_t>(off);
    org_.locate(loc.block, loc.tadIdx, loc.tag);
    return loc;
}

Cycle
NaiveBlockFpCache::chargeRowScan(std::uint64_t row, Cycle start)
{
    // All the TAD tags in the row: 112 x 8 B. The row is typically
    // already open (the probe just touched it), so the cost is mostly
    // bus occupancy -- exactly the availability loss Sec. III-B.1
    // describes.
    const std::uint32_t bytes = geometry_.tadsPerRow * 8;
    ++naiveStats_.rowScans;
    naiveStats_.scanBytes += bytes;
    return stacked_->rowAccess(row, bytes, false, start).completion;
}

void
NaiveBlockFpCache::noteBlockEvicted(std::uint64_t page,
                                    std::uint32_t offset, Cycle when)
{
    PageGroupTracker::PageInfo info;
    if (!pages_.removeBlock(page, offset, info))
        return;

    // Last block of the page left the cache: the hardware would have
    // to reconstruct the footprint by scanning the rows that held the
    // page's blocks. The page's TAD slots are consecutive, so one scan
    // of the covering row is charged.
    const std::uint64_t first_tad =
        (page * config_.pageBlocks) % geometry_.numTads;
    chargeRowScan(geometry_.rowOfTad(first_tad), when);

    if (info.touchedMask != 0)
        fetchPolicy_.trainEviction(info.pcHash, info.triggerOffset,
                                   info.touchedMask);

    accountFootprint(stats_, info.fetchedMask, info.touchedMask,
                     info.fetchedMask);
}

void
NaiveBlockFpCache::installBlock(const Location &loc, bool dirty,
                                Cycle when)
{
    std::uint64_t &tad = org_.word(loc.tadIdx);
    if ((tad & kValid) != 0 && (tad & kTagMask) != loc.tag) {
        ++stats_.evictions;
        ++naiveStats_.conflictFills;
        const std::uint64_t victim_block = org_.blockOf(loc.tadIdx);
        if ((tad & kDirty) != 0) {
            const Cycle read_done =
                stacked_
                    ->rowAccess(geometry_.rowOfTad(loc.tadIdx),
                                kBlockBytes, false, when)
                    .completion;
            writeback_.writeBlock(blockAddr(victim_block), read_done);
        }
        const std::uint64_t victim_page =
            victim_block / config_.pageBlocks;
        PageGroupTracker::PageInfo *victim_info =
            pages_.find(victim_page);
        if (victim_info != nullptr &&
            popCount(victim_info->residentMask) > 1) {
            // The victim page still had other live blocks: its
            // footprint is being truncated mid-residency (Fig. 4a's
            // overlap conflict).
            ++naiveStats_.prematureEvictions;
        }
        noteBlockEvicted(
            victim_page,
            static_cast<std::uint32_t>(victim_block %
                                       config_.pageBlocks),
            when);
    }
    tad = kValid | (dirty ? kDirty : 0) | loc.tag;
    stacked_->rowAccess(geometry_.rowOfTad(loc.tadIdx),
                        geometry_.tadBytes, true, when);
}

DramCacheResult
NaiveBlockFpCache::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    std::uint64_t &tad = org_.word(loc.tadIdx);
    const std::uint64_t row = geometry_.rowOfTad(loc.tadIdx);
    const bool hit = (tad & ~kDirty) == (kValid | loc.tag);
    const std::uint32_t bit = 1u << loc.offset;

    DramCacheResult result;
    result.hit = hit;

    if (req.isWrite) {
        ++stats_.writes;
        const Cycle tag_done =
            stacked_->rowAccess(row, 8, false, req.cycle).completion;
        if (hit) {
            ++stats_.hits;
            tad |= kDirty;
            if (PageGroupTracker::PageInfo *info =
                    pages_.find(loc.page)) {
                info->touchedMask |= bit;
                info->fetchedMask |= bit;
            }
            result.doneAt =
                stacked_->rowAccess(row, kBlockBytes, true, tag_done)
                    .completion;
            return result;
        }
        // Write-no-allocate for non-resident blocks: allocating from a
        // write would train footprints with writeback PCs (the same
        // rationale as the page-based designs).
        ++stats_.misses;
        result.doneAt = writeback_.writeBlock(req.addr, req.cycle);
        return result;
    }

    ++stats_.reads;

    // The probe: one TAD streamed out, as in Alloy Cache.
    const Cycle tad_done =
        stacked_->rowAccess(row, geometry_.tadBytes, false, req.cycle)
            .completion;

    if (hit) {
        ++stats_.hits;
        if (PageGroupTracker::PageInfo *info = pages_.find(loc.page))
            info->touchedMask |= bit;
        result.doneAt = tad_done;
        return result;
    }

    ++stats_.misses;

    // Sec. III-B.1: with presence information spread over the row,
    // distinguishing a trigger miss from an underprediction requires
    // scanning every TAD tag in the row.
    const Cycle scan_done = chargeRowScan(row, tad_done);

    const bool trigger = !pages_.tracked(loc.page);

    if (!trigger) {
        // Some blocks of the page are resident: fetch just this block.
        ++stats_.blockMisses;
        const Cycle mem_done = fill_.demandBlock(req.addr, scan_done);
        installBlock(loc, false, mem_done);
        // installBlock may have displaced this very page's tracking if
        // the victim was a sibling; re-find before updating.
        if (PageGroupTracker::PageInfo *info = pages_.find(loc.page)) {
            info->fetchedMask |= bit;
            info->touchedMask |= bit;
            info->residentMask |= bit;
        }
        result.doneAt = mem_done;
        return result;
    }

    // Trigger miss: predict the footprint and fetch it.
    ++stats_.pageMisses;
    const FetchDecision decision = fetchPolicy_.onTriggerMiss(
        loc.page, req.pc, loc.offset, fullBlockMask(config_.pageBlocks));
    const std::uint32_t predicted = decision.mask;

    // Critical (demanded) block first, the rest streamed behind it.
    const Cycle critical = fill_.demandBlock(req.addr, scan_done);

    PageGroupTracker::PageInfo info;
    info.pcHash = static_cast<std::uint32_t>(fhtPc(req.pc));
    info.triggerOffset = static_cast<std::uint8_t>(loc.offset);
    info.fetchedMask = bit;
    info.touchedMask = bit;
    info.residentMask = bit;
    pages_.insert(loc.page, info);
    naiveStats_.pageInfoPeak =
        std::max<std::uint64_t>(naiveStats_.pageInfoPeak, pages_.size());

    installBlock(loc, false, critical);
    if (PageGroupTracker::PageInfo *self = pages_.find(loc.page))
        self->residentMask |= bit;

    std::uint32_t rest = predicted & ~bit;
    const std::uint64_t page_first_block = loc.page * config_.pageBlocks;
    while (rest != 0) {
        const std::uint32_t off =
            static_cast<std::uint32_t>(std::countr_zero(rest));
        rest &= rest - 1;
        Location fl = locate(blockAddr(page_first_block + off));
        const Cycle done =
            fill_.prefetchBlock(blockAddr(fl.block), scan_done);
        installBlock(fl, false, done);
        PageGroupTracker::PageInfo *self = pages_.find(loc.page);
        if (self == nullptr)
            break; // a sibling fill conflicted this page away entirely
        self->fetchedMask |= 1u << off;
        self->residentMask |= 1u << off;
    }

    result.doneAt = critical;
    return result;
}

bool
NaiveBlockFpCache::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    return org_.present(loc.tadIdx, loc.tag);
}

bool
NaiveBlockFpCache::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    return org_.word(loc.tadIdx) == (kValid | kDirty | loc.tag);
}

bool
NaiveBlockFpCache::pageTracked(Addr addr) const
{
    return pages_.tracked(locate(addr).page);
}


// --------------------------------------------------- registry entry

DesignInfo
naiveBlockFpDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::NaiveBlockFp;
    info.id = "naiveblockfp";
    info.name = "Naive block+FP";
    info.shortName = "Block+FP";
    info.summary = "rejected Sec. III-B.1 splice: block-based array "
                   "with footprint prediction (row scans on misses)";
    info.defaults = NaiveBlockFpConfig{};
    info.knobs = {
        knobBool<NaiveBlockFpConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: degenerates to Alloy)",
            &NaiveBlockFpConfig::footprintPredictionEnabled),
        knobUInt<NaiveBlockFpConfig>(
            "pageBlocks", "blocks per logical page (power of two)",
            &NaiveBlockFpConfig::pageBlocks, 1, 64),
    };
    info.validate = [](const DesignVariant &v,
                       const DesignBuildContext &) -> std::string {
        const NaiveBlockFpConfig &c = std::get<NaiveBlockFpConfig>(v);
        if ((c.pageBlocks & (c.pageBlocks - 1)) != 0)
            return "pageBlocks must be a power of two, got " +
                   std::to_string(c.pageBlocks);
        return "";
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        NaiveBlockFpConfig cfg = std::get<NaiveBlockFpConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        return std::make_unique<NaiveBlockFpCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
