#include "baselines/naive_tagged_page.hh"

#include "sim/design_registry.hh"

#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

namespace {

Pc
fhtPc(Pc pc)
{
    return pc & 0xffffffffull;
}

} // namespace

NaiveTaggedPageGeometry
NaiveTaggedPageGeometry::compute(std::uint64_t capacity_bytes)
{
    NaiveTaggedPageGeometry g;
    g.capacityBytes = capacity_bytes;
    UNISON_ASSERT(capacity_bytes % kRowBytes == 0,
                  "capacity must be whole DRAM rows");
    g.numRows = capacity_bytes / kRowBytes;
    g.numFrames = g.numRows * g.pagesPerRow;
    g.dataBlocks = g.numFrames * g.pageBlocks;
    g.inDramTagBytes =
        capacity_bytes - g.dataBlocks * kBlockBytes;
    g.pageBlocksDiv.init(g.pageBlocks);
    g.numFramesDiv.init(g.numFrames);
    g.pagesPerRowDiv.init(g.pagesPerRow);
    return g;
}

NaiveTaggedPageCache::NaiveTaggedPageCache(
    const NaiveTaggedPageConfig &config, DramModule *offchip)
    : DramCache(offchip, DramCacheKind::NaiveTaggedPage),
      config_(config),
      geometry_(NaiveTaggedPageGeometry::compute(config.capacityBytes)),
      stacked_(std::make_unique<DramModule>(config.stackedOrg,
                                            config.stackedTiming)),
      fht_([&] {
          FootprintTableConfig c = config.fhtConfig;
          c.maxBlocksPerPage = 28;
          return c;
      }())
{
    UNISON_ASSERT(offchip != nullptr,
                  "NaiveTaggedPage cache needs a memory pool");
    frames_.resize(geometry_.numFrames);
}

void
NaiveTaggedPageCache::resetStats()
{
    DramCache::resetStats();
    ++statsGen_;
    naiveStats_.reset();
    fht_.resetStats();
}

NaiveTaggedPageCache::Location
NaiveTaggedPageCache::locate(Addr addr) const
{
    Location loc;
    const std::uint64_t block = blockNumber(addr);
    std::uint64_t off;
    geometry_.pageBlocksDiv.divMod(block, loc.page, off);
    loc.offset = static_cast<std::uint32_t>(off);
    geometry_.numFramesDiv.divMod(loc.page, loc.tag, loc.frame);
    return loc;
}

void
NaiveTaggedPageCache::evictFrame(std::uint64_t frame, Cycle when)
{
    const std::size_t idx = frame;
    UNISON_ASSERT(frames_.valid(idx), "evicting an empty frame");
    ++stats_.evictions;

    // Sec. III-B.2: no footprint summary exists, so the page's TAD
    // headers (28 x 8 B) are all read back to find the valid and dirty
    // blocks before the frame can be reused.
    const std::uint32_t scan_bytes = geometry_.pageBlocks * 8;
    ++naiveStats_.evictionScans;
    naiveStats_.scanBytes += scan_bytes;
    const Cycle scan_done =
        stacked_
            ->rowAccess(geometry_.rowOfFrame(frame), scan_bytes, false,
                        when)
            .completion;

    const std::uint64_t page =
        frames_.tag(idx) * geometry_.numFrames + frame;
    const std::uint32_t dirty_mask = frames_.hot[idx].dirty;
    if (dirty_mask != 0) {
        const std::uint32_t dirty_blocks = popCount(dirty_mask);
        const Cycle read_done =
            stacked_
                ->rowAccess(geometry_.rowOfFrame(frame),
                            dirty_blocks * kBlockBytes, false, scan_done)
                .completion;
        std::uint32_t mask = dirty_mask;
        while (mask != 0) {
            const std::uint32_t off =
                static_cast<std::uint32_t>(std::countr_zero(mask));
            mask &= mask - 1;
            offchip_->addrAccess(blockAddrOf(page, off), kBlockBytes,
                                 true, read_done);
        }
        stats_.offchipWritebackBlocks += dirty_blocks;
    }

    // The (PC, offset) word sits at a fixed position, so training the
    // FHT needs no extra access beyond the header scan above.
    if (frames_.hot[idx].touched != 0)
        fht_.update(frames_.cold[idx].pcHash, frames_.cold[idx].trigger,
                    frames_.hot[idx].touched);

    if (frames_.cold[idx].gen == statsGen_) {
        stats_.fpPredictedTouched +=
            popCount(frames_.cold[idx].predicted & frames_.hot[idx].touched);
        stats_.fpTouched += popCount(frames_.hot[idx].touched);
        stats_.fpFetchedUntouched +=
            popCount(frames_.hot[idx].fetched & ~frames_.hot[idx].touched);
        stats_.fpFetched += popCount(frames_.hot[idx].fetched);
    }

    frames_.invalidate(idx);
}

DramCacheResult
NaiveTaggedPageCache::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    const std::size_t idx = loc.frame;
    const std::uint64_t row = geometry_.rowOfFrame(loc.frame);
    const std::uint32_t bit = 1u << loc.offset;
    const bool page_hit =
        frames_.tagv[idx] == (PageWaySoa::kValid | loc.tag);
    const bool block_hit = page_hit && (frames_.hot[idx].fetched & bit) != 0;

    DramCacheResult result;
    result.hit = block_hit;

    if (req.isWrite) {
        ++stats_.writes;
        if (block_hit) {
            ++stats_.hits;
            frames_.hot[idx].touched |= bit;
            frames_.hot[idx].dirty |= bit;
            result.doneAt =
                stacked_
                    ->rowAccess(row, geometry_.tadBytes, true, req.cycle)
                    .completion;
            return result;
        }
        ++stats_.misses;
        if (page_hit) {
            // Full-block write into the resident page: becomes valid
            // and dirty without an off-chip fetch.
            ++stats_.blockMisses;
            frames_.hot[idx].fetched |= bit;
            frames_.hot[idx].touched |= bit;
            frames_.hot[idx].dirty |= bit;
            result.doneAt =
                stacked_
                    ->rowAccess(row, geometry_.tadBytes, true, req.cycle)
                    .completion;
            return result;
        }
        // Write-no-allocate: non-resident pages are not allocated from
        // writebacks (same policy as the other page-based designs).
        ++stats_.pageMisses;
        result.doneAt =
            offchip_->addrAccess(req.addr, kBlockBytes, true, req.cycle)
                .completion;
        ++stats_.offchipWritebackBlocks;
        return result;
    }

    ++stats_.reads;

    // The probe streams the block's own TAD in a single access -- the
    // one genuine benefit this organization keeps from Alloy Cache.
    const Cycle tad_done =
        stacked_->rowAccess(row, geometry_.tadBytes, false, req.cycle)
            .completion;

    if (block_hit) {
        ++stats_.hits;
        frames_.hot[idx].touched |= bit;
        result.doneAt = tad_done;
        return result;
    }

    ++stats_.misses;

    if (page_hit) {
        // Underprediction: the TAD read already proves the block is
        // absent; fetch only it.
        ++stats_.blockMisses;
        const Cycle mem_done =
            offchip_->addrAccess(req.addr, kBlockBytes, false, tad_done)
                .completion;
        ++stats_.offchipDemandBlocks;
        frames_.hot[idx].fetched |= bit;
        frames_.hot[idx].touched |= bit;
        stacked_->rowAccess(row, geometry_.tadBytes, true, mem_done);
        result.doneAt = mem_done;
        return result;
    }

    // Trigger miss: evict the resident page, then fetch the predicted
    // footprint.
    ++stats_.pageMisses;
    Cycle insert_start = tad_done;
    if (frames_.valid(idx)) {
        evictFrame(loc.frame, tad_done);
        insert_start = tad_done;
    }

    std::uint32_t predicted = fullMask();
    if (config_.footprintPredictionEnabled) {
        std::uint64_t mask;
        if (fht_.predict(fhtPc(req.pc), loc.offset, mask))
            predicted = static_cast<std::uint32_t>(mask) & fullMask();
    }
    predicted |= bit;

    const Cycle critical =
        offchip_->addrAccess(req.addr, kBlockBytes, false, insert_start)
            .completion;
    ++stats_.offchipDemandBlocks;
    Cycle last_done = critical;
    std::uint32_t rest = predicted & ~bit;
    while (rest != 0) {
        const std::uint32_t off =
            static_cast<std::uint32_t>(std::countr_zero(rest));
        rest &= rest - 1;
        const Cycle done =
            offchip_
                ->addrAccess(blockAddrOf(loc.page, off), kBlockBytes,
                             false, insert_start)
                .completion;
        last_done = std::max(last_done, done);
    }
    stats_.offchipPrefetchBlocks += popCount(predicted) - 1;

    // Insertion writes the fetched TADs *and* must rewrite the tag
    // word / reset the valid bit of every non-fetched TAD in the page
    // (Sec. III-B.2's extra DRAM writes).
    const std::uint32_t fetched = popCount(predicted);
    const std::uint32_t unfetched = geometry_.pageBlocks - fetched;
    naiveStats_.extraTagWrites += unfetched;
    stacked_->rowAccess(row,
                        fetched * geometry_.tadBytes + unfetched * 8 + 8,
                        true, last_done);

    frames_.tagv[idx] = PageWaySoa::kValid | loc.tag;
    frames_.cold[idx].pcHash = static_cast<std::uint32_t>(fhtPc(req.pc));
    frames_.cold[idx].trigger = static_cast<std::uint8_t>(loc.offset);
    frames_.cold[idx].predicted = predicted;
    frames_.hot[idx].fetched = predicted;
    frames_.hot[idx].touched = bit;
    frames_.hot[idx].dirty = 0;
    frames_.cold[idx].gen = statsGen_;

    result.doneAt = critical;
    return result;
}

bool
NaiveTaggedPageCache::pagePresent(Addr addr) const
{
    const Location loc = locate(addr);
    return frames_.tagv[loc.frame] == (PageWaySoa::kValid | loc.tag);
}

bool
NaiveTaggedPageCache::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    return frames_.tagv[loc.frame] == (PageWaySoa::kValid | loc.tag) &&
           (frames_.hot[loc.frame].fetched & (1u << loc.offset)) != 0;
}

bool
NaiveTaggedPageCache::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    return frames_.tagv[loc.frame] == (PageWaySoa::kValid | loc.tag) &&
           (frames_.hot[loc.frame].dirty & (1u << loc.offset)) != 0;
}


// --------------------------------------------------- registry entry

DesignInfo
naiveTaggedPageDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::NaiveTaggedPage;
    info.id = "naivetaggedpage";
    info.name = "Naive tagged-page";
    info.shortName = "Tagged-page";
    info.summary = "rejected Sec. III-B.2 splice: page-based array "
                   "with per-block replicated tags";
    info.defaults = NaiveTaggedPageConfig{};
    info.knobs = {
        knobBool<NaiveTaggedPageConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: whole pages)",
            &NaiveTaggedPageConfig::footprintPredictionEnabled),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    DramModule *offchip) -> std::unique_ptr<DramCache> {
        NaiveTaggedPageConfig cfg = std::get<NaiveTaggedPageConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        return std::make_unique<NaiveTaggedPageCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
