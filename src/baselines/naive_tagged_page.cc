#include "baselines/naive_tagged_page.hh"

#include "sim/design_registry.hh"

#include <bit>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unison {

NaiveTaggedPageGeometry
NaiveTaggedPageGeometry::compute(std::uint64_t capacity_bytes)
{
    NaiveTaggedPageGeometry g;
    g.capacityBytes = capacity_bytes;
    UNISON_ASSERT(capacity_bytes % kRowBytes == 0,
                  "capacity must be whole DRAM rows");
    g.numRows = capacity_bytes / kRowBytes;
    g.numFrames = g.numRows * g.pagesPerRow;
    g.dataBlocks = g.numFrames * g.pageBlocks;
    g.inDramTagBytes =
        capacity_bytes - g.dataBlocks * kBlockBytes;
    g.pageBlocksDiv.init(g.pageBlocks);
    g.numFramesDiv.init(g.numFrames);
    g.pagesPerRowDiv.init(g.pagesPerRow);
    return g;
}

NaiveTaggedPageCache::NaiveTaggedPageCache(
    const NaiveTaggedPageConfig &config, MemoryBackend *offchip)
    : DramCache(offchip, DramCacheKind::NaiveTaggedPage),
      config_(config),
      geometry_(NaiveTaggedPageGeometry::compute(config.capacityBytes)),
      stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming)),
      fetchPolicy_([&] {
          FootprintFetchPolicy::Config c;
          c.fht = config.fhtConfig;
          c.fht.maxBlocksPerPage = 28;
          c.footprintPrediction = config.footprintPredictionEnabled;
          c.singletonBypass = false;
          return c;
      }())
{
    UNISON_ASSERT(offchip != nullptr,
                  "NaiveTaggedPage cache needs a memory pool");
    org_.init(geometry_.pageBlocks, geometry_.numFrames, 1);
    fill_.init(offchip, &stats_);
    writeback_.init(offchip, &stats_);
}

void
NaiveTaggedPageCache::resetStats()
{
    DramCache::resetStats();
    ++statsGen_;
    naiveStats_.reset();
    fetchPolicy_.resetStats();
}

void
NaiveTaggedPageCache::evictFrame(std::uint64_t frame, Cycle when)
{
    const std::size_t idx = frame;
    UNISON_ASSERT(frames().valid(idx), "evicting an empty frame");

    // Sec. III-B.2: no footprint summary exists, so the page's TAD
    // headers (28 x 8 B) are all read back to find the valid and dirty
    // blocks before the frame can be reused.
    const std::uint32_t scan_bytes = geometry_.pageBlocks * 8;
    ++naiveStats_.evictionScans;
    naiveStats_.scanBytes += scan_bytes;
    const Cycle scan_done =
        stacked_
            ->rowAccess(geometry_.rowOfFrame(frame), scan_bytes, false,
                        when)
            .completion;

    // The (PC, offset) word sits at a fixed position, so training the
    // FHT needs no extra access beyond the header scan above.
    const std::uint64_t page = org_.pageOf(frame, 0);
    evictPageWay(
        frames(), idx, writeback_, *stacked_, geometry_.rowOfFrame(frame),
        [&](std::uint32_t off) { return blockAddrOf(page, off); },
        scan_done, fetchPolicy_, stats_, statsGen_);
}

DramCacheResult
NaiveTaggedPageCache::access(const DramCacheRequest &req)
{
    const Location loc = locate(req.addr);
    const std::size_t idx = loc.set;
    const std::uint64_t row = geometry_.rowOfFrame(loc.set);
    const std::uint32_t bit = 1u << loc.offset;
    const bool page_hit =
        frames().tagv[idx] == (PageWaySoa::kValid | loc.tag);
    const bool block_hit =
        page_hit && (frames().hot[idx].fetched & bit) != 0;

    DramCacheResult result;
    result.hit = block_hit;

    if (req.isWrite) {
        ++stats_.writes;
        if (block_hit) {
            ++stats_.hits;
            frames().hot[idx].touched |= bit;
            frames().hot[idx].dirty |= bit;
            result.doneAt =
                stacked_
                    ->rowAccess(row, geometry_.tadBytes, true, req.cycle)
                    .completion;
            return result;
        }
        ++stats_.misses;
        if (page_hit) {
            // Full-block write into the resident page: becomes valid
            // and dirty without an off-chip fetch.
            ++stats_.blockMisses;
            frames().hot[idx].fetched |= bit;
            frames().hot[idx].touched |= bit;
            frames().hot[idx].dirty |= bit;
            result.doneAt =
                stacked_
                    ->rowAccess(row, geometry_.tadBytes, true, req.cycle)
                    .completion;
            return result;
        }
        // Write-no-allocate: non-resident pages are not allocated from
        // writebacks (same policy as the other page-based designs).
        ++stats_.pageMisses;
        result.doneAt = writeback_.writeBlock(req.addr, req.cycle);
        return result;
    }

    ++stats_.reads;

    // The probe streams the block's own TAD in a single access -- the
    // one genuine benefit this organization keeps from Alloy Cache.
    const Cycle tad_done =
        stacked_->rowAccess(row, geometry_.tadBytes, false, req.cycle)
            .completion;

    if (block_hit) {
        ++stats_.hits;
        frames().hot[idx].touched |= bit;
        result.doneAt = tad_done;
        return result;
    }

    ++stats_.misses;

    if (page_hit) {
        // Underprediction: the TAD read already proves the block is
        // absent; fetch only it.
        ++stats_.blockMisses;
        const Cycle mem_done = fill_.demandBlock(req.addr, tad_done);
        frames().hot[idx].fetched |= bit;
        frames().hot[idx].touched |= bit;
        stacked_->rowAccess(row, geometry_.tadBytes, true, mem_done);
        result.doneAt = mem_done;
        return result;
    }

    // Trigger miss: evict the resident page, then fetch the predicted
    // footprint.
    ++stats_.pageMisses;
    Cycle insert_start = tad_done;
    if (frames().valid(idx)) {
        evictFrame(loc.set, tad_done);
        insert_start = tad_done;
    }

    const FetchDecision decision = fetchPolicy_.onTriggerMiss(
        loc.page, req.pc, loc.offset, fullMask());
    const std::uint32_t predicted = decision.mask;

    const FillEngine::FootprintFetch fetch = fill_.fetchFootprint(
        [&](std::uint32_t off) { return blockAddrOf(loc.page, off); },
        predicted, loc.offset, insert_start, insert_start);

    // Insertion writes the fetched TADs *and* must rewrite the tag
    // word / reset the valid bit of every non-fetched TAD in the page
    // (Sec. III-B.2's extra DRAM writes).
    const std::uint32_t fetched = popCount(predicted);
    const std::uint32_t unfetched = geometry_.pageBlocks - fetched;
    naiveStats_.extraTagWrites += unfetched;
    stacked_->rowAccess(row,
                        fetched * geometry_.tadBytes + unfetched * 8 + 8,
                        true, fetch.lastDone);

    frames().install(idx,
                     {loc.tag,
                      static_cast<std::uint32_t>(fhtPc(req.pc)),
                      static_cast<std::uint8_t>(loc.offset),
                      predicted, predicted, bit, /*lastUse=*/0,
                      statsGen_});

    result.doneAt = fetch.critical;
    return result;
}

bool
NaiveTaggedPageCache::pagePresent(Addr addr) const
{
    const Location loc = locate(addr);
    return frames().tagv[loc.set] == (PageWaySoa::kValid | loc.tag);
}

bool
NaiveTaggedPageCache::blockPresent(Addr addr) const
{
    const Location loc = locate(addr);
    return frames().tagv[loc.set] == (PageWaySoa::kValid | loc.tag) &&
           (frames().hot[loc.set].fetched & (1u << loc.offset)) != 0;
}

bool
NaiveTaggedPageCache::blockDirty(Addr addr) const
{
    const Location loc = locate(addr);
    return frames().tagv[loc.set] == (PageWaySoa::kValid | loc.tag) &&
           (frames().hot[loc.set].dirty & (1u << loc.offset)) != 0;
}


// --------------------------------------------------- registry entry

DesignInfo
naiveTaggedPageDesignInfo()
{
    DesignInfo info;
    info.kind = DesignKind::NaiveTaggedPage;
    info.id = "naivetaggedpage";
    info.name = "Naive tagged-page";
    info.shortName = "Tagged-page";
    info.summary = "rejected Sec. III-B.2 splice: page-based array "
                   "with per-block replicated tags";
    info.defaults = NaiveTaggedPageConfig{};
    info.knobs = {
        knobBool<NaiveTaggedPageConfig>(
            "footprintPrediction",
            "fetch predicted footprints (false: whole pages)",
            &NaiveTaggedPageConfig::footprintPredictionEnabled),
    };
    info.build = [](const DesignVariant &v,
                    const DesignBuildContext &ctx,
                    MemoryBackend *offchip) -> std::unique_ptr<DramCache> {
        NaiveTaggedPageConfig cfg = std::get<NaiveTaggedPageConfig>(v);
        cfg.capacityBytes = ctx.capacityBytes;
        cfg.stackedOrg.backend = ctx.backend;
        return std::make_unique<NaiveTaggedPageCache>(cfg, offchip);
    };
    return info;
}

} // namespace unison
