/**
 * @file
 * The "latency-optimized" ideal DRAM cache the paper compares against
 * in Figs. 7-8: 100% hit rate and zero tag overhead -- equivalent to
 * die-stacked main memory. Every access is a single stacked-DRAM data
 * access; nothing ever goes off-chip.
 */

#ifndef UNISON_BASELINES_IDEAL_CACHE_HH
#define UNISON_BASELINES_IDEAL_CACHE_HH

#include <memory>

#include "core/dram_cache.hh"
#include "dram/backend.hh"
#include "dram/timing.hh"

namespace unison {

/** Configuration of the ideal (never-miss) reference cache. */
struct IdealConfig
{
    std::uint64_t capacityBytes = 1_GiB;
    DramOrganization stackedOrg = stackedDramOrganization();
    DramTimingParams stackedTiming = stackedDramTiming();
};

/** The latency-optimized ideal cache of Figs. 7-8. */
class IdealCache final : public DramCache
{
  public:
    IdealCache(const IdealConfig &config, MemoryBackend *offchip)
        : DramCache(offchip, DramCacheKind::Ideal),
          config_(config),
          stacked_(makeMemoryBackend(config.stackedOrg, config.stackedTiming))
    {
    }

    DramCacheResult
    access(const DramCacheRequest &req) override
    {
        if (req.isWrite)
            ++stats_.writes;
        else
            ++stats_.reads;
        ++stats_.hits;

        // Rows hold 128 data blocks (no embedded metadata).
        const std::uint64_t row = blockNumber(req.addr) / kBlocksPerRow;
        DramCacheResult result;
        result.hit = true;
        result.doneAt = stacked_
                            ->rowAccess(row, kBlockBytes, req.isWrite,
                                        req.cycle)
                            .completion;
        return result;
    }

    std::string name() const override { return "Ideal"; }
    std::uint64_t capacityBytes() const override
    {
        return config_.capacityBytes;
    }
    MemoryBackend *stackedDram() override { return stacked_.get(); }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        stacked_->saveState(out);
    }

    void loadState(StateReader &in) override { stacked_->loadState(in); }

  private:
    IdealConfig config_;
    std::unique_ptr<MemoryBackend> stacked_;
};

} // namespace unison

#endif // UNISON_BASELINES_IDEAL_CACHE_HH
