/**
 * @file
 * Property-style parameterized tests on the Unison Cache model itself,
 * swept over page size x associativity. Random request streams check
 * the invariants DESIGN.md commits to:
 *
 *  - counter conservation (hits + misses = accesses; trigger + block
 *    misses = misses; demand fetches = read misses when footprint
 *    bypass cannot hide them);
 *  - hook consistency (dirty => present => page present, touched =>
 *    present);
 *  - determinism for a fixed seed;
 *  - no block fetched twice while resident;
 *  - dirty data written back exactly once per eviction;
 *  - LRU residency under set conflicts, monotone in associativity.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "core/unison_cache.hh"
#include "dram/dram.hh"

namespace unison {
namespace {

using UnisonParam = std::tuple<std::uint32_t, std::uint32_t>;

struct UnisonRig
{
    DramModule offchip{offChipDramOrganization(), offChipDramTiming()};
    std::unique_ptr<UnisonCache> cache;
    Cycle clock = 0;

    UnisonRig(std::uint32_t page_blocks, std::uint32_t assoc,
              std::uint64_t capacity = 1_MiB, bool singleton = true,
              bool footprint = true)
    {
        UnisonConfig cfg;
        cfg.capacityBytes = capacity;
        cfg.pageBlocks = page_blocks;
        cfg.assoc = assoc;
        cfg.singletonEnabled = singleton;
        cfg.footprintPredictionEnabled = footprint;
        cache = std::make_unique<UnisonCache>(cfg, &offchip);
    }

    DramCacheResult
    access(std::uint64_t page, std::uint32_t offset,
           bool is_write = false, Pc pc = 0x4000)
    {
        clock += 400;
        DramCacheRequest req;
        req.addr =
            blockAddress(page * cache->config().pageBlocks + offset);
        req.pc = pc;
        req.isWrite = is_write;
        req.cycle = clock;
        return cache->access(req);
    }

    Addr
    addrOf(std::uint64_t page, std::uint32_t offset) const
    {
        return blockAddress(page * cache->config().pageBlocks + offset);
    }

    std::uint64_t numSets() const { return cache->geometry().numSets; }
};

class UnisonSweep : public ::testing::TestWithParam<UnisonParam>
{
  protected:
    std::uint32_t pageBlocks() const { return std::get<0>(GetParam()); }
    std::uint32_t assoc() const { return std::get<1>(GetParam()); }
};

/** Drive `n` random requests; returns the number issued. */
void
randomStream(UnisonRig &rig, Rng &rng, int n, double write_fraction,
             std::uint64_t page_space)
{
    for (int i = 0; i < n; ++i) {
        const std::uint64_t page = rng.range(0, page_space - 1);
        const std::uint32_t offset = static_cast<std::uint32_t>(
            rng.range(0, rig.cache->config().pageBlocks - 1));
        const Pc pc = 0x1000 + rng.range(0, 15) * 64;
        rig.access(page, offset, rng.chance(write_fraction), pc);
    }
}

TEST_P(UnisonSweep, CounterConservation)
{
    UnisonRig rig(pageBlocks(), assoc());
    Rng rng(7);
    randomStream(rig, rng, 4000, 0.25, 512);

    const DramCacheStats &s = rig.cache->stats();
    EXPECT_EQ(s.hits.value() + s.misses.value(), s.accesses());
    EXPECT_EQ(s.pageMisses.value() + s.blockMisses.value(),
              s.misses.value());
    EXPECT_GT(s.hits.value(), 0u);
    EXPECT_GT(s.misses.value(), 0u);
}

TEST_P(UnisonSweep, ReadOnlyStreamDemandFetchesEqualMissesMinusWriteAllocs)
{
    // With no writes, every miss must fetch exactly one demanded block
    // from memory (trigger misses fetch more, but exactly one is the
    // demand; underpredictions fetch exactly the demand; singleton
    // bypasses fetch exactly the demand).
    UnisonRig rig(pageBlocks(), assoc());
    Rng rng(11);
    randomStream(rig, rng, 4000, 0.0, 512);

    const DramCacheStats &s = rig.cache->stats();
    EXPECT_EQ(s.writes.value(), 0u);
    EXPECT_EQ(s.offchipDemandBlocks.value(), s.misses.value());
    // Total fetched = demand + prefetch; prefetch only from triggers.
    EXPECT_GE(s.offchipPrefetchBlocks.value(), 0u);
    EXPECT_EQ(s.offchipWastedBlocks.value(), 0u); // no MAP-I here
}

TEST_P(UnisonSweep, HookImplicationsHoldEverywhere)
{
    UnisonRig rig(pageBlocks(), assoc());
    Rng rng(13);
    randomStream(rig, rng, 3000, 0.3, 256);

    for (std::uint64_t page = 0; page < 256; ++page) {
        for (std::uint32_t off = 0; off < pageBlocks(); ++off) {
            const Addr a = rig.addrOf(page, off);
            if (rig.cache->blockDirty(a)) {
                EXPECT_TRUE(rig.cache->blockPresent(a));
            }
            if (rig.cache->blockTouched(a)) {
                EXPECT_TRUE(rig.cache->pagePresent(a));
            }
            if (rig.cache->blockPresent(a)) {
                EXPECT_TRUE(rig.cache->pagePresent(a));
            }
        }
    }
}

TEST_P(UnisonSweep, DeterministicForFixedSeed)
{
    UnisonRig a(pageBlocks(), assoc());
    UnisonRig b(pageBlocks(), assoc());
    Rng rng_a(42), rng_b(42);
    randomStream(a, rng_a, 2500, 0.2, 384);
    randomStream(b, rng_b, 2500, 0.2, 384);

    const DramCacheStats &sa = a.cache->stats();
    const DramCacheStats &sb = b.cache->stats();
    EXPECT_EQ(sa.hits.value(), sb.hits.value());
    EXPECT_EQ(sa.misses.value(), sb.misses.value());
    EXPECT_EQ(sa.pageMisses.value(), sb.pageMisses.value());
    EXPECT_EQ(sa.offchipDemandBlocks.value(),
              sb.offchipDemandBlocks.value());
    EXPECT_EQ(sa.offchipPrefetchBlocks.value(),
              sb.offchipPrefetchBlocks.value());
    EXPECT_EQ(sa.offchipWritebackBlocks.value(),
              sb.offchipWritebackBlocks.value());
    EXPECT_EQ(a.cache->stats().evictions.value(),
              b.cache->stats().evictions.value());
    EXPECT_EQ(a.cache->wayPredictorStats().predictions.value(),
              b.cache->wayPredictorStats().predictions.value());
}

TEST_P(UnisonSweep, ResidentBlockIsNeverRefetched)
{
    // A read to a resident block is a hit: re-reading the same block
    // many times must not move the off-chip counters.
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    rig.access(3, 1);
    const auto demand = rig.cache->stats().offchipDemandBlocks.value();
    const auto prefetch =
        rig.cache->stats().offchipPrefetchBlocks.value();
    for (int i = 0; i < 50; ++i) {
        const auto r = rig.access(3, 1);
        EXPECT_TRUE(r.hit);
    }
    EXPECT_EQ(rig.cache->stats().offchipDemandBlocks.value(), demand);
    EXPECT_EQ(rig.cache->stats().offchipPrefetchBlocks.value(),
              prefetch);
}

TEST_P(UnisonSweep, DirtyBlocksWrittenBackExactlyOnce)
{
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    // Dirty two blocks of page 5 (resident after the trigger).
    rig.access(5, 0);
    rig.access(5, 0, true);
    rig.access(5, 2, true);

    // Evict page 5 by filling its set with `assoc` fresh pages.
    const std::uint64_t sets = rig.numSets();
    const auto wb0 = rig.cache->stats().offchipWritebackBlocks.value();
    for (std::uint32_t k = 1; k <= assoc(); ++k)
        rig.access(5 + k * sets, 0);
    ASSERT_FALSE(rig.cache->pagePresent(rig.addrOf(5, 0)));
    EXPECT_EQ(rig.cache->stats().offchipWritebackBlocks.value(),
              wb0 + 2);

    // Churn more conflicting pages through the set: the dirty data
    // must not be written back a second time.
    for (std::uint32_t k = assoc() + 1; k <= 3 * assoc(); ++k)
        rig.access(5 + k * sets, 0);
    EXPECT_EQ(rig.cache->stats().offchipWritebackBlocks.value(),
              wb0 + 2);
}

TEST_P(UnisonSweep, LruKeepsExactlyAssocPagesResident)
{
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    const std::uint64_t sets = rig.numSets();

    // Touch assoc pages of one set: all must be simultaneously
    // resident afterwards (no aliasing between ways).
    for (std::uint32_t k = 0; k < assoc(); ++k)
        rig.access(7 + k * sets, 0);
    for (std::uint32_t k = 0; k < assoc(); ++k)
        EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(7 + k * sets, 0)));

    // One more page in the set evicts exactly the LRU (page 7).
    rig.access(7 + assoc() * sets, 0);
    EXPECT_FALSE(rig.cache->pagePresent(rig.addrOf(7, 0)));
    for (std::uint32_t k = 1; k <= assoc(); ++k)
        EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(7 + k * sets, 0)));
}

TEST_P(UnisonSweep, CyclicWorkingSetWithinAssocAlwaysHitsAfterWarmup)
{
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    const std::uint64_t sets = rig.numSets();
    // Warm: one lap over `assoc` same-set pages.
    for (std::uint32_t k = 0; k < assoc(); ++k)
        rig.access(9 + k * sets, 0);
    // Measure: three more laps -- every access hits.
    const auto misses0 = rig.cache->stats().misses.value();
    for (int lap = 0; lap < 3; ++lap)
        for (std::uint32_t k = 0; k < assoc(); ++k)
            EXPECT_TRUE(rig.access(9 + k * sets, 0).hit);
    EXPECT_EQ(rig.cache->stats().misses.value(), misses0);
}

TEST_P(UnisonSweep, CyclicWorkingSetBeyondAssocAlwaysMisses)
{
    // LRU pathology: a cyclic working set one page larger than the
    // set's capacity misses on every access -- this is the conflict
    // behaviour the Fig. 5 associativity sweep quantifies.
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    const std::uint64_t sets = rig.numSets();
    const std::uint32_t n = assoc() + 1;
    for (int lap = 0; lap < 4; ++lap) {
        for (std::uint32_t k = 0; k < n; ++k) {
            const auto r = rig.access(11 + k * sets, 0);
            EXPECT_FALSE(r.hit);
        }
    }
}

TEST_P(UnisonSweep, EdgeOffsetsWork)
{
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    const std::uint32_t last = pageBlocks() - 1;
    rig.access(13, last);
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(13, last)));
    rig.access(13, last, true);
    EXPECT_TRUE(rig.cache->blockDirty(rig.addrOf(13, last)));
    const auto r = rig.access(13, last);
    EXPECT_TRUE(r.hit);
}

TEST_P(UnisonSweep, ResetStatsPreservesContentsAndAccuracyWindow)
{
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    Rng rng(5);
    randomStream(rig, rng, 1500, 0.2, 128);
    // Plant a page outside the random stream's page space so it cannot
    // be evicted before the post-reset check.
    rig.access(200, 0);
    ASSERT_TRUE(rig.cache->blockPresent(rig.addrOf(200, 0)));
    rig.cache->resetStats();
    EXPECT_EQ(rig.cache->stats().accesses(), 0u);
    // Footprint accounting restarts: only pages allocated after the
    // reset contribute (no stale generation leaks through).
    EXPECT_EQ(rig.cache->stats().fpFetched.value(), 0u);
    // Contents survive the reset: the planted page still hits.
    EXPECT_TRUE(rig.access(200, 0).hit);
}

TEST_P(UnisonSweep, FootprintAccountingConserved)
{
    UnisonRig rig(pageBlocks(), assoc(), 1_MiB, /*singleton=*/false);
    rig.cache->resetStats();
    Rng rng(17);
    randomStream(rig, rng, 5000, 0.15, 1024);

    const DramCacheStats &s = rig.cache->stats();
    // Every eviction's footprint bookkeeping obeys set algebra:
    // |predicted AND touched| <= |touched| and
    // |fetched AND NOT touched| <= |fetched|.
    EXPECT_LE(s.fpPredictedTouched.value(), s.fpTouched.value());
    EXPECT_LE(s.fpFetchedUntouched.value(), s.fpFetched.value());
    // A touched block was necessarily fetched (or write-allocated):
    // fetched >= touched accumulated over the same evictions.
    EXPECT_GE(s.fpFetched.value(), s.fpTouched.value());
}

INSTANTIATE_TEST_SUITE_P(
    PageAssoc, UnisonSweep,
    ::testing::Combine(::testing::Values(15u, 31u),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const ::testing::TestParamInfo<UnisonParam> &info) {
        return std::to_string(std::get<0>(info.param)) + "blk_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

} // namespace
} // namespace unison
