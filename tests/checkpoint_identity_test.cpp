/**
 * @file
 * Warm-state checkpoint identity: a run that resumes from a captured
 * warm-boundary snapshot must be byte-identical to the run that
 * simulated its warm-up -- across every checkpointable design, for
 * multiprogrammed mixes with per-core budgets, and through the
 * parallel runner's prefix-grouping path. Results are compared as
 * serialized JSON, so every counter and every double must match
 * bit-for-bit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/spec_json.hh"
#include "trace/mix.hh"

namespace unison {
namespace {

std::string
resultKey(const SimResult &result)
{
    return json::write(resultToJson(result));
}

ExperimentSpec
baseSpec(DesignKind design)
{
    ExperimentSpec spec;
    spec.design = design;
    spec.capacityBytes = 32_MiB;
    spec.system.numCores = 4;
    spec.accesses = 120'000;
    spec.system.warmupAccesses = 60'000;
    spec.seed = 11;
    return spec;
}

/** Capture at the boundary, then fork a fresh run from the snapshot:
 *  both the capturing and the resuming run must match a plain one. */
void
expectCheckpointIdentity(const ExperimentSpec &spec)
{
    const SimResult cold = runExperiment(spec);

    WarmCheckpoint ck;
    const SimResult captured = runExperimentCk(spec, nullptr, &ck);
    EXPECT_EQ(resultKey(captured), resultKey(cold))
        << "capturing a checkpoint perturbed the run";
    ASSERT_TRUE(ck.valid()) << "capture did not fire";
    EXPECT_EQ(ck.warmAccesses, spec.system.warmupAccesses);

    const SimResult resumed = runExperimentCk(spec, &ck, nullptr);
    EXPECT_EQ(resultKey(resumed), resultKey(cold))
        << "resumed run diverged from the cold run";
}

TEST(CheckpointIdentity, EveryCheckpointableDesign)
{
    for (DesignKind d :
         {DesignKind::Unison, DesignKind::Alloy, DesignKind::Footprint,
          DesignKind::LohHill, DesignKind::NaiveBlockFp,
          DesignKind::NaiveTaggedPage, DesignKind::AlloyFp,
          DesignKind::UnisonWp, DesignKind::Ideal,
          DesignKind::NoDramCache}) {
        SCOPED_TRACE(designId(d));
        expectCheckpointIdentity(baseSpec(d));
    }
}

TEST(CheckpointIdentity, DetailedBackendDesigns)
{
    // The detailed controller carries extra timing state (write
    // queues, bypass counters, the activate ring); the snapshot must
    // capture all of it for both pools. One block-based and one
    // page-based design keep this fast while covering both stacked
    // layouts.
    for (DesignKind d : {DesignKind::Unison, DesignKind::Alloy}) {
        SCOPED_TRACE(designId(d));
        ExperimentSpec spec = baseSpec(d);
        spec.system.memoryBackend = MemoryBackendKind::Detailed;
        expectCheckpointIdentity(spec);
    }
}

TEST(CheckpointIdentity, PrefixKeySeparatesBackends)
{
    // A warm prefix simulated under one backend must never be resumed
    // under the other: the backend stays in the prefix key.
    const ExperimentSpec fast = baseSpec(DesignKind::Unison);
    ExperimentSpec detailed = fast;
    detailed.system.memoryBackend = MemoryBackendKind::Detailed;
    EXPECT_NE(warmPrefixKey(fast), warmPrefixKey(detailed));
}

TEST(CheckpointIdentity, MixWithPerCoreBudgets)
{
    // The mixes methodology: explicit warm boundary plus per-core
    // reference budgets, which exercises the scheduler-state part of
    // the snapshot (sched_time, budget_left, active_cores).
    ExperimentSpec spec = baseSpec(DesignKind::Unison);
    spec.mix = {mixPreset(Workload::WebServing, 2),
                mixPreset(Workload::DataServing, 2)};
    spec.system.perCoreAccessBudget = spec.accesses / 4;
    expectCheckpointIdentity(spec);
}

TEST(CheckpointIdentity, ScenarioMix)
{
    ExperimentSpec spec = baseSpec(DesignKind::Alloy);
    spec.mix = {mixScenario(ScenarioKind::StreamScan, 2),
                mixScenario(ScenarioKind::PointerChase, 2)};
    expectCheckpointIdentity(spec);
}

TEST(CheckpointIdentity, DatacenterMixAt64Cores)
{
    // The scale arm: the warm snapshot must carry each of the 64
    // generators' request-burst state (likely mid-burst at the
    // boundary) plus the flat page-tracker tables, and resume
    // byte-identically.
    ExperimentSpec spec = baseSpec(DesignKind::Unison);
    spec.system.numCores = 64;
    spec.accesses = 128'000;
    spec.system.warmupAccesses = 64'000;
    MixPart kv = mixScenario(ScenarioKind::YcsbKv, 32);
    kv.scenario->numKeys = 1ull << 16;
    kv.scenario->footprintBytes = 1ull << 20;
    MixPart dl = mixScenario(ScenarioKind::DlrmEmbed, 32);
    dl.scenario->numKeys = 1ull << 12;
    dl.scenario->footprintBytes = 1ull << 20;
    spec.mix = {kv, dl};
    expectCheckpointIdentity(spec);
}

TEST(CheckpointIdentity, ResumedRunMatchesLongerWindowToo)
{
    // The point of prefix grouping: the same snapshot serves specs
    // that differ only in total length.
    ExperimentSpec spec = baseSpec(DesignKind::Unison);

    WarmCheckpoint ck;
    runExperimentCk(spec, nullptr, &ck);
    ASSERT_TRUE(ck.valid());

    ExperimentSpec longer = spec;
    longer.accesses = 180'000;
    const SimResult cold = runExperiment(longer);
    const SimResult resumed = runExperimentCk(longer, &ck, nullptr);
    EXPECT_EQ(resultKey(resumed), resultKey(cold));
}

TEST(CheckpointIdentity, RunnerGroupsSharedWarmPrefixes)
{
    // Five specs, three sharing one warm prefix (they differ only in
    // the measured window) and two unrelated; the runner must return
    // exactly what spec-by-spec execution returns, serial or parallel.
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t total : {90'000, 120'000, 150'000})
        specs.push_back([&] {
            ExperimentSpec s = baseSpec(DesignKind::Unison);
            s.accesses = total;
            return s;
        }());
    specs.push_back(baseSpec(DesignKind::Alloy));
    specs.push_back([&] {
        ExperimentSpec s = baseSpec(DesignKind::Unison);
        s.seed = 99; // different warm prefix: must not join the group
        return s;
    }());

    ASSERT_EQ(warmPrefixKey(specs[0]), warmPrefixKey(specs[1]));
    ASSERT_EQ(warmPrefixKey(specs[0]), warmPrefixKey(specs[2]));
    ASSERT_NE(warmPrefixKey(specs[0]), warmPrefixKey(specs[3]));
    ASSERT_NE(warmPrefixKey(specs[0]), warmPrefixKey(specs[4]));

    for (int threads : {1, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const std::vector<SimResult> grouped =
            runExperiments(specs, threads);
        ASSERT_EQ(grouped.size(), specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i)
            EXPECT_EQ(resultKey(grouped[i]),
                      resultKey(runExperiment(specs[i])))
                << "spec " << i;
    }
}

TEST(CheckpointIdentity, FractionalWarmupIsNotEligible)
{
    ExperimentSpec spec = baseSpec(DesignKind::Unison);
    spec.system.warmupAccesses = 0; // fractional warm-up
    EXPECT_FALSE(checkpointEligible(spec));

    // Hooks are silently dropped: a capture attempt leaves the
    // checkpoint invalid and the result untouched.
    WarmCheckpoint ck;
    const SimResult captured = runExperimentCk(spec, nullptr, &ck);
    EXPECT_FALSE(ck.valid());
    EXPECT_EQ(resultKey(captured), resultKey(runExperiment(spec)));
}

TEST(CheckpointIdentity, InvalidSnapshotFallsBackToColdRun)
{
    const ExperimentSpec spec = baseSpec(DesignKind::Unison);
    WarmCheckpoint never_captured;
    const SimResult r = runExperimentCk(spec, &never_captured, nullptr);
    EXPECT_EQ(resultKey(r), resultKey(runExperiment(spec)));
}

TEST(CheckpointIdentity, PrefixKeyIgnoresMeasuredWindowOnly)
{
    const ExperimentSpec a = baseSpec(DesignKind::Unison);
    ExperimentSpec b = a;
    b.accesses = 999'999;
    b.system.engineThreads = 8;
    EXPECT_EQ(warmPrefixKey(a), warmPrefixKey(b));

    ExperimentSpec c = a;
    c.capacityBytes = 64_MiB;
    EXPECT_NE(warmPrefixKey(a), warmPrefixKey(c));
}

} // namespace
} // namespace unison
