/**
 * @file
 * Tests for the Footprint Cache baseline: geometry and Table IV tag
 * latencies/sizes, 32-way LRU, the SRAM-tag fast-miss path, and the
 * shared footprint machinery.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/footprint_cache.hh"
#include "common/rng.hh"
#include "dram/dram.hh"

namespace unison {
namespace {

struct Rig
{
    DramModule offchip{offChipDramOrganization(), offChipDramTiming()};
    std::unique_ptr<FootprintCache> cache;
    Cycle clock = 0;

    explicit Rig(std::uint64_t capacity = 4_MiB)
    {
        FootprintCacheConfig cfg;
        cfg.capacityBytes = capacity;
        cache = std::make_unique<FootprintCache>(cfg, &offchip);
    }

    Addr
    addrOf(std::uint64_t page, std::uint32_t offset) const
    {
        return blockAddress(page * 32 + offset);
    }

    DramCacheResult
    access(std::uint64_t page, std::uint32_t offset, bool is_write,
           Pc pc = 0x400000)
    {
        clock += 500;
        DramCacheRequest req;
        req.addr = addrOf(page, offset);
        req.pc = pc;
        req.core = 0;
        req.isWrite = is_write;
        req.cycle = clock;
        return cache->access(req);
    }

    void
    forceEvict(std::uint64_t page)
    {
        const std::uint64_t sets = cache->geometry().numSets;
        for (std::uint64_t lap = 1; lap <= 33; ++lap)
            access(page + lap * sets, 0, false, 0x900000 + lap * 4);
    }
};

TEST(FootprintGeometry, TableIVTagSizes)
{
    // Table IV: tags 0.8 / 1.58 / 3.12 / 6.2 / 12.5 / 25 / 50 MB for
    // 128 MB ... 8 GB caches.
    struct Row
    {
        std::uint64_t cap;
        double tag_mb;
    };
    const Row rows[] = {
        {128_MiB, 0.8}, {256_MiB, 1.58}, {512_MiB, 3.12}, {1_GiB, 6.2},
        {2_GiB, 12.5},  {4_GiB, 25.0},   {8_GiB, 50.0},
    };
    for (const Row &r : rows) {
        const FootprintGeometry g = FootprintGeometry::compute(r.cap);
        const double mb =
            static_cast<double>(g.sramTagBytes) / (1024.0 * 1024.0);
        EXPECT_NEAR(mb, r.tag_mb, r.tag_mb * 0.25)
            << "capacity " << r.cap;
    }
}

TEST(FootprintGeometry, TableIVTagLatencies)
{
    EXPECT_EQ(FootprintGeometry::tagLatencyForCapacity(128_MiB), 6u);
    EXPECT_EQ(FootprintGeometry::tagLatencyForCapacity(256_MiB), 9u);
    EXPECT_EQ(FootprintGeometry::tagLatencyForCapacity(512_MiB), 11u);
    EXPECT_EQ(FootprintGeometry::tagLatencyForCapacity(1_GiB), 16u);
    EXPECT_EQ(FootprintGeometry::tagLatencyForCapacity(2_GiB), 25u);
    EXPECT_EQ(FootprintGeometry::tagLatencyForCapacity(4_GiB), 36u);
    EXPECT_EQ(FootprintGeometry::tagLatencyForCapacity(8_GiB), 48u);
}

TEST(FootprintGeometry, ThirtyTwoWayTwoKbPages)
{
    const FootprintGeometry g = FootprintGeometry::compute(512_MiB);
    EXPECT_EQ(g.pageBlocks, 32u);
    EXPECT_EQ(g.assoc, 32u);
    EXPECT_EQ(g.pagesPerRow, 4u); // 8 KB row = four 2 KB pages
    EXPECT_EQ(g.numPages, 512_MiB / 2048);
    EXPECT_EQ(g.numSets, g.numPages / 32);
}

TEST(FootprintCache, HitAfterAllocation)
{
    Rig rig;
    EXPECT_FALSE(rig.access(10, 1, false).hit);
    EXPECT_TRUE(rig.access(10, 1, false).hit);
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(10, 0)));
}

TEST(FootprintCache, TagLatencyOnEveryAccess)
{
    // A miss is detected after only the SRAM tag latency: the done
    // time of a miss must not include a stacked-DRAM tag read.
    FootprintCacheConfig cfg;
    cfg.capacityBytes = 4_MiB;
    cfg.tagLatencyOverride = 11;
    DramModule offchip(offChipDramOrganization(), offChipDramTiming());
    FootprintCache cache(cfg, &offchip);
    EXPECT_EQ(cache.tagLatency(), 11u);

    DramCacheRequest req;
    req.addr = 0;
    req.pc = 0x400000;
    req.cycle = 10000;
    const DramCacheResult res = cache.access(req);
    // Miss path: tag (11) + off-chip fetch; the unloaded off-chip
    // conflict read is ~141 cycles.
    const Cycle latency = res.doneAt - req.cycle;
    EXPECT_GE(latency, 11u + 95u);
    EXPECT_LE(latency, 11u + 200u);
}

TEST(FootprintCache, FootprintLearningRoundTrip)
{
    Rig rig;
    const Pc pc = 0x400abc;
    rig.access(20, 3, false, pc);
    rig.access(20, 7, false, pc);
    rig.forceEvict(20);

    const std::uint64_t page2 = 20 + 64 * rig.cache->geometry().numSets;
    rig.access(page2, 3, false, pc);
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page2, 7)));
    EXPECT_FALSE(rig.cache->blockPresent(rig.addrOf(page2, 12)));
}

TEST(FootprintCache, ThirtyTwoWayLru)
{
    Rig rig;
    const std::uint64_t sets = rig.cache->geometry().numSets;
    // Fill all 32 ways of set 2, then re-touch the first 31 pages.
    for (std::uint64_t w = 0; w < 32; ++w)
        rig.access(2 + w * sets, 0, false);
    for (std::uint64_t w = 0; w < 31; ++w)
        rig.access(2 + w * sets, 1, false);
    // One more allocation evicts the untouched way 31.
    rig.access(2 + 40 * sets, 0, false);
    EXPECT_FALSE(rig.cache->pagePresent(rig.addrOf(2 + 31 * sets, 0)));
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(2 + 30 * sets, 0)));
}

TEST(FootprintCache, DirtyWritebackOnEviction)
{
    Rig rig;
    rig.access(5, 2, false); // allocate (write misses do not allocate)
    rig.access(5, 2, true);
    rig.access(5, 9, true);
    const std::uint64_t writes_before = rig.offchip.stats().writes;
    rig.forceEvict(5);
    EXPECT_EQ(rig.offchip.stats().writes, writes_before + 2);
    EXPECT_EQ(rig.cache->stats().offchipWritebackBlocks.value(), 2u);
}

TEST(FootprintCache, UnderpredictionFetchesSingleBlock)
{
    Rig rig;
    const Pc pc = 0x400777;
    rig.access(30, 1, false, pc);
    rig.access(30, 2, false, pc);
    rig.forceEvict(30);

    const std::uint64_t page2 = 30 + 64 * rig.cache->geometry().numSets;
    rig.access(page2, 1, false, pc);
    const std::uint64_t reads_before = rig.offchip.stats().reads;
    const DramCacheResult res = rig.access(page2, 20, false, pc);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(rig.offchip.stats().reads, reads_before + 1);
    EXPECT_EQ(rig.cache->stats().blockMisses.value(), 1u);
}

TEST(FootprintCache, StatsIdentities)
{
    Rig rig;
    Rng rng(13);
    Cycle clock = 0;
    for (int i = 0; i < 20000; ++i) {
        clock += 400;
        DramCacheRequest req;
        req.addr = blockAddress(rng.below(1u << 17));
        req.pc = 0x400000 + rng.below(64) * 4;
        req.isWrite = rng.chance(0.3);
        req.cycle = clock;
        rig.cache->access(req);
    }
    const DramCacheStats &s = rig.cache->stats();
    EXPECT_EQ(s.hits.value() + s.misses.value(), s.accesses());
    EXPECT_EQ(s.pageMisses.value() + s.blockMisses.value(),
              s.misses.value());
    EXPECT_EQ(s.offchipFetchedBlocks(), rig.offchip.stats().reads);
}

} // namespace
} // namespace unison
