/**
 * @file
 * Tests for the Loh-Hill baseline: row-as-set geometry, MissMap
 * latency on the hit path, fast misses, serialized tag-then-data hits,
 * and LRU within the large set.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/alloy_cache.hh"
#include "baselines/lohhill_cache.hh"
#include "common/rng.hh"
#include "dram/dram.hh"

namespace unison {
namespace {

struct Rig
{
    DramModule offchip{offChipDramOrganization(), offChipDramTiming()};
    std::unique_ptr<LohHillCache> cache;
    Cycle clock = 0;

    explicit Rig(std::uint64_t capacity = 1_MiB)
    {
        LohHillConfig cfg;
        cfg.capacityBytes = capacity;
        cache = std::make_unique<LohHillCache>(cfg, &offchip);
    }

    DramCacheResult
    access(std::uint64_t block, bool is_write = false)
    {
        clock += 500;
        DramCacheRequest req;
        req.addr = blockAddress(block);
        req.pc = 0x400000;
        req.isWrite = is_write;
        req.cycle = clock;
        return cache->access(req);
    }
};

TEST(LohHillGeometry, RowAsSet)
{
    const LohHillGeometry g = LohHillGeometry::compute(1_GiB);
    // 8 B tag + 64 B block per way: 113 ways in an 8 KB row.
    EXPECT_EQ(g.waysPerSet, 113u);
    EXPECT_EQ(g.tagBytes, 113u * 8u);
    EXPECT_EQ(g.numRows, 1_GiB / kRowBytes);
}

TEST(LohHillGeometry, MissMapDoesNotScale)
{
    // The Unison paper's point: the MissMap is multi-MB and grows
    // linearly with capacity.
    const LohHillGeometry small = LohHillGeometry::compute(512_MiB);
    const LohHillGeometry large = LohHillGeometry::compute(8_GiB);
    EXPECT_GT(small.missMapBytes, 1_MiB / 2);
    EXPECT_NEAR(static_cast<double>(large.missMapBytes),
                16.0 * static_cast<double>(small.missMapBytes),
                static_cast<double>(small.missMapBytes));
    EXPECT_GT(large.missMapBytes, 8_MiB);
}

TEST(LohHillCache, HitAfterFill)
{
    Rig rig;
    EXPECT_FALSE(rig.access(100).hit);
    EXPECT_TRUE(rig.access(100).hit);
    EXPECT_TRUE(rig.cache->blockPresent(blockAddress(100)));
}

TEST(LohHillCache, MissBypassesDramProbe)
{
    // A miss costs MissMap latency + the off-chip access -- no stacked
    // DRAM read at all.
    Rig rig;
    const std::uint64_t stacked_reads_before =
        rig.cache->stackedDram()->stats().reads;
    rig.access(42);
    // Only the fill write touches the stacked DRAM, never a probe.
    EXPECT_EQ(rig.cache->stackedDram()->stats().reads,
              stacked_reads_before);
    EXPECT_EQ(rig.cache->stackedDram()->stats().writes, 1u);
}

TEST(LohHillCache, HitSlowerThanAlloy)
{
    // Sec. II-A: the MissMap plus tag-then-data serialization makes
    // Loh-Hill hits slower than Alloy's single TAD read.
    Rig lh;
    DramModule offchip(offChipDramOrganization(), offChipDramTiming());
    AlloyConfig acfg;
    acfg.capacityBytes = 1_MiB;
    acfg.missPredictorEnabled = false;
    AlloyCache alloy(acfg, &offchip);

    lh.access(77);
    DramCacheRequest warm;
    warm.addr = blockAddress(77);
    warm.pc = 0x400000;
    warm.cycle = 1000;
    alloy.access(warm);

    const DramCacheResult lh_hit = lh.access(77);
    DramCacheRequest probe = warm;
    probe.cycle = 100000;
    const DramCacheResult ac_hit = alloy.access(probe);
    ASSERT_TRUE(lh_hit.hit);
    ASSERT_TRUE(ac_hit.hit);
    EXPECT_GT(lh_hit.doneAt - lh.clock, ac_hit.doneAt - probe.cycle);
}

TEST(LohHillCache, DirtyEvictionWritesBack)
{
    Rig rig(64_KiB); // 8 rows: small enough to force evictions
    const std::uint32_t ways = rig.cache->geometry().waysPerSet;
    const std::uint64_t rows = rig.cache->geometry().numRows;

    rig.access(3);       // allocate (write misses do not allocate)
    rig.access(3, true); // dirty the resident block
    EXPECT_TRUE(rig.cache->blockDirty(blockAddress(3)));
    // Fill the whole set with conflicting blocks.
    const std::uint64_t writes_before = rig.offchip.stats().writes;
    for (std::uint32_t w = 1; w <= ways; ++w)
        rig.access(3 + static_cast<std::uint64_t>(w) * rows);
    EXPECT_FALSE(rig.cache->blockPresent(blockAddress(3)))
        << "LRU evicted the dirty block";
    EXPECT_GE(rig.offchip.stats().writes, writes_before + 1);
}

TEST(LohHillCache, StatsIdentities)
{
    Rig rig;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        rig.access(rng.below(1u << 16), rng.chance(0.25));
    const DramCacheStats &s = rig.cache->stats();
    EXPECT_EQ(s.hits.value() + s.misses.value(), s.accesses());
    EXPECT_EQ(s.offchipFetchedBlocks(), rig.offchip.stats().reads);
}

} // namespace
} // namespace unison
