/**
 * @file
 * Tests for the MemoryBackend seam (dram/backend.hh): backend
 * registry/factory behaviour, fast-vs-detailed zero-contention
 * equivalence, and the detailed controller's FR-FCFS invariants
 * (posted writes, drain watermarks, the starvation cap).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/state_io.hh"
#include "dram/backend.hh"
#include "dram/detailed.hh"
#include "dram/dram.hh"
#include "dram/timing.hh"

namespace unison {
namespace {

DramTimingCpu
stackedCpu()
{
    return DramTimingCpu::fromParams(stackedDramTiming());
}

// ------------------------------------------------- registry / factory

TEST(BackendRegistry, IdsRoundTrip)
{
    const std::vector<std::string> &ids = memoryBackendIds();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], "fast");
    EXPECT_EQ(ids[1], "detailed");

    for (MemoryBackendKind kind :
         {MemoryBackendKind::Fast, MemoryBackendKind::Detailed}) {
        MemoryBackendKind parsed;
        ASSERT_TRUE(memoryBackendFromId(memoryBackendId(kind), parsed));
        EXPECT_EQ(parsed, kind);
        EXPECT_FALSE(memoryBackendSummary(kind).empty());
    }

    MemoryBackendKind parsed;
    EXPECT_FALSE(memoryBackendFromId("analytic", parsed));
    EXPECT_FALSE(memoryBackendFromId("", parsed));
}

TEST(BackendRegistry, FactorySelectsByOrganization)
{
    DramOrganization org = stackedDramOrganization();

    org.backend = MemoryBackendKind::Fast;
    auto fast = makeMemoryBackend(org, stackedDramTiming());
    EXPECT_NE(dynamic_cast<DramModule *>(fast.get()), nullptr);
    EXPECT_FALSE(fast->queueStats().any());

    org.backend = MemoryBackendKind::Detailed;
    auto detailed = makeMemoryBackend(org, stackedDramTiming());
    EXPECT_NE(dynamic_cast<DetailedBackend *>(detailed.get()), nullptr);

    // Both map a row index identically (shared interleaving in the
    // base class) and report the same unloaded latencies.
    EXPECT_EQ(fast->rowOfAddr(123456789), detailed->rowOfAddr(123456789));
    EXPECT_EQ(fast->unloadedRowHitLatency(64),
              detailed->unloadedRowHitLatency(64));
    EXPECT_EQ(fast->unloadedRowConflictLatency(64),
              detailed->unloadedRowConflictLatency(64));
}

// ---------------------------------- fast == detailed (reads, no load)

/**
 * With a strict single open row (openRowWindow=1) and no writes in
 * flight, the detailed controller must time every read cycle-for-cycle
 * like the analytic channel: the bank/bus/refresh arithmetic is shared
 * by construction, and the write queue is empty so FR-FCFS never
 * reorders anything.
 */
TEST(BackendEquivalence, ReadSinglesMatchCycleForCycle)
{
    const DramTimingCpu t = stackedCpu();
    DramChannel fast(t, 8, /*open_row_window=*/1);
    DetailedChannel detailed(t, 8);

    // Row empty, row hit, row conflict -- the three service paths.
    const struct
    {
        std::uint64_t row;
        Cycle earliest;
    } singles[] = {{7, 1000}, {7, 5000}, {9, 50000}};

    for (const auto &s : singles) {
        const DramAccessTiming a = fast.access(0, s.row, 64, false,
                                               s.earliest);
        const DramAccessTiming b = detailed.access(0, s.row, 64, false,
                                                   s.earliest);
        EXPECT_EQ(a.completion, b.completion) << "row " << s.row;
        EXPECT_EQ(a.rowHit, b.rowHit) << "row " << s.row;
    }
}

TEST(BackendEquivalence, RandomReadStreamMatches)
{
    const DramTimingCpu t = stackedCpu();
    DramChannel fast(t, 8, /*open_row_window=*/1);
    DetailedChannel detailed(t, 8);

    Rng rng(321);
    Cycle at = 0;
    for (int i = 0; i < 5000; ++i) {
        const int bank = static_cast<int>(rng.below(8));
        const std::uint64_t row = rng.below(64);
        at += rng.below(40);
        const DramAccessTiming a = fast.access(bank, row, 64, false, at);
        const DramAccessTiming b =
            detailed.access(bank, row, 64, false, at);
        ASSERT_EQ(a.completion, b.completion) << "access " << i;
        ASSERT_EQ(a.rowHit, b.rowHit) << "access " << i;
    }
    EXPECT_EQ(fast.stats().rowHits.value(),
              detailed.stats().rowHits.value());
    EXPECT_EQ(fast.stats().activations.value(),
              detailed.stats().activations.value());
}

TEST(BackendEquivalence, PoolReadStreamMatches)
{
    DramOrganization org = stackedDramOrganization();
    org.openRowWindow = 1;
    DramModule fast(org, stackedDramTiming());
    DetailedBackend detailed(org, stackedDramTiming());

    Rng rng(11);
    Cycle at = 0;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t row = rng.below(4096);
        at += rng.below(25);
        const DramAccessTiming a = fast.rowAccess(row, 64, false, at);
        const DramAccessTiming b = detailed.rowAccess(row, 64, false, at);
        ASSERT_EQ(a.completion, b.completion) << "access " << i;
        ASSERT_EQ(a.rowHit, b.rowHit) << "access " << i;
    }
    EXPECT_EQ(fast.stats().reads, detailed.stats().reads);
    EXPECT_EQ(fast.stats().rowHits, detailed.stats().rowHits);
    EXPECT_EQ(fast.stats().rowConflicts, detailed.stats().rowConflicts);
}

// --------------------------------------- FR-FCFS controller invariants

TEST(DetailedChannel, PostedWriteCompletesAtAcceptance)
{
    DetailedChannel ch(stackedCpu(), 8);
    const DramAccessTiming w = ch.access(0, 5, 64, true, 1234);
    EXPECT_EQ(w.completion, 1234u);
    EXPECT_FALSE(w.rowHit);
    EXPECT_EQ(ch.writeQueueSize(), 1);
    // Traffic counters count at drain time, not at acceptance.
    EXPECT_EQ(ch.stats().writes.value(), 0u);
}

TEST(DetailedChannel, WatermarksBoundTheWriteQueue)
{
    DetailedChannel ch(stackedCpu(), 8);

    Cycle at = 0;
    std::uint64_t enqueues = 0;
    for (int i = 0; i < 100; ++i) {
        at += 50;
        ch.access(i % 8, static_cast<std::uint64_t>(100 + i), 64, true,
                  at);
        ++enqueues;
        // Crossing the high watermark drains down to the low one
        // before the call returns, so the queue never sits at or
        // above the high mark between accesses.
        EXPECT_LT(ch.writeQueueSize(),
                  DetailedChannel::kWriteHighWatermark);
    }

    const MemoryQueueStats &q = ch.queueStats();
    // 24 writes trigger the first episode (24 -> 16), then every 8th
    // write triggers another: 10 episodes over 100 writes.
    EXPECT_EQ(q.writeDrains, 10u);
    EXPECT_EQ(q.drainedWrites,
              10u * (DetailedChannel::kWriteHighWatermark -
                     DetailedChannel::kWriteLowWatermark));
    EXPECT_EQ(ch.writeQueueSize(),
              static_cast<int>(enqueues - q.drainedWrites));
    EXPECT_EQ(ch.stats().writes.value(), q.drainedWrites);

    // Every enqueue sampled the occupancy histogram exactly once.
    std::uint64_t samples = 0;
    for (std::uint64_t bucket : q.occupancy)
        samples += bucket;
    EXPECT_EQ(samples, enqueues);
}

TEST(DetailedChannel, FrFcfsDrainPrefersOpenRow)
{
    DetailedChannel ch(stackedCpu(), 8);

    // Open row 5 in bank 0, then queue 23 writes to bank 1 and one to
    // the open (bank 0, row 5). The 24th enqueue crosses the high
    // watermark; the first drain must skip ahead to the row-hit write
    // even though it is the youngest entry.
    ch.access(0, 5, 64, false, 0);
    Cycle at = 1000;
    for (int i = 0; i < 23; ++i) {
        at += 50;
        ch.access(1, static_cast<std::uint64_t>(100 + i), 64, true, at);
    }
    EXPECT_EQ(ch.queueStats().frfcfsReorders, 0u);
    ch.access(0, 5, 64, true, at + 50);

    const MemoryQueueStats &q = ch.queueStats();
    EXPECT_EQ(q.writeDrains, 1u);
    EXPECT_EQ(q.drainedWrites, 8u);
    // Exactly one drain found a row hit deeper in the queue; the other
    // seven retire the oldest entry (bank 1's rows were all closed).
    EXPECT_EQ(q.frfcfsReorders, 1u);
    EXPECT_EQ(ch.writeQueueSize(), DetailedChannel::kWriteLowWatermark);
}

TEST(DetailedChannel, StarvationCapBoundsWriteBypasses)
{
    DetailedChannel ch(stackedCpu(), 8);

    ch.access(0, 1, 64, true, 0); // the write that would starve
    Cycle at = 100;
    for (int i = 0; i < 40; ++i) {
        at += 200;
        ch.access(1, 2, 64, false, at);
        // No queued write is ever left at or beyond the cap once a
        // read has been serviced.
        EXPECT_LT(ch.maxQueuedBypasses(),
                  static_cast<std::uint32_t>(
                      DetailedChannel::kStarvationCap));
    }
    // The 16th bypassing read forced the drain.
    EXPECT_EQ(ch.queueStats().starvationDrains, 1u);
    EXPECT_EQ(ch.writeQueueSize(), 0);
    EXPECT_EQ(ch.stats().writes.value(), 1u);
}

TEST(DetailedChannel, StateRoundTripResumesIdentically)
{
    const DramTimingCpu t = stackedCpu();
    DetailedChannel a(t, 8);

    // History: reads and queued writes (the queue must survive the
    // checkpoint -- it is timing state, not statistics).
    Rng rng(99);
    Cycle at = 0;
    for (int i = 0; i < 300; ++i) {
        at += rng.below(60);
        const bool is_write = rng.below(3) == 0;
        a.access(static_cast<int>(rng.below(8)), rng.below(32), 64,
                 is_write, at);
    }
    ASSERT_GT(a.writeQueueSize(), 0);

    StateWriter out;
    a.saveState(out);
    const std::vector<std::uint8_t> bytes = std::move(out).take();

    DetailedChannel b(t, 8);
    StateReader in(bytes);
    b.loadState(in);
    EXPECT_EQ(b.writeQueueSize(), a.writeQueueSize());

    // Identical futures from the restored state.
    for (int i = 0; i < 300; ++i) {
        at += rng.below(60);
        const bool is_write = rng.below(3) == 0;
        const int bank = static_cast<int>(rng.below(8));
        const std::uint64_t row = rng.below(32);
        const DramAccessTiming ra = a.access(bank, row, 64, is_write, at);
        const DramAccessTiming rb = b.access(bank, row, 64, is_write, at);
        ASSERT_EQ(ra.completion, rb.completion) << "access " << i;
        ASSERT_EQ(ra.rowHit, rb.rowHit) << "access " << i;
    }
}

} // namespace
} // namespace unison
