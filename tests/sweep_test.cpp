/**
 * @file
 * SweepGrid and spec-validation contracts: expansion order matches
 * the nested loops it replaced (last axis fastest), labels and coords
 * are stable, shards partition the grid exactly, every named figure
 * expands to valid specs, and ExperimentSpec::validationError catches
 * the malformed-spec classes with actionable messages.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sim/figures.hh"
#include "sim/sweep.hh"

namespace unison {
namespace {

TEST(SweepGrid, ExpandsInNestedLoopOrder)
{
    SweepGrid grid;
    grid.overWorkloads({Workload::WebServing, Workload::DataServing})
        .overCapacities({128_MiB, 256_MiB})
        .overDesigns({DesignKind::Alloy, DesignKind::Unison});

    const std::vector<GridPoint> points = grid.points();
    ASSERT_EQ(points.size(), 8u);
    EXPECT_EQ(grid.size(), 8u);

    // Same order as: for (w) for (cap) for (design).
    EXPECT_EQ(points[0].label, "webserving/128MB/alloy");
    EXPECT_EQ(points[1].label, "webserving/128MB/unison");
    EXPECT_EQ(points[2].label, "webserving/256MB/alloy");
    EXPECT_EQ(points[4].label, "dataserving/128MB/alloy");
    EXPECT_EQ(points[7].label, "dataserving/256MB/unison");

    EXPECT_EQ(points[5].spec.workload, Workload::DataServing);
    EXPECT_EQ(points[5].spec.capacityBytes, 128_MiB);
    EXPECT_EQ(points[5].spec.designKind(), DesignKind::Unison);
    EXPECT_EQ(points[5].coords,
              (std::vector<std::size_t>{1, 0, 1}));
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
}

TEST(SweepGrid, KnobAxisAppliesIntoTheDesignConfig)
{
    SweepGrid grid;
    grid.base().design = DesignKind::Unison;
    grid.overKnob<std::uint32_t>(
        "assoc", {1, 4, 32},
        [](ExperimentSpec &spec, const std::uint32_t &assoc) {
            spec.design.as<UnisonConfig>().assoc = assoc;
        });

    const std::vector<GridPoint> points = grid.points();
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].label, "assoc=1");
    EXPECT_EQ(points[2].label, "assoc=32");
    EXPECT_EQ(points[2].spec.design.as<UnisonConfig>().assoc, 32u);
}

TEST(SweepGrid, EmptyGridIsJustTheBaseSpec)
{
    ExperimentSpec base;
    base.capacityBytes = 64_MiB;
    SweepGrid grid(base);
    const std::vector<GridPoint> points = grid.points();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].spec.capacityBytes, 64_MiB);
}

TEST(SweepGrid, ShardUnionIsExactlyTheFullGrid)
{
    FigureOptions opts;
    opts.quick = true;
    const std::vector<GridPoint> full = figureGrid("fig6", opts);

    for (std::size_t shards : {1u, 2u, 3u, 7u}) {
        std::set<std::size_t> seen;
        std::size_t total = 0;
        for (std::size_t s = 0; s < shards; ++s) {
            for (const GridPoint &point :
                 shardPoints(full, s, shards)) {
                // Disjoint: no index may appear in two shards.
                EXPECT_TRUE(seen.insert(point.index).second);
                EXPECT_EQ(full[point.index].label, point.label);
                ++total;
            }
        }
        EXPECT_EQ(total, full.size());
        EXPECT_EQ(seen.size(), full.size());
    }
}

TEST(SweepGrid, EveryFigureExpandsToValidUniqueSpecs)
{
    FigureOptions opts;
    opts.quick = true;
    for (const std::string &name : figureNames()) {
        SCOPED_TRACE(name);
        const std::vector<GridPoint> points = figureGrid(name, opts);
        EXPECT_FALSE(points.empty());
        std::set<std::string> labels;
        for (const GridPoint &point : points) {
            EXPECT_EQ(point.spec.validationError(), "")
                << "point " << point.label;
            EXPECT_TRUE(labels.insert(point.label).second)
                << "duplicate label " << point.label;
        }
    }
}

// ------------------------------------------------------- validation

TEST(SpecValidation, AcceptsTheDefaultSpec)
{
    ExperimentSpec spec;
    EXPECT_EQ(spec.validationError(), "");
}

TEST(SpecValidation, RejectsBadCoreCounts)
{
    ExperimentSpec spec;
    spec.system.numCores = 0;
    EXPECT_NE(spec.validationError().find(">= 1 core"),
              std::string::npos);
    spec.system.numCores = 1000; // fine since the cap moved to kMaxCores
    EXPECT_EQ(spec.validationError(), "");
    spec.system.numCores = kMaxCores + 1;
    EXPECT_NE(spec.validationError().find(std::to_string(kMaxCores)),
              std::string::npos);
}

TEST(SpecValidation, RejectsBadCapacities)
{
    ExperimentSpec spec;
    spec.capacityBytes = 0;
    EXPECT_NE(spec.validationError().find("non-zero"),
              std::string::npos);
    spec.capacityBytes = 12345; // not row-aligned
    EXPECT_NE(spec.validationError().find("DRAM row"),
              std::string::npos);

    // The no-cache baseline does not need a capacity.
    spec.design = DesignKind::NoDramCache;
    spec.capacityBytes = 0;
    EXPECT_EQ(spec.validationError(), "");
}

TEST(SpecValidation, RejectsMixCoreMismatch)
{
    ExperimentSpec spec;
    spec.mix = parseMixSpec("webserving:2,chase:2");
    spec.system.numCores = 16; // mix covers only 4
    const std::string err = spec.validationError();
    EXPECT_NE(err.find("mix assigns 4 cores"), std::string::npos);
    EXPECT_NE(err.find("16"), std::string::npos);

    spec.system.numCores = 4;
    EXPECT_EQ(spec.validationError(), "");
}

TEST(SpecValidation, RejectsMixPartWithoutASource)
{
    ExperimentSpec spec;
    MixPart empty;
    empty.cores = 4;
    spec.mix = {empty};
    spec.system.numCores = 4;
    EXPECT_NE(spec.validationError().find("exactly one"),
              std::string::npos);
}

TEST(SpecValidation, RejectsWarmupSwallowingTheRun)
{
    ExperimentSpec spec;
    spec.accesses = 1000;
    spec.system.warmupAccesses = 1000;
    EXPECT_NE(spec.validationError().find("measured window"),
              std::string::npos);
    spec.system.warmupAccesses = 999;
    EXPECT_EQ(spec.validationError(), "");

    // The auto-scaled length (accesses = 0) is checked too: a warm-up
    // larger than defaultAccessCount must not silently produce an
    // all-warm-up run with zero measured references.
    spec.accesses = 0;
    spec.system.warmupAccesses =
        defaultAccessCount(spec.capacityBytes, spec.quick);
    EXPECT_NE(spec.validationError().find("auto-scaled"),
              std::string::npos);
    spec.system.warmupAccesses -= 1;
    EXPECT_EQ(spec.validationError(), "");
}

TEST(SpecValidation, DesignKnobRangesComeFromTheRegistry)
{
    ExperimentSpec spec;
    spec.design.as<UnisonConfig>().fhtConfig.numEntries = 1000;
    // 1000 entries / 6 ways is not a power-of-two set count.
    const std::string err = spec.validationError();
    EXPECT_NE(err.find("unison"), std::string::npos);
    EXPECT_NE(err.find("fhtEntries"), std::string::npos);
}

TEST(SpecValidation, RunExperimentFatalsOnInvalidSpecs)
{
    ExperimentSpec spec;
    spec.system.numCores = 0;
    EXPECT_EXIT(runExperiment(spec),
                ::testing::ExitedWithCode(1),
                "invalid experiment spec");
}

} // namespace
} // namespace unison
