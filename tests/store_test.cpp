/**
 * @file
 * Contracts of the content-addressed result store (store/result_store):
 *
 *  - insert/lookup round-trips a result byte-exactly, keyed by spec
 *    content (an equal-but-distinct spec value hits; any changed knob
 *    misses);
 *  - wired into runExperiments as RunHooks::cache, a warm store
 *    serves a repeated sweep with ZERO simulation and byte-identical
 *    results, across designs and both memory backends;
 *  - a store written by a different code version never serves this
 *    build (fresh simulation, not a wrong-numbers hit);
 *  - a corrupted object (injected via the FaultInjector read seam and
 *    via direct byte damage) is rejected with a structured warning
 *    and degrades to a miss -- never a half-trusted result;
 *  - gc() respects the byte budget, evicts oldest-first, and never
 *    evicts pinned (in-flight) objects, which is what makes a
 *    concurrent `store gc` safe under an active sweep.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <utime.h>

#include "common/fault_injection.hh"
#include "common/file_io.hh"
#include "common/version.hh"
#include "sim/runner.hh"
#include "sim/spec_json.hh"
#include "store/result_store.hh"

namespace unison {
namespace {

std::string
tempDir(const std::string &name)
{
    ::mkdir("store_test_tmp", 0777);
    const std::string dir = "store_test_tmp/" + name;
    // Fresh store per test: drop any objects a previous run left.
    [[maybe_unused]] const int rc =
        ::system(("rm -rf " + dir).c_str());
    return dir;
}

std::string
resultKey(const SimResult &result)
{
    return json::write(resultToJson(result));
}

ExperimentSpec
tinySpec(DesignKind design, std::uint64_t seed = 7,
         MemoryBackendKind backend = MemoryBackendKind::Fast)
{
    ExperimentSpec spec;
    spec.design = design;
    spec.capacityBytes = 32_MiB;
    spec.system.numCores = 4;
    spec.system.memoryBackend = backend;
    spec.accesses = 30'000;
    spec.seed = seed;
    return spec;
}

// ------------------------------------------------------- round trip

TEST(ResultStore, InsertLookupRoundTripsByteExactly)
{
    ResultStore store(tempDir("roundtrip"));
    const ExperimentSpec spec = tinySpec(DesignKind::Alloy);
    const SimResult fresh = runExperiment(spec);

    SimResult out;
    EXPECT_FALSE(store.lookup(spec, out)); // cold store
    EXPECT_EQ(store.misses(), 1u);

    store.insert(spec, fresh);
    EXPECT_EQ(store.inserts(), 1u);
    ASSERT_TRUE(store.lookup(spec, out));
    EXPECT_EQ(resultKey(out), resultKey(fresh));
    EXPECT_EQ(store.hits(), 1u);

    // Content addressing: an equal spec VALUE hits (identity is the
    // serialized content, not the object)...
    SimResult again;
    ExperimentSpec copy = spec;
    ASSERT_TRUE(store.lookup(copy, again));
    EXPECT_EQ(resultKey(again), resultKey(fresh));

    // ...and any knob change misses.
    copy.seed += 1;
    EXPECT_FALSE(store.lookup(copy, again));
}

// --------------------------------- runner seam: cache-hit sweeps

TEST(ResultStore, WarmStoreServesSweepWithZeroSimulation)
{
    // >= 3 designs x both memory backends, as one grid.
    std::vector<ExperimentSpec> specs;
    for (const DesignKind design :
         {DesignKind::Unison, DesignKind::Alloy, DesignKind::Footprint})
        for (const MemoryBackendKind backend :
             {MemoryBackendKind::Fast, MemoryBackendKind::Detailed})
            specs.push_back(tinySpec(design, /*seed=*/11, backend));

    ResultStore store(tempDir("sweep"));

    // Cold run: everything simulates, everything publishes.
    std::vector<SimResult> first;
    {
        StoreCacheHook hook(store, specs);
        RunHooks hooks;
        hooks.cache = &hook;
        first = runExperiments(specs, /*threads=*/2, nullptr, hooks);
        EXPECT_EQ(hook.hits(), 0u);
    }
    EXPECT_EQ(store.inserts(), specs.size());

    // Warm run: zero simulation (every point replays in the pre-pass,
    // so the hook's hit counter covers the whole grid), results
    // byte-identical.
    std::vector<SimResult> second;
    {
        StoreCacheHook hook(store, specs);
        RunHooks hooks;
        hooks.cache = &hook;
        std::size_t done_calls = 0;
        second = runExperiments(
            specs, /*threads=*/2,
            [&](std::size_t, const SimResult &) { ++done_calls; },
            hooks);
        EXPECT_EQ(hook.hits(), specs.size());
        EXPECT_EQ(done_calls, specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i)
            EXPECT_TRUE(hook.wasHit(i));
    }
    EXPECT_EQ(store.inserts(), specs.size()); // no re-publish

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(resultKey(first[i]), resultKey(second[i])) << i;
}

// ------------------------------------------------- version isolation

TEST(ResultStore, StaleCodeVersionNeverServes)
{
    const std::string dir = tempDir("stale");
    const ExperimentSpec spec = tinySpec(DesignKind::Unison);
    const SimResult fresh = runExperiment(spec);

    {
        ResultStore old_build(dir, "unison-sim/0-ancient");
        old_build.insert(spec, fresh);
    }

    ResultStore store(dir); // current kSimCodeVersion
    SimResult out;
    EXPECT_FALSE(store.lookup(spec, out));

    // Same store dir, same build again: hits.
    ResultStore old_again(dir, "unison-sim/0-ancient");
    EXPECT_TRUE(old_again.lookup(spec, out));
    EXPECT_EQ(resultKey(out), resultKey(fresh));
}

// ------------------------------------------------ corruption rejection

TEST(ResultStore, CorruptedObjectIsRejectedNotTrusted)
{
    ResultStore store(tempDir("corrupt"));
    const ExperimentSpec spec = tinySpec(DesignKind::Alloy);
    store.insert(spec, runExperiment(spec));

    // Injected read-side corruption (the lying-disk seam): the frame
    // CRC catches it, lookup degrades to a miss.
    FaultPlan plan;
    plan.point = FaultPlan::Point::Read;
    plan.mode = FaultPlan::Mode::Corrupt;
    plan.pathSubstr = ".res";
    plan.offset = 20; // inside the payload
    FaultInjector::instance().arm(plan);
    SimResult out;
    EXPECT_FALSE(store.lookup(spec, out));
    FaultInjector::instance().disarm();

    // Undamaged on disk: the same object still serves.
    EXPECT_TRUE(store.lookup(spec, out));

    // Persistent damage: flip one payload byte on disk.
    const std::string path = store.objectPath(specFingerprint(spec));
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(readFileBytes(path, bytes).ok());
    bytes[bytes.size() / 2] ^= 0x40;
    ASSERT_TRUE(writeFileBytes(path, bytes).ok());
    EXPECT_FALSE(store.lookup(spec, out));

    // A truncated (torn-looking) object is equally a miss.
    bytes[bytes.size() / 2] ^= 0x40; // restore
    bytes.resize(bytes.size() - 3);
    ASSERT_TRUE(writeFileBytes(path, bytes).ok());
    EXPECT_FALSE(store.lookup(spec, out));
}

TEST(ResultStore, MisplacedObjectIsRejectedByEmbeddedSpec)
{
    ResultStore store(tempDir("misplaced"));
    const ExperimentSpec a = tinySpec(DesignKind::Alloy, 1);
    const ExperimentSpec b = tinySpec(DesignKind::Alloy, 2);
    store.insert(a, runExperiment(a));

    // Simulate a hash collision / a mis-renamed file: b's address now
    // holds a's object. The recomputed fingerprint must refuse it.
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(
        readFileBytes(store.objectPath(specFingerprint(a)), bytes)
            .ok());
    ASSERT_TRUE(
        writeFileBytes(store.objectPath(specFingerprint(b)), bytes)
            .ok());
    SimResult out;
    EXPECT_FALSE(store.lookup(b, out));
    EXPECT_TRUE(store.lookup(a, out)); // the original is untouched
}

// ------------------------------------------------------------- gc

TEST(ResultStore, GcRespectsBudgetAndPins)
{
    ResultStore store(tempDir("gc"));
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t seed = 0; seed < 4; ++seed)
        specs.push_back(tinySpec(DesignKind::Alloy, 200 + seed));
    std::vector<std::string> fps;
    std::vector<std::uint64_t> sizes;
    for (const ExperimentSpec &spec : specs) {
        store.insert(spec, runExperiment(spec));
        fps.push_back(specFingerprint(spec));
        sizes.push_back(fileSizeOrZero(store.objectPath(fps.back())));
    }

    // Age the objects deterministically: fps[0] oldest ... fps[3]
    // newest (mtime is the eviction order, and inserts above can all
    // land within one clock tick).
    for (std::size_t i = 0; i < fps.size(); ++i) {
        struct utimbuf times;
        times.actime = static_cast<time_t>(1000000 + i);
        times.modtime = static_cast<time_t>(1000000 + i);
        ASSERT_EQ(
            ::utime(store.objectPath(fps[i]).c_str(), &times), 0);
    }

    std::uint64_t total = 0;
    for (const std::uint64_t s : sizes)
        total += s;

    // Budget for roughly two objects: the two oldest go.
    const std::uint64_t budget = sizes[2] + sizes[3];
    const StoreGcSummary sum = store.gc(budget);
    EXPECT_EQ(sum.scanned, 4u);
    EXPECT_EQ(sum.bytesBefore, total);
    EXPECT_LE(sum.bytesAfter, budget);
    EXPECT_FALSE(fileExists(store.objectPath(fps[0])));
    EXPECT_FALSE(fileExists(store.objectPath(fps[1])));
    EXPECT_TRUE(fileExists(store.objectPath(fps[2])));
    EXPECT_TRUE(fileExists(store.objectPath(fps[3])));

    // A generous budget is a no-op.
    const StoreGcSummary idle = store.gc(total);
    EXPECT_EQ(idle.evicted, 0u);

    // Pinned objects survive even a zero budget -- the in-flight
    // guarantee. Unpinned ones do not.
    store.pin(fps[2]);
    const StoreGcSummary pinned = store.gc(0);
    EXPECT_TRUE(fileExists(store.objectPath(fps[2])));
    EXPECT_FALSE(fileExists(store.objectPath(fps[3])));
    EXPECT_EQ(pinned.pinnedKept, 1u);
    EXPECT_EQ(pinned.evicted, 1u);

    // Unpinned again, the last object is evictable.
    store.unpin(fps[2]);
    store.gc(0);
    EXPECT_FALSE(fileExists(store.objectPath(fps[2])));
}

TEST(ResultStore, HookPinsItsSpecsForItsLifetime)
{
    ResultStore store(tempDir("hookpin"));
    std::vector<ExperimentSpec> specs{tinySpec(DesignKind::Unison)};
    store.insert(specs[0], runExperiment(specs[0]));
    const std::string path =
        store.objectPath(specFingerprint(specs[0]));

    {
        StoreCacheHook hook(store, specs);
        store.gc(0); // in-flight: must survive a zero budget
        EXPECT_TRUE(fileExists(path));
    }
    store.gc(0); // hook gone, pin released
    EXPECT_FALSE(fileExists(path));
}

// ---------------------------------------------- insert degradation

TEST(ResultStore, FailedInsertDegradesToAWarning)
{
    ResultStore store(tempDir("failsave"));
    const ExperimentSpec spec = tinySpec(DesignKind::Alloy);
    const SimResult fresh = runExperiment(spec);

    FaultPlan plan;
    plan.point = FaultPlan::Point::Write;
    plan.mode = FaultPlan::Mode::Fail;
    plan.pathSubstr = ".tmp.";
    plan.offset = 10;
    FaultInjector::instance().arm(plan);
    store.insert(spec, fresh); // must not throw or exit
    FaultInjector::instance().disarm();

    EXPECT_EQ(store.inserts(), 0u);
    SimResult out;
    EXPECT_FALSE(store.lookup(spec, out)); // nothing half-published

    store.insert(spec, fresh); // and the path recovers
    EXPECT_TRUE(store.lookup(spec, out));
}

} // namespace
} // namespace unison
