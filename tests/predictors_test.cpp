/**
 * @file
 * Tests for all four predictors: the footprint history table, the
 * singleton table, the way predictor, and the MAP-I miss predictor --
 * including the Table II storage budgets.
 */

#include <gtest/gtest.h>

#include "predictors/footprint_table.hh"
#include "predictors/miss_predictor.hh"
#include "predictors/singleton_table.hh"
#include "predictors/way_predictor.hh"

namespace unison {
namespace {

TEST(FootprintTable, LearnsAndPredicts)
{
    FootprintHistoryTable fht(FootprintTableConfig{});
    std::uint64_t mask = 0;
    EXPECT_FALSE(fht.predict(0x400100, 3, mask)) << "cold table";

    fht.update(0x400100, 3, 0b101100);
    ASSERT_TRUE(fht.predict(0x400100, 3, mask));
    EXPECT_EQ(mask, 0b101100u);

    // A later residency retrains the same entry (replace semantics,
    // which is how under/over-prediction corrections propagate).
    fht.update(0x400100, 3, 0b000110);
    ASSERT_TRUE(fht.predict(0x400100, 3, mask));
    EXPECT_EQ(mask, 0b000110u);
}

TEST(FootprintTable, OffsetIsPartOfTheKey)
{
    FootprintHistoryTable fht(FootprintTableConfig{});
    fht.update(0x400100, 3, 0b111);
    std::uint64_t mask = 0;
    EXPECT_FALSE(fht.predict(0x400100, 4, mask))
        << "same PC, different offset: distinct entry (Sec. III-A.1)";
    fht.update(0x400100, 4, 0b1111);
    ASSERT_TRUE(fht.predict(0x400100, 4, mask));
    EXPECT_EQ(mask, 0b1111u);
    ASSERT_TRUE(fht.predict(0x400100, 3, mask));
    EXPECT_EQ(mask, 0b111u);
}

TEST(FootprintTable, MergeWidensEntry)
{
    FootprintHistoryTable fht(FootprintTableConfig{});
    fht.update(0x42, 1, 0b0010);
    fht.merge(0x42, 1, 0b1000);
    std::uint64_t mask = 0;
    ASSERT_TRUE(fht.predict(0x42, 1, mask));
    EXPECT_EQ(mask, 0b1010u);

    // Merge on a missing entry behaves like an insert.
    fht.merge(0x43, 2, 0b0110);
    ASSERT_TRUE(fht.predict(0x43, 2, mask));
    EXPECT_EQ(mask, 0b0110u);
}

TEST(FootprintTable, EvictsLruUnderPressure)
{
    FootprintTableConfig cfg;
    cfg.numEntries = 8;
    cfg.assoc = 2; // 4 sets
    FootprintHistoryTable fht(cfg);
    // Fill far beyond capacity; recent entries must survive.
    for (Pc pc = 0; pc < 1000; ++pc)
        fht.update(pc, 0, 0b1);
    std::uint64_t mask = 0;
    int survivors = 0;
    for (Pc pc = 990; pc < 1000; ++pc) {
        if (fht.predict(pc, 0, mask))
            ++survivors;
    }
    EXPECT_GE(survivors, 4) << "recently inserted keys should remain";
}

TEST(FootprintTable, StorageBudgetMatchesTableII)
{
    FootprintHistoryTable fht(FootprintTableConfig{});
    // Table II: 144 KB footprint history table.
    EXPECT_NEAR(static_cast<double>(fht.storageBytes()),
                144.0 * 1024.0, 16.0 * 1024.0);
}

TEST(SingletonTable, InsertCheckRemove)
{
    SingletonTable table(SingletonTableConfig{});
    table.insert(/*page=*/77, /*pc=*/0x400, /*offset=*/5,
                 /*first_block=*/5);

    Pc pc = 0;
    std::uint32_t off = 0, first = 0;
    ASSERT_TRUE(table.checkAndRemove(77, pc, off, first));
    EXPECT_EQ(pc, 0x400u);
    EXPECT_EQ(off, 5u);
    EXPECT_EQ(first, 5u);
    // Consumed: the second check must fail.
    EXPECT_FALSE(table.checkAndRemove(77, pc, off, first));
    EXPECT_EQ(table.stats().promotions.value(), 1u);
}

TEST(SingletonTable, MissOnUnknownPage)
{
    SingletonTable table(SingletonTableConfig{});
    Pc pc;
    std::uint32_t off, first;
    EXPECT_FALSE(table.checkAndRemove(123, pc, off, first));
}

TEST(SingletonTable, StorageBudgetMatchesTableII)
{
    SingletonTable table(SingletonTableConfig{});
    // Table II: 3 KB singleton table.
    EXPECT_EQ(table.storageBytes(), 3u * 1024u);
}

TEST(WayPredictor, TrainsAndPredicts)
{
    WayPredictor wp(12, 4);
    const std::uint64_t page = 0xabcdef;
    wp.train(page, 2);
    EXPECT_EQ(wp.predict(page), 2u);
    wp.train(page, 3);
    EXPECT_EQ(wp.predict(page), 3u);
}

TEST(WayPredictor, PaperSizing)
{
    // "a 2-bit array directly indexed by the 12-bit XOR hash of the
    // page address (16-bit XOR for caches above 4GB)" -> 1 KB / 16 KB.
    WayPredictor small(12, 4);
    EXPECT_EQ(small.storageBytes(), 1024u);
    WayPredictor large(16, 4);
    EXPECT_EQ(large.storageBytes(), 16u * 1024u);

    EXPECT_EQ(WayPredictor::indexBitsForCapacity(1_GiB), 12u);
    EXPECT_EQ(WayPredictor::indexBitsForCapacity(4_GiB), 12u);
    EXPECT_EQ(WayPredictor::indexBitsForCapacity(8_GiB), 16u);
}

TEST(WayPredictor, AccuracyTracking)
{
    WayPredictor wp(12, 4);
    wp.recordOutcome(true);
    wp.recordOutcome(true);
    wp.recordOutcome(false);
    EXPECT_NEAR(wp.stats().accuracyPercent(), 66.67, 0.1);
    wp.resetStats();
    EXPECT_EQ(wp.stats().predictions.value(), 0u);
}

TEST(WayPredictor, DegenerateSingleWay)
{
    WayPredictor wp(12, 1);
    EXPECT_EQ(wp.predict(42), 0u);
    wp.train(42, 0); // must not crash
}

TEST(MissPredictor, SaturatingCounters)
{
    MissPredictorConfig cfg;
    cfg.numCores = 1;
    MissPredictor mp(cfg);
    const Pc pc = 0x1234;

    // Initialized to predict hit.
    EXPECT_TRUE(mp.predictHit(0, pc));

    // A run of misses flips the prediction.
    for (int i = 0; i < 8; ++i)
        mp.train(0, pc, mp.predictHit(0, pc), /*actual_hit=*/false);
    EXPECT_FALSE(mp.predictHit(0, pc));

    // A run of hits flips it back.
    for (int i = 0; i < 8; ++i)
        mp.train(0, pc, mp.predictHit(0, pc), /*actual_hit=*/true);
    EXPECT_TRUE(mp.predictHit(0, pc));
}

TEST(MissPredictor, PerCoreIsolation)
{
    MissPredictorConfig cfg;
    cfg.numCores = 2;
    MissPredictor mp(cfg);
    const Pc pc = 0x1234;
    for (int i = 0; i < 8; ++i)
        mp.train(0, pc, true, false); // core 0 sees misses
    EXPECT_FALSE(mp.predictHit(0, pc));
    EXPECT_TRUE(mp.predictHit(1, pc)) << "core 1 untouched";
}

TEST(MissPredictor, TableVStatsDefinitions)
{
    MissPredictorConfig cfg;
    cfg.numCores = 1;
    MissPredictor mp(cfg);
    const Pc pc = 1;
    // 3 misses: 2 predicted correctly, 1 wrongly; 1 hit predicted miss.
    mp.train(0, pc, /*pred_hit=*/false, /*actual=*/false);
    mp.train(0, pc, /*pred_hit=*/false, /*actual=*/false);
    mp.train(0, pc, /*pred_hit=*/true, /*actual=*/false);
    mp.train(0, pc, /*pred_hit=*/false, /*actual=*/true);

    // MP accuracy = misses predicted as miss / all misses.
    EXPECT_NEAR(mp.stats().accuracyPercent(), 100.0 * 2 / 3, 0.1);
    // Overfetch = wrongly fetched blocks / fetched blocks.
    EXPECT_NEAR(mp.stats().overfetchPercent(), 100.0 * 1 / 4, 0.1);
}

TEST(MissPredictor, StorageBudgetMatchesTableII)
{
    MissPredictorConfig cfg;
    cfg.numCores = 16;
    MissPredictor mp(cfg);
    // Table II: 96 B per core, 1.5 KB total for 16 cores.
    EXPECT_EQ(mp.storageBytes(), 1536u);
}

} // namespace
} // namespace unison
