/**
 * @file
 * Tests for Unison Cache itself: geometry (the Table II arithmetic),
 * address mapping, the footprint learn/predict/correct cycle,
 * singleton bypass and promotion, dirty writeback, way prediction, the
 * ablation policies, and parameterized invariant sweeps.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "core/unison_cache.hh"
#include "dram/dram.hh"

namespace unison {
namespace {

/** A small Unison Cache with its own memory pool and a clock. */
struct Rig
{
    DramModule offchip{offChipDramOrganization(), offChipDramTiming()};
    std::unique_ptr<UnisonCache> cache;
    Cycle clock = 0;

    explicit Rig(std::uint64_t capacity = 1_MiB,
                 std::uint32_t page_blocks = 15, std::uint32_t assoc = 4,
                 bool singleton = true)
    {
        UnisonConfig cfg;
        cfg.capacityBytes = capacity;
        cfg.pageBlocks = page_blocks;
        cfg.assoc = assoc;
        cfg.singletonEnabled = singleton;
        cache = std::make_unique<UnisonCache>(cfg, &offchip);
    }

    Rig(const UnisonConfig &cfg)
    {
        cache = std::make_unique<UnisonCache>(cfg, &offchip);
    }

    Addr
    addrOf(std::uint64_t page, std::uint32_t offset) const
    {
        return blockAddress(page * cache->config().pageBlocks + offset);
    }

    /** Page id that maps to the same set as `page`, `lap` sets later. */
    std::uint64_t
    conflictPage(std::uint64_t page, std::uint64_t lap) const
    {
        return page + lap * cache->geometry().numSets;
    }

    DramCacheResult
    read(std::uint64_t page, std::uint32_t offset, Pc pc = 0x400000)
    {
        clock += 500;
        DramCacheRequest req;
        req.addr = addrOf(page, offset);
        req.pc = pc;
        req.core = 0;
        req.isWrite = false;
        req.cycle = clock;
        return cache->access(req);
    }

    DramCacheResult
    write(std::uint64_t page, std::uint32_t offset, Pc pc = 0x400000)
    {
        clock += 500;
        DramCacheRequest req;
        req.addr = addrOf(page, offset);
        req.pc = pc;
        req.core = 0;
        req.isWrite = true;
        req.cycle = clock;
        return cache->access(req);
    }

    /**
     * Evict `page` by filling its set with conflicting allocations.
     * Uses laps >= 1000 so tests can safely probe low-lap conflict
     * pages afterwards.
     */
    void
    forceEvict(std::uint64_t page)
    {
        for (std::uint64_t lap = 1001;
             lap <= 1001 + cache->config().assoc; ++lap)
            read(conflictPage(page, lap), 0, 0x900000 + lap * 4);
    }
};

TEST(UnisonGeometry, Paper960ByteConfig)
{
    // Sec. IV-C.1: two 4-page sets per row, 120 data blocks per row.
    const UnisonGeometry g = UnisonGeometry::compute(1_GiB, 15, 4);
    EXPECT_EQ(g.setsPerRow, 2u);
    EXPECT_EQ(g.rowsPerSet, 1u);
    EXPECT_EQ(g.blocksPerRow, 120u);
    EXPECT_EQ(g.tagBurstBytes, 32u); // Fig. 3: 32 B tag region
    EXPECT_EQ(g.numRows, 1_GiB / kRowBytes);
    EXPECT_EQ(g.numSets, g.numRows * 2);
}

TEST(UnisonGeometry, Paper1984ByteConfig)
{
    // Table II: 120-124 blocks per row; 1984 B pages give one set/row.
    const UnisonGeometry g = UnisonGeometry::compute(1_GiB, 31, 4);
    EXPECT_EQ(g.setsPerRow, 1u);
    EXPECT_EQ(g.blocksPerRow, 124u);
}

TEST(UnisonGeometry, TableIIInDramTagOverheadAt8GB)
{
    // Table II: 256-512 MB of in-DRAM tags at 8 GB (3.1-6.2%).
    const UnisonGeometry g960 = UnisonGeometry::compute(8_GiB, 15, 4);
    EXPECT_GE(g960.inDramTagBytes, 256_MiB);
    EXPECT_LE(g960.inDramTagBytes, 512_MiB);

    const UnisonGeometry g1984 = UnisonGeometry::compute(8_GiB, 31, 4);
    EXPECT_GE(g1984.inDramTagBytes, 128_MiB);
    EXPECT_LE(g1984.inDramTagBytes, 512_MiB);
    EXPECT_LT(g1984.inDramTagBytes, g960.inDramTagBytes)
        << "larger pages -> fewer tags";
}

TEST(UnisonGeometry, DirectMappedAnd32Way)
{
    const UnisonGeometry dm = UnisonGeometry::compute(1_GiB, 15, 1);
    EXPECT_EQ(dm.setsPerRow, 8u);
    EXPECT_EQ(dm.blocksPerRow, 120u);

    const UnisonGeometry wide = UnisonGeometry::compute(1_GiB, 15, 32);
    EXPECT_EQ(wide.setsPerRow, 0u);
    EXPECT_EQ(wide.rowsPerSet, 4u);
    EXPECT_EQ(wide.waysPerRow, 8u);
    // Data rows of a 32-way set span consecutive rows.
    EXPECT_EQ(wide.dataRowOfWay(0, 0), 0u);
    EXPECT_EQ(wide.dataRowOfWay(0, 8), 1u);
    EXPECT_EQ(wide.dataRowOfWay(0, 31), 3u);
    EXPECT_EQ(wide.dataRowOfWay(1, 0), 4u);
}

TEST(UnisonCache, AddressMappingMatchesResidueArithmetic)
{
    Rig rig(1_MiB, 15, 4);
    Rng rng(2);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(64_GiB) & ~63ull;
        std::uint64_t page;
        std::uint32_t offset;
        rig.cache->mapAddress(addr, page, offset);
        EXPECT_EQ(page, blockNumber(addr) / 15);
        EXPECT_EQ(offset, blockNumber(addr) % 15);
    }
}

TEST(UnisonCache, ColdMissAllocatesWholePageByDefault)
{
    Rig rig;
    const std::uint64_t page = 1000;
    EXPECT_FALSE(rig.cache->pagePresent(rig.addrOf(page, 0)));
    const DramCacheResult res = rig.read(page, 2);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(page, 0)));
    // With no trained footprint the default is the full page.
    for (std::uint32_t b = 0; b < 15; ++b)
        EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page, b)));
    EXPECT_TRUE(rig.cache->blockTouched(rig.addrOf(page, 2)));
    EXPECT_FALSE(rig.cache->blockTouched(rig.addrOf(page, 3)));
    EXPECT_EQ(rig.cache->stats().pageMisses.value(), 1u);
}

TEST(UnisonCache, SubsequentAccessesHit)
{
    Rig rig;
    rig.read(1000, 2);
    const DramCacheResult res = rig.read(1000, 7);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(rig.cache->stats().hits.value(), 1u);
}

TEST(UnisonCache, FootprintLearnedAtEvictionPredictsNextAllocation)
{
    Rig rig;
    const Pc pc = 0x400abc;
    const std::uint64_t page = 77;

    // Residency 1: touch blocks {2, 5, 9}, trigger offset 2.
    rig.read(page, 2, pc);
    rig.read(page, 5, pc);
    rig.read(page, 9, pc);
    rig.forceEvict(page);
    EXPECT_FALSE(rig.cache->pagePresent(rig.addrOf(page, 0)));

    // Residency 2 via the SAME (PC, offset) trigger on a different
    // page in another set: only the learned footprint is fetched.
    const std::uint64_t page2 = page + 1 + rig.cache->geometry().numSets;
    rig.read(page2, 2, pc);
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page2, 2)));
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page2, 5)));
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page2, 9)));
    EXPECT_FALSE(rig.cache->blockPresent(rig.addrOf(page2, 3)));
    EXPECT_FALSE(rig.cache->blockPresent(rig.addrOf(page2, 14)));
}

TEST(UnisonCache, UnderpredictionFetchesSingleBlockAndCorrects)
{
    Rig rig;
    const Pc pc = 0x400abc;

    // Train a narrow footprint {2}.
    rig.read(50, 2, pc);
    rig.forceEvict(50);

    // New page: predicted singleton would bypass; disable that effect
    // by touching a second block in residency 1 instead.
    // (Use a two-block footprint {2,5}.)
    rig.read(60, 2, pc);
    rig.read(60, 5, pc);
    rig.forceEvict(60);

    const std::uint64_t page = 70;
    rig.read(page, 2, pc);
    ASSERT_TRUE(rig.cache->blockPresent(rig.addrOf(page, 5)));
    ASSERT_FALSE(rig.cache->blockPresent(rig.addrOf(page, 11)));

    // Underprediction: block 11 missing while the page is resident.
    const std::uint64_t misses_before =
        rig.cache->stats().blockMisses.value();
    const DramCacheResult res = rig.read(page, 11, pc);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(rig.cache->stats().blockMisses.value(),
              misses_before + 1);
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page, 11)));
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(page, 0)))
        << "underprediction must not reallocate the page";

    // The correction propagates at eviction: the next allocation by
    // this trigger includes block 11.
    rig.forceEvict(page);
    const std::uint64_t page2 = page + 2 * rig.cache->geometry().numSets;
    rig.read(page2, 2, pc);
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page2, 11)));
}

TEST(UnisonCache, SingletonBypassAndPromotion)
{
    Rig rig;
    const Pc pc = 0x400f00;

    // Residency 1 touches only the trigger block -> learned singleton.
    rig.read(90, 3, pc);
    rig.forceEvict(90);

    // Next trigger by the same (PC, offset): bypassed, not allocated.
    const std::uint64_t page = 90 + 3 * rig.cache->geometry().numSets;
    const std::uint64_t bypasses_before =
        rig.cache->stats().singletonBypasses.value();
    rig.read(page, 3, pc);
    EXPECT_EQ(rig.cache->stats().singletonBypasses.value(),
              bypasses_before + 1);
    EXPECT_FALSE(rig.cache->pagePresent(rig.addrOf(page, 3)));

    // A second access to the bypassed page proves it non-singleton:
    // the singleton table promotes it and the page is allocated.
    rig.read(page, 8, pc);
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(page, 8)));
    EXPECT_EQ(rig.cache->singletonTable().stats().promotions.value(),
              1u);
}

TEST(UnisonCache, SingletonDisabledAlwaysAllocates)
{
    Rig rig(1_MiB, 15, 4, /*singleton=*/false);
    const Pc pc = 0x400f00;
    rig.read(90, 3, pc);
    rig.forceEvict(90);
    const std::uint64_t page = 90 + 3 * rig.cache->geometry().numSets;
    rig.read(page, 3, pc);
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(page, 3)));
    EXPECT_EQ(rig.cache->stats().singletonBypasses.value(), 0u);
}

TEST(UnisonCache, DirtyBlocksWrittenBackExactlyOnce)
{
    Rig rig;
    const std::uint64_t page = 42;
    rig.read(page, 1); // allocate (write misses do not allocate)
    rig.write(page, 1);
    rig.write(page, 4);
    rig.write(page, 6);
    EXPECT_TRUE(rig.cache->blockDirty(rig.addrOf(page, 4)));

    const std::uint64_t wb_before = rig.offchip.stats().writes;
    rig.forceEvict(page);
    const std::uint64_t wb_after = rig.offchip.stats().writes;
    EXPECT_EQ(rig.cache->stats().offchipWritebackBlocks.value(), 3u);
    EXPECT_EQ(wb_after - wb_before, 3u);
}

TEST(UnisonCache, CleanEvictionWritesNothingBack)
{
    Rig rig;
    rig.read(42, 1);
    const std::uint64_t wb_before = rig.offchip.stats().writes;
    rig.forceEvict(42);
    EXPECT_EQ(rig.offchip.stats().writes, wb_before);
    EXPECT_EQ(rig.cache->stats().offchipWritebackBlocks.value(), 0u);
}

TEST(UnisonCache, WritebackToAbsentPageBypassesAllocation)
{
    // Write-no-allocate: an L2 writeback to a page that is not
    // resident must go straight to memory without evicting anything
    // or fetching a footprint.
    Rig rig;
    rig.read(10, 2, 0x400123); // occupy a way in the set

    const std::uint64_t reads_before = rig.offchip.stats().reads;
    const std::uint64_t writes_before = rig.offchip.stats().writes;
    const std::uint64_t page = rig.conflictPage(10, 7);
    const DramCacheResult res = rig.write(page, 2, 0x400123);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(rig.cache->pagePresent(rig.addrOf(page, 2)));
    EXPECT_EQ(rig.offchip.stats().reads, reads_before)
        << "no footprint fetch for a writeback";
    EXPECT_EQ(rig.offchip.stats().writes, writes_before + 1);
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(10, 2)))
        << "resident pages are not evicted by writebacks";
}

TEST(UnisonCache, WriteToResidentPageAllocatesBlockWithoutFetch)
{
    Rig rig;
    const Pc pc = 0x400123;
    // Train footprint {2, 5}, then allocate a page with it.
    rig.read(10, 2, pc);
    rig.read(10, 5, pc);
    rig.forceEvict(10);
    const std::uint64_t page = rig.conflictPage(10, 4);
    rig.read(page, 2, pc);
    ASSERT_FALSE(rig.cache->blockPresent(rig.addrOf(page, 9)));

    // A write to a missing block of a *resident* page write-allocates
    // the block with no off-chip fetch (it arrives whole from L2).
    const std::uint64_t reads_before = rig.offchip.stats().reads;
    rig.write(page, 9, pc);
    EXPECT_EQ(rig.offchip.stats().reads, reads_before);
    EXPECT_TRUE(rig.cache->blockPresent(rig.addrOf(page, 9)));
    EXPECT_TRUE(rig.cache->blockDirty(rig.addrOf(page, 9)));
}

TEST(UnisonCache, WayPredictionTracksHits)
{
    Rig rig;
    rig.read(7, 0);
    rig.read(7, 1);
    rig.read(7, 2);
    const WayPredictorStats &wp = rig.cache->wayPredictorStats();
    EXPECT_EQ(wp.predictions.value(), 2u) << "hits only";
    EXPECT_EQ(wp.correct.value(), 2u)
        << "allocation trains the predictor";
}

TEST(UnisonCache, WayMispredictionStillServesCorrectly)
{
    // A 4-entry way-predictor table guarantees aliasing between pages,
    // so some predictions go to the wrong way; results must still be
    // correct and accuracy must drop below 100%.
    UnisonConfig cfg;
    cfg.capacityBytes = 1_MiB;
    cfg.wayPredictorIndexBits = 4;
    DramModule offchip(offChipDramOrganization(), offChipDramTiming());
    UnisonCache cache(cfg, &offchip);

    Rng rng(5);
    Cycle clock = 0;
    const std::uint64_t num_sets = cache.geometry().numSets;
    // Allocate many pages in one set and revisit them.
    std::vector<std::uint64_t> pages;
    for (std::uint64_t i = 0; i < 3; ++i)
        pages.push_back(3 + i * num_sets);
    for (int round = 0; round < 50; ++round) {
        const std::uint64_t page = pages[rng.below(pages.size())];
        clock += 500;
        DramCacheRequest req;
        req.addr = blockAddress(page * 15 + rng.below(15));
        req.pc = 0x400000;
        req.cycle = clock;
        const DramCacheResult res = cache.access(req);
        // Once resident, accesses must hit regardless of prediction.
        (void)res;
    }
    const WayPredictorStats &wp = cache.wayPredictorStats();
    EXPECT_GT(wp.predictions.value(), 0u);
    EXPECT_GT(wp.accuracyPercent(), 10.0);
    // All three pages stay resident (4-way set, 3 pages): every access
    // after allocation is a hit even when the way predictor misses.
    EXPECT_EQ(cache.stats().pageMisses.value(), 3u);
}

TEST(UnisonCache, SerialTagPolicySlowerOnHits)
{
    UnisonConfig fast_cfg;
    fast_cfg.capacityBytes = 1_MiB;
    UnisonConfig slow_cfg = fast_cfg;
    slow_cfg.wayPolicy = UnisonWayPolicy::SerialTag;

    Rig fast(fast_cfg), slow(slow_cfg);
    fast.read(5, 1);
    slow.read(5, 1);
    const DramCacheResult f = fast.read(5, 2);
    const DramCacheResult s = slow.read(5, 2);
    ASSERT_TRUE(f.hit);
    ASSERT_TRUE(s.hit);
    const Cycle f_lat = f.doneAt - (fast.clock);
    const Cycle s_lat = s.doneAt - (slow.clock);
    EXPECT_GT(s_lat, f_lat)
        << "tag-then-data serialization must cost extra cycles";
}

TEST(UnisonCache, FetchAllPolicyMovesMoreStackedData)
{
    UnisonConfig pred_cfg;
    pred_cfg.capacityBytes = 1_MiB;
    UnisonConfig all_cfg = pred_cfg;
    all_cfg.wayPolicy = UnisonWayPolicy::FetchAll;

    Rig pred(pred_cfg), all(all_cfg);
    pred.read(5, 1);
    all.read(5, 1);
    const std::uint64_t pred_bytes_before =
        pred.cache->stackedDram()->stats().bytesRead;
    const std::uint64_t all_bytes_before =
        all.cache->stackedDram()->stats().bytesRead;
    pred.read(5, 2);
    all.read(5, 2);
    const std::uint64_t pred_bytes =
        pred.cache->stackedDram()->stats().bytesRead -
        pred_bytes_before;
    const std::uint64_t all_bytes =
        all.cache->stackedDram()->stats().bytesRead - all_bytes_before;
    // Fetching all 4 ways moves ~4x the data of the predicted way
    // (Sec. V-B: "reduces the hit traffic by 4x").
    EXPECT_GE(all_bytes, pred_bytes + 3 * kBlockBytes);
}

TEST(UnisonCache, MapIPolicyFunctionallyEquivalent)
{
    UnisonConfig cfg;
    cfg.capacityBytes = 1_MiB;
    cfg.missPolicy = UnisonMissPolicy::MapI;
    Rig rig(cfg);
    rig.read(3, 1);
    EXPECT_TRUE(rig.read(3, 1).hit);
    EXPECT_FALSE(rig.read(10000, 1).hit);
    ASSERT_NE(rig.cache->missPredictor(), nullptr);
    EXPECT_GT(rig.cache->missPredictor()->stats().missesTotal.value(),
              0u);
}

TEST(UnisonCache, LruVictimSelection)
{
    Rig rig;
    const std::uint64_t num_sets = rig.cache->geometry().numSets;
    // Fill all four ways of set 5.
    for (std::uint64_t w = 0; w < 4; ++w)
        rig.read(5 + w * num_sets, 0);
    // Touch ways 0..2 again; way 3 is LRU.
    for (std::uint64_t w = 0; w < 3; ++w)
        rig.read(5 + w * num_sets, 1);
    // New conflicting page evicts way 3's page.
    rig.read(5 + 9 * num_sets, 0);
    EXPECT_TRUE(rig.cache->pagePresent(rig.addrOf(5, 0)));
    EXPECT_FALSE(rig.cache->pagePresent(
        rig.addrOf(5 + 3 * num_sets, 0)));
}

TEST(UnisonCache, ResetStatsClearsEverything)
{
    Rig rig;
    rig.read(1, 0);
    rig.read(1, 1);
    rig.cache->resetStats();
    EXPECT_EQ(rig.cache->stats().accesses(), 0u);
    EXPECT_EQ(rig.cache->wayPredictorStats().predictions.value(), 0u);
    EXPECT_EQ(rig.cache->stackedDram()->stats().accesses(), 0u);
}

/**
 * Parameterized invariant sweep over (pageBlocks, assoc): random
 * traffic must preserve the block-state lattice (dirty => touched =>
 * fetched => page present), the accounting identities, and
 * determinism.
 */
class UnisonPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(UnisonPropertyTest, InvariantsHoldUnderRandomTraffic)
{
    const auto [page_blocks, assoc] = GetParam();
    UnisonConfig cfg;
    cfg.capacityBytes = 512_KiB;
    cfg.pageBlocks = page_blocks;
    cfg.assoc = assoc;
    // Singleton bypass legitimately leaves pages unallocated; the
    // lattice invariants below assume allocation, so disable it here
    // (it has its own directed tests).
    cfg.singletonEnabled = false;
    DramModule offchip(offChipDramOrganization(), offChipDramTiming());
    UnisonCache cache(cfg, &offchip);

    Rng rng(assoc * 100 + page_blocks);
    Cycle clock = 0;
    const std::uint64_t addr_space = 16_MiB;

    for (int i = 0; i < 30000; ++i) {
        clock += 300;
        DramCacheRequest req;
        req.addr = blockAddress(rng.below(addr_space / kBlockBytes));
        req.pc = 0x400000 + (rng.below(32) * 4);
        req.core = 0;
        req.isWrite = rng.chance(0.3);
        req.cycle = clock;
        const DramCacheResult res = cache.access(req);
        EXPECT_GE(res.doneAt, req.cycle);

        // Block-state lattice on the just-accessed address. A write
        // to an absent page legitimately bypasses allocation.
        if (!req.isWrite || cache.pagePresent(req.addr)) {
            EXPECT_TRUE(cache.blockPresent(req.addr));
            EXPECT_TRUE(cache.blockTouched(req.addr));
            if (req.isWrite) {
                EXPECT_TRUE(cache.blockDirty(req.addr));
            }
        }
    }

    // Sampled lattice check across the address space.
    for (int i = 0; i < 5000; ++i) {
        const Addr addr =
            blockAddress(rng.below(addr_space / kBlockBytes));
        if (cache.blockDirty(addr)) {
            EXPECT_TRUE(cache.blockTouched(addr));
        }
        if (cache.blockTouched(addr)) {
            EXPECT_TRUE(cache.blockPresent(addr));
        }
        if (cache.blockPresent(addr)) {
            EXPECT_TRUE(cache.pagePresent(addr));
        }
    }

    // Accounting identities.
    const DramCacheStats &s = cache.stats();
    EXPECT_EQ(s.hits.value() + s.misses.value(), s.accesses());
    EXPECT_EQ(s.pageMisses.value() + s.blockMisses.value(),
              s.misses.value());
    EXPECT_GE(s.fpFetched.value(), s.fpTouched.value())
        << "touched blocks are a subset of fetched blocks";
    // Every off-chip read is a demand, prefetch or wasted fetch.
    EXPECT_EQ(offchip.stats().reads, s.offchipFetchedBlocks());
}

TEST_P(UnisonPropertyTest, DeterministicAcrossRuns)
{
    const auto [page_blocks, assoc] = GetParam();
    auto run = [&]() {
        UnisonConfig cfg;
        cfg.capacityBytes = 256_KiB;
        cfg.pageBlocks = page_blocks;
        cfg.assoc = assoc;
        DramModule offchip(offChipDramOrganization(),
                           offChipDramTiming());
        UnisonCache cache(cfg, &offchip);
        Rng rng(99);
        Cycle clock = 0;
        std::uint64_t checksum = 0;
        for (int i = 0; i < 5000; ++i) {
            clock += 400;
            DramCacheRequest req;
            req.addr = blockAddress(rng.below(65536));
            req.pc = 0x400000;
            req.isWrite = rng.chance(0.25);
            req.cycle = clock;
            checksum ^= cache.access(req).doneAt * (i + 1);
        }
        return checksum;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, UnisonPropertyTest,
    ::testing::Values(std::make_tuple(15u, 1u), std::make_tuple(15u, 4u),
                      std::make_tuple(31u, 4u), std::make_tuple(15u, 32u),
                      std::make_tuple(31u, 1u)));

TEST(UnisonCache, AssociativityReducesConflictMisses)
{
    // Three pages mapping to one set, accessed round-robin: a
    // direct-mapped cache thrashes, a 4-way cache hits after warmup
    // (the Fig. 5 effect in miniature).
    auto missRatio = [](std::uint32_t assoc) {
        UnisonConfig cfg;
        cfg.capacityBytes = 1_MiB;
        cfg.assoc = assoc;
        cfg.singletonEnabled = false; // isolate the conflict effect
        DramModule offchip(offChipDramOrganization(),
                           offChipDramTiming());
        UnisonCache cache(cfg, &offchip);
        const std::uint64_t num_sets = cache.geometry().numSets;
        Cycle clock = 0;
        for (int round = 0; round < 60; ++round) {
            const std::uint64_t page = 3 + (round % 3) * num_sets;
            clock += 500;
            DramCacheRequest req;
            req.addr = blockAddress(page * 15);
            req.pc = 0x400000;
            req.cycle = clock;
            cache.access(req);
        }
        return cache.stats().missRatioPercent();
    };
    EXPECT_GT(missRatio(1), 95.0);
    EXPECT_LT(missRatio(4), 10.0);
}

} // namespace
} // namespace unison
