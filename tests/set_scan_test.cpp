/**
 * @file
 * Unit tests for the packed SoA tag-scan helpers (set_scan.hh) and the
 * shared page-way SoA container (page_set.hh) that every cache model's
 * hot lookup now runs through: hit/miss/MRU-hint behaviour at assoc 1
 * and 4, and indexing with a non-power-of-two set count (the Unison
 * geometry routinely produces one).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/page_set.hh"
#include "cache/set_scan.hh"

namespace unison {
namespace {

constexpr std::uint64_t kValid = 1ull << 63;
constexpr std::uint64_t kDirty = 1ull << 62;

TEST(SetScan, Assoc1HitAndMiss)
{
    const std::uint64_t tags[1] = {kValid | 42};
    EXPECT_EQ(scanWays(tags, 1, ~0ull, kValid | 42), 0);
    EXPECT_EQ(scanWays(tags, 1, ~0ull, kValid | 43), -1);

    const std::uint64_t invalid[1] = {0};
    EXPECT_EQ(scanWays(invalid, 1, ~0ull, kValid | 0), -1);
}

TEST(SetScan, Assoc4FindsEveryWay)
{
    std::uint64_t tags[4] = {kValid | 10, kValid | 11, kValid | 12,
                             kValid | 13};
    for (std::uint32_t w = 0; w < 4; ++w)
        EXPECT_EQ(scanWays(tags, 4, ~0ull, kValid | (10 + w)),
                  static_cast<int>(w));
    EXPECT_EQ(scanWays(tags, 4, ~0ull, kValid | 14), -1);
    // An invalid way must not match even on a zero tag.
    tags[2] = 0;
    EXPECT_EQ(scanWays(tags, 4, ~0ull, kValid | 0), -1);
    EXPECT_EQ(scanWays(tags, 4, ~0ull, kValid | 12), -1);
}

TEST(SetScan, MaskIgnoresDirtyBit)
{
    // The SRAM caches fold a dirty bit into the packed word; the scan
    // must hit regardless of its state.
    const std::uint64_t tags[4] = {kValid | 5, kValid | kDirty | 6, 0, 0};
    EXPECT_EQ(scanWays(tags, 4, ~kDirty, kValid | 5), 0);
    EXPECT_EQ(scanWays(tags, 4, ~kDirty, kValid | 6), 1);
    EXPECT_EQ(scanWays(tags, 4, ~kDirty, kValid | 7), -1);
}

TEST(SetScan, MruHintHitAndFallback)
{
    const std::uint64_t tags[4] = {kValid | 20, kValid | 21, kValid | 22,
                                   kValid | 23};
    // Hint correct: the hinted way is returned.
    EXPECT_EQ(scanWaysMru(tags, 4, ~0ull, kValid | 22, 2), 2);
    // Hint wrong: falls back to the full scan and still finds the way.
    EXPECT_EQ(scanWaysMru(tags, 4, ~0ull, kValid | 20, 3), 0);
    // Miss with any hint stays a miss.
    EXPECT_EQ(scanWaysMru(tags, 4, ~0ull, kValid | 99, 1), -1);
    // Assoc 1: the only way doubles as the hint.
    EXPECT_EQ(scanWaysMru(tags, 1, ~0ull, kValid | 20, 0), 0);
    EXPECT_EQ(scanWaysMru(tags, 1, ~0ull, kValid | 21, 0), -1);
}

TEST(SetScan, VictimPrefersInvalidThenLru)
{
    std::uint64_t tags[4] = {kValid | 1, kValid | 2, kValid | 3,
                             kValid | 4};
    std::uint32_t last_use[4] = {40, 10, 30, 20};
    // All valid: LRU way (smallest stamp) wins.
    EXPECT_EQ(pickVictimWay(tags, last_use, 4, kValid), 1u);
    // First-wins on stamp ties.
    last_use[3] = 10;
    EXPECT_EQ(pickVictimWay(tags, last_use, 4, kValid), 1u);
    // An invalid way beats any stamp.
    tags[2] = 0;
    EXPECT_EQ(pickVictimWay(tags, last_use, 4, kValid), 2u);
    // Assoc 1 degenerates to way 0.
    EXPECT_EQ(pickVictimWay(tags, last_use, 1, kValid), 0u);
}

TEST(SetScan, PageWaySoaNonPowerOfTwoSets)
{
    // Unison geometries give non-power-of-two set counts; the SoA
    // container indexes sets as set * assoc with no power-of-two
    // assumption. 3 sets x 4 ways.
    constexpr std::uint32_t kAssoc = 4;
    constexpr std::uint64_t kSets = 3;
    PageWaySoa soa;
    soa.resize(kSets * kAssoc);

    // Install a distinct tag in one way of every set.
    for (std::uint64_t set = 0; set < kSets; ++set) {
        const std::size_t idx = set * kAssoc + (set % kAssoc);
        soa.tagv[idx] = PageWaySoa::kValid | (100 + set);
        soa.hot[idx].lastUse = static_cast<std::uint32_t>(set + 1);
    }

    for (std::uint64_t set = 0; set < kSets; ++set) {
        const std::size_t base = set * kAssoc;
        EXPECT_EQ(soa.findWay(base, kAssoc, 100 + set),
                  static_cast<int>(set % kAssoc));
        // Tags of *other* sets must not be visible in this set.
        const std::uint64_t other = 100 + ((set + 1) % kSets);
        EXPECT_EQ(soa.findWay(base, kAssoc, other), -1);
        // Victim preference: some way of this set is still invalid.
        const std::uint32_t victim = soa.pickVictim(base, kAssoc);
        EXPECT_LT(victim, kAssoc);
        EXPECT_FALSE(soa.valid(base + victim));
    }

    // Fill set 1 completely and check the LRU victim.
    const std::size_t base = 1 * kAssoc;
    for (std::uint32_t w = 0; w < kAssoc; ++w) {
        soa.tagv[base + w] = PageWaySoa::kValid | (200 + w);
        soa.hot[base + w].lastUse = 50 - w; // way 3 is oldest
    }
    EXPECT_EQ(soa.pickVictim(base, kAssoc), 3u);
    soa.invalidate(base + 2);
    EXPECT_EQ(soa.pickVictim(base, kAssoc), 2u);
    EXPECT_EQ(soa.findWay(base, kAssoc, 202), -1);
    EXPECT_EQ(soa.findWay(base, kAssoc, 203), 3);
}

} // namespace
} // namespace unison
